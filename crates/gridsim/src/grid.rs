//! The whole production Grid: sites, information service, resource broker.
//!
//! [`ProductionGrid::teragrid`] assembles an eleven-centre Grid shaped like
//! the paper's testbed ("The TeraGrid is a production Grid infrastructure
//! which contains 11 supercomputing centers across U.S.", §VIII-A), all
//! trusting one CA. The information service exposes per-site load
//! ([`SiteInfo`]), and [`ProductionGrid::select`] is the resource-selection
//! step the middleware performs before submitting ("resource selection and
//! provision", §IV).

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use simkit::{Duration, SimTime};

use crate::error::GridError;
use crate::security::{CertAuthority, Credential};
use crate::site::{GridSite, SiteSpec};

/// Point-in-time load snapshot of one site.
#[derive(Clone, Debug, PartialEq)]
pub struct SiteInfo {
    /// Site name.
    pub name: String,
    /// Cores on nodes that are up.
    pub total_cores: u32,
    /// Currently idle cores.
    pub free_cores: u32,
    /// Jobs waiting in the queue.
    pub queue_len: usize,
    /// Estimated queue wait for a 1-core job.
    pub est_wait: Duration,
}

/// How the broker picks a site.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BrokerPolicy {
    /// Most idle cores right now.
    MostFreeCores,
    /// Smallest estimated wait for the requested size.
    ShortestWait,
    /// Rotate over capable sites.
    RoundRobin,
    /// Pin to a named site.
    Fixed(String),
}

/// A multi-site production Grid with a shared trust root.
pub struct ProductionGrid {
    ca: Rc<RefCell<CertAuthority>>,
    sites: Vec<Rc<GridSite>>,
    rr_next: Cell<usize>,
}

impl ProductionGrid {
    /// Build a Grid from explicit site specs; WAN links originate at
    /// `access_host`.
    pub fn new(access_host: &str, ca_seed: u64, specs: Vec<SiteSpec>) -> ProductionGrid {
        let ca = Rc::new(RefCell::new(CertAuthority::new(
            "/C=US/O=SimTeraGrid/CN=CA",
            ca_seed,
        )));
        let sites = specs
            .into_iter()
            .map(|spec| GridSite::new(spec, access_host, Rc::clone(&ca)))
            .collect();
        ProductionGrid {
            ca,
            sites,
            rr_next: Cell::new(0),
        }
    }

    /// The paper's testbed: eleven supercomputing centres of varied size
    /// (scaled down so simulations stay fast), all reachable from the
    /// access layer over ~85 KB/s WAN paths.
    pub fn teragrid(access_host: &str) -> ProductionGrid {
        let centres: [(&str, usize, u32); 11] = [
            ("ncsa", 64, 8),
            ("sdsc", 48, 8),
            ("tacc", 96, 16),
            ("psc", 32, 8),
            ("indiana", 32, 4),
            ("purdue", 24, 8),
            ("ornl", 40, 8),
            ("anl", 24, 8),
            ("lsu", 16, 8),
            ("nics", 72, 12),
            ("ucanl", 16, 4),
        ];
        let specs = centres
            .iter()
            .map(|&(name, nodes, cores)| SiteSpec::teragrid_like(name, nodes, cores))
            .collect();
        ProductionGrid::new(access_host, 0x7e7a_617d, specs)
    }

    /// The Grid-wide certificate authority.
    pub fn ca(&self) -> &Rc<RefCell<CertAuthority>> {
        &self.ca
    }

    /// Issue a user credential *and* add the DN to every site's grid-map —
    /// the paper-era "getting a TeraGrid allocation" step (unmetered).
    pub fn enroll_user(
        &self,
        dn: &str,
        local_user: &str,
        now: SimTime,
        lifetime: Duration,
    ) -> Credential {
        let cred = self.ca.borrow_mut().issue(dn, now, lifetime);
        for site in &self.sites {
            site.gatekeeper().borrow_mut().grant(dn, local_user);
        }
        cred
    }

    /// Enrol with a per-site service-unit budget (`core_hours` at *each*
    /// site, as TeraGrid awarded site-specific allocations).
    pub fn enroll_user_with_allocation(
        &self,
        dn: &str,
        local_user: &str,
        now: SimTime,
        lifetime: Duration,
        core_hours: f64,
    ) -> Credential {
        let cred = self.ca.borrow_mut().issue(dn, now, lifetime);
        for site in &self.sites {
            site.gatekeeper()
                .borrow_mut()
                .grant_with_allocation(dn, local_user, core_hours);
        }
        cred
    }

    /// Grid-wide usage report: `(dn, site, allocation)` rows for every
    /// metered account, sorted.
    pub fn usage_report(&self) -> Vec<(String, String, crate::gram::Allocation)> {
        let mut rows = Vec::new();
        for site in &self.sites {
            for (dn, alloc) in site.gatekeeper().borrow().usage_report() {
                rows.push((dn, site.name().to_owned(), alloc));
            }
        }
        rows.sort_by(|a, b| (&a.0, &a.1).cmp(&(&b.0, &b.1)));
        rows
    }

    /// All sites.
    pub fn sites(&self) -> &[Rc<GridSite>] {
        &self.sites
    }

    /// Look up a site by name.
    pub fn site(&self, name: &str) -> Result<&Rc<GridSite>, GridError> {
        self.sites
            .iter()
            .find(|s| s.name() == name)
            .ok_or_else(|| GridError::NoSuchSite(name.to_owned()))
    }

    /// Information-service snapshot of every site.
    pub fn info(&self, now: SimTime) -> Vec<SiteInfo> {
        self.sites
            .iter()
            .map(|s| {
                let sched = s.scheduler().borrow();
                SiteInfo {
                    name: s.name().to_owned(),
                    total_cores: sched.total_cores(),
                    free_cores: sched.free_cores(),
                    queue_len: sched.queue_len(),
                    est_wait: sched.estimate_wait(now, 1),
                }
            })
            .collect()
    }

    /// Pick a site able to run a `cores`-wide job under `policy`.
    pub fn select(
        &self,
        policy: &BrokerPolicy,
        cores: u32,
        now: SimTime,
    ) -> Result<Rc<GridSite>, GridError> {
        self.select_excluding(policy, cores, now, &[])
    }

    /// [`ProductionGrid::select`] with a site blacklist — the retry path's
    /// "anywhere but where it just failed".
    pub fn select_excluding(
        &self,
        policy: &BrokerPolicy,
        cores: u32,
        now: SimTime,
        excluded: &[String],
    ) -> Result<Rc<GridSite>, GridError> {
        let capable: Vec<&Rc<GridSite>> = self
            .sites
            .iter()
            .filter(|s| s.scheduler().borrow().total_cores() >= cores)
            .filter(|s| !excluded.iter().any(|e| e == s.name()))
            .collect();
        if capable.is_empty() {
            return Err(GridError::NoCapableSite);
        }
        let chosen = match policy {
            BrokerPolicy::Fixed(name) => {
                if excluded.iter().any(|e| e == name) {
                    return Err(GridError::NoCapableSite);
                }
                let site = self.site(name)?;
                if site.scheduler().borrow().total_cores() < cores {
                    return Err(GridError::NoCapableSite);
                }
                Rc::clone(site)
            }
            BrokerPolicy::MostFreeCores => Rc::clone(
                capable
                    .iter()
                    .max_by_key(|s| s.scheduler().borrow().free_cores())
                    .expect("non-empty"),
            ),
            BrokerPolicy::ShortestWait => Rc::clone(
                capable
                    .iter()
                    .min_by_key(|s| s.scheduler().borrow().estimate_wait(now, cores))
                    .expect("non-empty"),
            ),
            BrokerPolicy::RoundRobin => {
                let idx = self.rr_next.get() % capable.len();
                self.rr_next.set(self.rr_next.get().wrapping_add(1));
                Rc::clone(capable[idx])
            }
        };
        Ok(chosen)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gram::{ExecutionModel, Gatekeeper};
    use crate::scheduler::{ClusterScheduler, SchedRequest};
    use simkit::Sim;

    #[test]
    fn teragrid_has_eleven_sites() {
        let grid = ProductionGrid::teragrid("appliance");
        assert_eq!(grid.sites().len(), 11);
        assert!(grid.site("tacc").is_ok());
        assert!(matches!(
            grid.site("imaginary"),
            Err(GridError::NoSuchSite(_))
        ));
    }

    #[test]
    fn enroll_user_grants_everywhere() {
        let mut sim = Sim::new(0);
        let grid = ProductionGrid::teragrid("appliance");
        let cred = grid.enroll_user(
            "/CN=alice",
            "alice",
            SimTime::ZERO,
            Duration::from_secs(86400),
        );
        for site in grid.sites() {
            site.storage().borrow_mut().put("a.exe", 10.0).unwrap();
            let h = Gatekeeper::submit(
                site.gatekeeper(),
                &mut sim,
                &cred.proxy(),
                "&(executable=a.exe)(maxWallTime=1)",
                ExecutionModel {
                    actual_runtime: Duration::from_secs(1),
                    output_bytes: 0.0,
                },
            );
            assert!(h.is_ok(), "{:?} at {}", h.err(), site.name());
        }
        sim.run();
    }

    #[test]
    fn info_reflects_load() {
        let mut sim = Sim::new(0);
        let grid = ProductionGrid::teragrid("appliance");
        let site = Rc::clone(grid.site("lsu").unwrap());
        let total = site.scheduler().borrow().total_cores();
        ClusterScheduler::submit(
            site.scheduler(),
            &mut sim,
            SchedRequest {
                cores: total,
                walltime_limit: Duration::from_secs(1000),
                actual_runtime: Duration::from_secs(1000),
            },
            |_, _| {},
        );
        let info = grid.info(sim.now());
        let lsu = info.iter().find(|i| i.name == "lsu").unwrap();
        assert_eq!(lsu.free_cores, 0);
        assert_eq!(lsu.total_cores, total);
    }

    #[test]
    fn broker_most_free_picks_emptiest() {
        let mut sim = Sim::new(0);
        let grid = ProductionGrid::teragrid("appliance");
        // Load every site except "tacc" completely.
        for site in grid.sites() {
            if site.name() == "tacc" {
                continue;
            }
            let total = site.scheduler().borrow().total_cores();
            ClusterScheduler::submit(
                site.scheduler(),
                &mut sim,
                SchedRequest {
                    cores: total,
                    walltime_limit: Duration::from_secs(1000),
                    actual_runtime: Duration::from_secs(1000),
                },
                |_, _| {},
            );
        }
        let chosen = grid
            .select(&BrokerPolicy::MostFreeCores, 1, sim.now())
            .unwrap();
        assert_eq!(chosen.name(), "tacc");
    }

    #[test]
    fn broker_fixed_and_errors() {
        let grid = ProductionGrid::teragrid("appliance");
        let s = grid
            .select(&BrokerPolicy::Fixed("psc".into()), 1, SimTime::ZERO)
            .unwrap();
        assert_eq!(s.name(), "psc");
        assert!(grid
            .select(&BrokerPolicy::Fixed("nowhere".into()), 1, SimTime::ZERO)
            .is_err());
        // nothing can run a 10k-core job
        let err = grid
            .select(&BrokerPolicy::MostFreeCores, 10_000, SimTime::ZERO)
            .map(|s| s.name().to_owned())
            .unwrap_err();
        assert_eq!(err, GridError::NoCapableSite);
    }

    #[test]
    fn broker_round_robin_rotates() {
        let grid = ProductionGrid::teragrid("appliance");
        let a = grid
            .select(&BrokerPolicy::RoundRobin, 1, SimTime::ZERO)
            .unwrap();
        let b = grid
            .select(&BrokerPolicy::RoundRobin, 1, SimTime::ZERO)
            .unwrap();
        assert_ne!(a.name(), b.name());
    }

    #[test]
    fn broker_shortest_wait_avoids_busy_site() {
        let mut sim = Sim::new(0);
        let specs = vec![
            SiteSpec::teragrid_like("busy", 2, 4),
            SiteSpec::teragrid_like("idle", 2, 4),
        ];
        let grid = ProductionGrid::new("appliance", 1, specs);
        let busy = Rc::clone(grid.site("busy").unwrap());
        ClusterScheduler::submit(
            busy.scheduler(),
            &mut sim,
            SchedRequest {
                cores: 8,
                walltime_limit: Duration::from_secs(5000),
                actual_runtime: Duration::from_secs(5000),
            },
            |_, _| {},
        );
        let chosen = grid
            .select(&BrokerPolicy::ShortestWait, 4, sim.now())
            .unwrap();
        assert_eq!(chosen.name(), "idle");
    }
}
