//! Error types surfaced by the Grid substrate.

use std::fmt;

use crate::security::SecurityError;

/// Anything that can go wrong between a client and the production Grid.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GridError {
    /// Security layer rejected the request.
    Security(SecurityError),
    /// The RSL job description failed to parse.
    BadRsl(String),
    /// The job description is syntactically fine but semantically invalid
    /// for the target site (unknown queue, too many cores, walltime over
    /// the queue limit, ...).
    Rejected(String),
    /// Referenced executable/input file has not been staged to the site.
    MissingFile(String),
    /// Unknown job handle.
    NoSuchJob(u64),
    /// Unknown site.
    NoSuchSite(String),
    /// The grid has no site that can run this request.
    NoCapableSite,
    /// Site storage is full.
    StorageFull {
        /// The site whose scratch filesystem rejected the write.
        site: String,
    },
    /// The gatekeeper is not accepting requests (drained / outage window).
    Unavailable(String),
}

impl fmt::Display for GridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GridError::Security(e) => write!(f, "security: {e}"),
            GridError::BadRsl(msg) => write!(f, "RSL parse error: {msg}"),
            GridError::Rejected(msg) => write!(f, "job rejected: {msg}"),
            GridError::MissingFile(name) => write!(f, "file not staged: {name}"),
            GridError::NoSuchJob(id) => write!(f, "no such job: {id}"),
            GridError::NoSuchSite(name) => write!(f, "no such site: {name}"),
            GridError::NoCapableSite => write!(f, "no site can satisfy the request"),
            GridError::StorageFull { site } => write!(f, "storage full at {site}"),
            GridError::Unavailable(site) => write!(f, "gatekeeper unavailable at {site}"),
        }
    }
}

impl std::error::Error for GridError {}

impl From<SecurityError> for GridError {
    fn from(e: SecurityError) -> Self {
        GridError::Security(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = GridError::MissingFile("a.out".into());
        assert_eq!(e.to_string(), "file not staged: a.out");
        let e = GridError::Security(SecurityError::Expired);
        assert!(e.to_string().contains("security"));
    }

    #[test]
    fn from_security_error() {
        let e: GridError = SecurityError::UntrustedIssuer.into();
        assert_eq!(e, GridError::Security(SecurityError::UntrustedIssuer));
    }
}
