//! Space-shared batch scheduling of a cluster's cores.
//!
//! A production-Grid site runs a batch system (PBS/LSF in the TeraGrid era).
//! Jobs request `cores` and a walltime limit, wait in a queue, run to
//! completion (or are killed at the limit), and free their cores. Two
//! policies are provided — plain FCFS and EASY backfill — because queue
//! wait is the dominant term in the paper's "overhead small compared to the
//! runtime of a typical executable" claim, and the backfill-vs-FCFS choice
//! is one of the ablations DESIGN.md calls out.

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

use simkit::{Duration, Sim, SimTime};

/// Scheduling policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Strict first-come-first-served: the queue head blocks everyone.
    Fcfs,
    /// EASY backfill: later jobs may jump ahead if they cannot delay the
    /// head's reservation.
    Backfill,
}

/// How a job left the system.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobOutcome {
    /// Ran to completion within its walltime limit.
    Completed,
    /// Killed at the walltime limit.
    WalltimeExceeded,
    /// Cancelled by the submitter while pending or running.
    Cancelled,
    /// Lost to a node failure.
    NodeFailure,
}

/// Scheduler-level job identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SchedJobId(pub u64);

/// What the scheduler needs to know about a job.
#[derive(Clone, Debug)]
pub struct SchedRequest {
    /// Cores requested (may span nodes).
    pub cores: u32,
    /// Walltime limit (the *estimate* given to the scheduler; jobs are
    /// killed when they reach it).
    pub walltime_limit: Duration,
    /// True runtime, known only to the simulation.
    pub actual_runtime: Duration,
}

type DoneFn = Box<dyn FnOnce(&mut Sim, JobOutcome)>;

struct PendingJob {
    id: SchedJobId,
    req: SchedRequest,
    done: Option<DoneFn>,
}

struct RunningJob {
    alloc: Vec<(usize, u32)>, // (node index, cores taken)
    req: SchedRequest,
    start: SimTime,
    done: Option<DoneFn>,
}

struct Node {
    free: u32,
    up: bool,
}

/// The batch scheduler of one cluster.
pub struct ClusterScheduler {
    name: String,
    policy: SchedPolicy,
    cores_per_node: u32,
    nodes: Vec<Node>,
    pending: VecDeque<PendingJob>,
    running: BTreeMap<SchedJobId, RunningJob>,
    next_id: u64,
    used_cores: u32,
    last_metric_update: SimTime,
}

impl ClusterScheduler {
    /// Cluster of `node_count` nodes × `cores_per_node` cores under
    /// `policy`. `name` prefixes the `<name>.core_seconds` metric.
    pub fn new(
        name: &str,
        node_count: usize,
        cores_per_node: u32,
        policy: SchedPolicy,
    ) -> Rc<RefCell<ClusterScheduler>> {
        assert!(node_count > 0 && cores_per_node > 0);
        Rc::new(RefCell::new(ClusterScheduler {
            name: name.to_owned(),
            policy,
            cores_per_node,
            nodes: (0..node_count)
                .map(|_| Node {
                    free: cores_per_node,
                    up: true,
                })
                .collect(),
            pending: VecDeque::new(),
            running: BTreeMap::new(),
            next_id: 1,
            used_cores: 0,
            last_metric_update: SimTime::ZERO,
        }))
    }

    /// Total cores on nodes that are currently up.
    pub fn total_cores(&self) -> u32 {
        self.nodes
            .iter()
            .filter(|n| n.up)
            .count() as u32
            * self.cores_per_node
    }

    /// Currently free cores (on up nodes).
    pub fn free_cores(&self) -> u32 {
        self.nodes.iter().filter(|n| n.up).map(|n| n.free).sum()
    }

    /// Jobs waiting in the queue.
    pub fn queue_len(&self) -> usize {
        self.pending.len()
    }

    /// Jobs currently executing.
    pub fn running_count(&self) -> usize {
        self.running.len()
    }

    /// Whether a specific job is currently executing.
    pub fn is_running(&self, id: SchedJobId) -> bool {
        self.running.contains_key(&id)
    }

    /// Start instant of a running job.
    pub fn running_since(&self, id: SchedJobId) -> Option<SimTime> {
        self.running.get(&id).map(|r| r.start)
    }

    /// The scheduling policy.
    pub fn policy(&self) -> SchedPolicy {
        self.policy
    }

    /// Submit a job; `done` fires exactly once with the outcome.
    pub fn submit<F>(
        this: &Rc<RefCell<Self>>,
        sim: &mut Sim,
        req: SchedRequest,
        done: F,
    ) -> SchedJobId
    where
        F: FnOnce(&mut Sim, JobOutcome) + 'static,
    {
        let id;
        {
            let mut s = this.borrow_mut();
            assert!(req.cores > 0, "job must request at least one core");
            id = SchedJobId(s.next_id);
            s.next_id += 1;
            s.pending.push_back(PendingJob {
                id,
                req,
                done: Some(Box::new(done)),
            });
        }
        Self::try_schedule(this, sim);
        id
    }

    /// Cancel a pending or running job; its callback fires with
    /// [`JobOutcome::Cancelled`]. Returns `false` for unknown/finished ids.
    pub fn cancel(this: &Rc<RefCell<Self>>, sim: &mut Sim, id: SchedJobId) -> bool {
        let mut cb: Option<DoneFn> = None;
        {
            let mut s = this.borrow_mut();
            if let Some(pos) = s.pending.iter().position(|p| p.id == id) {
                let mut p = s.pending.remove(pos).expect("present");
                cb = p.done.take();
            } else if let Some(mut r) = s.running.remove(&id) {
                s.release(sim, &r.alloc);
                cb = r.done.take();
            }
        }
        let found = cb.is_some();
        if let Some(cb) = cb {
            cb(sim, JobOutcome::Cancelled);
        }
        Self::try_schedule(this, sim);
        found
    }

    /// Kill a pending or running job as a crash: its callback fires with
    /// [`JobOutcome::NodeFailure`] (not `Cancelled` — nobody asked for
    /// this). Unlike [`ClusterScheduler::fail_node`], only the one job
    /// dies; the cores it held are released to the queue. Returns `false`
    /// for unknown/finished ids.
    pub fn kill(this: &Rc<RefCell<Self>>, sim: &mut Sim, id: SchedJobId) -> bool {
        let mut cb: Option<DoneFn> = None;
        {
            let mut s = this.borrow_mut();
            if let Some(pos) = s.pending.iter().position(|p| p.id == id) {
                let mut p = s.pending.remove(pos).expect("present");
                cb = p.done.take();
            } else if let Some(mut r) = s.running.remove(&id) {
                s.release(sim, &r.alloc);
                cb = r.done.take();
            }
        }
        let found = cb.is_some();
        if let Some(cb) = cb {
            cb(sim, JobOutcome::NodeFailure);
        }
        Self::try_schedule(this, sim);
        found
    }

    /// Take a node down: running jobs touching it fail, capacity shrinks.
    pub fn fail_node(this: &Rc<RefCell<Self>>, sim: &mut Sim, node: usize) {
        let mut victims: Vec<DoneFn> = Vec::new();
        {
            let mut s = this.borrow_mut();
            if !s.nodes[node].up {
                return;
            }
            s.update_metric(sim);
            let ids: Vec<SchedJobId> = s
                .running
                .iter()
                .filter(|(_, r)| r.alloc.iter().any(|&(n, _)| n == node))
                .map(|(&id, _)| id)
                .collect();
            for id in ids {
                let mut r = s.running.remove(&id).expect("present");
                // free cores on surviving nodes; the failed node's cores
                // vanish with it
                for &(n, c) in &r.alloc {
                    if n != node {
                        s.nodes[n].free += c;
                    }
                    s.used_cores -= c;
                }
                if let Some(cb) = r.done.take() {
                    victims.push(cb);
                }
            }
            s.nodes[node].up = false;
            s.nodes[node].free = 0;
        }
        for cb in victims {
            cb(sim, JobOutcome::NodeFailure);
        }
        Self::try_schedule(this, sim);
    }

    /// Bring a failed node back with all cores free.
    pub fn restore_node(this: &Rc<RefCell<Self>>, sim: &mut Sim, node: usize) {
        {
            let mut s = this.borrow_mut();
            if s.nodes[node].up {
                return;
            }
            s.update_metric(sim);
            s.nodes[node].up = true;
            s.nodes[node].free = s.cores_per_node;
        }
        Self::try_schedule(this, sim);
    }

    /// Estimated queue wait for a hypothetical `cores` request submitted
    /// now — the information-service figure a resource broker consults.
    pub fn estimate_wait(&self, now: SimTime, cores: u32) -> Duration {
        if cores <= self.free_cores() && self.pending.is_empty() {
            return Duration::ZERO;
        }
        // Pessimistic estimate: walk running jobs by their walltime-limit
        // end, accumulating freed cores until the request (behind the whole
        // current queue, FCFS-style) would fit.
        let mut events: Vec<(SimTime, u32)> = self
            .running
            .values()
            .map(|r| (r.start + r.req.walltime_limit, r.req.cores))
            .collect();
        events.sort();
        let mut free = self.free_cores();
        let mut needed: u32 = self.pending.iter().map(|p| p.req.cores).sum::<u32>() + cores;
        for (t, c) in events {
            free += c;
            if free >= needed.min(self.total_cores()) {
                return t.since(now);
            }
        }
        let _ = &mut needed;
        // Even draining everything wouldn't fit (request larger than the
        // machine): report an effectively infinite wait.
        Duration::MAX
    }

    fn update_metric(&mut self, sim: &mut Sim) {
        let now = sim.now();
        if now > self.last_metric_update && self.used_cores > 0 {
            let dt = (now - self.last_metric_update).as_secs_f64();
            let key = format!("{}.core_seconds", self.name);
            sim.recorder()
                .add_span(&key, self.last_metric_update, now, self.used_cores as f64 * dt);
        }
        self.last_metric_update = now;
    }

    fn release(&mut self, sim: &mut Sim, alloc: &[(usize, u32)]) {
        self.update_metric(sim);
        for &(n, c) in alloc {
            if self.nodes[n].up {
                self.nodes[n].free += c;
            }
            self.used_cores -= c;
        }
    }

    /// Greedy first-fit allocation across up nodes.
    fn allocate(&mut self, sim: &mut Sim, cores: u32) -> Option<Vec<(usize, u32)>> {
        if cores > self.free_cores() {
            return None;
        }
        self.update_metric(sim);
        let mut left = cores;
        let mut alloc = Vec::new();
        for (i, node) in self.nodes.iter_mut().enumerate() {
            if !node.up || node.free == 0 {
                continue;
            }
            let take = node.free.min(left);
            node.free -= take;
            alloc.push((i, take));
            left -= take;
            if left == 0 {
                break;
            }
        }
        debug_assert_eq!(left, 0);
        self.used_cores += cores;
        Some(alloc)
    }

    fn start_job(this: &Rc<RefCell<Self>>, sim: &mut Sim, mut job: PendingJob) {
        let id = job.id;
        let run_for;
        let outcome;
        {
            let mut s = this.borrow_mut();
            let alloc = s
                .allocate(sim, job.req.cores)
                .expect("start_job called without capacity");
            if job.req.actual_runtime <= job.req.walltime_limit {
                run_for = job.req.actual_runtime;
                outcome = JobOutcome::Completed;
            } else {
                run_for = job.req.walltime_limit;
                outcome = JobOutcome::WalltimeExceeded;
            }
            s.running.insert(
                id,
                RunningJob {
                    alloc,
                    req: job.req.clone(),
                    start: sim.now(),
                    done: job.done.take(),
                },
            );
        }
        let this2 = Rc::clone(this);
        sim.schedule(run_for, move |sim| {
            Self::finish_job(&this2, sim, id, outcome);
        });
    }

    fn finish_job(this: &Rc<RefCell<Self>>, sim: &mut Sim, id: SchedJobId, outcome: JobOutcome) {
        let mut cb: Option<DoneFn> = None;
        {
            let mut s = this.borrow_mut();
            // Cancelled or failed jobs were already removed; their stale
            // finish event must be a no-op.
            if let Some(mut r) = s.running.remove(&id) {
                s.release(sim, &r.alloc);
                cb = r.done.take();
            }
        }
        if let Some(cb) = cb {
            cb(sim, outcome);
        }
        Self::try_schedule(this, sim);
    }

    fn try_schedule(this: &Rc<RefCell<Self>>, sim: &mut Sim) {
        // Sync the metric clock so pick_next's `now_plus` sees the current
        // instant.
        this.borrow_mut().update_metric(sim);
        loop {
            let next: Option<PendingJob> = {
                let mut s = this.borrow_mut();
                match s.pick_next() {
                    Some(idx) => s.pending.remove(idx),
                    None => None,
                }
            };
            match next {
                Some(job) => Self::start_job(this, sim, job),
                None => break,
            }
        }
    }

    /// Index into `pending` of the next job to start now, or `None`.
    fn pick_next(&self) -> Option<usize> {
        let head = self.pending.front()?;
        let free = self.free_cores();
        if head.req.cores <= free {
            return Some(0);
        }
        if self.policy == SchedPolicy::Fcfs {
            return None;
        }
        // EASY backfill: reserve for the head, then find the first later
        // job that fits now without pushing the head's start back.
        let (shadow_time, extra) = self.head_reservation()?;
        for (idx, job) in self.pending.iter().enumerate().skip(1) {
            if job.req.cores > free {
                continue;
            }
            let ends_before_shadow = shadow_time
                .map(|st| self.now_plus(job.req.walltime_limit) <= st)
                .unwrap_or(true);
            if ends_before_shadow || job.req.cores <= extra {
                return Some(idx);
            }
        }
        None
    }

    // `pick_next` runs inside try_schedule with sim.now() unavailable (we
    // only have &self). We keep our own notion of "now" from the metric
    // clock, which try_schedule's callers always update first; walltime
    // comparisons only need relative ordering so the base cancels out.
    fn now_plus(&self, d: Duration) -> SimTime {
        self.last_metric_update + d
    }

    /// EASY reservation for the queue head: `(shadow_time, extra_cores)`.
    /// `shadow_time` is when the head can start (based on walltime limits);
    /// `extra` is how many cores remain free at that instant beyond the
    /// head's need. `None` when the head can never fit (machine too small).
    fn head_reservation(&self) -> Option<(Option<SimTime>, u32)> {
        let head = self.pending.front()?;
        if head.req.cores > self.total_cores() {
            // Will be rejected upstream; treat as "no reservation", allowing
            // everything to backfill.
            return Some((None, self.free_cores()));
        }
        let mut events: Vec<(SimTime, u32)> = self
            .running
            .values()
            .map(|r| (r.start + r.req.walltime_limit, r.req.cores))
            .collect();
        events.sort();
        let mut free = self.free_cores();
        for (t, c) in events {
            free += c;
            if free >= head.req.cores {
                return Some((Some(t), free - head.req.cores));
            }
        }
        Some((None, self.free_cores()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    fn req(cores: u32, limit_s: u64, actual_s: u64) -> SchedRequest {
        SchedRequest {
            cores,
            walltime_limit: Duration::from_secs(limit_s),
            actual_runtime: Duration::from_secs(actual_s),
        }
    }

    type FinishLog = Rc<RefCell<Vec<(f64, JobOutcome)>>>;

    fn finish_recorder() -> (FinishLog, impl Fn(&FinishLog) -> DoneFn) {
        let log: FinishLog = Rc::new(RefCell::new(Vec::new()));
        let mk = |log: &FinishLog| -> DoneFn {
            let log = log.clone();
            Box::new(move |sim: &mut Sim, oc| {
                log.borrow_mut().push((sim.now().as_secs_f64(), oc));
            })
        };
        (log, mk)
    }

    #[test]
    fn job_runs_and_completes() {
        let mut sim = Sim::new(0);
        let sched = ClusterScheduler::new("c", 2, 4, SchedPolicy::Fcfs);
        let done_at = Rc::new(Cell::new(0.0));
        let d = done_at.clone();
        ClusterScheduler::submit(&sched, &mut sim, req(4, 100, 30), move |sim, oc| {
            assert_eq!(oc, JobOutcome::Completed);
            d.set(sim.now().as_secs_f64());
        });
        sim.run();
        assert_eq!(done_at.get(), 30.0);
        assert_eq!(sched.borrow().free_cores(), 8);
    }

    #[test]
    fn queue_waits_for_capacity() {
        let mut sim = Sim::new(0);
        let sched = ClusterScheduler::new("c", 1, 4, SchedPolicy::Fcfs);
        let (log, mk) = finish_recorder();
        ClusterScheduler::submit(&sched, &mut sim, req(4, 100, 10), mk(&log));
        ClusterScheduler::submit(&sched, &mut sim, req(4, 100, 5), mk(&log));
        sim.run();
        let l = log.borrow();
        assert_eq!(l[0], (10.0, JobOutcome::Completed));
        assert_eq!(l[1], (15.0, JobOutcome::Completed));
    }

    #[test]
    fn walltime_kill() {
        let mut sim = Sim::new(0);
        let sched = ClusterScheduler::new("c", 1, 1, SchedPolicy::Fcfs);
        let (log, mk) = finish_recorder();
        ClusterScheduler::submit(&sched, &mut sim, req(1, 10, 50), mk(&log));
        sim.run();
        assert_eq!(log.borrow()[0], (10.0, JobOutcome::WalltimeExceeded));
    }

    #[test]
    fn fcfs_head_blocks_small_jobs() {
        let mut sim = Sim::new(0);
        let sched = ClusterScheduler::new("c", 1, 4, SchedPolicy::Fcfs);
        let (log, mk) = finish_recorder();
        // J1 takes all cores for 10s; J2 (big) must wait; J3 (small) must
        // NOT overtake J2 under FCFS.
        ClusterScheduler::submit(&sched, &mut sim, req(4, 100, 10), mk(&log));
        ClusterScheduler::submit(&sched, &mut sim, req(4, 100, 10), mk(&log));
        ClusterScheduler::submit(&sched, &mut sim, req(1, 2, 2), mk(&log));
        sim.run();
        let l = log.borrow();
        // small job finished last-started: starts at t=20 after J2
        assert_eq!(l[2], (22.0, JobOutcome::Completed));
    }

    #[test]
    fn backfill_lets_short_small_job_jump() {
        let mut sim = Sim::new(0);
        let sched = ClusterScheduler::new("c", 1, 4, SchedPolicy::Backfill);
        let (log, mk) = finish_recorder();
        // J1: 3 cores for 10s. J2: 4 cores (waits until t=10). J3: 1 core,
        // 2s — fits in the free core and ends before J2's shadow time.
        ClusterScheduler::submit(&sched, &mut sim, req(3, 10, 10), mk(&log));
        ClusterScheduler::submit(&sched, &mut sim, req(4, 100, 10), mk(&log));
        ClusterScheduler::submit(&sched, &mut sim, req(1, 2, 2), mk(&log));
        sim.run();
        let l = log.borrow();
        let backfilled = l.iter().find(|(_, _)| true).unwrap();
        // J3 completes at t=2 (backfilled immediately)
        assert_eq!(*backfilled, (2.0, JobOutcome::Completed));
        // J2 still starts at t=10, not delayed by J3
        assert!(l.iter().any(|&(t, _)| t == 20.0));
    }

    #[test]
    fn backfill_does_not_delay_head() {
        let mut sim = Sim::new(0);
        let sched = ClusterScheduler::new("c", 1, 4, SchedPolicy::Backfill);
        let (log, mk) = finish_recorder();
        // J1: 3 cores, 10s. J2: 4 cores. J3: 1 core but LONG (30s limit) —
        // would delay J2's start at t=10, so must not backfill.
        ClusterScheduler::submit(&sched, &mut sim, req(3, 10, 10), mk(&log));
        ClusterScheduler::submit(&sched, &mut sim, req(4, 100, 5), mk(&log));
        ClusterScheduler::submit(&sched, &mut sim, req(1, 30, 1), mk(&log));
        sim.run();
        let l = log.borrow();
        // J2 completes at 15 (started exactly at 10, undelayed by J3)
        assert!(l.contains(&(15.0, JobOutcome::Completed)), "{l:?}");
        // J3 had to wait for J2 (which takes the whole machine): done at 16
        assert!(l.contains(&(16.0, JobOutcome::Completed)), "{l:?}");
    }

    #[test]
    fn cancel_pending_job() {
        let mut sim = Sim::new(0);
        let sched = ClusterScheduler::new("c", 1, 1, SchedPolicy::Fcfs);
        let (log, mk) = finish_recorder();
        ClusterScheduler::submit(&sched, &mut sim, req(1, 100, 50), mk(&log));
        let id2 = ClusterScheduler::submit(&sched, &mut sim, req(1, 100, 50), mk(&log));
        let s2 = sched.clone();
        sim.schedule(Duration::from_secs(5), move |sim| {
            assert!(ClusterScheduler::cancel(&s2, sim, id2));
        });
        sim.run();
        let l = log.borrow();
        assert_eq!(l[0], (5.0, JobOutcome::Cancelled));
        assert_eq!(l[1], (50.0, JobOutcome::Completed));
    }

    #[test]
    fn cancel_running_job_frees_cores() {
        let mut sim = Sim::new(0);
        let sched = ClusterScheduler::new("c", 1, 2, SchedPolicy::Fcfs);
        let (log, mk) = finish_recorder();
        let id = ClusterScheduler::submit(&sched, &mut sim, req(2, 100, 50), mk(&log));
        ClusterScheduler::submit(&sched, &mut sim, req(2, 100, 10), mk(&log));
        let s2 = sched.clone();
        sim.schedule(Duration::from_secs(5), move |sim| {
            ClusterScheduler::cancel(&s2, sim, id);
        });
        sim.run();
        let l = log.borrow();
        assert_eq!(l[0], (5.0, JobOutcome::Cancelled));
        // successor starts at 5, done at 15
        assert_eq!(l[1], (15.0, JobOutcome::Completed));
    }

    #[test]
    fn cancel_unknown_is_false() {
        let mut sim = Sim::new(0);
        let sched = ClusterScheduler::new("c", 1, 1, SchedPolicy::Fcfs);
        assert!(!ClusterScheduler::cancel(
            &sched,
            &mut sim,
            SchedJobId(999)
        ));
    }

    #[test]
    fn kill_running_job_fails_it_and_frees_cores() {
        let mut sim = Sim::new(0);
        let sched = ClusterScheduler::new("c", 1, 2, SchedPolicy::Fcfs);
        let (log, mk) = finish_recorder();
        let id = ClusterScheduler::submit(&sched, &mut sim, req(2, 100, 50), mk(&log));
        ClusterScheduler::submit(&sched, &mut sim, req(2, 100, 10), mk(&log));
        let s2 = sched.clone();
        sim.schedule(Duration::from_secs(5), move |sim| {
            assert!(ClusterScheduler::kill(&s2, sim, id));
            // already gone: a second kill is a no-op
            assert!(!ClusterScheduler::kill(&s2, sim, id));
        });
        sim.run();
        let l = log.borrow();
        // the crash reads as NodeFailure, unlike an operator cancel,
        // and the freed cores let the successor run immediately
        assert_eq!(l[0], (5.0, JobOutcome::NodeFailure));
        assert_eq!(l[1], (15.0, JobOutcome::Completed));
        assert_eq!(sched.borrow().total_cores(), 2, "no capacity was lost");
    }

    #[test]
    fn node_failure_kills_and_shrinks() {
        let mut sim = Sim::new(0);
        let sched = ClusterScheduler::new("c", 2, 2, SchedPolicy::Fcfs);
        let (log, mk) = finish_recorder();
        // spans both nodes
        ClusterScheduler::submit(&sched, &mut sim, req(4, 100, 50), mk(&log));
        let s2 = sched.clone();
        sim.schedule(Duration::from_secs(10), move |sim| {
            ClusterScheduler::fail_node(&s2, sim, 0);
        });
        sim.run();
        assert_eq!(log.borrow()[0], (10.0, JobOutcome::NodeFailure));
        assert_eq!(sched.borrow().total_cores(), 2);
        assert_eq!(sched.borrow().free_cores(), 2);
    }

    #[test]
    fn restore_node_resumes_scheduling() {
        let mut sim = Sim::new(0);
        let sched = ClusterScheduler::new("c", 1, 2, SchedPolicy::Fcfs);
        let (log, mk) = finish_recorder();
        let s2 = sched.clone();
        sim.schedule(Duration::ZERO, move |sim| {
            ClusterScheduler::fail_node(&s2, sim, 0);
        });
        let s3 = sched.clone();
        let mk_cb = mk(&log);
        sim.schedule(Duration::from_secs(1), move |sim| {
            ClusterScheduler::submit(&s3, sim, req(2, 100, 5), move |sim, oc| {
                mk_cb(sim, oc)
            });
        });
        let s4 = sched.clone();
        sim.schedule(Duration::from_secs(10), move |sim| {
            ClusterScheduler::restore_node(&s4, sim, 0);
        });
        sim.run();
        assert_eq!(log.borrow()[0], (15.0, JobOutcome::Completed));
    }

    #[test]
    fn never_oversubscribes() {
        let mut sim = Sim::new(7);
        let sched = ClusterScheduler::new("c", 4, 8, SchedPolicy::Backfill);
        for i in 0..50u64 {
            let cores = 1 + (i % 8) as u32;
            let sc = sched.clone();
            sim.schedule(Duration::from_secs(i), move |sim| {
                ClusterScheduler::submit(
                    &sc,
                    sim,
                    req(cores, 20 + cores as u64, 5 + (cores as u64) * 2),
                    |_, _| {},
                );
            });
        }
        // Invariant checked continuously by sampling
        for t in 0..200u64 {
            let sc = sched.clone();
            sim.schedule(Duration::from_secs(t), move |_| {
                let s = sc.borrow();
                assert!(s.free_cores() <= s.total_cores());
                let used: u32 = s.total_cores() - s.free_cores();
                assert_eq!(used, s.used_cores);
            });
        }
        sim.run();
        assert_eq!(sched.borrow().running_count(), 0);
        assert_eq!(sched.borrow().queue_len(), 0);
    }

    #[test]
    fn estimate_wait_zero_when_free() {
        let sched = ClusterScheduler::new("c", 1, 4, SchedPolicy::Fcfs);
        assert_eq!(
            sched.borrow().estimate_wait(SimTime::ZERO, 2),
            Duration::ZERO
        );
    }

    #[test]
    fn estimate_wait_tracks_running_limits() {
        let mut sim = Sim::new(0);
        let sched = ClusterScheduler::new("c", 1, 4, SchedPolicy::Fcfs);
        ClusterScheduler::submit(&sched, &mut sim, req(4, 100, 100), |_, _| {});
        sim.run_until(SimTime::from_secs(1));
        let w = sched.borrow().estimate_wait(sim.now(), 2);
        assert_eq!(w, Duration::from_secs(99));
    }

    #[test]
    fn estimate_wait_infinite_for_oversized() {
        let sched = ClusterScheduler::new("c", 1, 4, SchedPolicy::Fcfs);
        assert_eq!(
            sched.borrow().estimate_wait(SimTime::ZERO, 100),
            Duration::MAX
        );
    }

    #[test]
    fn core_seconds_metric_accumulates() {
        let mut sim = Sim::new(0);
        let sched = ClusterScheduler::new("site0", 1, 4, SchedPolicy::Fcfs);
        ClusterScheduler::submit(&sched, &mut sim, req(2, 100, 10), |_, _| {});
        sim.run();
        let total = sim.recorder_ref().total("site0.core_seconds");
        assert!((total - 20.0).abs() < 1e-6, "core-seconds {total}");
    }
}
