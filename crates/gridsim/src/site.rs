//! A supercomputing centre: cluster + batch queue + storage + WAN links.
//!
//! Each [`GridSite`] bundles what the middleware sees of one TeraGrid
//! centre: a [`ClusterScheduler`] behind a [`Gatekeeper`]
//! (`crate::gram::Gatekeeper`), a GridFTP-like [`StorageService`], and the
//! WAN path from the access layer (the Cyberaide appliance) to the site.
//! The WAN bandwidth is the paper's dominant bottleneck: Figure 7 measures
//! a steady 80–90 KB/s to a Grid node.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use simkit::{Duration, Host, HostSpec, Link, Sim, KB};

use crate::error::GridError;
use crate::gram::Gatekeeper;
use crate::scheduler::{ClusterScheduler, SchedPolicy};
use crate::security::CertAuthority;

/// Static description of a site.
#[derive(Clone, Debug)]
pub struct SiteSpec {
    /// Site name (metric prefix and broker key).
    pub name: String,
    /// Number of compute nodes.
    pub nodes: usize,
    /// Cores per node.
    pub cores_per_node: u32,
    /// Batch policy.
    pub policy: SchedPolicy,
    /// Storage capacity in bytes.
    pub storage_capacity: f64,
    /// Maximum walltime the queue accepts.
    pub max_walltime: Duration,
    /// WAN bandwidth from the access layer, bytes/s.
    pub wan_bandwidth_bps: f64,
    /// WAN one-way latency from the access layer.
    pub wan_latency: Duration,
}

impl SiteSpec {
    /// A mid-size centre with the paper's measured WAN characteristics
    /// (~85 KB/s steady transfer rate, wide-area latency).
    pub fn teragrid_like(name: &str, nodes: usize, cores_per_node: u32) -> SiteSpec {
        SiteSpec {
            name: name.to_owned(),
            nodes,
            cores_per_node,
            policy: SchedPolicy::Backfill,
            storage_capacity: 512.0 * 1024.0 * 1024.0 * 1024.0, // 512 GiB scratch
            max_walltime: Duration::from_secs(48 * 3600),
            wan_bandwidth_bps: 85.0 * KB,
            wan_latency: Duration::from_millis(40),
        }
    }
}

/// The modelled WAN path between two sites: there is no dedicated
/// inter-site circuit, so traffic hairpins through the access layer —
/// one-way latency is the *sum* of both sites' access latencies, and the
/// path bandwidth is the *min* of the two access bandwidths. A site paired
/// with itself is a free local hop. Returns `(one_way_latency,
/// bandwidth_bps)`.
pub fn wan_between(a: &SiteSpec, b: &SiteSpec) -> (Duration, f64) {
    if a.name == b.name {
        return (Duration::ZERO, f64::INFINITY);
    }
    (
        a.wan_latency + b.wan_latency,
        a.wan_bandwidth_bps.min(b.wan_bandwidth_bps),
    )
}

/// GridFTP-like storage: logical files on the site's scratch filesystem.
pub struct StorageService {
    site: String,
    files: HashMap<String, f64>,
    capacity: f64,
    used: f64,
}

impl StorageService {
    fn new(site: &str, capacity: f64) -> Self {
        StorageService {
            site: site.to_owned(),
            files: HashMap::new(),
            capacity,
            used: 0.0,
        }
    }

    /// Register a file (capacity check only; disk timing is modelled by the
    /// caller through the site host).
    pub fn put(&mut self, name: &str, bytes: f64) -> Result<(), GridError> {
        let replaced = self.files.get(name).copied().unwrap_or(0.0);
        if self.used - replaced + bytes > self.capacity {
            return Err(GridError::StorageFull {
                site: self.site.clone(),
            });
        }
        self.used += bytes - replaced;
        self.files.insert(name.to_owned(), bytes);
        Ok(())
    }

    /// Size of a stored file.
    pub fn size_of(&self, name: &str) -> Option<f64> {
        self.files.get(name).copied()
    }

    /// Whether `name` is staged.
    pub fn has(&self, name: &str) -> bool {
        self.files.contains_key(name)
    }

    /// Remove a file; returns its size if it existed.
    pub fn delete(&mut self, name: &str) -> Option<f64> {
        let bytes = self.files.remove(name);
        if let Some(b) = bytes {
            self.used -= b;
        }
        bytes
    }

    /// Bytes in use.
    pub fn used(&self) -> f64 {
        self.used
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Number of stored files.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }
}

/// One production-Grid site.
pub struct GridSite {
    spec: SiteSpec,
    host: Rc<Host>,
    scheduler: Rc<RefCell<ClusterScheduler>>,
    storage: Rc<RefCell<StorageService>>,
    gatekeeper: Rc<RefCell<Gatekeeper>>,
    /// access layer → site
    uplink: Rc<Link>,
    /// site → access layer
    downlink: Rc<Link>,
}

impl GridSite {
    /// Build a site and its WAN links from the access-layer host named
    /// `access_host`. `ca` is the Grid's trust root shared by all
    /// gatekeepers.
    pub fn new(spec: SiteSpec, access_host: &str, ca: Rc<RefCell<CertAuthority>>) -> Rc<GridSite> {
        let host = Host::new(&HostSpec::grid_node(&spec.name));
        let scheduler =
            ClusterScheduler::new(&spec.name, spec.nodes, spec.cores_per_node, spec.policy);
        let storage = Rc::new(RefCell::new(StorageService::new(
            &spec.name,
            spec.storage_capacity,
        )));
        let gatekeeper = Gatekeeper::new(
            &spec.name,
            ca,
            Rc::clone(&scheduler),
            Rc::clone(&storage),
            Rc::clone(&host),
            spec.max_walltime,
        );
        let uplink = Link::new(
            &format!("wan.{}.up", spec.name),
            access_host,
            &spec.name,
            spec.wan_bandwidth_bps,
            spec.wan_latency,
        );
        let downlink = Link::new(
            &format!("wan.{}.down", spec.name),
            &spec.name,
            access_host,
            spec.wan_bandwidth_bps,
            spec.wan_latency,
        );
        Rc::new(GridSite {
            spec,
            host,
            scheduler,
            storage,
            gatekeeper,
            uplink,
            downlink,
        })
    }

    /// The site name.
    pub fn name(&self) -> &str {
        &self.spec.name
    }

    /// Static description.
    pub fn spec(&self) -> &SiteSpec {
        &self.spec
    }

    /// The site's batch scheduler.
    pub fn scheduler(&self) -> &Rc<RefCell<ClusterScheduler>> {
        &self.scheduler
    }

    /// The site's storage service.
    pub fn storage(&self) -> &Rc<RefCell<StorageService>> {
        &self.storage
    }

    /// The site's gatekeeper.
    pub fn gatekeeper(&self) -> &Rc<RefCell<Gatekeeper>> {
        &self.gatekeeper
    }

    /// The site's front host (disk/CPU model).
    pub fn host(&self) -> &Rc<Host> {
        &self.host
    }

    /// WAN link access-layer → site.
    pub fn uplink(&self) -> &Rc<Link> {
        &self.uplink
    }

    /// WAN link site → access-layer.
    pub fn downlink(&self) -> &Rc<Link> {
        &self.downlink
    }

    /// Stage a file from the access layer into site storage: WAN transfer,
    /// then a disk write on the site, then registration.
    pub fn stage_in<F>(self: &Rc<Self>, sim: &mut Sim, name: &str, bytes: f64, done: F)
    where
        F: FnOnce(&mut Sim, Result<(), GridError>) + 'static,
    {
        let site = Rc::clone(self);
        let name = name.to_owned();
        self.uplink.transfer(sim, bytes, move |sim| {
            let site2 = Rc::clone(&site);
            let name2 = name.clone();
            site.host.write_disk(sim, bytes, move |sim| {
                let res = site2.storage.borrow_mut().put(&name2, bytes);
                done(sim, res);
            });
        });
    }

    /// Fetch a stored file back to the access layer: site disk read, then
    /// WAN transfer down. `done` receives the file size, or `None` if the
    /// file does not exist (the paper's *tentative* output polling relies
    /// on exactly this "not there yet" answer).
    pub fn fetch<F>(self: &Rc<Self>, sim: &mut Sim, name: &str, done: F)
    where
        F: FnOnce(&mut Sim, Option<f64>) + 'static,
    {
        let bytes = self.storage.borrow().size_of(name);
        match bytes {
            None => {
                // A metadata-only "no such file" reply still costs a WAN
                // round trip worth of latency.
                let delay = self.downlink.latency() + self.uplink.latency();
                sim.schedule(delay, move |sim| done(sim, None));
            }
            Some(bytes) => {
                let site = Rc::clone(self);
                self.host.read_disk(sim, bytes, move |sim| {
                    site.downlink.transfer(sim, bytes, move |sim| {
                        done(sim, Some(bytes));
                    });
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::MB;
    use std::cell::Cell;

    fn ca() -> Rc<RefCell<CertAuthority>> {
        Rc::new(RefCell::new(CertAuthority::new("/CN=TestCA", 1)))
    }

    fn small_site() -> SiteSpec {
        SiteSpec {
            storage_capacity: 10.0 * MB,
            ..SiteSpec::teragrid_like("siteA", 2, 4)
        }
    }

    #[test]
    fn storage_put_get_delete() {
        let mut s = StorageService::new("x", 100.0);
        s.put("a", 40.0).unwrap();
        s.put("b", 60.0).unwrap();
        assert_eq!(s.size_of("a"), Some(40.0));
        assert!(s.has("b"));
        assert_eq!(s.used(), 100.0);
        assert_eq!(s.file_count(), 2);
        assert_eq!(
            s.put("c", 1.0),
            Err(GridError::StorageFull { site: "x".into() })
        );
        assert_eq!(s.delete("a"), Some(40.0));
        assert_eq!(s.used(), 60.0);
        assert!(s.put("c", 40.0).is_ok());
    }

    #[test]
    fn storage_replace_accounts_correctly() {
        let mut s = StorageService::new("x", 100.0);
        s.put("a", 80.0).unwrap();
        // replacing with a smaller file frees space
        s.put("a", 10.0).unwrap();
        assert_eq!(s.used(), 10.0);
        s.put("b", 90.0).unwrap();
        assert_eq!(s.used(), 100.0);
    }

    #[test]
    fn stage_in_takes_wan_time() {
        let mut sim = Sim::new(0);
        let site = GridSite::new(small_site(), "appliance", ca());
        let at = Rc::new(Cell::new(-1.0));
        let at2 = at.clone();
        site.stage_in(&mut sim, "exe", 5.0 * MB, move |sim, res| {
            res.unwrap();
            at2.set(sim.now().as_secs_f64());
        });
        sim.run();
        // 5 MB / 85 KB/s ≈ 60 s, the Figure 7 observation
        assert!(at.get() > 58.0 && at.get() < 65.0, "staged at {}", at.get());
        assert!(site.storage().borrow().has("exe"));
    }

    #[test]
    fn stage_in_surfaces_storage_full() {
        let mut sim = Sim::new(0);
        let site = GridSite::new(small_site(), "appliance", ca());
        let err = Rc::new(Cell::new(false));
        let e2 = err.clone();
        site.stage_in(&mut sim, "big", 11.0 * MB, move |_, res| {
            e2.set(matches!(res, Err(GridError::StorageFull { .. })));
        });
        sim.run();
        assert!(err.get());
    }

    #[test]
    fn fetch_missing_file_is_fast_none() {
        let mut sim = Sim::new(0);
        let site = GridSite::new(small_site(), "appliance", ca());
        let got = Rc::new(Cell::new(Some(1.0)));
        let g2 = got.clone();
        let at = Rc::new(Cell::new(-1.0));
        let at2 = at.clone();
        site.fetch(&mut sim, "nope", move |sim, r| {
            g2.set(r);
            at2.set(sim.now().as_secs_f64());
        });
        sim.run();
        assert_eq!(got.get(), None);
        // only latency, no bandwidth cost
        assert!(at.get() < 0.2, "{}", at.get());
    }

    #[test]
    fn fetch_existing_file_pays_bandwidth() {
        let mut sim = Sim::new(0);
        let site = GridSite::new(small_site(), "appliance", ca());
        site.storage().borrow_mut().put("out", 850.0 * KB).unwrap();
        let at = Rc::new(Cell::new(-1.0));
        let at2 = at.clone();
        site.fetch(&mut sim, "out", move |sim, r| {
            assert_eq!(r, Some(850.0 * KB));
            at2.set(sim.now().as_secs_f64());
        });
        sim.run();
        assert!(at.get() > 9.5 && at.get() < 11.0, "{}", at.get());
    }

    #[test]
    fn wan_between_sums_latency_and_mins_bandwidth() {
        let mut a = SiteSpec::teragrid_like("east", 2, 4);
        a.wan_latency = Duration::from_millis(30);
        a.wan_bandwidth_bps = 100.0 * KB;
        let mut b = SiteSpec::teragrid_like("west", 2, 4);
        b.wan_latency = Duration::from_millis(55);
        b.wan_bandwidth_bps = 85.0 * KB;
        let (lat, bw) = wan_between(&a, &b);
        assert_eq!(lat, Duration::from_millis(85));
        assert_eq!(bw, 85.0 * KB);
        // symmetric
        assert_eq!(wan_between(&b, &a), (lat, bw));
        // self-pair is a free local hop
        let (l0, bw0) = wan_between(&a, &a);
        assert!(l0.is_zero());
        assert!(bw0.is_infinite());
    }

    #[test]
    fn metrics_mirror_appliance_nic() {
        let mut sim = Sim::new(0);
        let site = GridSite::new(small_site(), "appliance", ca());
        site.stage_in(&mut sim, "exe", 1.0 * MB, |_, r| r.unwrap());
        sim.run();
        let r = sim.recorder_ref();
        assert!((r.total("appliance.net.out.bytes") - MB).abs() < 1.0);
        assert!((r.total("siteA.net.in.bytes") - MB).abs() < 1.0);
        assert!((r.total("siteA.disk.write.bytes") - MB).abs() < 1.0);
    }
}
