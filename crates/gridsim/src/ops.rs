//! Operational events on a production Grid: maintenance windows.
//!
//! Production Grids drain and service their machines on a schedule; users
//! see it as "gatekeeper not accepting" followed by node unavailability.
//! [`Maintenance`] scripts that sequence onto a site: at `drain_at` the
//! gatekeeper stops accepting submissions; at `start` the nodes go down
//! (running jobs fail, as real PM windows killed stragglers); at `end`
//! everything returns. Combined with the middleware's retry extension this
//! reproduces the operational reality onServe would have faced on
//! TeraGrid.

use std::rc::Rc;

use simkit::{Sim, SimTime};

use crate::scheduler::ClusterScheduler;
use crate::site::GridSite;

/// One scheduled maintenance window for a site.
#[derive(Clone, Copy, Debug)]
pub struct Maintenance {
    /// Stop accepting new submissions at this instant (the drain).
    pub drain_at: SimTime,
    /// Take the nodes down at this instant (jobs still running fail).
    pub start: SimTime,
    /// Bring everything back at this instant.
    pub end: SimTime,
}

impl Maintenance {
    /// A window draining `drain_secs` before `start`, lasting until `end`.
    pub fn window(start: SimTime, end: SimTime, drain_secs: u64) -> Maintenance {
        assert!(start < end, "maintenance must end after it starts");
        Maintenance {
            drain_at: SimTime::from_ticks(
                start
                    .ticks()
                    .saturating_sub(drain_secs * simkit::time::TICKS_PER_SEC),
            ),
            start,
            end,
        }
    }

    /// Install the window's events on `site`.
    pub fn schedule(&self, sim: &mut Sim, site: &Rc<GridSite>) {
        let m = *self;
        let gk = Rc::clone(site.gatekeeper());
        sim.schedule_at(m.drain_at, move |_| {
            gk.borrow_mut().set_accepting(false);
        });
        let sched = Rc::clone(site.scheduler());
        let nodes = site.spec().nodes;
        sim.schedule_at(m.start, move |sim| {
            for node in 0..nodes {
                ClusterScheduler::fail_node(&sched, sim, node);
            }
        });
        let gk = Rc::clone(site.gatekeeper());
        let sched = Rc::clone(site.scheduler());
        sim.schedule_at(m.end, move |sim| {
            for node in 0..nodes {
                ClusterScheduler::restore_node(&sched, sim, node);
            }
            gk.borrow_mut().set_accepting(true);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gram::{ExecutionModel, Gatekeeper};
    use crate::scheduler::JobOutcome;
    use crate::security::CertAuthority;
    use crate::site::SiteSpec;
    use simkit::Duration;
    use std::cell::{Cell, RefCell};

    fn world() -> (Sim, Rc<GridSite>, crate::security::Credential) {
        let sim = Sim::new(0);
        let ca = Rc::new(RefCell::new(CertAuthority::new("/CN=CA", 1)));
        let cred =
            ca.borrow_mut()
                .issue("/CN=u", SimTime::ZERO, Duration::from_secs(7 * 86400));
        let site = GridSite::new(SiteSpec::teragrid_like("m1", 2, 4), "appliance", ca);
        site.gatekeeper().borrow_mut().grant("/CN=u", "u");
        site.storage().borrow_mut().put("a.exe", 10.0).unwrap();
        (sim, site, cred)
    }

    #[test]
    fn drain_rejects_then_window_kills_then_service_returns() {
        let (mut sim, site, cred) = world();
        Maintenance::window(
            SimTime::from_secs(600),
            SimTime::from_secs(1200),
            120, // drain from t=480
        )
        .schedule(&mut sim, &site);

        // a long job submitted before the drain dies at the window start
        let outcome = Rc::new(Cell::new(None));
        let o2 = outcome.clone();
        let h = Gatekeeper::submit(
            site.gatekeeper(),
            &mut sim,
            &cred.proxy(),
            "&(executable=a.exe)(maxWallTime=120)",
            ExecutionModel {
                actual_runtime: Duration::from_secs(5000),
                output_bytes: 0.0,
            },
        )
        .unwrap();
        let _ = h;
        let gk = Rc::clone(site.gatekeeper());
        let o3 = o2.clone();
        sim.schedule_at(SimTime::from_secs(1300), move |_| {
            o3.set(Some(gk.borrow().poll(h.job).unwrap()));
        });

        // during the drain: submissions rejected
        let cred2 = cred.clone();
        let site2 = Rc::clone(&site);
        let drained_err = Rc::new(Cell::new(false));
        let d2 = drained_err.clone();
        sim.schedule_at(SimTime::from_secs(500), move |sim| {
            let r = Gatekeeper::submit(
                site2.gatekeeper(),
                sim,
                &cred2.proxy(),
                "&(executable=a.exe)(maxWallTime=1)",
                ExecutionModel {
                    actual_runtime: Duration::from_secs(1),
                    output_bytes: 0.0,
                },
            );
            d2.set(matches!(r, Err(crate::GridError::Unavailable(_))));
        });

        // after the window: submissions succeed again, full capacity
        let cred3 = cred.clone();
        let site3 = Rc::clone(&site);
        let recovered = Rc::new(Cell::new(false));
        let r2 = recovered.clone();
        sim.schedule_at(SimTime::from_secs(1400), move |sim| {
            assert_eq!(site3.scheduler().borrow().total_cores(), 8);
            let r = Gatekeeper::submit(
                site3.gatekeeper(),
                sim,
                &cred3.proxy(),
                "&(executable=a.exe)(maxWallTime=1)",
                ExecutionModel {
                    actual_runtime: Duration::from_secs(1),
                    output_bytes: 0.0,
                },
            );
            r2.set(r.is_ok());
        });

        sim.run();
        assert!(drained_err.get(), "drain must reject submissions");
        assert!(recovered.get(), "service must return after the window");
        // the walltime limit was 2 min but the node died at t=600 first...
        // the job started at t=0 with a 120 min walltime: killed by the
        // window, not the limit
        assert_eq!(
            outcome.get(),
            Some(crate::JobState::Done(JobOutcome::NodeFailure))
        );
    }

    #[test]
    fn window_validation() {
        let m = Maintenance::window(SimTime::from_secs(100), SimTime::from_secs(200), 300);
        // drain clamps at t=0 when it would precede the epoch
        assert_eq!(m.drain_at, SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "end after it starts")]
    fn backwards_window_rejected() {
        let _ = Maintenance::window(SimTime::from_secs(200), SimTime::from_secs(100), 0);
    }
}
