//! The job-description language (RSL-like).
//!
//! Production Grids of the paper's era described jobs in Globus RSL — an
//! attribute list like `&(executable=/bin/app)(count=4)(maxWallTime=60)`.
//! The onServe middleware's whole point is *generating* these descriptions
//! from a Web-service invocation ("Job description generation", §VII-B), so
//! the language gets a faithful serializer and parser here.
//!
//! Grammar accepted by [`JobDescription::parse`]:
//!
//! ```text
//! rsl      := '&' relation*
//! relation := '(' name '=' value ')'
//! value    := token* | quoted* | envlist
//! envlist  := ( '(' token token ')' )*          -- for `environment`
//! quoted   := '"' ( [^"] | '""' )* '"'
//! ```

use std::fmt;

use simkit::Duration;

/// A parsed/buildable Grid job description.
#[derive(Clone, Debug, PartialEq)]
pub struct JobDescription {
    /// Path or logical name of the staged executable (required).
    pub executable: String,
    /// Command-line arguments.
    pub arguments: Vec<String>,
    /// Number of cores requested.
    pub count: u32,
    /// Requested walltime limit; jobs running past it are killed.
    pub max_wall_time: Duration,
    /// Target batch queue (site default when `None`).
    pub queue: Option<String>,
    /// Remote working directory.
    pub directory: Option<String>,
    /// File capturing standard output.
    pub stdout: Option<String>,
    /// File capturing standard error.
    pub stderr: Option<String>,
    /// Accounting project.
    pub project: Option<String>,
    /// Environment variables.
    pub environment: Vec<(String, String)>,
    /// Logical file names that must be staged to the site before start.
    pub stage_in: Vec<String>,
    /// Logical file names produced by the job and kept in site storage.
    pub stage_out: Vec<String>,
}

impl JobDescription {
    /// A minimal single-core description for `executable`.
    pub fn new(executable: &str) -> Self {
        JobDescription {
            executable: executable.to_owned(),
            arguments: Vec::new(),
            count: 1,
            max_wall_time: Duration::from_secs(3600),
            queue: None,
            directory: None,
            stdout: None,
            stderr: None,
            project: None,
            environment: Vec::new(),
            stage_in: Vec::new(),
            stage_out: Vec::new(),
        }
    }

    /// Builder: arguments.
    pub fn args<I, S>(mut self, args: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.arguments = args.into_iter().map(Into::into).collect();
        self
    }

    /// Builder: core count.
    pub fn cores(mut self, count: u32) -> Self {
        self.count = count;
        self
    }

    /// Builder: walltime limit.
    pub fn walltime(mut self, limit: Duration) -> Self {
        self.max_wall_time = limit;
        self
    }

    /// Builder: target queue.
    pub fn on_queue(mut self, queue: &str) -> Self {
        self.queue = Some(queue.to_owned());
        self
    }

    /// Builder: stdout capture file.
    pub fn capture_stdout(mut self, file: &str) -> Self {
        self.stdout = Some(file.to_owned());
        self
    }

    /// Builder: add a stage-in dependency.
    pub fn stage_in_file(mut self, name: &str) -> Self {
        self.stage_in.push(name.to_owned());
        self
    }

    /// Builder: add a stage-out product.
    pub fn stage_out_file(mut self, name: &str) -> Self {
        self.stage_out.push(name.to_owned());
        self
    }

    /// Semantic validity check (independent of any site).
    pub fn validate(&self) -> Result<(), String> {
        if self.executable.is_empty() {
            return Err("executable must not be empty".into());
        }
        if self.count == 0 {
            return Err("count must be at least 1".into());
        }
        if self.max_wall_time.is_zero() {
            return Err("maxWallTime must be positive".into());
        }
        Ok(())
    }

    /// Serialize to RSL text.
    pub fn to_rsl(&self) -> String {
        let mut out = String::from("&");
        push_rel(&mut out, "executable", &self.executable);
        if !self.arguments.is_empty() {
            out.push_str("(arguments=");
            for (i, a) in self.arguments.iter().enumerate() {
                if i > 0 {
                    out.push(' ');
                }
                out.push_str(&quote(a));
            }
            out.push(')');
        }
        if self.count != 1 {
            push_rel(&mut out, "count", &self.count.to_string());
        }
        let mins = (self.max_wall_time.as_secs_f64() / 60.0).ceil() as u64;
        push_rel(&mut out, "maxWallTime", &mins.to_string());
        if let Some(q) = &self.queue {
            push_rel(&mut out, "queue", q);
        }
        if let Some(d) = &self.directory {
            push_rel(&mut out, "directory", d);
        }
        if let Some(s) = &self.stdout {
            push_rel(&mut out, "stdout", s);
        }
        if let Some(s) = &self.stderr {
            push_rel(&mut out, "stderr", s);
        }
        if let Some(p) = &self.project {
            push_rel(&mut out, "project", p);
        }
        if !self.environment.is_empty() {
            out.push_str("(environment=");
            for (k, v) in &self.environment {
                out.push('(');
                out.push_str(&quote(k));
                out.push(' ');
                out.push_str(&quote(v));
                out.push(')');
            }
            out.push(')');
        }
        for f in &self.stage_in {
            push_rel(&mut out, "stageIn", f);
        }
        for f in &self.stage_out {
            push_rel(&mut out, "stageOut", f);
        }
        out
    }

    /// Parse RSL text back into a description.
    pub fn parse(text: &str) -> Result<JobDescription, String> {
        let mut p = Parser::new(text);
        p.expect('&')?;
        let mut jd = JobDescription::new("");
        jd.max_wall_time = Duration::from_secs(3600);
        let mut saw_exe = false;
        let mut saw_walltime = false;
        while p.peek() == Some('(') {
            let (name, raw) = p.relation()?;
            match name.as_str() {
                "executable" => {
                    jd.executable = one_token(&raw, "executable")?;
                    saw_exe = true;
                }
                "arguments" => jd.arguments = raw.into_tokens()?,
                "count" => {
                    let t = one_token(&raw, "count")?;
                    jd.count = t.parse::<u32>().map_err(|_| format!("bad count: {t}"))?;
                }
                "maxWallTime" => {
                    let t = one_token(&raw, "maxWallTime")?;
                    let mins: u64 = t.parse().map_err(|_| format!("bad maxWallTime: {t}"))?;
                    jd.max_wall_time = Duration::from_secs(mins * 60);
                    saw_walltime = true;
                }
                "queue" => jd.queue = Some(one_token(&raw, "queue")?),
                "directory" => jd.directory = Some(one_token(&raw, "directory")?),
                "stdout" => jd.stdout = Some(one_token(&raw, "stdout")?),
                "stderr" => jd.stderr = Some(one_token(&raw, "stderr")?),
                "project" => jd.project = Some(one_token(&raw, "project")?),
                "environment" => jd.environment = raw.into_pairs()?,
                "stageIn" => jd.stage_in.push(one_token(&raw, "stageIn")?),
                "stageOut" => jd.stage_out.push(one_token(&raw, "stageOut")?),
                other => return Err(format!("unknown attribute: {other}")),
            }
        }
        p.skip_ws();
        if !p.at_end() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        if !saw_exe {
            return Err("missing executable".into());
        }
        let _ = saw_walltime; // optional; default stands
        jd.validate()?;
        Ok(jd)
    }
}

impl fmt::Display for JobDescription {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_rsl())
    }
}

fn push_rel(out: &mut String, name: &str, value: &str) {
    out.push('(');
    out.push_str(name);
    out.push('=');
    out.push_str(&quote(value));
    out.push(')');
}

/// Quote a value if it contains RSL metacharacters; `"` doubles inside
/// quotes.
fn quote(value: &str) -> String {
    let needs = value.is_empty()
        || value
            .chars()
            .any(|c| c.is_whitespace() || matches!(c, '(' | ')' | '=' | '&' | '"'));
    if !needs {
        return value.to_owned();
    }
    let mut s = String::with_capacity(value.len() + 2);
    s.push('"');
    for c in value.chars() {
        if c == '"' {
            s.push('"');
        }
        s.push(c);
    }
    s.push('"');
    s
}

/// Raw right-hand side of a relation: a mix of bare/quoted tokens and
/// parenthesized pairs, preserved until the attribute tells us the shape.
enum RawValue {
    Tokens(Vec<String>),
    Pairs(Vec<(String, String)>),
}

impl RawValue {
    fn into_tokens(self) -> Result<Vec<String>, String> {
        match self {
            RawValue::Tokens(t) => Ok(t),
            RawValue::Pairs(_) => Err("expected tokens, found pair list".into()),
        }
    }

    fn into_pairs(self) -> Result<Vec<(String, String)>, String> {
        match self {
            RawValue::Pairs(p) => Ok(p),
            RawValue::Tokens(t) if t.is_empty() => Ok(Vec::new()),
            RawValue::Tokens(_) => Err("expected pair list, found tokens".into()),
        }
    }
}

fn one_token(raw: &RawValue, attr: &str) -> Result<String, String> {
    match raw {
        RawValue::Tokens(t) if t.len() == 1 => Ok(t[0].clone()),
        RawValue::Tokens(t) => Err(format!("{attr}: expected 1 token, found {}", t.len())),
        RawValue::Pairs(_) => Err(format!("{attr}: expected token, found pair list")),
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.bytes.get(self.pos).map(|&b| b as char)
    }

    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&(c as u8)) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{c}' at byte {}", self.pos))
        }
    }

    /// Parse `(name=value)` where value is tokens or a pair list.
    fn relation(&mut self) -> Result<(String, RawValue), String> {
        self.expect('(')?;
        let name = self.bare_token()?;
        self.expect('=')?;
        self.skip_ws();
        let value = if self.bytes.get(self.pos) == Some(&b'(') {
            let mut pairs = Vec::new();
            while self.peek() == Some('(') {
                self.expect('(')?;
                let k = self.any_token()?;
                let v = self.any_token()?;
                self.expect(')')?;
                pairs.push((k, v));
            }
            RawValue::Pairs(pairs)
        } else {
            let mut toks = Vec::new();
            while !matches!(self.peek(), Some(')') | None) {
                toks.push(self.any_token()?);
            }
            RawValue::Tokens(toks)
        };
        self.expect(')')?;
        Ok((name, value))
    }

    /// Unquoted identifier (attribute names).
    fn bare_token(&mut self) -> Result<String, String> {
        self.skip_ws();
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(|&b| {
            !b.is_ascii_whitespace() && !matches!(b, b'(' | b')' | b'=' | b'"' | b'&')
        }) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(format!("expected token at byte {}", self.pos));
        }
        Ok(String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned())
    }

    /// Bare or quoted token.
    fn any_token(&mut self) -> Result<String, String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'"') {
            self.pos += 1;
            let mut out = String::new();
            loop {
                match self.bytes.get(self.pos) {
                    Some(&b'"') => {
                        if self.bytes.get(self.pos + 1) == Some(&b'"') {
                            out.push('"');
                            self.pos += 2;
                        } else {
                            self.pos += 1;
                            return Ok(out);
                        }
                    }
                    Some(&b) => {
                        // Re-decode UTF-8 sequences byte-wise.
                        let remaining = &self.bytes[self.pos..];
                        let s = std::str::from_utf8(remaining)
                            .map_err(|_| "invalid UTF-8 in quoted token".to_string())?;
                        let ch = s.chars().next().expect("non-empty");
                        let _ = b;
                        out.push(ch);
                        self.pos += ch.len_utf8();
                    }
                    None => return Err("unterminated quote".into()),
                }
            }
        } else {
            self.bare_token()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_desc() -> JobDescription {
        let mut jd = JobDescription::new("/apps/solver")
            .args(["--grid", "100 x 100", "--eps=1e-6"])
            .cores(16)
            .walltime(Duration::from_secs(7200))
            .on_queue("normal")
            .capture_stdout("solver.out")
            .stage_in_file("mesh.dat")
            .stage_out_file("result.h5");
        jd.environment = vec![
            ("OMP_NUM_THREADS".into(), "16".into()),
            ("MODE".into(), "fast run".into()),
        ];
        jd.project = Some("TG-ABC123".into());
        jd.directory = Some("/scratch/u1".into());
        jd.stderr = Some("solver.err".into());
        jd
    }

    #[test]
    fn roundtrip_full() {
        let jd = full_desc();
        let text = jd.to_rsl();
        let parsed = JobDescription::parse(&text).expect("parse");
        assert_eq!(parsed, jd);
    }

    #[test]
    fn roundtrip_minimal() {
        let jd = JobDescription::new("a.out");
        let parsed = JobDescription::parse(&jd.to_rsl()).unwrap();
        assert_eq!(parsed, jd);
    }

    #[test]
    fn serialized_shape_looks_like_rsl() {
        let text = JobDescription::new("/bin/app").cores(4).to_rsl();
        assert!(text.starts_with("&(executable=/bin/app)"), "{text}");
        assert!(text.contains("(count=4)"));
        assert!(text.contains("(maxWallTime=60)"));
    }

    #[test]
    fn quoting_handles_spaces_parens_and_quotes() {
        let jd = JobDescription::new("/bin/echo").args(["hello world", "(x=1)", "say \"hi\""]);
        let parsed = JobDescription::parse(&jd.to_rsl()).unwrap();
        assert_eq!(parsed.arguments, jd.arguments);
    }

    #[test]
    fn parse_hand_written_rsl() {
        let jd = JobDescription::parse(
            "& (executable = /bin/date) (count = 2) (maxWallTime = 5) (queue = fast)",
        )
        .unwrap();
        assert_eq!(jd.executable, "/bin/date");
        assert_eq!(jd.count, 2);
        assert_eq!(jd.max_wall_time, Duration::from_secs(300));
        assert_eq!(jd.queue.as_deref(), Some("fast"));
    }

    #[test]
    fn missing_executable_rejected() {
        let err = JobDescription::parse("&(count=1)").unwrap_err();
        assert!(err.contains("executable"), "{err}");
    }

    #[test]
    fn bad_count_rejected() {
        assert!(JobDescription::parse("&(executable=a)(count=zero)").is_err());
        assert!(JobDescription::parse("&(executable=a)(count=0)").is_err());
    }

    #[test]
    fn unknown_attribute_rejected() {
        let err = JobDescription::parse("&(executable=a)(flavour=vanilla)").unwrap_err();
        assert!(err.contains("unknown attribute"), "{err}");
    }

    #[test]
    fn trailing_garbage_rejected() {
        let err = JobDescription::parse("&(executable=a) garbage").unwrap_err();
        assert!(err.contains("trailing"), "{err}");
    }

    #[test]
    fn unterminated_quote_rejected() {
        assert!(JobDescription::parse("&(executable=\"a)").is_err());
    }

    #[test]
    fn environment_pairs_roundtrip() {
        let mut jd = JobDescription::new("x");
        jd.environment = vec![("A".into(), "1".into()), ("B".into(), "two words".into())];
        let parsed = JobDescription::parse(&jd.to_rsl()).unwrap();
        assert_eq!(parsed.environment, jd.environment);
    }

    #[test]
    fn empty_argument_preserved() {
        let jd = JobDescription::new("x").args([""]);
        let parsed = JobDescription::parse(&jd.to_rsl()).unwrap();
        assert_eq!(parsed.arguments, vec![String::new()]);
    }

    #[test]
    fn walltime_rounds_up_to_minutes() {
        let jd = JobDescription::new("x").walltime(Duration::from_secs(90));
        assert!(jd.to_rsl().contains("(maxWallTime=2)"));
    }

    #[test]
    fn validate_rejects_degenerate() {
        assert!(JobDescription::new("").validate().is_err());
        assert!(JobDescription::new("a").cores(0).validate().is_err());
        assert!(JobDescription::new("a")
            .walltime(Duration::ZERO)
            .validate()
            .is_err());
    }

    #[test]
    fn display_matches_to_rsl() {
        let jd = JobDescription::new("a.out");
        assert_eq!(format!("{jd}"), jd.to_rsl());
    }

    #[test]
    fn unicode_in_quoted_values() {
        let jd = JobDescription::new("x").args(["héllo wörld", "日本語"]);
        let parsed = JobDescription::parse(&jd.to_rsl()).unwrap();
        assert_eq!(parsed.arguments, jd.arguments);
    }
}
