#![warn(missing_docs)]

//! # gridsim — a production-Grid simulator
//!
//! The paper deploys Cyberaide onServe against **TeraGrid**, a production
//! Grid of eleven supercomputing centres accessed through rigid interfaces:
//! GRAM-style job submission, x.509 proxy security, and GridFTP staging.
//! None of that infrastructure exists anymore, so this crate rebuilds the
//! *Job-Submission-Execution* (JSE) substrate as a deterministic simulation
//! on the [`simkit`] kernel:
//!
//! * [`rsl`] — the job-description language (an RSL-like attribute list)
//!   with a full serializer/parser; this is what the onServe middleware
//!   generates when it translates a SaaS invocation into a Grid job.
//! * [`security`] — simulated x.509 certificate chains, delegation-limited
//!   proxy certificates, and a MyProxy-style online credential repository.
//!   No real cryptography: certificates carry fingerprints, and validation
//!   preserves the *logic* (trust roots, expiry, delegation depth,
//!   revocation) that the middleware has to handle.
//! * [`scheduler`] — space-shared batch scheduling over a cluster's cores:
//!   FCFS and EASY-backfill policies, walltime enforcement, node failure
//!   injection.
//! * [`site`] — a supercomputing centre: a cluster + batch queue + a
//!   GridFTP-like storage service reachable over a [`simkit::Link`].
//! * [`gram`] — the gatekeeper protocol: authenticated submission, status
//!   polling, cancellation; exactly the rigid interface the paper says
//!   production Grids force on users.
//! * [`grid`] — the whole production Grid: many sites, an information
//!   service, a resource broker, and a background-workload generator that
//!   keeps queues realistically busy ([`workload`]).
//! * [`trace`] — Standard Workload Format (SWF) import/export and trace
//!   replay, so archived grid workloads drive the scheduler too.
//! * [`ops`] — operational events: scheduled maintenance windows
//!   (drain → node outage → restore).
//!
//! Everything is driven by `simkit` events; nothing here does real I/O.

pub mod error;
pub mod gram;
pub mod grid;
pub mod ops;
pub mod rsl;
pub mod scheduler;
pub mod security;
pub mod site;
pub mod trace;
pub mod workload;

pub use error::GridError;
pub use gram::{Allocation, Gatekeeper, JobHandle, JobOutcome, JobState};
pub use grid::{BrokerPolicy, ProductionGrid, SiteInfo};
pub use ops::Maintenance;
pub use rsl::JobDescription;
pub use scheduler::{ClusterScheduler, SchedPolicy};
pub use security::{CertAuthority, Credential, MyProxyServer, ProxyCert, SecurityError};
pub use site::{wan_between, GridSite, SiteSpec, StorageService};
pub use trace::{TraceJob, WorkloadTrace};
pub use workload::BackgroundLoad;
