//! Simulated Grid security: certificates, proxies, MyProxy.
//!
//! Production Grids are "accessed with strict secure interface, for example,
//! with x.509 Certificates and Proxies" (§II-B). The middleware must obtain
//! a proxy credential (the paper's agent performs "Authentication ...
//! before any use of the Grid is possible", §VII-B) and every gatekeeper
//! validates it. What matters to the middleware is the *protocol logic* —
//! trust roots, expiry, delegation depth, revocation, passphrase checks —
//! not RSA arithmetic, so signatures are simulated with keyed FNV-1a
//! fingerprints. The failure modes are all real and all reachable, which is
//! what the failure-injection tests exercise.

use std::collections::HashMap;
use std::fmt;

use simkit::{Duration, SimTime};

/// Security failures shared by certificates, proxies and MyProxy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SecurityError {
    /// A certificate in the chain is past `not_after`.
    Expired,
    /// A certificate in the chain is before `not_before`.
    NotYetValid,
    /// The end-entity certificate was not issued by a trusted CA.
    UntrustedIssuer,
    /// A fingerprint does not verify against the issuer.
    BadSignature,
    /// The end-entity certificate has been revoked.
    Revoked,
    /// Proxy delegation chain longer than the validator allows.
    DepthExceeded,
    /// Chain is malformed (issuer/subject mismatch, empty, ...).
    BrokenChain,
    /// MyProxy: no credential stored under that user name.
    UnknownUser,
    /// MyProxy: wrong passphrase.
    BadPassphrase,
    /// MyProxy: the stored credential can no longer delegate (expired).
    StoredCredentialExpired,
}

impl fmt::Display for SecurityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SecurityError::Expired => "credential expired",
            SecurityError::NotYetValid => "credential not yet valid",
            SecurityError::UntrustedIssuer => "untrusted issuer",
            SecurityError::BadSignature => "bad signature",
            SecurityError::Revoked => "certificate revoked",
            SecurityError::DepthExceeded => "proxy delegation too deep",
            SecurityError::BrokenChain => "malformed certificate chain",
            SecurityError::UnknownUser => "unknown MyProxy user",
            SecurityError::BadPassphrase => "bad MyProxy passphrase",
            SecurityError::StoredCredentialExpired => "stored credential expired",
        };
        f.write_str(s)
    }
}

impl std::error::Error for SecurityError {}

fn fnv1a(parts: &[&[u8]]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for part in parts {
        for &b in *part {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // separator so ("ab","c") != ("a","bc")
        h ^= 0x1f;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One simulated x.509 certificate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimCert {
    /// Distinguished name of the holder.
    pub subject: String,
    /// Distinguished name of the signer.
    pub issuer: String,
    /// Issuer-unique serial.
    pub serial: u64,
    /// Validity window start.
    pub not_before: SimTime,
    /// Validity window end.
    pub not_after: SimTime,
    /// `true` for proxy certificates.
    pub is_proxy: bool,
    /// Simulated signature (keyed fingerprint over all other fields).
    pub fingerprint: u64,
}

impl SimCert {
    fn payload_hash(&self) -> u64 {
        fnv1a(&[
            self.subject.as_bytes(),
            self.issuer.as_bytes(),
            &self.serial.to_le_bytes(),
            &self.not_before.ticks().to_le_bytes(),
            &self.not_after.ticks().to_le_bytes(),
            &[self.is_proxy as u8],
        ])
    }

    fn sign(&mut self, signer_key: u64) {
        self.fingerprint = self.payload_hash() ^ signer_key.rotate_left(17);
    }

    fn verify(&self, signer_key: u64) -> bool {
        self.fingerprint == self.payload_hash() ^ signer_key.rotate_left(17)
    }

    /// Time-window check at `now`.
    pub fn time_valid(&self, now: SimTime) -> Result<(), SecurityError> {
        if now < self.not_before {
            return Err(SecurityError::NotYetValid);
        }
        if now >= self.not_after {
            return Err(SecurityError::Expired);
        }
        Ok(())
    }
}

/// A certificate authority: issues user certificates, tracks revocations.
pub struct CertAuthority {
    name: String,
    key: u64,
    next_serial: u64,
    revoked: std::collections::HashSet<u64>,
}

impl CertAuthority {
    /// New CA with the given distinguished name; `seed` derives the signing
    /// key.
    pub fn new(name: &str, seed: u64) -> Self {
        CertAuthority {
            name: name.to_owned(),
            key: fnv1a(&[name.as_bytes(), &seed.to_le_bytes()]),
            next_serial: 1,
            revoked: std::collections::HashSet::new(),
        }
    }

    /// The CA's distinguished name (the trust anchor identity).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Issue an end-entity credential for `subject`, valid for `lifetime`
    /// from `now`. The returned [`Credential`] carries the private key and
    /// can delegate proxies.
    pub fn issue(&mut self, subject: &str, now: SimTime, lifetime: Duration) -> Credential {
        let serial = self.next_serial;
        self.next_serial += 1;
        let mut cert = SimCert {
            subject: subject.to_owned(),
            issuer: self.name.clone(),
            serial,
            not_before: now,
            not_after: now + lifetime,
            is_proxy: false,
            fingerprint: 0,
        };
        cert.sign(self.key);
        let secret = fnv1a(&[subject.as_bytes(), &serial.to_le_bytes(), &self.key.to_le_bytes()]);
        Credential {
            chain: vec![cert],
            secret,
        }
    }

    /// Revoke a previously issued certificate by serial.
    pub fn revoke(&mut self, serial: u64) {
        self.revoked.insert(serial);
    }

    /// Whether `serial` is on the revocation list.
    pub fn is_revoked(&self, serial: u64) -> bool {
        self.revoked.contains(&serial)
    }

    fn verify_root(&self, cert: &SimCert) -> Result<(), SecurityError> {
        if cert.issuer != self.name {
            return Err(SecurityError::UntrustedIssuer);
        }
        if !cert.verify(self.key) {
            return Err(SecurityError::BadSignature);
        }
        if self.is_revoked(cert.serial) {
            return Err(SecurityError::Revoked);
        }
        Ok(())
    }
}

/// The public part of a credential: the certificate chain, end-entity
/// certificate first, most recent proxy last.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProxyCert {
    /// EEC first, then each delegation step.
    pub chain: Vec<SimCert>,
}

impl ProxyCert {
    /// The acting identity (subject of the end-entity certificate).
    pub fn identity(&self) -> &str {
        &self.chain[0].subject
    }

    /// Number of delegation steps (0 = bare end-entity certificate).
    pub fn depth(&self) -> usize {
        self.chain.len().saturating_sub(1)
    }

    /// Instant at which the *effective* credential stops being valid (the
    /// minimum `not_after` along the chain).
    pub fn expires_at(&self) -> SimTime {
        self.chain
            .iter()
            .map(|c| c.not_after)
            .min()
            .unwrap_or(SimTime::ZERO)
    }

    /// Validate the chain at `now` against a trust root, enforcing
    /// `max_depth` delegation steps.
    pub fn validate(
        &self,
        trust_root: &CertAuthority,
        now: SimTime,
        max_depth: usize,
    ) -> Result<(), SecurityError> {
        let eec = self.chain.first().ok_or(SecurityError::BrokenChain)?;
        if eec.is_proxy {
            return Err(SecurityError::BrokenChain);
        }
        trust_root.verify_root(eec)?;
        eec.time_valid(now)?;
        if self.depth() > max_depth {
            return Err(SecurityError::DepthExceeded);
        }
        let mut parent = eec;
        let mut parent_key = derive_key_for(eec, trust_root);
        for proxy in &self.chain[1..] {
            if !proxy.is_proxy {
                return Err(SecurityError::BrokenChain);
            }
            if proxy.issuer != parent.subject {
                return Err(SecurityError::BrokenChain);
            }
            if !proxy.verify(parent_key) {
                return Err(SecurityError::BadSignature);
            }
            proxy.time_valid(now)?;
            parent_key = proxy_secret(parent_key, proxy.serial);
            parent = proxy;
        }
        Ok(())
    }
}

// The "private key" of an EEC is derivable only with the CA key in this
// simulation; validators hold the CA, which in real PKI corresponds to
// verifying with the *public* key. The indirection keeps forged chains
// failing exactly where they would in reality.
fn derive_key_for(eec: &SimCert, ca: &CertAuthority) -> u64 {
    fnv1a(&[
        eec.subject.as_bytes(),
        &eec.serial.to_le_bytes(),
        &ca.key.to_le_bytes(),
    ])
}

fn proxy_secret(parent_secret: u64, serial: u64) -> u64 {
    fnv1a(&[&parent_secret.to_le_bytes(), &serial.to_le_bytes()])
}

/// A credential as *held* by a party: chain plus the current private key.
#[derive(Clone, Debug)]
pub struct Credential {
    chain: Vec<SimCert>,
    secret: u64,
}

impl Credential {
    /// The public chain (what gets sent to a gatekeeper).
    pub fn proxy(&self) -> ProxyCert {
        ProxyCert {
            chain: self.chain.clone(),
        }
    }

    /// The acting identity.
    pub fn identity(&self) -> &str {
        &self.chain[0].subject
    }

    /// Effective expiry (minimum along the chain).
    pub fn expires_at(&self) -> SimTime {
        self.proxy().expires_at()
    }

    /// Delegate a new proxy valid for `lifetime` from `now` (clamped to the
    /// parent's expiry — a delegated proxy can never outlive its parent).
    pub fn delegate(&self, now: SimTime, lifetime: Duration) -> Credential {
        let parent = self.chain.last().expect("non-empty chain");
        let serial = fnv1a(&[
            &self.secret.to_le_bytes(),
            &now.ticks().to_le_bytes(),
            &(self.chain.len() as u64).to_le_bytes(),
        ]);
        let mut cert = SimCert {
            subject: format!("{}/CN=proxy", parent.subject),
            issuer: parent.subject.clone(),
            serial,
            not_before: now,
            not_after: (now + lifetime).min(self.expires_at()),
            is_proxy: true,
            fingerprint: 0,
        };
        cert.sign(self.secret);
        let mut chain = self.chain.clone();
        chain.push(cert);
        Credential {
            chain,
            secret: proxy_secret(self.secret, serial),
        }
    }
}

/// MyProxy-style online credential repository: users store a long-lived
/// delegated credential under a passphrase; tools later retrieve short
/// proxies from it. This is the "MyProxy" box in the paper's Figure 2.
pub struct MyProxyServer {
    store: HashMap<String, (u64, Credential)>, // user -> (pass hash, credential)
}

impl Default for MyProxyServer {
    fn default() -> Self {
        Self::new()
    }
}

impl MyProxyServer {
    /// Empty repository.
    pub fn new() -> Self {
        MyProxyServer {
            store: HashMap::new(),
        }
    }

    fn pass_hash(user: &str, passphrase: &str) -> u64 {
        fnv1a(&[user.as_bytes(), passphrase.as_bytes()])
    }

    /// Store (replacing) `credential` for `user` under `passphrase`.
    pub fn store(&mut self, user: &str, passphrase: &str, credential: Credential) {
        self.store.insert(
            user.to_owned(),
            (Self::pass_hash(user, passphrase), credential),
        );
    }

    /// Retrieve a fresh proxy of at most `lifetime`, delegated from the
    /// stored credential.
    pub fn retrieve(
        &self,
        user: &str,
        passphrase: &str,
        now: SimTime,
        lifetime: Duration,
    ) -> Result<Credential, SecurityError> {
        let (hash, cred) = self
            .store
            .get(user)
            .ok_or(SecurityError::UnknownUser)?;
        if *hash != Self::pass_hash(user, passphrase) {
            return Err(SecurityError::BadPassphrase);
        }
        if cred.expires_at() <= now {
            return Err(SecurityError::StoredCredentialExpired);
        }
        Ok(cred.delegate(now, lifetime))
    }

    /// Remove a stored credential; returns whether it existed.
    pub fn destroy(&mut self, user: &str) -> bool {
        self.store.remove(user).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hour() -> Duration {
        Duration::from_secs(3600)
    }

    fn setup() -> (CertAuthority, Credential) {
        let mut ca = CertAuthority::new("/C=US/O=SimGrid/CN=CA", 42);
        let cred = ca.issue("/O=SimGrid/CN=alice", SimTime::ZERO, hour().saturating_mul(24));
        (ca, cred)
    }

    #[test]
    fn eec_validates_at_issue_time() {
        let (ca, cred) = setup();
        cred.proxy().validate(&ca, SimTime::from_secs(10), 4).unwrap();
    }

    #[test]
    fn delegated_proxy_validates() {
        let (ca, cred) = setup();
        let p1 = cred.delegate(SimTime::from_secs(60), hour());
        let p2 = p1.delegate(SimTime::from_secs(120), hour());
        p2.proxy().validate(&ca, SimTime::from_secs(300), 4).unwrap();
        assert_eq!(p2.proxy().depth(), 2);
        assert_eq!(p2.identity(), "/O=SimGrid/CN=alice");
    }

    #[test]
    fn proxy_expiry_enforced() {
        let (ca, cred) = setup();
        let p = cred.delegate(SimTime::ZERO, hour());
        let err = p
            .proxy()
            .validate(&ca, SimTime::from_secs(3601), 4)
            .unwrap_err();
        assert_eq!(err, SecurityError::Expired);
    }

    #[test]
    fn proxy_cannot_outlive_parent() {
        let (_, cred) = setup();
        let p = cred.delegate(SimTime::ZERO, Duration::from_secs(100 * 24 * 3600));
        assert_eq!(p.expires_at(), cred.expires_at());
    }

    #[test]
    fn depth_limit_enforced() {
        let (ca, cred) = setup();
        let mut c = cred;
        for _ in 0..3 {
            c = c.delegate(SimTime::ZERO, hour());
        }
        assert!(c.proxy().validate(&ca, SimTime::from_secs(1), 3).is_ok());
        assert_eq!(
            c.proxy().validate(&ca, SimTime::from_secs(1), 2),
            Err(SecurityError::DepthExceeded)
        );
    }

    #[test]
    fn untrusted_issuer_rejected() {
        let (_, cred) = setup();
        let other_ca = CertAuthority::new("/CN=EvilCA", 13);
        assert_eq!(
            cred.proxy().validate(&other_ca, SimTime::from_secs(1), 4),
            Err(SecurityError::UntrustedIssuer)
        );
    }

    #[test]
    fn same_name_different_key_fails_signature() {
        let (_, cred) = setup();
        let impostor = CertAuthority::new("/C=US/O=SimGrid/CN=CA", 999);
        assert_eq!(
            cred.proxy().validate(&impostor, SimTime::from_secs(1), 4),
            Err(SecurityError::BadSignature)
        );
    }

    #[test]
    fn revocation_rejected() {
        let (mut ca, cred) = setup();
        ca.revoke(cred.proxy().chain[0].serial);
        assert_eq!(
            cred.proxy().validate(&ca, SimTime::from_secs(1), 4),
            Err(SecurityError::Revoked)
        );
    }

    #[test]
    fn tampered_chain_fails() {
        let (ca, cred) = setup();
        let p = cred.delegate(SimTime::ZERO, hour());
        let mut chain = p.proxy();
        chain.chain[1].subject = "/O=SimGrid/CN=mallory/CN=proxy".into();
        assert!(matches!(
            chain.validate(&ca, SimTime::from_secs(1), 4),
            Err(SecurityError::BadSignature) | Err(SecurityError::BrokenChain)
        ));
    }

    #[test]
    fn chain_order_enforced() {
        let (ca, cred) = setup();
        let p = cred.delegate(SimTime::ZERO, hour());
        let mut bad = p.proxy();
        bad.chain.reverse();
        assert_eq!(
            bad.validate(&ca, SimTime::from_secs(1), 4),
            Err(SecurityError::BrokenChain)
        );
    }

    #[test]
    fn not_yet_valid() {
        let mut ca = CertAuthority::new("/CN=CA", 1);
        let cred = ca.issue("/CN=bob", SimTime::from_secs(100), hour());
        assert_eq!(
            cred.proxy().validate(&ca, SimTime::from_secs(50), 4),
            Err(SecurityError::NotYetValid)
        );
    }

    #[test]
    fn myproxy_roundtrip() {
        let (ca, cred) = setup();
        let mut mp = MyProxyServer::new();
        mp.store("alice", "s3cret", cred.delegate(SimTime::ZERO, hour().saturating_mul(12)));
        let short = mp
            .retrieve("alice", "s3cret", SimTime::from_secs(10), hour())
            .unwrap();
        short.proxy().validate(&ca, SimTime::from_secs(20), 4).unwrap();
        assert_eq!(short.proxy().depth(), 2); // stored delegation + retrieval delegation
    }

    #[test]
    fn myproxy_failures() {
        let (_, cred) = setup();
        let mut mp = MyProxyServer::new();
        mp.store("alice", "pw", cred.delegate(SimTime::ZERO, Duration::from_secs(60)));
        assert_eq!(
            mp.retrieve("bob", "pw", SimTime::ZERO, hour()).unwrap_err(),
            SecurityError::UnknownUser
        );
        assert_eq!(
            mp.retrieve("alice", "wrong", SimTime::ZERO, hour())
                .unwrap_err(),
            SecurityError::BadPassphrase
        );
        assert_eq!(
            mp.retrieve("alice", "pw", SimTime::from_secs(61), hour())
                .unwrap_err(),
            SecurityError::StoredCredentialExpired
        );
        assert!(mp.destroy("alice"));
        assert!(!mp.destroy("alice"));
    }

    #[test]
    fn retrieved_proxy_lifetime_clamped() {
        let (_, cred) = setup();
        let mut mp = MyProxyServer::new();
        mp.store("alice", "pw", cred.delegate(SimTime::ZERO, Duration::from_secs(100)));
        let short = mp.retrieve("alice", "pw", SimTime::from_secs(50), hour()).unwrap();
        assert_eq!(short.expires_at(), SimTime::from_secs(100));
    }
}
