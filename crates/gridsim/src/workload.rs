//! Synthetic background workload for a production Grid.
//!
//! The paper's overhead claim ("the additional overhead added by Cyberaide
//! onServe should be quite small compared to the runtime of a typical
//! executable", §VIII-B) only means something against a Grid that is
//! actually busy: queue wait depends on competing load. This generator
//! keeps a site's batch queue realistically occupied with the classic
//! grid-workload shapes — Poisson arrivals, heavy-tailed (bounded-Pareto)
//! runtimes, power-of-two core requests, and the usual padded walltime
//! estimates.

use std::rc::Rc;

use simkit::{Duration, Sim, SimTime};

use crate::scheduler::{ClusterScheduler, SchedRequest};
use crate::site::GridSite;

/// Parameters of a background stream for one site.
#[derive(Clone, Debug)]
pub struct BackgroundLoad {
    /// Mean time between job arrivals (exponential).
    pub mean_interarrival: Duration,
    /// Shortest background job.
    pub min_runtime: Duration,
    /// Longest background job (Pareto upper bound).
    pub max_runtime: Duration,
    /// Pareto shape for runtimes (≈1.3–2.5 in grid traces).
    pub alpha: f64,
    /// Largest power-of-two core request.
    pub max_cores: u32,
    /// Stop generating arrivals at this instant.
    pub horizon: SimTime,
}

impl BackgroundLoad {
    /// A moderate default: one arrival per ~2 minutes, 1 min–4 h runtimes.
    pub fn moderate(horizon: SimTime) -> BackgroundLoad {
        BackgroundLoad {
            mean_interarrival: Duration::from_secs(120),
            min_runtime: Duration::from_secs(60),
            max_runtime: Duration::from_secs(4 * 3600),
            alpha: 1.5,
            max_cores: 16,
            horizon,
        }
    }

    /// A heavy stream that saturates mid-size sites.
    pub fn heavy(horizon: SimTime) -> BackgroundLoad {
        BackgroundLoad {
            mean_interarrival: Duration::from_secs(20),
            ..BackgroundLoad::moderate(horizon)
        }
    }

    /// Begin the Poisson arrival process against `site`'s scheduler. Jobs
    /// are submitted as local users — they bypass the gatekeeper just as
    /// centre-local submissions did.
    pub fn start(&self, sim: &mut Sim, site: &Rc<GridSite>) {
        let params = self.clone();
        let sched = Rc::clone(site.scheduler());
        Self::schedule_next(sim, params, sched);
    }

    fn schedule_next(
        sim: &mut Sim,
        params: BackgroundLoad,
        sched: Rc<std::cell::RefCell<ClusterScheduler>>,
    ) {
        let gap = Duration::from_secs_f64(sim.rng().exp(params.mean_interarrival.as_secs_f64()));
        let at = sim.now() + gap;
        if at > params.horizon {
            return;
        }
        sim.schedule(gap, move |sim| {
            let runtime = Duration::from_secs_f64(sim.rng().bounded_pareto(
                params.alpha,
                params.min_runtime.as_secs_f64(),
                params.max_runtime.as_secs_f64(),
            ));
            // users pad their estimates by 1.2–3x (and are sometimes wrong)
            let pad = sim.rng().range_f64(1.2, 3.0);
            let limit = Duration::from_secs_f64(runtime.as_secs_f64() * pad);
            let max_pow = params.max_cores.max(1).ilog2();
            let cores = 1u32 << sim.rng().below(u64::from(max_pow) + 1);
            let req = SchedRequest {
                cores,
                walltime_limit: limit,
                actual_runtime: runtime,
            };
            ClusterScheduler::submit(&sched, sim, req, |_, _| {});
            Self::schedule_next(sim, params, sched);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::security::CertAuthority;
    use crate::site::SiteSpec;
    use std::cell::RefCell;

    fn site() -> Rc<GridSite> {
        GridSite::new(
            SiteSpec::teragrid_like("bg", 8, 8),
            "appliance",
            Rc::new(RefCell::new(CertAuthority::new("/CN=CA", 1))),
        )
    }

    #[test]
    fn generates_jobs_until_horizon() {
        let mut sim = Sim::new(42);
        let s = site();
        let horizon = SimTime::from_secs(3600);
        BackgroundLoad::moderate(horizon).start(&mut sim, &s);
        sim.run_until(horizon);
        let core_s = sim.recorder_ref().total("bg.core_seconds");
        assert!(core_s > 0.0, "background load produced no work");
        // roughly 30 arrivals/hour expected; at least a few must have run
        assert!(sim.events_executed() > 30);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut sim = Sim::new(seed);
            let s = site();
            BackgroundLoad::heavy(SimTime::from_secs(1800)).start(&mut sim, &s);
            sim.run_until(SimTime::from_secs(1800));
            (
                sim.events_executed(),
                sim.recorder_ref().total("bg.core_seconds"),
            )
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn heavy_load_builds_a_queue() {
        let mut sim = Sim::new(3);
        let s = site();
        BackgroundLoad::heavy(SimTime::from_secs(7200)).start(&mut sim, &s);
        sim.run_until(SimTime::from_secs(7200));
        let sched = s.scheduler().borrow();
        assert!(
            sched.queue_len() + sched.running_count() > 0,
            "heavy stream should keep the site occupied"
        );
    }

    #[test]
    fn horizon_stops_arrivals() {
        let mut sim = Sim::new(9);
        let s = site();
        BackgroundLoad {
            max_runtime: Duration::from_secs(120),
            ..BackgroundLoad::moderate(SimTime::from_secs(600))
        }
        .start(&mut sim, &s);
        sim.run(); // drains completely: arrivals stop, jobs finish
        assert_eq!(s.scheduler().borrow().queue_len(), 0);
        assert_eq!(s.scheduler().borrow().running_count(), 0);
    }
}
