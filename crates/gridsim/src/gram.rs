//! The gatekeeper: the rigid submission interface of a production Grid.
//!
//! This is the JSE model's front door (the paper's "K-GRAM"): a client
//! presents a proxy credential and an RSL job description; the gatekeeper
//! authenticates, authorizes against the grid-map, validates the request
//! against queue limits and staged files, and hands the job to the batch
//! scheduler. Job state can be polled and jobs cancelled — and nothing
//! else: no service deployment, no virtual machines, exactly the
//! restrictions (§II-C) that motivate onServe's access-layer translation.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use simkit::{Duration, Host, Sim, SimTime};

use crate::error::GridError;
use crate::rsl::JobDescription;
use crate::scheduler::{ClusterScheduler, SchedJobId, SchedRequest};
use crate::security::{CertAuthority, ProxyCert};
use crate::site::StorageService;

pub use crate::scheduler::JobOutcome;

/// Maximum proxy delegation depth a gatekeeper accepts.
pub const MAX_PROXY_DEPTH: usize = 8;

/// Reference to a submitted job.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobHandle {
    /// Site that accepted the job.
    pub site: String,
    /// Gatekeeper-local job number.
    pub job: u64,
    /// Logical name under which the job's output will appear in site
    /// storage.
    pub output_file: String,
}

/// Observable job state (GRAM's PENDING/ACTIVE/DONE collapsed to what the
/// simulation distinguishes).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Waiting in the batch queue.
    Pending,
    /// Executing on allocated cores.
    Active,
    /// Left the system with the given outcome.
    Done(JobOutcome),
}

/// Simulation-side truth about the job's execution (what the real Grid
/// would discover by running the binary).
#[derive(Clone, Copy, Debug)]
pub struct ExecutionModel {
    /// True runtime on the allocated cores.
    pub actual_runtime: Duration,
    /// Bytes of output the job writes on completion.
    pub output_bytes: f64,
}

/// A grid-map entry: the local account plus an optional service-unit
/// allocation (TeraGrid-style: one SU ≈ one core-hour).
struct Account {
    local_user: String,
    /// `None` = unmetered access; `Some` = charged against a budget.
    allocation: Option<Allocation>,
}

/// A service-unit budget.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Allocation {
    /// Core-hours granted.
    pub granted_core_hours: f64,
    /// Core-hours consumed so far (completed + walltime-killed jobs).
    pub used_core_hours: f64,
}

impl Allocation {
    /// Remaining budget.
    pub fn remaining(&self) -> f64 {
        self.granted_core_hours - self.used_core_hours
    }
}

struct JobRecord {
    sched_id: SchedJobId,
    state: JobState,
    exec: ExecutionModel,
    owner_dn: String,
    cores: u32,
    walltime_limit: Duration,
    /// Telemetry span covering the job from acceptance to terminal state.
    span: simkit::SpanId,
}

/// The per-site gatekeeper.
pub struct Gatekeeper {
    site: String,
    trust: Rc<RefCell<CertAuthority>>,
    scheduler: Rc<RefCell<ClusterScheduler>>,
    storage: Rc<RefCell<StorageService>>,
    host: Rc<Host>,
    max_walltime: Duration,
    gridmap: HashMap<String, Account>,
    jobs: HashMap<u64, JobRecord>,
    next_job: u64,
    accepting: bool,
    /// Running totals for the site report.
    submitted: u64,
    rejected: u64,
}

impl Gatekeeper {
    /// Wire up a gatekeeper for one site.
    pub fn new(
        site: &str,
        trust: Rc<RefCell<CertAuthority>>,
        scheduler: Rc<RefCell<ClusterScheduler>>,
        storage: Rc<RefCell<StorageService>>,
        host: Rc<Host>,
        max_walltime: Duration,
    ) -> Rc<RefCell<Gatekeeper>> {
        Rc::new(RefCell::new(Gatekeeper {
            site: site.to_owned(),
            trust,
            scheduler,
            storage,
            host,
            max_walltime,
            gridmap: HashMap::new(),
            jobs: HashMap::new(),
            next_job: 1,
            accepting: true,
            submitted: 0,
            rejected: 0,
        }))
    }

    /// Authorize a distinguished name as `local_user` with unmetered use.
    pub fn grant(&mut self, dn: &str, local_user: &str) {
        self.gridmap.insert(
            dn.to_owned(),
            Account {
                local_user: local_user.to_owned(),
                allocation: None,
            },
        );
    }

    /// Authorize a DN with a TeraGrid-style service-unit allocation; jobs
    /// are charged `cores × hours` on completion, and submissions are
    /// rejected once the projected charge would exceed the remainder.
    pub fn grant_with_allocation(&mut self, dn: &str, local_user: &str, core_hours: f64) {
        self.gridmap.insert(
            dn.to_owned(),
            Account {
                local_user: local_user.to_owned(),
                allocation: Some(Allocation {
                    granted_core_hours: core_hours,
                    used_core_hours: 0.0,
                }),
            },
        );
    }

    /// Current allocation state for a DN (`None` when unmetered/unknown).
    pub fn allocation(&self, dn: &str) -> Option<Allocation> {
        self.gridmap.get(dn).and_then(|a| a.allocation)
    }

    /// Per-DN usage report (only metered accounts), sorted by DN.
    pub fn usage_report(&self) -> Vec<(String, Allocation)> {
        let mut v: Vec<(String, Allocation)> = self
            .gridmap
            .iter()
            .filter_map(|(dn, a)| a.allocation.map(|al| (dn.clone(), al)))
            .collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// Remove a DN from the grid-map.
    pub fn revoke_grant(&mut self, dn: &str) -> bool {
        self.gridmap.remove(dn).is_some()
    }

    /// Drain/outage switch: a non-accepting gatekeeper rejects submissions
    /// with [`GridError::Unavailable`].
    pub fn set_accepting(&mut self, accepting: bool) {
        self.accepting = accepting;
    }

    /// `(submitted, rejected)` request counters.
    pub fn counters(&self) -> (u64, u64) {
        (self.submitted, self.rejected)
    }

    /// Validate and enqueue a job. Synchronous decision (the WAN cost of
    /// carrying the request belongs to the caller); asynchronous execution.
    pub fn submit(
        this: &Rc<RefCell<Self>>,
        sim: &mut Sim,
        proxy: &ProxyCert,
        rsl_text: &str,
        exec: ExecutionModel,
    ) -> Result<JobHandle, GridError> {
        let now = sim.now();
        let span = sim.span_begin("gram.job");
        let (jd, job_no, output_file) = {
            let mut gk = this.borrow_mut();
            match gk.validate(proxy, rsl_text, now) {
                Ok(jd) => {
                    gk.submitted += 1;
                    let job_no = gk.next_job;
                    gk.next_job += 1;
                    let output_file = jd
                        .stdout
                        .clone()
                        .unwrap_or_else(|| format!("job{job_no}.out"));
                    (jd, job_no, output_file)
                }
                Err(e) => {
                    gk.rejected += 1;
                    drop(gk);
                    sim.counter_add("gram.rejected", 1);
                    sim.span_fail(span, &e.to_string());
                    return Err(e);
                }
            }
        };
        sim.counter_add("gram.submitted", 1);
        sim.span_attr(span, "site", this.borrow().site.as_str());
        sim.span_attr(span, "job", job_no);
        sim.span_attr(span, "cores", jd.count);
        let req = SchedRequest {
            cores: jd.count,
            walltime_limit: jd.max_wall_time,
            actual_runtime: exec.actual_runtime,
        };
        let this2 = Rc::clone(this);
        let out_name = output_file.clone();
        let sched = Rc::clone(&this.borrow().scheduler);
        let sched_id = ClusterScheduler::submit(&sched, sim, req, move |sim, outcome| {
            Self::on_job_finished(&this2, sim, job_no, outcome, &out_name, exec.output_bytes);
        });
        this.borrow_mut().jobs.insert(
            job_no,
            JobRecord {
                sched_id,
                state: JobState::Pending,
                exec,
                owner_dn: proxy.identity().to_owned(),
                cores: jd.count,
                walltime_limit: jd.max_wall_time,
                span,
            },
        );
        Ok(JobHandle {
            site: this.borrow().site.clone(),
            job: job_no,
            output_file,
        })
    }

    fn validate(
        &self,
        proxy: &ProxyCert,
        rsl_text: &str,
        now: SimTime,
    ) -> Result<JobDescription, GridError> {
        if !self.accepting {
            return Err(GridError::Unavailable(self.site.clone()));
        }
        proxy.validate(&self.trust.borrow(), now, MAX_PROXY_DEPTH)?;
        let account = self.gridmap.get(proxy.identity()).ok_or_else(|| {
            GridError::Rejected(format!("{} not in grid-map", proxy.identity()))
        })?;
        let _ = &account.local_user;
        let jd = JobDescription::parse(rsl_text).map_err(GridError::BadRsl)?;
        if let Some(alloc) = account.allocation {
            // admission control on the *requested* budget: the walltime
            // limit bounds the worst-case charge
            let projected =
                jd.count as f64 * jd.max_wall_time.as_secs_f64() / 3600.0;
            if projected > alloc.remaining() {
                return Err(GridError::Rejected(format!(
                    "allocation exhausted: {:.1} SU left, job could use {:.1}",
                    alloc.remaining(),
                    projected
                )));
            }
        }
        if let Some(q) = &jd.queue {
            if q != "normal" {
                return Err(GridError::Rejected(format!("unknown queue {q}")));
            }
        }
        if jd.count > self.scheduler.borrow().total_cores() {
            return Err(GridError::Rejected(format!(
                "{} cores exceed machine size",
                jd.count
            )));
        }
        if jd.max_wall_time > self.max_walltime {
            return Err(GridError::Rejected("walltime over queue limit".into()));
        }
        let storage = self.storage.borrow();
        if !storage.has(&jd.executable) {
            return Err(GridError::MissingFile(jd.executable.clone()));
        }
        for f in &jd.stage_in {
            if !storage.has(f) {
                return Err(GridError::MissingFile(f.clone()));
            }
        }
        Ok(jd)
    }

    fn on_job_finished(
        this: &Rc<RefCell<Self>>,
        sim: &mut Sim,
        job_no: u64,
        outcome: JobOutcome,
        output_file: &str,
        output_bytes: f64,
    ) {
        if outcome == JobOutcome::Completed && output_bytes > 0.0 {
            // Model the output landing on the site filesystem before the
            // state flips to Done — a poller can only fetch what exists.
            let this2 = Rc::clone(this);
            let host = Rc::clone(&this.borrow().host);
            let name = output_file.to_owned();
            host.write_disk(sim, output_bytes, move |sim| {
                let storage = Rc::clone(&this2.borrow().storage);
                let _ = storage.borrow_mut().put(&name, output_bytes);
                Self::set_state(&this2, sim, job_no, JobState::Done(outcome));
            });
        } else {
            Self::set_state(this, sim, job_no, JobState::Done(outcome));
        }
    }

    fn set_state(this: &Rc<RefCell<Self>>, sim: &mut Sim, job_no: u64, state: JobState) {
        let mut span_to_close = None;
        {
            let mut gk = this.borrow_mut();
            let billing = match gk.jobs.get_mut(&job_no) {
                None => return,
                Some(rec) => {
                    let first_final = !matches!(rec.state, JobState::Done(_));
                    rec.state = state;
                    if first_final {
                        span_to_close = Some(rec.span);
                    }
                    // charge once, on the job's first terminal state;
                    // failures and cancellations are refunded (TeraGrid
                    // policy)
                    let billed_secs = match state {
                        JobState::Done(JobOutcome::Completed) => {
                            rec.exec.actual_runtime.as_secs_f64()
                        }
                        JobState::Done(JobOutcome::WalltimeExceeded) => {
                            rec.walltime_limit.as_secs_f64()
                        }
                        _ => 0.0,
                    };
                    if first_final && billed_secs > 0.0 {
                        Some((
                            rec.owner_dn.clone(),
                            rec.cores as f64 * billed_secs / 3600.0,
                        ))
                    } else {
                        None
                    }
                }
            };
            if let Some((dn, charge)) = billing {
                if let Some(Account {
                    allocation: Some(alloc),
                    ..
                }) = gk.gridmap.get_mut(&dn)
                {
                    alloc.used_core_hours += charge;
                }
            }
        }
        if let (Some(span), JobState::Done(outcome)) = (span_to_close, state) {
            sim.span_attr(span, "outcome", format!("{outcome:?}"));
            match outcome {
                JobOutcome::Completed => sim.span_end(span),
                other => sim.span_fail(span, &format!("{other:?}")),
            }
        }
    }

    /// Poll a job's state.
    pub fn poll(&self, job_no: u64) -> Result<JobState, GridError> {
        let rec = self.jobs.get(&job_no).ok_or(GridError::NoSuchJob(job_no))?;
        match rec.state {
            JobState::Done(_) => Ok(rec.state),
            _ => {
                if self.scheduler.borrow().is_running(rec.sched_id) {
                    Ok(JobState::Active)
                } else {
                    Ok(JobState::Pending)
                }
            }
        }
    }

    /// Bytes of stdout the job has produced by `now`: jobs spool output at
    /// a constant rate over their runtime, so a *tentative* output request
    /// (the paper's workaround for the missing status interface) sees a
    /// growing partial file while the job runs and the full file once the
    /// output lands in storage. `None` while the job is still queued.
    pub fn stdout_snapshot(&self, job_no: u64, now: SimTime) -> Result<Option<f64>, GridError> {
        let rec = self.jobs.get(&job_no).ok_or(GridError::NoSuchJob(job_no))?;
        match rec.state {
            JobState::Done(JobOutcome::Completed) => Ok(Some(rec.exec.output_bytes)),
            JobState::Done(_) => Ok(None),
            _ => match self.scheduler.borrow().running_since(rec.sched_id) {
                None => Ok(None),
                Some(start) => {
                    let run = rec.exec.actual_runtime.as_secs_f64();
                    let progress = if run <= 0.0 {
                        1.0
                    } else {
                        ((now - start).as_secs_f64() / run).clamp(0.0, 1.0)
                    };
                    Ok(Some(rec.exec.output_bytes * progress))
                }
            },
        }
    }

    /// Cancel a job; the state becomes `Done(Cancelled)` once the scheduler
    /// confirms.
    pub fn cancel(this: &Rc<RefCell<Self>>, sim: &mut Sim, job_no: u64) -> Result<(), GridError> {
        let sched_id = {
            let gk = this.borrow();
            gk.jobs
                .get(&job_no)
                .ok_or(GridError::NoSuchJob(job_no))?
                .sched_id
        };
        let sched = Rc::clone(&this.borrow().scheduler);
        ClusterScheduler::cancel(&sched, sim, sched_id);
        Ok(())
    }

    /// Crash-kill a job (a VM hosting it died): the state becomes
    /// `Done(NodeFailure)` once the scheduler confirms, and the charge is
    /// refunded like any other failure.
    pub fn kill(this: &Rc<RefCell<Self>>, sim: &mut Sim, job_no: u64) -> Result<(), GridError> {
        let sched_id = {
            let gk = this.borrow();
            gk.jobs
                .get(&job_no)
                .ok_or(GridError::NoSuchJob(job_no))?
                .sched_id
        };
        let sched = Rc::clone(&this.borrow().scheduler);
        ClusterScheduler::kill(&sched, sim, sched_id);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::security::Credential;
    use crate::site::{GridSite, SiteSpec};
    use simkit::MB;

    fn setup(sim: &mut Sim) -> (Rc<GridSite>, Credential, Rc<RefCell<CertAuthority>>) {
        let ca = Rc::new(RefCell::new(CertAuthority::new("/CN=GridCA", 5)));
        let cred = ca
            .borrow_mut()
            .issue("/CN=alice", SimTime::ZERO, Duration::from_secs(86400));
        let site = GridSite::new(
            SiteSpec::teragrid_like("tg1", 4, 8),
            "appliance",
            Rc::clone(&ca),
        );
        site.gatekeeper().borrow_mut().grant("/CN=alice", "alice");
        site.storage().borrow_mut().put("app.exe", MB).unwrap();
        let _ = sim;
        (site, cred, ca)
    }

    fn exec(runtime_s: u64, out_bytes: f64) -> ExecutionModel {
        ExecutionModel {
            actual_runtime: Duration::from_secs(runtime_s),
            output_bytes: out_bytes,
        }
    }

    fn rsl(extra: &str) -> String {
        format!("&(executable=app.exe)(maxWallTime=60){extra}")
    }

    #[test]
    fn accepted_job_runs_to_done_with_output() {
        let mut sim = Sim::new(0);
        let (site, cred, _ca) = setup(&mut sim);
        let gk = site.gatekeeper();
        let h = Gatekeeper::submit(
            gk,
            &mut sim,
            &cred.proxy(),
            &rsl(""),
            exec(30, 2048.0),
        )
        .unwrap();
        assert_eq!(h.site, "tg1");
        assert_eq!(gk.borrow().poll(h.job).unwrap(), JobState::Active);
        sim.run();
        assert_eq!(
            gk.borrow().poll(h.job).unwrap(),
            JobState::Done(JobOutcome::Completed)
        );
        assert!(site.storage().borrow().has(&h.output_file));
    }

    #[test]
    fn missing_executable_rejected() {
        let mut sim = Sim::new(0);
        let (site, cred, _ca) = setup(&mut sim);
        let err = Gatekeeper::submit(
            site.gatekeeper(),
            &mut sim,
            &cred.proxy(),
            "&(executable=ghost.exe)(maxWallTime=10)",
            exec(1, 0.0),
        )
        .unwrap_err();
        assert_eq!(err, GridError::MissingFile("ghost.exe".into()));
        assert_eq!(site.gatekeeper().borrow().counters(), (0, 1));
    }

    #[test]
    fn unauthorized_dn_rejected() {
        let mut sim = Sim::new(0);
        let (site, _cred, ca) = setup(&mut sim);
        let mallory =
            ca.borrow_mut()
                .issue("/CN=mallory", SimTime::ZERO, Duration::from_secs(3600));
        let err = Gatekeeper::submit(
            site.gatekeeper(),
            &mut sim,
            &mallory.proxy(),
            &rsl(""),
            exec(1, 0.0),
        )
        .unwrap_err();
        assert!(matches!(err, GridError::Rejected(_)), "{err}");
    }

    #[test]
    fn expired_proxy_rejected() {
        let mut sim = Sim::new(0);
        let (site, cred, _ca) = setup(&mut sim);
        let short = cred.delegate(SimTime::ZERO, Duration::from_secs(10));
        sim.run_until(SimTime::from_secs(60));
        let err = Gatekeeper::submit(
            site.gatekeeper(),
            &mut sim,
            &short.proxy(),
            &rsl(""),
            exec(1, 0.0),
        )
        .unwrap_err();
        assert_eq!(
            err,
            GridError::Security(crate::security::SecurityError::Expired)
        );
    }

    #[test]
    fn queue_limits_enforced() {
        let mut sim = Sim::new(0);
        let (site, cred, _ca) = setup(&mut sim);
        // too many cores (site has 32)
        let err = Gatekeeper::submit(
            site.gatekeeper(),
            &mut sim,
            &cred.proxy(),
            &rsl("(count=64)"),
            exec(1, 0.0),
        )
        .unwrap_err();
        assert!(matches!(err, GridError::Rejected(_)));
        // unknown queue
        let err = Gatekeeper::submit(
            site.gatekeeper(),
            &mut sim,
            &cred.proxy(),
            &rsl("(queue=debug)"),
            exec(1, 0.0),
        )
        .unwrap_err();
        assert!(matches!(err, GridError::Rejected(_)));
        // walltime over limit (49h > 48h)
        let err = Gatekeeper::submit(
            site.gatekeeper(),
            &mut sim,
            &cred.proxy(),
            &rsl("(maxWallTime=2940)").replace("(maxWallTime=60)", ""),
            exec(1, 0.0),
        )
        .unwrap_err();
        assert!(matches!(err, GridError::Rejected(_)));
    }

    #[test]
    fn bad_rsl_surfaces_parse_error() {
        let mut sim = Sim::new(0);
        let (site, cred, _ca) = setup(&mut sim);
        let err = Gatekeeper::submit(
            site.gatekeeper(),
            &mut sim,
            &cred.proxy(),
            "(not rsl",
            exec(1, 0.0),
        )
        .unwrap_err();
        assert!(matches!(err, GridError::BadRsl(_)));
    }

    #[test]
    fn non_accepting_gatekeeper_unavailable() {
        let mut sim = Sim::new(0);
        let (site, cred, _ca) = setup(&mut sim);
        site.gatekeeper().borrow_mut().set_accepting(false);
        let err = Gatekeeper::submit(
            site.gatekeeper(),
            &mut sim,
            &cred.proxy(),
            &rsl(""),
            exec(1, 0.0),
        )
        .unwrap_err();
        assert_eq!(err, GridError::Unavailable("tg1".into()));
    }

    #[test]
    fn poll_unknown_job() {
        let mut sim = Sim::new(0);
        let (site, _cred, _ca) = setup(&mut sim);
        assert_eq!(
            site.gatekeeper().borrow().poll(99),
            Err(GridError::NoSuchJob(99))
        );
    }

    #[test]
    fn walltime_exceeded_reported() {
        let mut sim = Sim::new(0);
        let (site, cred, _ca) = setup(&mut sim);
        let h = Gatekeeper::submit(
            site.gatekeeper(),
            &mut sim,
            &cred.proxy(),
            "&(executable=app.exe)(maxWallTime=1)",
            exec(600, 1024.0),
        )
        .unwrap();
        sim.run();
        assert_eq!(
            site.gatekeeper().borrow().poll(h.job).unwrap(),
            JobState::Done(JobOutcome::WalltimeExceeded)
        );
        // killed jobs produce no output
        assert!(!site.storage().borrow().has(&h.output_file));
    }

    #[test]
    fn cancel_pending_job_reports_cancelled() {
        let mut sim = Sim::new(0);
        let (site, cred, _ca) = setup(&mut sim);
        // fill the machine
        let _h1 = Gatekeeper::submit(
            site.gatekeeper(),
            &mut sim,
            &cred.proxy(),
            &rsl("(count=32)"),
            exec(1000, 0.0),
        )
        .unwrap();
        let h2 = Gatekeeper::submit(
            site.gatekeeper(),
            &mut sim,
            &cred.proxy(),
            &rsl("(count=32)"),
            exec(1000, 0.0),
        )
        .unwrap();
        assert_eq!(site.gatekeeper().borrow().poll(h2.job).unwrap(), JobState::Pending);
        Gatekeeper::cancel(site.gatekeeper(), &mut sim, h2.job).unwrap();
        assert_eq!(
            site.gatekeeper().borrow().poll(h2.job).unwrap(),
            JobState::Done(JobOutcome::Cancelled)
        );
    }

    #[test]
    fn allocation_charges_completed_and_killed_jobs() {
        let mut sim = Sim::new(0);
        let (site, _cred, ca) = setup(&mut sim);
        let bob = ca
            .borrow_mut()
            .issue("/CN=bob", SimTime::ZERO, Duration::from_secs(86400));
        site.gatekeeper()
            .borrow_mut()
            .grant_with_allocation("/CN=bob", "bob", 10.0);
        // completed job: 2 cores x 0.5 h = 1 SU
        Gatekeeper::submit(
            site.gatekeeper(),
            &mut sim,
            &bob.proxy(),
            "&(executable=app.exe)(count=2)(maxWallTime=60)",
            exec(1800, 0.0),
        )
        .unwrap();
        sim.run();
        let alloc = site.gatekeeper().borrow().allocation("/CN=bob").unwrap();
        assert!((alloc.used_core_hours - 1.0).abs() < 1e-9, "{alloc:?}");
        // walltime-killed job billed at the limit: 1 core x 1 h
        Gatekeeper::submit(
            site.gatekeeper(),
            &mut sim,
            &bob.proxy(),
            "&(executable=app.exe)(maxWallTime=60)",
            exec(10_000, 0.0),
        )
        .unwrap();
        sim.run();
        let alloc = site.gatekeeper().borrow().allocation("/CN=bob").unwrap();
        assert!((alloc.used_core_hours - 2.0).abs() < 1e-9, "{alloc:?}");
        let report = site.gatekeeper().borrow().usage_report();
        assert_eq!(report.len(), 1);
        assert_eq!(report[0].0, "/CN=bob");
    }

    #[test]
    fn exhausted_allocation_rejects_submission() {
        let mut sim = Sim::new(0);
        let (site, _cred, ca) = setup(&mut sim);
        let eve = ca
            .borrow_mut()
            .issue("/CN=eve", SimTime::ZERO, Duration::from_secs(86400));
        // grant 1 SU; a 4-core 1-hour job could use 4 SU → rejected upfront
        site.gatekeeper()
            .borrow_mut()
            .grant_with_allocation("/CN=eve", "eve", 1.0);
        let err = Gatekeeper::submit(
            site.gatekeeper(),
            &mut sim,
            &eve.proxy(),
            "&(executable=app.exe)(count=4)(maxWallTime=60)",
            exec(60, 0.0),
        )
        .unwrap_err();
        assert!(
            matches!(&err, GridError::Rejected(m) if m.contains("allocation exhausted")),
            "{err}"
        );
        // a job fitting the budget is accepted
        Gatekeeper::submit(
            site.gatekeeper(),
            &mut sim,
            &eve.proxy(),
            "&(executable=app.exe)(maxWallTime=30)",
            exec(600, 0.0),
        )
        .unwrap();
        sim.run();
    }

    #[test]
    fn cancelled_jobs_are_refunded() {
        let mut sim = Sim::new(0);
        let (site, _cred, ca) = setup(&mut sim);
        let kim = ca
            .borrow_mut()
            .issue("/CN=kim", SimTime::ZERO, Duration::from_secs(86400));
        site.gatekeeper()
            .borrow_mut()
            .grant_with_allocation("/CN=kim", "kim", 5.0);
        let h = Gatekeeper::submit(
            site.gatekeeper(),
            &mut sim,
            &kim.proxy(),
            "&(executable=app.exe)(maxWallTime=60)",
            exec(3000, 0.0),
        )
        .unwrap();
        sim.run_until(SimTime::from_secs(60));
        Gatekeeper::cancel(site.gatekeeper(), &mut sim, h.job).unwrap();
        sim.run();
        let alloc = site.gatekeeper().borrow().allocation("/CN=kim").unwrap();
        assert_eq!(alloc.used_core_hours, 0.0);
    }

    #[test]
    fn crash_killed_job_reports_node_failure_and_is_refunded() {
        let mut sim = Sim::new(0);
        let (site, _cred, ca) = setup(&mut sim);
        let pat = ca
            .borrow_mut()
            .issue("/CN=pat", SimTime::ZERO, Duration::from_secs(86400));
        site.gatekeeper()
            .borrow_mut()
            .grant_with_allocation("/CN=pat", "pat", 5.0);
        let h = Gatekeeper::submit(
            site.gatekeeper(),
            &mut sim,
            &pat.proxy(),
            "&(executable=app.exe)(maxWallTime=60)",
            exec(3000, 4096.0),
        )
        .unwrap();
        sim.run_until(SimTime::from_secs(60));
        assert_eq!(site.gatekeeper().borrow().poll(h.job).unwrap(), JobState::Active);
        Gatekeeper::kill(site.gatekeeper(), &mut sim, h.job).unwrap();
        assert_eq!(
            site.gatekeeper().borrow().poll(h.job).unwrap(),
            JobState::Done(JobOutcome::NodeFailure)
        );
        sim.run();
        // a crash is not the user's fault: charge refunded, no output lands
        let alloc = site.gatekeeper().borrow().allocation("/CN=pat").unwrap();
        assert_eq!(alloc.used_core_hours, 0.0);
        assert!(!site.storage().borrow().has(&h.output_file));
        assert!(matches!(
            Gatekeeper::kill(site.gatekeeper(), &mut sim, 999),
            Err(GridError::NoSuchJob(999))
        ));
    }

    #[test]
    fn pending_active_done_progression() {
        let mut sim = Sim::new(0);
        let (site, cred, _ca) = setup(&mut sim);
        let blocker = Gatekeeper::submit(
            site.gatekeeper(),
            &mut sim,
            &cred.proxy(),
            &rsl("(count=32)"),
            exec(100, 0.0),
        )
        .unwrap();
        let h = Gatekeeper::submit(
            site.gatekeeper(),
            &mut sim,
            &cred.proxy(),
            &rsl("(count=32)"),
            exec(50, 0.0),
        )
        .unwrap();
        assert_eq!(site.gatekeeper().borrow().poll(h.job).unwrap(), JobState::Pending);
        sim.run_until(SimTime::from_secs(110));
        assert_eq!(site.gatekeeper().borrow().poll(h.job).unwrap(), JobState::Active);
        sim.run();
        assert_eq!(
            site.gatekeeper().borrow().poll(h.job).unwrap(),
            JobState::Done(JobOutcome::Completed)
        );
        let _ = blocker;
    }
}
