//! Property-based invariants of the Grid substrate.

use gridsim::scheduler::{ClusterScheduler, SchedPolicy, SchedRequest};
use gridsim::{CertAuthority, JobDescription};
use proptest::prelude::*;
use simkit::{Duration, Sim, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

fn arb_token() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[ -~]{0,24}").expect("regex")
}

fn arb_jd() -> impl Strategy<Value = JobDescription> {
    (
        proptest::string::string_regex("[a-zA-Z0-9_./-]{1,32}").expect("regex"),
        proptest::collection::vec(arb_token(), 0..6),
        1u32..128,
        1u64..2880, // minutes
        proptest::option::of(proptest::string::string_regex("[a-z]{1,10}").expect("regex")),
        proptest::collection::vec(
            (
                proptest::string::string_regex("[A-Z_]{1,12}").expect("regex"),
                arb_token(),
            ),
            0..4,
        ),
    )
        .prop_map(|(exe, args, cores, mins, queue, env)| {
            let mut jd = JobDescription::new(&exe)
                .args(args)
                .cores(cores)
                .walltime(Duration::from_secs(mins * 60));
            jd.queue = queue;
            jd.environment = env;
            jd
        })
}

proptest! {
    /// RSL serialization round-trips for arbitrary job descriptions.
    #[test]
    fn rsl_roundtrip(jd in arb_jd()) {
        let text = jd.to_rsl();
        let parsed = JobDescription::parse(&text);
        prop_assert!(parsed.is_ok(), "parse failed on {}: {:?}", text, parsed.err());
        prop_assert_eq!(parsed.unwrap(), jd);
    }

    /// Under any workload the scheduler never oversubscribes, never loses a
    /// job, and drains completely.
    #[test]
    fn scheduler_conservation(
        jobs in proptest::collection::vec((1u32..12, 1u64..40, 1u64..80, 0u64..50), 1..40),
        backfill in any::<bool>(),
    ) {
        let policy = if backfill { SchedPolicy::Backfill } else { SchedPolicy::Fcfs };
        let mut sim = Sim::new(11);
        let sched = ClusterScheduler::new("p", 2, 6, policy);
        let finished = Rc::new(RefCell::new(0usize));
        let n = jobs.len();
        for (cores, limit, runtime, arrive) in jobs {
            let sc = sched.clone();
            let fin = finished.clone();
            sim.schedule(Duration::from_secs(arrive), move |sim| {
                ClusterScheduler::submit(
                    &sc,
                    sim,
                    SchedRequest {
                        cores,
                        walltime_limit: Duration::from_secs(limit),
                        actual_runtime: Duration::from_secs(runtime),
                    },
                    move |_, _| { *fin.borrow_mut() += 1; },
                );
            });
        }
        // continuous oversubscription probe
        for t in 0..200u64 {
            let sc = sched.clone();
            sim.schedule(Duration::from_secs(t), move |_| {
                let s = sc.borrow();
                assert!(s.free_cores() <= s.total_cores());
            });
        }
        sim.run();
        prop_assert_eq!(*finished.borrow(), n, "all jobs must terminate");
        prop_assert_eq!(sched.borrow().running_count(), 0);
        prop_assert_eq!(sched.borrow().queue_len(), 0);
        prop_assert_eq!(sched.borrow().free_cores(), sched.borrow().total_cores());
    }

    /// A credential chain's validity is an interval: if it validates at two
    /// instants it validates at every instant between them.
    #[test]
    fn proxy_validity_is_an_interval(
        issue_life in 100u64..10_000,
        d1 in 1u64..5_000,
        d2 in 1u64..5_000,
        probes in proptest::collection::vec(0u64..20_000, 1..20),
    ) {
        let mut ca = CertAuthority::new("/CN=CA", 9);
        let cred = ca.issue("/CN=u", SimTime::ZERO, Duration::from_secs(issue_life));
        let p = cred
            .delegate(SimTime::from_secs(5), Duration::from_secs(d1))
            .delegate(SimTime::from_secs(10), Duration::from_secs(d2));
        let chain = p.proxy();
        let valid_at = |t: u64| chain.validate(&ca, SimTime::from_secs(t), 8).is_ok();
        let mut valid_ts: Vec<u64> = probes.iter().copied().filter(|&t| valid_at(t)).collect();
        valid_ts.sort_unstable();
        if let (Some(&lo), Some(&hi)) = (valid_ts.first(), valid_ts.last()) {
            for t in [lo, (lo + hi) / 2, hi] {
                prop_assert!(valid_at(t), "validity not an interval at {}", t);
            }
        }
    }

    /// estimate_wait is zero exactly when the request fits the idle
    /// machine and the queue is empty.
    #[test]
    fn estimate_wait_zero_iff_fits(cores in 1u32..40) {
        let sched = ClusterScheduler::new("w", 2, 8, SchedPolicy::Fcfs);
        let w = sched.borrow().estimate_wait(SimTime::ZERO, cores);
        if cores <= 16 {
            prop_assert_eq!(w, Duration::ZERO);
        } else {
            prop_assert!(w > Duration::ZERO);
        }
    }
}
