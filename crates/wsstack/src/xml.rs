//! A small XML document model: writer and parser.
//!
//! SOAP envelopes, WSDL documents and UDDI payloads are all XML; this
//! module provides exactly the subset they need — elements, attributes,
//! character data, escaping — with a strict parser (mismatched tags and
//! malformed entities are errors, comments and declarations are skipped).
//! Namespaces are carried as plain prefixed names, which is how the 2010
//! toolchain effectively treated them too.

use std::fmt;

/// An XML element: name, attributes, children, optional text.
///
/// Mixed content is restricted to "text or children", which covers every
/// payload in this system and keeps equality/roundtrip semantics simple.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct XmlNode {
    /// Element name (may carry a namespace prefix, e.g. `soap:Envelope`).
    pub name: String,
    /// Attributes in document order.
    pub attrs: Vec<(String, String)>,
    /// Child elements.
    pub children: Vec<XmlNode>,
    /// Character data (ignored when `children` is non-empty).
    pub text: String,
}

impl XmlNode {
    /// New empty element.
    pub fn new(name: &str) -> XmlNode {
        XmlNode {
            name: name.to_owned(),
            attrs: Vec::new(),
            children: Vec::new(),
            text: String::new(),
        }
    }

    /// Builder: element with text content.
    pub fn text_node(name: &str, text: &str) -> XmlNode {
        XmlNode {
            text: text.to_owned(),
            ..XmlNode::new(name)
        }
    }

    /// Builder: add an attribute.
    pub fn attr(mut self, key: &str, value: &str) -> XmlNode {
        self.attrs.push((key.to_owned(), value.to_owned()));
        self
    }

    /// Builder: add a child element.
    pub fn child(mut self, child: XmlNode) -> XmlNode {
        self.children.push(child);
        self
    }

    /// Attribute lookup.
    pub fn get_attr(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// First child with the given name.
    pub fn find(&self, name: &str) -> Option<&XmlNode> {
        self.children.iter().find(|c| c.name == name)
    }

    /// All children with the given name.
    pub fn find_all<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a XmlNode> {
        self.children.iter().filter(move |c| c.name == name)
    }

    /// Descend a path of child names.
    pub fn path(&self, path: &[&str]) -> Option<&XmlNode> {
        let mut cur = self;
        for p in path {
            cur = cur.find(p)?;
        }
        Some(cur)
    }

    /// Serialize to a string (no pretty-printing; sizes feed the transport
    /// model, so determinism matters more than looks).
    pub fn to_xml(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        out.push('<');
        out.push_str(&self.name);
        for (k, v) in &self.attrs {
            out.push(' ');
            out.push_str(k);
            out.push_str("=\"");
            escape_into(v, true, out);
            out.push('"');
        }
        if self.children.is_empty() && self.text.is_empty() {
            out.push_str("/>");
            return;
        }
        out.push('>');
        if self.children.is_empty() {
            escape_into(&self.text, false, out);
        } else {
            for c in &self.children {
                c.write(out);
            }
        }
        out.push_str("</");
        out.push_str(&self.name);
        out.push('>');
    }

    /// Serialized size in bytes — the transport model's payload size.
    pub fn wire_size(&self) -> f64 {
        self.to_xml().len() as f64
    }

    /// Parse a document (exactly one root element; leading declaration,
    /// comments and whitespace are skipped).
    pub fn parse(text: &str) -> Result<XmlNode, XmlError> {
        let mut p = XmlParser {
            b: text.as_bytes(),
            pos: 0,
        };
        p.skip_misc();
        let node = p.element()?;
        p.skip_misc();
        if p.pos != p.b.len() {
            return Err(XmlError::at(p.pos, "trailing content after root"));
        }
        Ok(node)
    }
}

impl fmt::Display for XmlNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_xml())
    }
}

/// Parse failure with byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct XmlError {
    /// Byte offset of the failure.
    pub pos: usize,
    /// What went wrong.
    pub message: String,
}

impl XmlError {
    fn at(pos: usize, message: &str) -> XmlError {
        XmlError {
            pos,
            message: message.to_owned(),
        }
    }
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for XmlError {}

fn escape_into(s: &str, in_attr: bool, out: &mut String) {
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' if in_attr => out.push_str("&quot;"),
            '\'' if in_attr => out.push_str("&apos;"),
            _ => out.push(c),
        }
    }
}

struct XmlParser<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> XmlParser<'a> {
    fn skip_ws(&mut self) {
        while self.b.get(self.pos).is_some_and(|b| b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    /// Skip whitespace, `<?...?>` declarations and `<!--...-->` comments.
    fn skip_misc(&mut self) {
        loop {
            self.skip_ws();
            if self.starts_with("<?") {
                match self.find_from("?>", self.pos) {
                    Some(end) => self.pos = end + 2,
                    None => return,
                }
            } else if self.starts_with("<!--") {
                match self.find_from("-->", self.pos) {
                    Some(end) => self.pos = end + 3,
                    None => return,
                }
            } else {
                return;
            }
        }
    }

    fn starts_with(&self, s: &str) -> bool {
        self.b[self.pos..].starts_with(s.as_bytes())
    }

    fn find_from(&self, needle: &str, from: usize) -> Option<usize> {
        let hay = &self.b[from..];
        hay.windows(needle.len())
            .position(|w| w == needle.as_bytes())
            .map(|i| i + from)
    }

    fn name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while self.b.get(self.pos).is_some_and(|&b| {
            b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':')
        }) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(XmlError::at(self.pos, "expected name"));
        }
        Ok(String::from_utf8_lossy(&self.b[start..self.pos]).into_owned())
    }

    fn element(&mut self) -> Result<XmlNode, XmlError> {
        if self.b.get(self.pos) != Some(&b'<') {
            return Err(XmlError::at(self.pos, "expected '<'"));
        }
        self.pos += 1;
        let name = self.name()?;
        let mut node = XmlNode::new(&name);
        // attributes
        loop {
            self.skip_ws();
            match self.b.get(self.pos) {
                Some(&b'/') => {
                    if self.b.get(self.pos + 1) == Some(&b'>') {
                        self.pos += 2;
                        return Ok(node);
                    }
                    return Err(XmlError::at(self.pos, "stray '/'"));
                }
                Some(&b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => {
                    let key = self.name()?;
                    self.skip_ws();
                    if self.b.get(self.pos) != Some(&b'=') {
                        return Err(XmlError::at(self.pos, "expected '=' in attribute"));
                    }
                    self.pos += 1;
                    self.skip_ws();
                    let quote = match self.b.get(self.pos) {
                        Some(&q @ (b'"' | b'\'')) => q,
                        _ => return Err(XmlError::at(self.pos, "expected quoted attribute")),
                    };
                    self.pos += 1;
                    let vstart = self.pos;
                    while self.b.get(self.pos).is_some_and(|&b| b != quote) {
                        self.pos += 1;
                    }
                    if self.b.get(self.pos) != Some(&quote) {
                        return Err(XmlError::at(self.pos, "unterminated attribute"));
                    }
                    let raw = String::from_utf8_lossy(&self.b[vstart..self.pos]).into_owned();
                    self.pos += 1;
                    node.attrs.push((key, unescape(&raw, vstart)?));
                }
                None => return Err(XmlError::at(self.pos, "unexpected end in tag")),
            }
        }
        // content: children or text
        loop {
            // Where does the next markup start?
            let text_start = self.pos;
            while self.b.get(self.pos).is_some_and(|&b| b != b'<') {
                self.pos += 1;
            }
            if self.pos > text_start {
                let raw = String::from_utf8_lossy(&self.b[text_start..self.pos]).into_owned();
                let unescaped = unescape(&raw, text_start)?;
                if node.children.is_empty() {
                    node.text.push_str(&unescaped);
                } else if !unescaped.trim().is_empty() {
                    return Err(XmlError::at(
                        text_start,
                        "mixed text and element content unsupported",
                    ));
                }
            }
            if self.b.get(self.pos).is_none() {
                return Err(XmlError::at(self.pos, "unexpected end of document"));
            }
            if self.starts_with("<!--") {
                match self.find_from("-->", self.pos) {
                    Some(end) => {
                        self.pos = end + 3;
                        continue;
                    }
                    None => return Err(XmlError::at(self.pos, "unterminated comment")),
                }
            }
            if self.starts_with("</") {
                self.pos += 2;
                let end_name = self.name()?;
                if end_name != node.name {
                    return Err(XmlError::at(
                        self.pos,
                        &format!("mismatched close: {} vs {}", node.name, end_name),
                    ));
                }
                self.skip_ws();
                if self.b.get(self.pos) != Some(&b'>') {
                    return Err(XmlError::at(self.pos, "expected '>'"));
                }
                self.pos += 1;
                if !node.children.is_empty() {
                    node.text.clear();
                } else if node.text.chars().all(char::is_whitespace) {
                    // whitespace-only content normalizes to empty, so
                    // pretty-printed input and compact output compare equal
                    node.text.clear();
                }
                return Ok(node);
            }
            // child element; text before children must be whitespace
            if node.children.is_empty() && !node.text.trim().is_empty() {
                return Err(XmlError::at(
                    self.pos,
                    "mixed text and element content unsupported",
                ));
            }
            node.text.clear();
            let child = self.element()?;
            node.children.push(child);
        }
    }
}

fn unescape(s: &str, base: usize) -> Result<String, XmlError> {
    if !s.contains('&') {
        return Ok(s.to_owned());
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        let tail = &rest[amp..];
        let semi = tail
            .find(';')
            .ok_or_else(|| XmlError::at(base, "unterminated entity"))?;
        let entity = &tail[1..semi];
        match entity {
            "amp" => out.push('&'),
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ if entity.starts_with("#x") || entity.starts_with("#X") => {
                let code = u32::from_str_radix(&entity[2..], 16)
                    .map_err(|_| XmlError::at(base, "bad numeric entity"))?;
                out.push(
                    char::from_u32(code).ok_or_else(|| XmlError::at(base, "invalid codepoint"))?,
                );
            }
            _ if entity.starts_with('#') => {
                let code: u32 = entity[1..]
                    .parse()
                    .map_err(|_| XmlError::at(base, "bad numeric entity"))?;
                out.push(
                    char::from_u32(code).ok_or_else(|| XmlError::at(base, "invalid codepoint"))?,
                );
            }
            _ => return Err(XmlError::at(base, &format!("unknown entity &{entity};"))),
        }
        rest = &tail[semi + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_serialize() {
        let doc = XmlNode::new("root")
            .attr("version", "1.0")
            .child(XmlNode::text_node("greeting", "hello"))
            .child(XmlNode::new("empty"));
        assert_eq!(
            doc.to_xml(),
            r#"<root version="1.0"><greeting>hello</greeting><empty/></root>"#
        );
    }

    #[test]
    fn roundtrip_simple() {
        let doc = XmlNode::new("a")
            .attr("k", "v")
            .child(XmlNode::text_node("b", "text"))
            .child(XmlNode::new("c").attr("x", "1"));
        assert_eq!(XmlNode::parse(&doc.to_xml()).unwrap(), doc);
    }

    #[test]
    fn roundtrip_escaping() {
        let doc = XmlNode::text_node("m", "a<b & c>\"d'")
            .attr("attr", "x<&>\"'y");
        let parsed = XmlNode::parse(&doc.to_xml()).unwrap();
        assert_eq!(parsed, doc);
    }

    #[test]
    fn parse_with_declaration_and_comments() {
        let text = r#"<?xml version="1.0"?>
            <!-- a comment -->
            <root>
              <item>1</item>
              <!-- inner comment -->
              <item>2</item>
            </root>"#;
        let doc = XmlNode::parse(text).unwrap();
        assert_eq!(doc.find_all("item").count(), 2);
    }

    #[test]
    fn whitespace_only_text_normalizes() {
        let doc = XmlNode::parse("<a>\n   <b/>\n</a>").unwrap();
        assert_eq!(doc, XmlNode::new("a").child(XmlNode::new("b")));
        let empty = XmlNode::parse("<a>   </a>").unwrap();
        assert_eq!(empty, XmlNode::new("a"));
    }

    #[test]
    fn numeric_entities() {
        let doc = XmlNode::parse("<a>&#65;&#x42;</a>").unwrap();
        assert_eq!(doc.text, "AB");
    }

    #[test]
    fn mismatched_tags_error() {
        let err = XmlNode::parse("<a><b></a></b>").unwrap_err();
        assert!(err.message.contains("mismatched"), "{err}");
    }

    #[test]
    fn trailing_content_error() {
        assert!(XmlNode::parse("<a/><b/>").is_err());
    }

    #[test]
    fn unknown_entity_error() {
        assert!(XmlNode::parse("<a>&nbsp;</a>").is_err());
    }

    #[test]
    fn mixed_content_rejected() {
        assert!(XmlNode::parse("<a>text<b/></a>").is_err());
        assert!(XmlNode::parse("<a><b/>text</a>").is_err());
    }

    #[test]
    fn attributes_single_quotes() {
        let doc = XmlNode::parse("<a k='v1' j=\"v2\"/>").unwrap();
        assert_eq!(doc.get_attr("k"), Some("v1"));
        assert_eq!(doc.get_attr("j"), Some("v2"));
    }

    #[test]
    fn namespaced_names() {
        let doc = XmlNode::parse(
            r#"<soap:Envelope xmlns:soap="http://schemas.xmlsoap.org/soap/envelope/"><soap:Body/></soap:Envelope>"#,
        )
        .unwrap();
        assert_eq!(doc.name, "soap:Envelope");
        assert!(doc.find("soap:Body").is_some());
    }

    #[test]
    fn path_and_find_helpers() {
        let doc = XmlNode::new("a").child(XmlNode::new("b").child(XmlNode::text_node("c", "x")));
        assert_eq!(doc.path(&["b", "c"]).unwrap().text, "x");
        assert!(doc.path(&["b", "missing"]).is_none());
    }

    #[test]
    fn unterminated_inputs_error() {
        assert!(XmlNode::parse("<a>").is_err());
        assert!(XmlNode::parse("<a attr=>").is_err());
        assert!(XmlNode::parse("<a attr=\"x>").is_err());
        assert!(XmlNode::parse("<").is_err());
        assert!(XmlNode::parse("").is_err());
    }

    #[test]
    fn wire_size_matches_serialization() {
        let doc = XmlNode::text_node("x", "abc");
        assert_eq!(doc.wire_size(), doc.to_xml().len() as f64);
    }

    #[test]
    fn unicode_roundtrip() {
        let doc = XmlNode::text_node("msg", "héllo — 日本語 ✓");
        assert_eq!(XmlNode::parse(&doc.to_xml()).unwrap(), doc);
    }
}
