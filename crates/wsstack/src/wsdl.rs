//! WSDL documents: generation and parsing.
//!
//! For each uploaded executable, onServe "modifies the service description
//! file" from a template (§VI) and publishes the WSDL alongside the UDDI
//! entry; clients then run `wsimport` over it to get a typed stub (§VII-B).
//! [`WsdlDocument::to_xml`] is the generation half; [`WsdlDocument::parse`]
//! is the `wsimport` half ([`crate::client`] builds stubs from it).

use crate::soap::SoapValue;
use crate::xml::{XmlError, XmlNode};

/// Parameter/result types expressible in the generated services.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ParamType {
    /// `xsd:string`
    Str,
    /// `xsd:int`
    Int,
    /// `xsd:double`
    Double,
    /// `xsd:boolean`
    Bool,
    /// `xsd:base64Binary`
    Binary,
}

impl ParamType {
    /// The XSD name used on the wire.
    pub fn xsd(self) -> &'static str {
        match self {
            ParamType::Str => "xsd:string",
            ParamType::Int => "xsd:int",
            ParamType::Double => "xsd:double",
            ParamType::Bool => "xsd:boolean",
            ParamType::Binary => "xsd:base64Binary",
        }
    }

    /// Parse an XSD name.
    pub fn from_xsd(s: &str) -> Option<ParamType> {
        Some(match s {
            "xsd:string" => ParamType::Str,
            "xsd:int" => ParamType::Int,
            "xsd:double" => ParamType::Double,
            "xsd:boolean" => ParamType::Bool,
            "xsd:base64Binary" => ParamType::Binary,
            _ => return None,
        })
    }

    /// Whether `value` inhabits this type.
    pub fn matches(self, value: &SoapValue) -> bool {
        matches!(
            (self, value),
            (ParamType::Str, SoapValue::Str(_))
                | (ParamType::Int, SoapValue::Int(_))
                | (ParamType::Double, SoapValue::Double(_))
                | (ParamType::Bool, SoapValue::Bool(_))
                | (ParamType::Binary, SoapValue::Binary { .. })
        )
    }
}

/// A named, typed parameter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WsdlParam {
    /// Parameter name.
    pub name: String,
    /// Parameter type.
    pub ty: ParamType,
}

impl WsdlParam {
    /// Convenience constructor.
    pub fn new(name: &str, ty: ParamType) -> WsdlParam {
        WsdlParam {
            name: name.to_owned(),
            ty,
        }
    }
}

/// One operation (web method).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WsdlOperation {
    /// Operation name.
    pub name: String,
    /// Input parameters in order.
    pub inputs: Vec<WsdlParam>,
    /// Result type.
    pub output: ParamType,
}

/// A service description.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WsdlDocument {
    /// Service name.
    pub service: String,
    /// Endpoint URL the bindings point at.
    pub endpoint: String,
    /// Free-text description (the portal's "Description" field).
    pub documentation: String,
    /// Operations.
    pub operations: Vec<WsdlOperation>,
}

impl WsdlDocument {
    /// Describe a single-operation service (the common generated shape:
    /// one `execute` method per uploaded executable).
    pub fn single_op(
        service: &str,
        endpoint: &str,
        documentation: &str,
        op: WsdlOperation,
    ) -> WsdlDocument {
        WsdlDocument {
            service: service.to_owned(),
            endpoint: endpoint.to_owned(),
            documentation: documentation.to_owned(),
            operations: vec![op],
        }
    }

    /// Find an operation by name.
    pub fn operation(&self, name: &str) -> Option<&WsdlOperation> {
        self.operations.iter().find(|o| o.name == name)
    }

    /// Generate the WSDL document.
    pub fn to_xml(&self) -> XmlNode {
        let mut port_type = XmlNode::new("wsdl:portType")
            .attr("name", &format!("{}PortType", self.service));
        for op in &self.operations {
            let mut input = XmlNode::new("wsdl:input");
            for p in &op.inputs {
                input.children.push(
                    XmlNode::new("wsdl:part")
                        .attr("name", &p.name)
                        .attr("type", p.ty.xsd()),
                );
            }
            let output = XmlNode::new("wsdl:output").child(
                XmlNode::new("wsdl:part")
                    .attr("name", "return")
                    .attr("type", op.output.xsd()),
            );
            port_type.children.push(
                XmlNode::new("wsdl:operation")
                    .attr("name", &op.name)
                    .child(input)
                    .child(output),
            );
        }
        let service = XmlNode::new("wsdl:service")
            .attr("name", &self.service)
            .child(
                XmlNode::new("wsdl:port")
                    .attr("name", &format!("{}Port", self.service))
                    .child(XmlNode::new("soap:address").attr("location", &self.endpoint)),
            );
        XmlNode::new("wsdl:definitions")
            .attr("name", &self.service)
            .attr("targetNamespace", &format!("urn:onserve:{}", self.service))
            .attr("xmlns:wsdl", "http://schemas.xmlsoap.org/wsdl/")
            .attr("xmlns:soap", "http://schemas.xmlsoap.org/wsdl/soap/")
            .attr("xmlns:xsd", "http://www.w3.org/2001/XMLSchema")
            .child(XmlNode::text_node("wsdl:documentation", &self.documentation))
            .child(port_type)
            .child(service)
    }

    /// Serialized document text.
    pub fn to_text(&self) -> String {
        self.to_xml().to_xml()
    }

    /// Parse a WSDL document (from text).
    pub fn parse_text(text: &str) -> Result<WsdlDocument, String> {
        let doc = XmlNode::parse(text).map_err(|e: XmlError| e.to_string())?;
        Self::parse(&doc)
    }

    /// Parse a WSDL document (from a parsed tree).
    pub fn parse(doc: &XmlNode) -> Result<WsdlDocument, String> {
        if doc.name != "wsdl:definitions" {
            return Err("not a wsdl:definitions document".into());
        }
        let service = doc
            .get_attr("name")
            .ok_or("missing service name")?
            .to_owned();
        let documentation = doc
            .find("wsdl:documentation")
            .map(|n| n.text.clone())
            .unwrap_or_default();
        let endpoint = doc
            .path(&["wsdl:service", "wsdl:port", "soap:address"])
            .and_then(|n| n.get_attr("location"))
            .ok_or("missing soap:address")?
            .to_owned();
        let port_type = doc.find("wsdl:portType").ok_or("missing portType")?;
        let mut operations = Vec::new();
        for op_node in port_type.find_all("wsdl:operation") {
            let name = op_node
                .get_attr("name")
                .ok_or("operation missing name")?
                .to_owned();
            let mut inputs = Vec::new();
            if let Some(input) = op_node.find("wsdl:input") {
                for part in input.find_all("wsdl:part") {
                    let pname = part.get_attr("name").ok_or("part missing name")?;
                    let ty = part
                        .get_attr("type")
                        .and_then(ParamType::from_xsd)
                        .ok_or_else(|| format!("bad part type on {pname}"))?;
                    inputs.push(WsdlParam::new(pname, ty));
                }
            }
            let output = op_node
                .path(&["wsdl:output", "wsdl:part"])
                .and_then(|p| p.get_attr("type"))
                .and_then(ParamType::from_xsd)
                .ok_or("missing output part")?;
            operations.push(WsdlOperation {
                name,
                inputs,
                output,
            });
        }
        if operations.is_empty() {
            return Err("service has no operations".into());
        }
        Ok(WsdlDocument {
            service,
            endpoint,
            documentation,
            operations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> WsdlDocument {
        WsdlDocument::single_op(
            "BlastService",
            "http://appliance:8080/services/BlastService",
            "sequence alignment tool",
            WsdlOperation {
                name: "execute".into(),
                inputs: vec![
                    WsdlParam::new("sequence", ParamType::Str),
                    WsdlParam::new("evalue", ParamType::Double),
                    WsdlParam::new("iterations", ParamType::Int),
                ],
                output: ParamType::Binary,
            },
        )
    }

    #[test]
    fn roundtrip() {
        let w = sample();
        let parsed = WsdlDocument::parse_text(&w.to_text()).unwrap();
        assert_eq!(parsed, w);
    }

    #[test]
    fn multiple_operations_roundtrip() {
        let mut w = sample();
        w.operations.push(WsdlOperation {
            name: "status".into(),
            inputs: vec![WsdlParam::new("jobId", ParamType::Int)],
            output: ParamType::Str,
        });
        let parsed = WsdlDocument::parse_text(&w.to_text()).unwrap();
        assert_eq!(parsed.operations.len(), 2);
        assert_eq!(parsed, w);
    }

    #[test]
    fn operation_lookup() {
        let w = sample();
        assert!(w.operation("execute").is_some());
        assert!(w.operation("nothere").is_none());
    }

    #[test]
    fn zero_arg_operation() {
        let w = WsdlDocument::single_op(
            "Pinger",
            "http://x/ping",
            "",
            WsdlOperation {
                name: "ping".into(),
                inputs: vec![],
                output: ParamType::Bool,
            },
        );
        let parsed = WsdlDocument::parse_text(&w.to_text()).unwrap();
        assert_eq!(parsed, w);
    }

    #[test]
    fn parse_rejects_non_wsdl() {
        assert!(WsdlDocument::parse_text("<html/>").is_err());
    }

    #[test]
    fn parse_rejects_no_operations() {
        let doc = XmlNode::new("wsdl:definitions")
            .attr("name", "X")
            .child(XmlNode::new("wsdl:portType"))
            .child(
                XmlNode::new("wsdl:service").child(
                    XmlNode::new("wsdl:port")
                        .child(XmlNode::new("soap:address").attr("location", "http://x")),
                ),
            );
        assert!(WsdlDocument::parse(&doc).unwrap_err().contains("no operations"));
    }

    #[test]
    fn parse_rejects_unknown_type() {
        let text = sample()
            .to_text()
            .replace("xsd:double", "xsd:quaternion");
        assert!(WsdlDocument::parse_text(&text).is_err());
    }

    #[test]
    fn type_matching() {
        assert!(ParamType::Int.matches(&SoapValue::Int(3)));
        assert!(!ParamType::Int.matches(&SoapValue::Str("3".into())));
        assert!(ParamType::Binary.matches(&SoapValue::Binary {
            bytes: 1.0,
            digest: 0
        }));
    }

    #[test]
    fn xsd_names_roundtrip() {
        for ty in [
            ParamType::Str,
            ParamType::Int,
            ParamType::Double,
            ParamType::Bool,
            ParamType::Binary,
        ] {
            assert_eq!(ParamType::from_xsd(ty.xsd()), Some(ty));
        }
        assert_eq!(ParamType::from_xsd("xsd:fancy"), None);
    }
}
