#![warn(missing_docs)]

//! # wsstack — the Web-service substrate
//!
//! Cyberaide onServe hosts uploaded executables *as Web services*: it
//! generates a service from a template, packages it as an `.aar` archive,
//! deploys it into a SOAP container (Axis2 on Tomcat in the paper),
//! publishes it with its WSDL in a jUDDI registry, and clients build stubs
//! with `wsimport` and invoke them. This crate rebuilds that entire 2010
//! WS-* stack, scaled to what the middleware actually exercises:
//!
//! * [`xml`] — a small XML document model with writer and parser (enough
//!   for SOAP/WSDL/UDDI payloads, with escaping and attributes).
//! * [`soap`] — SOAP 1.1 envelopes, typed argument values, and faults.
//! * [`wsdl`] — WSDL documents: generation from an operation signature and
//!   parsing back (the `wsimport` half of the story).
//! * [`uddi`] — a UDDI-style registry: publish businessServices with
//!   binding templates, inquire by name pattern, fetch details.
//! * [`container`] — the SOAP container: deployable service archives
//!   (`.aar`), a service directory, and request dispatch to handlers.
//! * [`client`] — stub generation from WSDL and typed invocation.
//! * [`transport`] — the simulated HTTP channel: request/response byte
//!   counts ride [`simkit`] links, parsing burns host CPU; this is where
//!   the evaluation's network peaks come from.

pub mod client;
pub mod container;
pub mod soap;
pub mod transport;
pub mod uddi;
pub mod wsdl;
pub mod xml;

pub use client::ClientStub;
pub use container::{ServiceArchive, SoapContainer};
pub use soap::{SoapFault, SoapValue};
pub use transport::HttpChannel;
pub use uddi::{BindingTemplate, BusinessService, UddiRegistry};
pub use wsdl::{ParamType, WsdlDocument, WsdlOperation, WsdlParam};
pub use xml::XmlNode;
