//! SOAP 1.1 envelopes, typed values and faults.
//!
//! Every interaction with a generated service — and with the Cyberaide
//! agent itself, which "is a Web service and exposes its functions as Web
//! methods" (§VI) — is a SOAP call. Envelopes here are real documents
//! built on [`XmlNode`], so their serialized size drives the transport
//! model, and malformed payloads fail in the same places they would have
//! failed in Axis2.

use std::collections::BTreeMap;
use std::fmt;

use crate::xml::XmlNode;

/// SOAP envelope namespace (1.1, as in the paper's toolchain).
pub const SOAP_ENV_NS: &str = "http://schemas.xmlsoap.org/soap/envelope/";

/// A typed argument/result value.
#[derive(Clone, Debug, PartialEq)]
pub enum SoapValue {
    /// `xsd:string`
    Str(String),
    /// `xsd:int`
    Int(i64),
    /// `xsd:double`
    Double(f64),
    /// `xsd:boolean`
    Bool(bool),
    /// `xsd:base64Binary` — carried as a *size* plus digest, because the
    /// simulation transfers payload bytes through the resource model, not
    /// through memory.
    Binary {
        /// Payload size in bytes.
        bytes: f64,
        /// Content digest standing in for the actual bits.
        digest: u64,
    },
}

impl SoapValue {
    /// XSD type name used in WSDL and envelopes.
    pub fn type_name(&self) -> &'static str {
        match self {
            SoapValue::Str(_) => "xsd:string",
            SoapValue::Int(_) => "xsd:int",
            SoapValue::Double(_) => "xsd:double",
            SoapValue::Bool(_) => "xsd:boolean",
            SoapValue::Binary { .. } => "xsd:base64Binary",
        }
    }

    /// Extra on-the-wire bytes this value adds beyond its XML element
    /// scaffolding (binary payloads are base64-inflated by 4/3).
    pub fn wire_bytes(&self) -> f64 {
        match self {
            SoapValue::Str(s) => s.len() as f64,
            SoapValue::Int(_) | SoapValue::Double(_) => 16.0,
            SoapValue::Bool(_) => 5.0,
            SoapValue::Binary { bytes, .. } => bytes * 4.0 / 3.0,
        }
    }

    fn to_xml(&self, name: &str) -> XmlNode {
        let node = match self {
            SoapValue::Str(s) => XmlNode::text_node(name, s),
            SoapValue::Int(i) => XmlNode::text_node(name, &i.to_string()),
            SoapValue::Double(d) => XmlNode::text_node(name, &format!("{d:e}")),
            SoapValue::Bool(b) => XmlNode::text_node(name, if *b { "true" } else { "false" }),
            SoapValue::Binary { bytes, digest } => {
                // stand-in marker: size + digest instead of megabytes of
                // base64 in the in-memory document
                XmlNode::text_node(name, &format!("base64:{bytes}:{digest:016x}"))
            }
        };
        node.attr("xsi:type", self.type_name())
    }

    fn from_xml(node: &XmlNode) -> Result<SoapValue, SoapFault> {
        let ty = node.get_attr("xsi:type").unwrap_or("xsd:string");
        let text = node.text.as_str();
        let bad = |what: &str| SoapFault::client(&format!("bad {what} value: {text}"));
        match ty {
            "xsd:string" => Ok(SoapValue::Str(text.to_owned())),
            "xsd:int" => text
                .parse()
                .map(SoapValue::Int)
                .map_err(|_| bad("int")),
            "xsd:double" => text
                .parse()
                .map(SoapValue::Double)
                .map_err(|_| bad("double")),
            "xsd:boolean" => match text {
                "true" | "1" => Ok(SoapValue::Bool(true)),
                "false" | "0" => Ok(SoapValue::Bool(false)),
                _ => Err(bad("boolean")),
            },
            "xsd:base64Binary" => {
                let mut parts = text.splitn(3, ':');
                let tag = parts.next();
                let bytes = parts.next().and_then(|p| p.parse::<f64>().ok());
                let digest = parts
                    .next()
                    .and_then(|p| u64::from_str_radix(p, 16).ok());
                match (tag, bytes, digest) {
                    (Some("base64"), Some(bytes), Some(digest)) => {
                        Ok(SoapValue::Binary { bytes, digest })
                    }
                    _ => Err(bad("base64Binary")),
                }
            }
            other => Err(SoapFault::client(&format!("unknown xsi:type {other}"))),
        }
    }
}

/// A SOAP fault (the error half of every invocation).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SoapFault {
    /// `Client`, `Server`, `VersionMismatch`, ...
    pub code: String,
    /// Human-readable fault string.
    pub message: String,
}

impl SoapFault {
    /// `soap:Client` fault — the caller's payload is at fault.
    pub fn client(message: &str) -> SoapFault {
        SoapFault {
            code: "soap:Client".into(),
            message: message.to_owned(),
        }
    }

    /// `soap:Server` fault — processing failed on the service side.
    pub fn server(message: &str) -> SoapFault {
        SoapFault {
            code: "soap:Server".into(),
            message: message.to_owned(),
        }
    }
}

impl fmt::Display for SoapFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

impl std::error::Error for SoapFault {}

/// A request or response envelope.
#[derive(Clone, Debug, PartialEq)]
pub struct Envelope {
    /// Target service name.
    pub service: String,
    /// Operation (web-method) name.
    pub operation: String,
    /// Named arguments/results, in a deterministic order.
    pub args: BTreeMap<String, SoapValue>,
}

impl Envelope {
    /// Build a request envelope.
    pub fn request(service: &str, operation: &str) -> Envelope {
        Envelope {
            service: service.to_owned(),
            operation: operation.to_owned(),
            args: BTreeMap::new(),
        }
    }

    /// Builder: add an argument.
    pub fn arg(mut self, name: &str, value: SoapValue) -> Envelope {
        self.args.insert(name.to_owned(), value);
        self
    }

    /// Serialize to the full SOAP document.
    pub fn to_xml(&self) -> XmlNode {
        let mut op = XmlNode::new(&format!("ns:{}", self.operation))
            .attr("xmlns:ns", &format!("urn:onserve:{}", self.service));
        for (name, value) in &self.args {
            op.children.push(value.to_xml(name));
        }
        XmlNode::new("soap:Envelope")
            .attr("xmlns:soap", SOAP_ENV_NS)
            .attr("xmlns:xsd", "http://www.w3.org/2001/XMLSchema")
            .attr("xmlns:xsi", "http://www.w3.org/2001/XMLSchema-instance")
            .child(XmlNode::new("soap:Body").child(op))
    }

    /// Total request size on the wire.
    pub fn wire_size(&self) -> f64 {
        self.to_xml().wire_size()
            + self
                .args
                .values()
                .map(|v| match v {
                    // the in-document marker is tiny; add the real payload
                    SoapValue::Binary { .. } => v.wire_bytes(),
                    _ => 0.0,
                })
                .sum::<f64>()
    }

    /// Parse an envelope back out of a document.
    pub fn parse(doc: &XmlNode) -> Result<Envelope, SoapFault> {
        if doc.name != "soap:Envelope" {
            return Err(SoapFault::client("not a SOAP envelope"));
        }
        let body = doc
            .find("soap:Body")
            .ok_or_else(|| SoapFault::client("missing soap:Body"))?;
        let op_node = body
            .children
            .first()
            .ok_or_else(|| SoapFault::client("empty soap:Body"))?;
        let operation = op_node
            .name
            .strip_prefix("ns:")
            .unwrap_or(&op_node.name)
            .to_owned();
        let service = op_node
            .get_attr("xmlns:ns")
            .and_then(|ns| ns.strip_prefix("urn:onserve:"))
            .unwrap_or("")
            .to_owned();
        let mut args = BTreeMap::new();
        for child in &op_node.children {
            args.insert(child.name.clone(), SoapValue::from_xml(child)?);
        }
        Ok(Envelope {
            service,
            operation,
            args,
        })
    }

    /// Wrap a fault in a response document.
    pub fn fault_to_xml(fault: &SoapFault) -> XmlNode {
        XmlNode::new("soap:Envelope")
            .attr("xmlns:soap", SOAP_ENV_NS)
            .child(
                XmlNode::new("soap:Body").child(
                    XmlNode::new("soap:Fault")
                        .child(XmlNode::text_node("faultcode", &fault.code))
                        .child(XmlNode::text_node("faultstring", &fault.message)),
                ),
            )
    }

    /// Extract a fault from a response document, if it is one.
    pub fn parse_fault(doc: &XmlNode) -> Option<SoapFault> {
        let fault = doc.path(&["soap:Body", "soap:Fault"])?;
        Some(SoapFault {
            code: fault.find("faultcode").map(|n| n.text.clone())?,
            message: fault.find("faultstring").map(|n| n.text.clone())?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Envelope {
        Envelope::request("Solver", "execute")
            .arg("gridSize", SoapValue::Int(128))
            .arg("eps", SoapValue::Double(1e-6))
            .arg("verbose", SoapValue::Bool(true))
            .arg("label", SoapValue::Str("run 1 <&>".into()))
            .arg(
                "payload",
                SoapValue::Binary {
                    bytes: 1024.0,
                    digest: 0xdead_beef,
                },
            )
    }

    #[test]
    fn envelope_roundtrip() {
        let env = sample();
        let doc = env.to_xml();
        let parsed = Envelope::parse(&doc).unwrap();
        assert_eq!(parsed, env);
    }

    #[test]
    fn envelope_roundtrip_through_text() {
        let env = sample();
        let text = env.to_xml().to_xml();
        let doc = XmlNode::parse(&text).unwrap();
        assert_eq!(Envelope::parse(&doc).unwrap(), env);
    }

    #[test]
    fn binary_payload_dominates_wire_size() {
        let small = Envelope::request("S", "op").arg("x", SoapValue::Int(1));
        let big = Envelope::request("S", "op").arg(
            "x",
            SoapValue::Binary {
                bytes: 5.0 * 1024.0 * 1024.0,
                digest: 1,
            },
        );
        assert!(big.wire_size() > small.wire_size() + 5.0 * 1024.0 * 1024.0);
        // base64 inflation
        assert!(big.wire_size() > 5.0 * 1024.0 * 1024.0 * 4.0 / 3.0);
    }

    #[test]
    fn fault_roundtrip() {
        let f = SoapFault::server("staging failed");
        let doc = Envelope::fault_to_xml(&f);
        assert_eq!(Envelope::parse_fault(&doc), Some(f));
    }

    #[test]
    fn non_fault_has_no_fault() {
        assert_eq!(Envelope::parse_fault(&sample().to_xml()), None);
    }

    #[test]
    fn parse_rejects_non_envelope() {
        let err = Envelope::parse(&XmlNode::new("html")).unwrap_err();
        assert_eq!(err.code, "soap:Client");
    }

    #[test]
    fn parse_rejects_empty_body() {
        let doc = XmlNode::new("soap:Envelope").child(XmlNode::new("soap:Body"));
        assert!(Envelope::parse(&doc).is_err());
    }

    #[test]
    fn value_parse_errors_are_client_faults() {
        let bad = XmlNode::text_node("x", "not-a-number").attr("xsi:type", "xsd:int");
        let err = SoapValue::from_xml(&bad).unwrap_err();
        assert_eq!(err.code, "soap:Client");
        let unknown = XmlNode::text_node("x", "v").attr("xsi:type", "xsd:hyperreal");
        assert!(SoapValue::from_xml(&unknown).is_err());
    }

    #[test]
    fn bool_accepts_numeric_forms() {
        let one = XmlNode::text_node("b", "1").attr("xsi:type", "xsd:boolean");
        assert_eq!(SoapValue::from_xml(&one).unwrap(), SoapValue::Bool(true));
    }

    #[test]
    fn untyped_defaults_to_string() {
        let n = XmlNode::text_node("s", "plain");
        assert_eq!(
            SoapValue::from_xml(&n).unwrap(),
            SoapValue::Str("plain".into())
        );
    }

    #[test]
    fn double_roundtrip_precision() {
        for &x in &[0.0, -1.5, 1e300, 1e-300, std::f64::consts::PI] {
            let n = SoapValue::Double(x).to_xml("d");
            assert_eq!(SoapValue::from_xml(&n).unwrap(), SoapValue::Double(x));
        }
    }
}
