//! The SOAP container: service directory + dispatch.
//!
//! The paper's appliance runs "a SOAP server \[that\] runs the deployed Web
//! services as well as some services related to the Cyberaide toolkit"
//! (§V). Generated services arrive as `.aar` archives — "generates an
//! aar-file that is finally copied into the Web service framework's
//! service directory" (§VI) — so deployment costs a disk write plus class
//! loading CPU, and every dispatched request pays an XML-parsing CPU cost
//! before reaching its handler.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use simkit::{Host, Sim};

use crate::soap::{Envelope, SoapFault, SoapValue};
use crate::wsdl::WsdlDocument;

/// Completion continuation of an invocation.
pub type Responder = Box<dyn FnOnce(&mut Sim, Result<SoapValue, SoapFault>)>;

/// Implemented by deployed services (the generated `GridService` template
/// class is the important one).
pub trait ServiceHandler {
    /// Handle `operation` with `args`; exactly one call to `respond`.
    fn invoke(
        &self,
        sim: &mut Sim,
        operation: &str,
        args: &BTreeMap<String, SoapValue>,
        respond: Responder,
    );
}

/// Blanket impl so plain closures can be handlers.
impl<F> ServiceHandler for F
where
    F: Fn(&mut Sim, &str, &BTreeMap<String, SoapValue>, Responder),
{
    fn invoke(
        &self,
        sim: &mut Sim,
        operation: &str,
        args: &BTreeMap<String, SoapValue>,
        respond: Responder,
    ) {
        self(sim, operation, args, respond)
    }
}

/// A deployable `.aar` unit.
pub struct ServiceArchive {
    /// Service name (directory key).
    pub name: String,
    /// Interface description, served at `...?wsdl`.
    pub wsdl: WsdlDocument,
    /// Archive size in bytes (the deployment copy).
    pub archive_bytes: f64,
    /// The service implementation.
    pub handler: Rc<dyn ServiceHandler>,
}

struct Deployed {
    wsdl: WsdlDocument,
    handler: Rc<dyn ServiceHandler>,
    invocations: u64,
}

/// CPU seconds to parse/validate `bytes` of XML (plus fixed dispatch cost).
/// Calibrated so small control messages cost ~1 ms and a 5 MB upload
/// envelope costs a visible CPU burst, as Figure 8 shows.
pub fn parse_cpu_cost(bytes: f64) -> f64 {
    1.0e-3 + bytes * 15.0e-9
}

/// The container.
pub struct SoapContainer {
    host: Rc<Host>,
    services: BTreeMap<String, Deployed>,
}

impl SoapContainer {
    /// A container running on `host` (its CPU and disk absorb the costs).
    pub fn new(host: Rc<Host>) -> Rc<RefCell<SoapContainer>> {
        Rc::new(RefCell::new(SoapContainer {
            host,
            services: BTreeMap::new(),
        }))
    }

    /// The host the container runs on.
    pub fn host(&self) -> &Rc<Host> {
        &self.host
    }

    /// Deploy an archive: write it into the service directory, load
    /// classes, then expose the service. Redeploying a name replaces the
    /// old unit (Axis2 hot-deployment behaviour).
    pub fn deploy<F>(this: &Rc<RefCell<Self>>, sim: &mut Sim, archive: ServiceArchive, done: F)
    where
        F: FnOnce(&mut Sim, Result<(), SoapFault>) + 'static,
    {
        let span = sim.span_begin("container.deploy");
        sim.span_attr(span, "service", archive.name.as_str());
        sim.span_attr(span, "bytes", archive.archive_bytes);
        let host = Rc::clone(&this.borrow().host);
        let this2 = Rc::clone(this);
        let bytes = archive.archive_bytes;
        host.write_disk(sim, bytes, move |sim| {
            let host2 = Rc::clone(&this2.borrow().host);
            // class loading / service initialization burns CPU proportional
            // to archive size
            host2.compute(sim, parse_cpu_cost(bytes) * 4.0, move |sim| {
                this2.borrow_mut().services.insert(
                    archive.name.clone(),
                    Deployed {
                        wsdl: archive.wsdl,
                        handler: archive.handler,
                        invocations: 0,
                    },
                );
                sim.span_end(span);
                done(sim, Ok(()));
            });
        });
    }

    /// Remove a service from the directory.
    pub fn undeploy(&mut self, name: &str) -> bool {
        self.services.remove(name).is_some()
    }

    /// Deployed service names.
    pub fn service_names(&self) -> Vec<String> {
        self.services.keys().cloned().collect()
    }

    /// The WSDL for a deployed service (the `?wsdl` endpoint).
    pub fn wsdl_for(&self, name: &str) -> Option<&WsdlDocument> {
        self.services.get(name).map(|d| &d.wsdl)
    }

    /// Invocations served per service.
    pub fn invocation_count(&self, name: &str) -> u64 {
        self.services.get(name).map_or(0, |d| d.invocations)
    }

    /// Validate an envelope against the service's WSDL and hand it to the
    /// handler. The transport has already paid the network cost; dispatch
    /// pays the parse CPU here.
    pub fn dispatch(
        this: &Rc<RefCell<Self>>,
        sim: &mut Sim,
        envelope: Envelope,
        respond: Responder,
    ) {
        let span = sim.span_begin("soap.dispatch");
        sim.span_attr(span, "service", envelope.service.as_str());
        sim.span_attr(span, "operation", envelope.operation.as_str());
        // single close point: both the fault path and the handler's eventual
        // response funnel through the wrapped responder
        let respond: Responder = Box::new(move |sim, r| {
            match &r {
                Ok(_) => sim.span_end(span),
                Err(fault) => sim.span_fail(span, &fault.message),
            }
            respond(sim, r);
        });
        let host = Rc::clone(&this.borrow().host);
        let this2 = Rc::clone(this);
        let cost = parse_cpu_cost(envelope.wire_size());
        host.compute(sim, cost, move |sim| {
            let handler = {
                let mut c = this2.borrow_mut();
                match c.validate(&envelope) {
                    Ok(()) => {
                        let d = c
                            .services
                            .get_mut(&envelope.service)
                            .expect("validated above");
                        d.invocations += 1;
                        Rc::clone(&d.handler)
                    }
                    Err(fault) => {
                        drop(c);
                        respond(sim, Err(fault));
                        return;
                    }
                }
            };
            // anything the handler starts (notably onserve.invoke) nests
            // under the dispatch span
            let prev = sim.set_span_parent(span);
            handler.invoke(sim, &envelope.operation, &envelope.args, respond);
            sim.set_span_parent(prev);
        });
    }

    fn validate(&self, env: &Envelope) -> Result<(), SoapFault> {
        let svc = self
            .services
            .get(&env.service)
            .ok_or_else(|| SoapFault::client(&format!("unknown service {}", env.service)))?;
        let op = svc
            .wsdl
            .operation(&env.operation)
            .ok_or_else(|| SoapFault::client(&format!("unknown operation {}", env.operation)))?;
        for p in &op.inputs {
            let v = env.args.get(&p.name).ok_or_else(|| {
                SoapFault::client(&format!("missing argument {}", p.name))
            })?;
            if !p.ty.matches(v) {
                return Err(SoapFault::client(&format!(
                    "argument {} expects {}",
                    p.name,
                    p.ty.xsd()
                )));
            }
        }
        for name in env.args.keys() {
            if !op.inputs.iter().any(|p| &p.name == name) {
                return Err(SoapFault::client(&format!("unexpected argument {name}")));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wsdl::{ParamType, WsdlOperation, WsdlParam};
    use simkit::HostSpec;
    use std::cell::Cell;

    fn echo_wsdl(name: &str) -> WsdlDocument {
        WsdlDocument::single_op(
            name,
            &format!("http://appliance/services/{name}"),
            "echoes",
            WsdlOperation {
                name: "execute".into(),
                inputs: vec![WsdlParam::new("msg", ParamType::Str)],
                output: ParamType::Str,
            },
        )
    }

    fn echo_archive(name: &str) -> ServiceArchive {
        ServiceArchive {
            name: name.to_owned(),
            wsdl: echo_wsdl(name),
            archive_bytes: 8192.0,
            handler: Rc::new(
                |sim: &mut Sim,
                 _op: &str,
                 args: &BTreeMap<String, SoapValue>,
                 respond: Responder| {
                    let msg = match args.get("msg") {
                        Some(SoapValue::Str(s)) => s.clone(),
                        _ => String::new(),
                    };
                    respond(sim, Ok(SoapValue::Str(format!("echo:{msg}"))));
                },
            ),
        }
    }

    fn container() -> Rc<RefCell<SoapContainer>> {
        SoapContainer::new(Host::new(&HostSpec::commodity("appliance")))
    }

    fn deploy_now(c: &Rc<RefCell<SoapContainer>>, sim: &mut Sim, a: ServiceArchive) {
        SoapContainer::deploy(c, sim, a, |_, r| r.expect("deploy"));
        sim.run();
    }

    #[test]
    fn deploy_then_dispatch() {
        let mut sim = Sim::new(0);
        let c = container();
        deploy_now(&c, &mut sim, echo_archive("Echo"));
        assert_eq!(c.borrow().service_names(), vec!["Echo".to_string()]);
        let got = Rc::new(RefCell::new(None));
        let g = got.clone();
        let env = Envelope::request("Echo", "execute").arg("msg", SoapValue::Str("hi".into()));
        SoapContainer::dispatch(
            &c,
            &mut sim,
            env,
            Box::new(move |_, r| *g.borrow_mut() = Some(r)),
        );
        sim.run();
        assert_eq!(
            got.borrow().clone().unwrap().unwrap(),
            SoapValue::Str("echo:hi".into())
        );
        assert_eq!(c.borrow().invocation_count("Echo"), 1);
    }

    #[test]
    fn deployment_takes_time_and_disk() {
        let mut sim = Sim::new(0);
        let c = container();
        let at = Rc::new(Cell::new(-1.0));
        let at2 = at.clone();
        SoapContainer::deploy(&c, &mut sim, echo_archive("Echo"), move |sim, r| {
            r.unwrap();
            at2.set(sim.now().as_secs_f64());
        });
        sim.run();
        assert!(at.get() > 0.0);
        assert!(sim.recorder_ref().total("appliance.disk.write.bytes") >= 8192.0);
    }

    #[test]
    fn unknown_service_faults() {
        let mut sim = Sim::new(0);
        let c = container();
        let got = Rc::new(RefCell::new(None));
        let g = got.clone();
        SoapContainer::dispatch(
            &c,
            &mut sim,
            Envelope::request("Ghost", "execute"),
            Box::new(move |_, r| *g.borrow_mut() = Some(r)),
        );
        sim.run();
        let fault = got.borrow().clone().unwrap().unwrap_err();
        assert!(fault.message.contains("unknown service"));
    }

    #[test]
    fn wrong_types_and_args_fault() {
        let mut sim = Sim::new(0);
        let c = container();
        deploy_now(&c, &mut sim, echo_archive("Echo"));
        let cases = vec![
            Envelope::request("Echo", "execute").arg("msg", SoapValue::Int(3)),
            Envelope::request("Echo", "execute"),
            Envelope::request("Echo", "execute")
                .arg("msg", SoapValue::Str("x".into()))
                .arg("extra", SoapValue::Int(1)),
            Envelope::request("Echo", "destroy").arg("msg", SoapValue::Str("x".into())),
        ];
        for env in cases {
            let got = Rc::new(RefCell::new(None));
            let g = got.clone();
            SoapContainer::dispatch(&c, &mut sim, env, Box::new(move |_, r| *g.borrow_mut() = Some(r)));
            sim.run();
            assert!(got.borrow().clone().unwrap().is_err());
        }
        assert_eq!(c.borrow().invocation_count("Echo"), 0);
    }

    #[test]
    fn redeploy_replaces() {
        let mut sim = Sim::new(0);
        let c = container();
        deploy_now(&c, &mut sim, echo_archive("Echo"));
        let mut replacement = echo_archive("Echo");
        replacement.handler = Rc::new(
            |sim: &mut Sim, _: &str, _: &BTreeMap<String, SoapValue>, respond: Responder| {
                respond(sim, Ok(SoapValue::Str("v2".into())));
            },
        );
        deploy_now(&c, &mut sim, replacement);
        assert_eq!(c.borrow().service_names().len(), 1);
        let got = Rc::new(RefCell::new(None));
        let g = got.clone();
        SoapContainer::dispatch(
            &c,
            &mut sim,
            Envelope::request("Echo", "execute").arg("msg", SoapValue::Str("x".into())),
            Box::new(move |_, r| *g.borrow_mut() = Some(r)),
        );
        sim.run();
        assert_eq!(got.borrow().clone().unwrap().unwrap(), SoapValue::Str("v2".into()));
    }

    #[test]
    fn undeploy_removes() {
        let mut sim = Sim::new(0);
        let c = container();
        deploy_now(&c, &mut sim, echo_archive("Echo"));
        assert!(c.borrow_mut().undeploy("Echo"));
        assert!(!c.borrow_mut().undeploy("Echo"));
        assert!(c.borrow().wsdl_for("Echo").is_none());
    }

    #[test]
    fn wsdl_served() {
        let mut sim = Sim::new(0);
        let c = container();
        deploy_now(&c, &mut sim, echo_archive("Echo"));
        let w = c.borrow().wsdl_for("Echo").cloned().unwrap();
        assert_eq!(w.service, "Echo");
    }

    #[test]
    fn parse_cost_scales_with_bytes() {
        assert!(parse_cpu_cost(5.0 * 1024.0 * 1024.0) > 50.0 * parse_cpu_cost(100.0));
    }
}
