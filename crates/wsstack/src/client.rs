//! Client stubs generated from WSDL (the `wsimport` equivalent).
//!
//! "The most easiest solution is to parse the WSDL document with an
//! appropriate tool, such as `wsimport`, which then generates all needed
//! classes permitting to use the Web service in a comfortable way"
//! (§VIII-D4). A [`ClientStub`] is that generated class: it knows the
//! operation signatures and type-checks arguments *before* anything goes on
//! the wire — exactly the compile-time guarantee the generated Java classes
//! gave.

use std::rc::Rc;

use simkit::Sim;

use crate::soap::{Envelope, SoapFault, SoapValue};
use crate::transport::HttpChannel;
use crate::wsdl::WsdlDocument;

/// A typed client for one service.
#[derive(Clone, Debug)]
pub struct ClientStub {
    wsdl: WsdlDocument,
}

impl ClientStub {
    /// "Run wsimport": build a stub from a WSDL document.
    pub fn from_wsdl(wsdl: WsdlDocument) -> ClientStub {
        ClientStub { wsdl }
    }

    /// "Run wsimport" on serialized WSDL text (what a registry hands out).
    pub fn from_wsdl_text(text: &str) -> Result<ClientStub, String> {
        Ok(ClientStub {
            wsdl: WsdlDocument::parse_text(text)?,
        })
    }

    /// The service name.
    pub fn service(&self) -> &str {
        &self.wsdl.service
    }

    /// The endpoint from the WSDL.
    pub fn endpoint(&self) -> &str {
        &self.wsdl.endpoint
    }

    /// Operations available on this stub.
    pub fn operations(&self) -> impl Iterator<Item = &str> {
        self.wsdl.operations.iter().map(|o| o.name.as_str())
    }

    /// Type-check and build the request envelope for `operation`.
    pub fn build_request(
        &self,
        operation: &str,
        args: &[(&str, SoapValue)],
    ) -> Result<Envelope, SoapFault> {
        let op = self
            .wsdl
            .operation(operation)
            .ok_or_else(|| SoapFault::client(&format!("stub has no operation {operation}")))?;
        if args.len() != op.inputs.len() {
            return Err(SoapFault::client(&format!(
                "{operation} takes {} arguments, got {}",
                op.inputs.len(),
                args.len()
            )));
        }
        let mut env = Envelope::request(&self.wsdl.service, operation);
        for (param, (name, value)) in op.inputs.iter().zip(args) {
            if &param.name != name {
                return Err(SoapFault::client(&format!(
                    "expected argument {}, got {name}",
                    param.name
                )));
            }
            if !param.ty.matches(value) {
                return Err(SoapFault::client(&format!(
                    "argument {} expects {}",
                    param.name,
                    param.ty.xsd()
                )));
            }
            env = env.arg(name, value.clone());
        }
        Ok(env)
    }

    /// Invoke `operation` over `channel`. Type errors surface immediately
    /// via `done` without touching the network.
    pub fn call<F>(
        &self,
        sim: &mut Sim,
        channel: &Rc<HttpChannel>,
        operation: &str,
        args: &[(&str, SoapValue)],
        done: F,
    ) where
        F: FnOnce(&mut Sim, Result<SoapValue, SoapFault>) + 'static,
    {
        match self.build_request(operation, args) {
            Ok(env) => channel.call(sim, env, done),
            Err(fault) => {
                sim.schedule(simkit::Duration::ZERO, move |sim| {
                    done(sim, Err(fault));
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wsdl::{ParamType, WsdlOperation, WsdlParam};

    fn wsdl() -> WsdlDocument {
        WsdlDocument::single_op(
            "Calc",
            "http://appliance/services/Calc",
            "",
            WsdlOperation {
                name: "execute".into(),
                inputs: vec![
                    WsdlParam::new("a", ParamType::Int),
                    WsdlParam::new("b", ParamType::Int),
                ],
                output: ParamType::Int,
            },
        )
    }

    #[test]
    fn stub_from_text_keeps_signature() {
        let stub = ClientStub::from_wsdl_text(&wsdl().to_text()).unwrap();
        assert_eq!(stub.service(), "Calc");
        assert_eq!(stub.endpoint(), "http://appliance/services/Calc");
        assert_eq!(stub.operations().collect::<Vec<_>>(), vec!["execute"]);
    }

    #[test]
    fn build_request_valid() {
        let stub = ClientStub::from_wsdl(wsdl());
        let env = stub
            .build_request("execute", &[("a", SoapValue::Int(1)), ("b", SoapValue::Int(2))])
            .unwrap();
        assert_eq!(env.service, "Calc");
        assert_eq!(env.args.len(), 2);
    }

    #[test]
    fn build_request_rejects_bad_calls() {
        let stub = ClientStub::from_wsdl(wsdl());
        // wrong arity
        assert!(stub
            .build_request("execute", &[("a", SoapValue::Int(1))])
            .is_err());
        // wrong name
        assert!(stub
            .build_request(
                "execute",
                &[("a", SoapValue::Int(1)), ("c", SoapValue::Int(2))]
            )
            .is_err());
        // wrong type
        assert!(stub
            .build_request(
                "execute",
                &[("a", SoapValue::Int(1)), ("b", SoapValue::Str("x".into()))]
            )
            .is_err());
        // wrong operation
        assert!(stub.build_request("ping", &[]).is_err());
    }

    #[test]
    fn bad_text_rejected() {
        assert!(ClientStub::from_wsdl_text("<oops/>").is_err());
    }
}
