//! A UDDI-style registry.
//!
//! "All the created Web services are published in an UDDI registry together
//! with the descriptions, the WSDL files, and the service endpoint to make
//! it easier to find a service" (§V). The paper runs jUDDI behind
//! `javax.xml.registry`; this module reproduces the same contract —
//! publish, inquire by name pattern, fetch details, delete — with
//! deterministic keys, so the onServe `UddiManager` equivalent and the
//! service-discovery scenario (§VII-B) work unchanged.

use std::collections::BTreeMap;

/// Where a published service can be reached and described.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BindingTemplate {
    /// Service endpoint URL.
    pub access_point: String,
    /// URL of the WSDL document.
    pub wsdl_location: String,
}

/// One published businessService.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BusinessService {
    /// Registry-assigned key.
    pub service_key: String,
    /// Owning business (onServe publishes everything under one entity).
    pub business: String,
    /// Service name (what inquiries match on).
    pub name: String,
    /// Free-text description.
    pub description: String,
    /// Endpoint bindings.
    pub bindings: Vec<BindingTemplate>,
}

/// Registry faults.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum UddiError {
    /// No service under that key.
    UnknownKey(String),
    /// Publishing under a name that exists with a different key.
    DuplicateName(String),
    /// Adding a bindingTemplate whose access point is already bound.
    DuplicateBinding(String),
    /// Removing the last bindingTemplate of a service (delete it instead).
    LastBinding(String),
}

impl std::fmt::Display for UddiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UddiError::UnknownKey(k) => write!(f, "unknown service key {k}"),
            UddiError::DuplicateName(n) => write!(f, "service name already published: {n}"),
            UddiError::DuplicateBinding(a) => write!(f, "access point already bound: {a}"),
            UddiError::LastBinding(k) => {
                write!(f, "cannot remove the last binding of service {k}")
            }
        }
    }
}

impl std::error::Error for UddiError {}

/// The registry: publish / inquire / get / delete.
#[derive(Default)]
pub struct UddiRegistry {
    services: BTreeMap<String, BusinessService>, // key -> record
    by_name: BTreeMap<String, String>,           // name -> key
    next_key: u64,
    /// Publish/inquiry counters for the evaluation report.
    publishes: u64,
    inquiries: u64,
}

impl UddiRegistry {
    /// Empty registry.
    pub fn new() -> UddiRegistry {
        UddiRegistry::default()
    }

    /// Publish a service; names must be unique (matching how onServe names
    /// generated services after their executables). Returns the assigned
    /// key.
    pub fn publish(
        &mut self,
        business: &str,
        name: &str,
        description: &str,
        binding: BindingTemplate,
    ) -> Result<String, UddiError> {
        if self.by_name.contains_key(name) {
            return Err(UddiError::DuplicateName(name.to_owned()));
        }
        self.next_key += 1;
        self.publishes += 1;
        // uuid-shaped deterministic key
        let key = format!(
            "uuid:{:08x}-{:04x}-{:04x}-{:04x}-{:012x}",
            self.next_key,
            (self.next_key >> 8) & 0xffff,
            0x4000 | (self.next_key & 0x0fff),
            0x8000 | ((self.next_key * 7) & 0x3fff),
            self.next_key.wrapping_mul(0x9e37_79b9)
        );
        let record = BusinessService {
            service_key: key.clone(),
            business: business.to_owned(),
            name: name.to_owned(),
            description: description.to_owned(),
            bindings: vec![binding],
        };
        self.by_name.insert(name.to_owned(), key.clone());
        self.services.insert(key.clone(), record);
        Ok(key)
    }

    /// UDDI `find_service`: `%` is the any-substring wildcard, matching is
    /// case-insensitive (as in the UDDI spec's default behaviour).
    pub fn find(&mut self, name_pattern: &str) -> Vec<&BusinessService> {
        self.inquiries += 1;
        let pat = name_pattern.to_lowercase();
        self.services
            .values()
            .filter(|s| pattern_matches(&pat, &s.name.to_lowercase()))
            .collect()
    }

    /// UDDI `get_serviceDetail`.
    pub fn get(&mut self, service_key: &str) -> Result<&BusinessService, UddiError> {
        self.inquiries += 1;
        self.services
            .get(service_key)
            .ok_or_else(|| UddiError::UnknownKey(service_key.to_owned()))
    }

    /// Update the free-text description of a published service.
    pub fn update_description(
        &mut self,
        service_key: &str,
        description: &str,
    ) -> Result<(), UddiError> {
        let svc = self
            .services
            .get_mut(service_key)
            .ok_or_else(|| UddiError::UnknownKey(service_key.to_owned()))?;
        svc.description = description.to_owned();
        Ok(())
    }

    /// Add a bindingTemplate to a published service — a replicated
    /// endpoint behind the same service name, as SOA registries model
    /// load-balanced deployments (one businessService, N
    /// bindingTemplates). Access points must be unique within the service.
    pub fn add_binding(
        &mut self,
        service_key: &str,
        binding: BindingTemplate,
    ) -> Result<(), UddiError> {
        let svc = self
            .services
            .get_mut(service_key)
            .ok_or_else(|| UddiError::UnknownKey(service_key.to_owned()))?;
        if svc
            .bindings
            .iter()
            .any(|b| b.access_point == binding.access_point)
        {
            return Err(UddiError::DuplicateBinding(binding.access_point));
        }
        svc.bindings.push(binding);
        Ok(())
    }

    /// Remove the bindingTemplate with the given access point (a retired
    /// replica). A service always keeps at least one binding.
    pub fn remove_binding(
        &mut self,
        service_key: &str,
        access_point: &str,
    ) -> Result<BindingTemplate, UddiError> {
        let svc = self
            .services
            .get_mut(service_key)
            .ok_or_else(|| UddiError::UnknownKey(service_key.to_owned()))?;
        let idx = svc
            .bindings
            .iter()
            .position(|b| b.access_point == access_point)
            .ok_or_else(|| UddiError::UnknownKey(access_point.to_owned()))?;
        if svc.bindings.len() == 1 {
            return Err(UddiError::LastBinding(service_key.to_owned()));
        }
        Ok(svc.bindings.remove(idx))
    }

    /// Unpublish a service.
    pub fn delete(&mut self, service_key: &str) -> Result<BusinessService, UddiError> {
        let svc = self
            .services
            .remove(service_key)
            .ok_or_else(|| UddiError::UnknownKey(service_key.to_owned()))?;
        self.by_name.remove(&svc.name);
        Ok(svc)
    }

    /// Number of published services.
    pub fn len(&self) -> usize {
        self.services.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.services.is_empty()
    }

    /// `(publishes, inquiries)` counters.
    pub fn counters(&self) -> (u64, u64) {
        (self.publishes, self.inquiries)
    }
}

/// `%`-wildcard matching (UDDI's approximate-match syntax).
fn pattern_matches(pattern: &str, name: &str) -> bool {
    let parts: Vec<&str> = pattern.split('%').collect();
    if parts.len() == 1 {
        return pattern == name;
    }
    let mut pos = 0usize;
    for (i, part) in parts.iter().enumerate() {
        if part.is_empty() {
            continue;
        }
        match name[pos..].find(part) {
            Some(found) => {
                // a non-leading-wildcard pattern anchors the first part
                if i == 0 && found != 0 {
                    return false;
                }
                pos += found + part.len();
            }
            None => return false,
        }
    }
    // a non-trailing-wildcard pattern anchors the last part
    if !parts.last().expect("non-empty split").is_empty() && !name.ends_with(parts.last().unwrap())
    {
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn binding(n: &str) -> BindingTemplate {
        BindingTemplate {
            access_point: format!("http://appliance:8080/services/{n}"),
            wsdl_location: format!("http://appliance:8080/services/{n}?wsdl"),
        }
    }

    fn registry_with(names: &[&str]) -> UddiRegistry {
        let mut r = UddiRegistry::new();
        for n in names {
            r.publish("Cyberaide onServe", n, "desc", binding(n)).unwrap();
        }
        r
    }

    #[test]
    fn publish_and_get() {
        let mut r = UddiRegistry::new();
        let key = r
            .publish("Cyberaide onServe", "Blast", "alignment", binding("Blast"))
            .unwrap();
        let svc = r.get(&key).unwrap();
        assert_eq!(svc.name, "Blast");
        assert_eq!(svc.business, "Cyberaide onServe");
        assert_eq!(svc.bindings[0].access_point, "http://appliance:8080/services/Blast");
        assert!(key.starts_with("uuid:"));
    }

    #[test]
    fn duplicate_name_rejected() {
        let mut r = registry_with(&["Blast"]);
        let err = r
            .publish("x", "Blast", "", binding("Blast"))
            .unwrap_err();
        assert_eq!(err, UddiError::DuplicateName("Blast".into()));
    }

    #[test]
    fn unknown_key_errors() {
        let mut r = UddiRegistry::new();
        assert!(matches!(r.get("uuid:nope"), Err(UddiError::UnknownKey(_))));
        assert!(matches!(r.delete("uuid:nope"), Err(UddiError::UnknownKey(_))));
    }

    #[test]
    fn exact_find() {
        let mut r = registry_with(&["Blast", "Solver", "BlastPlus"]);
        let hits = r.find("Blast");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].name, "Blast");
    }

    #[test]
    fn wildcard_find() {
        let mut r = registry_with(&["Blast", "Solver", "BlastPlus", "megaBlast"]);
        assert_eq!(r.find("Blast%").len(), 2); // Blast, BlastPlus
        assert_eq!(r.find("%Blast").len(), 2); // Blast, megaBlast
        assert_eq!(r.find("%last%").len(), 3);
        assert_eq!(r.find("%").len(), 4);
        assert_eq!(r.find("%zzz%").len(), 0);
    }

    #[test]
    fn find_is_case_insensitive() {
        let mut r = registry_with(&["Blast"]);
        assert_eq!(r.find("blast").len(), 1);
        assert_eq!(r.find("BLAST%").len(), 1);
    }

    #[test]
    fn delete_frees_name() {
        let mut r = registry_with(&["Blast"]);
        let key = r.find("Blast")[0].service_key.clone();
        let svc = r.delete(&key).unwrap();
        assert_eq!(svc.name, "Blast");
        assert!(r.is_empty());
        // name can be reused after deletion
        assert!(r.publish("b", "Blast", "", binding("Blast")).is_ok());
    }

    #[test]
    fn keys_are_unique_and_deterministic() {
        let mut r1 = registry_with(&["a", "b", "c"]);
        let mut r2 = registry_with(&["a", "b", "c"]);
        let k1: Vec<String> = r1.find("%").iter().map(|s| s.service_key.clone()).collect();
        let k2: Vec<String> = r2.find("%").iter().map(|s| s.service_key.clone()).collect();
        assert_eq!(k1, k2);
        let mut uniq = k1.clone();
        uniq.dedup();
        assert_eq!(uniq.len(), 3);
    }

    #[test]
    fn update_description_in_place() {
        let mut r = registry_with(&["Blast"]);
        let key = r.find("Blast")[0].service_key.clone();
        r.update_description(&key, "new words").unwrap();
        assert_eq!(r.get(&key).unwrap().description, "new words");
        assert!(matches!(
            r.update_description("uuid:none", "x"),
            Err(UddiError::UnknownKey(_))
        ));
    }

    #[test]
    fn bindings_grow_and_shrink_with_replicas() {
        let mut r = registry_with(&["Blast"]);
        let key = r.find("Blast")[0].service_key.clone();
        r.add_binding(
            &key,
            BindingTemplate {
                access_point: "http://app2:8080/services/Blast".into(),
                wsdl_location: "http://app2:8080/services/Blast?wsdl".into(),
            },
        )
        .unwrap();
        assert_eq!(r.get(&key).unwrap().bindings.len(), 2);
        // duplicate access point rejected
        assert!(matches!(
            r.add_binding(
                &key,
                BindingTemplate {
                    access_point: "http://app2:8080/services/Blast".into(),
                    wsdl_location: "x".into(),
                },
            ),
            Err(UddiError::DuplicateBinding(_))
        ));
        let gone = r
            .remove_binding(&key, "http://app2:8080/services/Blast")
            .unwrap();
        assert_eq!(gone.access_point, "http://app2:8080/services/Blast");
        // the last binding cannot be removed
        assert!(matches!(
            r.remove_binding(&key, "http://appliance:8080/services/Blast"),
            Err(UddiError::LastBinding(_))
        ));
        assert_eq!(r.get(&key).unwrap().bindings.len(), 1);
        assert!(matches!(
            r.add_binding("uuid:none", binding("x")),
            Err(UddiError::UnknownKey(_))
        ));
    }

    #[test]
    fn counters_track_usage() {
        let mut r = registry_with(&["a", "b"]);
        let _ = r.find("%");
        let key = r.find("a")[0].service_key.clone();
        let _ = r.get(&key);
        assert_eq!(r.counters(), (2, 3));
    }
}
