//! Property-based invariants of the Web-service substrate.

use proptest::prelude::*;
use wsstack::soap::Envelope;
use wsstack::uddi::BindingTemplate;
use wsstack::{ParamType, SoapValue, UddiRegistry, WsdlDocument, WsdlOperation, WsdlParam, XmlNode};

/// Text that survives our parser's whitespace normalization: either empty
/// or with non-whitespace at both ends.
fn arb_text() -> impl Strategy<Value = String> {
    proptest::string::string_regex("([!-~]([ -~]{0,20}[!-~])?)?").expect("regex")
}

fn arb_name() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[A-Za-z][A-Za-z0-9_.:-]{0,12}").expect("regex")
}

fn arb_xml() -> impl Strategy<Value = XmlNode> {
    let leaf = (arb_name(), arb_text(), proptest::collection::vec((arb_name(), arb_text()), 0..3))
        .prop_map(|(name, text, attrs)| {
            let mut n = XmlNode::text_node(&name, &text);
            n.attrs = attrs;
            n
        });
    leaf.prop_recursive(3, 24, 4, |inner| {
        (
            arb_name(),
            proptest::collection::vec((arb_name(), arb_text()), 0..3),
            proptest::collection::vec(inner, 1..4),
        )
            .prop_map(|(name, attrs, children)| {
                let mut n = XmlNode::new(&name);
                n.attrs = attrs;
                n.children = children;
                n
            })
    })
}

fn arb_soap_value() -> impl Strategy<Value = SoapValue> {
    prop_oneof![
        arb_text().prop_map(SoapValue::Str),
        any::<i64>().prop_map(SoapValue::Int),
        (-1e30f64..1e30).prop_map(SoapValue::Double),
        any::<bool>().prop_map(SoapValue::Bool),
        (0.0f64..1e9, any::<u64>()).prop_map(|(bytes, digest)| SoapValue::Binary {
            bytes: bytes.trunc(),
            digest
        }),
    ]
}

fn arb_param_type() -> impl Strategy<Value = ParamType> {
    prop_oneof![
        Just(ParamType::Str),
        Just(ParamType::Int),
        Just(ParamType::Double),
        Just(ParamType::Bool),
        Just(ParamType::Binary),
    ]
}

proptest! {
    /// XML writer → parser is the identity for arbitrary trees.
    #[test]
    fn xml_roundtrip(doc in arb_xml()) {
        let text = doc.to_xml();
        let parsed = XmlNode::parse(&text);
        prop_assert!(parsed.is_ok(), "parse failed on {}: {:?}", text, parsed.err());
        prop_assert_eq!(parsed.unwrap(), doc);
    }

    /// SOAP envelopes round-trip through full serialization for arbitrary
    /// argument sets.
    #[test]
    fn envelope_roundtrip(
        service in proptest::string::string_regex("[A-Za-z][A-Za-z0-9_]{0,12}").expect("regex"),
        op in proptest::string::string_regex("[a-z][A-Za-z0-9_]{0,12}").expect("regex"),
        args in proptest::collection::btree_map(
            proptest::string::string_regex("[a-z][a-z0-9_]{0,8}").expect("regex"),
            arb_soap_value(),
            0..6,
        ),
    ) {
        let mut env = Envelope::request(&service, &op);
        env.args = args;
        let text = env.to_xml().to_xml();
        let doc = XmlNode::parse(&text).unwrap();
        let parsed = Envelope::parse(&doc);
        prop_assert!(parsed.is_ok(), "{:?} on {}", parsed.err(), text);
        prop_assert_eq!(parsed.unwrap(), env);
    }

    /// WSDL documents round-trip for arbitrary signatures.
    #[test]
    fn wsdl_roundtrip(
        service in proptest::string::string_regex("[A-Za-z][A-Za-z0-9_]{0,12}").expect("regex"),
        doc_text in arb_text(),
        ops in proptest::collection::vec(
            (
                proptest::string::string_regex("[a-z][A-Za-z0-9_]{0,10}").expect("regex"),
                proptest::collection::vec(
                    (proptest::string::string_regex("[a-z][a-z0-9_]{0,8}").expect("regex"), arb_param_type()),
                    0..5,
                ),
                arb_param_type(),
            ),
            1..4,
        ),
    ) {
        let operations: Vec<WsdlOperation> = ops
            .into_iter()
            .map(|(name, params, output)| WsdlOperation {
                name,
                inputs: params
                    .into_iter()
                    .map(|(n, t)| WsdlParam { name: n, ty: t })
                    .collect(),
                output,
            })
            .collect();
        let w = WsdlDocument {
            service,
            endpoint: "http://appliance:8080/services/x".into(),
            documentation: doc_text,
            operations,
        };
        let parsed = WsdlDocument::parse_text(&w.to_text());
        prop_assert!(parsed.is_ok(), "{:?}", parsed.err());
        prop_assert_eq!(parsed.unwrap(), w);
    }

    /// UDDI: every published service is found by its exact name, by the
    /// universal wildcard, and by any substring pattern of its name.
    #[test]
    fn uddi_find_properties(
        names in proptest::collection::btree_set(
            proptest::string::string_regex("[A-Za-z][A-Za-z0-9_-]{0,14}").expect("regex"),
            1..20,
        ),
    ) {
        let mut reg = UddiRegistry::new();
        for n in &names {
            reg.publish("b", n, "", BindingTemplate {
                access_point: format!("http://x/{n}"),
                wsdl_location: String::new(),
            }).unwrap();
        }
        prop_assert_eq!(reg.find("%").len(), names.len());
        for n in &names {
            let exact = reg.find(n);
            prop_assert!(exact.iter().any(|s| &s.name == n), "exact miss for {}", n);
            if n.len() >= 3 {
                let mid = &n[1..n.len() - 1];
                let pat = format!("%{mid}%");
                prop_assert!(
                    reg.find(&pat).iter().any(|s| &s.name == n),
                    "substring miss: {} in {}", pat, n
                );
            }
        }
    }

    /// Wire size grows monotonically with binary payload size.
    #[test]
    fn envelope_wire_size_monotone(a in 0.0f64..1e8, b in 0.0f64..1e8) {
        let mk = |bytes: f64| {
            Envelope::request("S", "op")
                .arg("d", SoapValue::Binary { bytes, digest: 1 })
                .wire_size()
        };
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(mk(lo) <= mk(hi));
    }
}
