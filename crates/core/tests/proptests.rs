//! Property-based invariants of the onServe middleware layer.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::rc::Rc;

use blobstore::ParamSpec;
use onserve::deployment::{synth_payload, Deployment, DeploymentSpec};
use onserve::generator::{generate, service_name_for};
use onserve::params::{param_type_from_name, validate_args};
use onserve::profile::ExecutionProfile;
use proptest::prelude::*;
use simkit::{Duration, Rng, Sim};
use wsstack::SoapValue;

proptest! {
    /// Derived service names are always valid identifiers: non-empty,
    /// ASCII-alphanumeric/underscore, non-digit first char.
    #[test]
    fn service_names_are_identifiers(file in "\\PC{0,40}") {
        let name = service_name_for(&file);
        prop_assert!(!name.is_empty());
        prop_assert!(name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'));
        prop_assert!(!name.chars().next().unwrap().is_ascii_digit());
    }

    /// Generation succeeds exactly when every declared type is known, and
    /// the WSDL's operation mirrors the declaration order.
    #[test]
    fn generation_mirrors_declarations(
        types in proptest::collection::vec(
            proptest::string::string_regex("(string|int|double|boolean|base64|bogus)").expect("regex"),
            0..6,
        ),
    ) {
        let params: Vec<ParamSpec> = types
            .iter()
            .enumerate()
            .map(|(i, t)| ParamSpec::new(&format!("p{i}"), t))
            .collect();
        let rec = blobstore::ExecutableRecord {
            id: 1,
            name: "tool.exe".into(),
            description: String::new(),
            params: params.clone(),
            original_len: 10,
            stored_len: 10,
            checksum: 0,
        };
        let result = generate(&rec, "appliance");
        let all_known = types.iter().all(|t| param_type_from_name(t).is_some());
        prop_assert_eq!(result.is_ok(), all_known);
        if let Ok(g) = result {
            let op = g.wsdl.operation("execute").unwrap();
            let names: Vec<&str> = op.inputs.iter().map(|p| p.name.as_str()).collect();
            let expect: Vec<String> = (0..types.len()).map(|i| format!("p{i}")).collect();
            prop_assert_eq!(names, expect.iter().map(String::as_str).collect::<Vec<_>>());
        }
    }

    /// Argument validation accepts exactly the declared shape and renders
    /// one string per declared parameter, in declaration order.
    #[test]
    fn validate_args_shape(n_args in 0usize..5, extra in any::<bool>()) {
        let specs: Vec<ParamSpec> =
            (0..n_args).map(|i| ParamSpec::new(&format!("a{i}"), "int")).collect();
        let mut args: BTreeMap<String, SoapValue> = (0..n_args)
            .map(|i| (format!("a{i}"), SoapValue::Int(i as i64)))
            .collect();
        if extra {
            args.insert("zz_extra".into(), SoapValue::Int(0));
        }
        let r = validate_args(&specs, &args);
        if extra {
            prop_assert!(r.is_err());
        } else {
            let rendered = r.unwrap();
            let expect: Vec<String> = (0..n_args).map(|i| i.to_string()).collect();
            prop_assert_eq!(rendered, expect);
        }
    }

    /// Profile sampling respects the jitter band and never produces a
    /// non-positive runtime.
    #[test]
    fn profile_sampling_banded(
        secs in 1u64..100_000,
        jitter in 0.0f64..0.9,
        seed in any::<u64>(),
    ) {
        let p = ExecutionProfile {
            runtime: Duration::from_secs(secs),
            runtime_jitter: jitter,
            cores: 1,
            output_bytes: 1.0,
            walltime_factor: 2.0,
        };
        let mut rng = Rng::new(seed);
        let m = p.sample(&mut rng);
        let r = m.actual_runtime.as_secs_f64();
        let base = secs as f64;
        prop_assert!(r > 0.0);
        prop_assert!(r >= base * (1.0 - jitter) - 1.0, "{} below band", r);
        prop_assert!(r <= base * (1.0 + jitter) + 1.0, "{} above band", r);
    }

    /// Synthetic payloads are deterministic in (len, seed) and exactly the
    /// requested length.
    #[test]
    fn synth_payload_deterministic(len in 0usize..100_000, seed in any::<u64>()) {
        let a = synth_payload(len, seed);
        let b = synth_payload(len, seed);
        prop_assert_eq!(a.len(), len);
        prop_assert_eq!(a, b);
    }

    /// Randomized end-to-end: any quick profile publishes and invokes
    /// successfully, and the delivered output matches the profile.
    #[test]
    fn random_profiles_invoke_end_to_end(
        exe_kb in 1usize..256,
        runtime_s in 1u64..120,
        out_kb in 0u64..64,
        seed in 0u64..1000,
    ) {
        let mut sim = Sim::new(seed);
        let d = Deployment::build(&mut sim, &DeploymentSpec::default());
        let profile = ExecutionProfile::quick()
            .lasting(Duration::from_secs(runtime_s))
            .producing((out_kb * 1024) as f64);
        let req = d.upload_request("p.exe", exe_kb * 1024, profile, &[]);
        d.portal.upload(&mut sim, req, |_, r| { r.expect("publish"); });
        sim.run();
        let got = Rc::new(Cell::new(None));
        let g = got.clone();
        d.invoke(&mut sim, "p", &[], move |_, r| {
            if let Ok(SoapValue::Binary { bytes, .. }) = r {
                g.set(Some(bytes));
            }
        });
        sim.run();
        let bytes = got.get().expect("invocation must succeed");
        prop_assert!((bytes - (out_kb * 1024) as f64).abs() < 1.0);
    }
}
