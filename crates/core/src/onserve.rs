//! The onServe middleware: upload→generate→publish, and the SaaS→JSE
//! invocation pipeline.
//!
//! Scenario A (§VII-A): an uploaded executable is stored in the database,
//! a Web service is generated from the template and deployed into the
//! SOAP container, and the service is published in the UDDI registry.
//!
//! Scenario B (§VII-B): invoking a generated service runs the translation
//! pipeline — *file retrieval* from the database, *authentication* through
//! the Cyberaide agent, *upload* (staging) to the selected site, *job
//! description generation*, *job submission*, and tentative output polling
//! until the result comes back as the SOAP response.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::rc::{Rc, Weak};

use blobstore::{DbError, ParamSpec, TimedDb, WriteStrategy};
use bytes::Bytes;
use cyberaide::{CyberaideAgent, OutputPoller, PollError};
use gridsim::{BrokerPolicy, GridError, JobDescription};
use simkit::{Duration, Host, Sim, SpanId};
use wsstack::container::Responder;
use wsstack::uddi::BindingTemplate;
use wsstack::{ClientStub, ServiceArchive, SoapContainer, SoapFault, SoapValue, UddiRegistry};

use crate::generator;
use crate::params::validate_args;
use crate::profile::ExecutionProfile;
use crate::watchdog::Watchdog;

/// Middleware configuration (every ◆ ablation from DESIGN.md lives here).
#[derive(Clone, Debug)]
pub struct OnServeConfig {
    /// How uploads reach the database (◆ double-write flaw vs direct).
    pub write_strategy: WriteStrategy,
    /// Tentative output-poll interval (◆ drives the periodic disk peaks).
    pub poll_interval: Duration,
    /// Give up polling after this long.
    pub poll_timeout: Duration,
    /// Watchdog limit for a whole invocation.
    pub invocation_timeout: Duration,
    /// Skip re-staging executables already at the site (◆ the paper's
    /// build always re-uploads: "large files ... will even be reloaded
    /// when executed a 2nd time", §VIII-B).
    pub reuse_staged_files: bool,
    /// Reuse an authenticated Grid session across invocations instead of
    /// performing the MyProxy credential exchange every time (◆ the
    /// paper's build authenticates per invocation, which is why the
    /// credential traffic dominates Figure 6).
    pub cache_grid_sessions: bool,
    /// Site-selection policy.
    pub broker: BrokerPolicy,
    /// Grid-side retries on *transient* failures (gatekeeper outage, node
    /// failure, storage full): re-select a site excluding the failed one
    /// and run again. The paper's build has none (`0`); this is a
    /// beyond-paper resilience extension (DESIGN.md section 8).
    pub job_retries: u32,
}

impl Default for OnServeConfig {
    fn default() -> Self {
        OnServeConfig {
            write_strategy: WriteStrategy::DoubleWrite,
            poll_interval: Duration::from_secs(9),
            poll_timeout: Duration::from_secs(24 * 3600),
            invocation_timeout: Duration::from_secs(48 * 3600),
            reuse_staged_files: false,
            cache_grid_sessions: false,
            broker: BrokerPolicy::MostFreeCores,
            job_retries: 0,
        }
    }
}

/// What publishing an upload produced.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PublishedService {
    /// UDDI service key.
    pub service_key: String,
    /// Generated service name.
    pub service_name: String,
    /// SOAP endpoint.
    pub endpoint: String,
    /// Serialized WSDL (what the registry's `wsdl_location` serves).
    pub wsdl_text: String,
}

/// Upload-path failures.
#[derive(Clone, Debug, PartialEq)]
pub enum UploadError {
    /// Database rejected the executable.
    Db(DbError),
    /// WSDL/archive generation failed (bad parameter declarations).
    Generation(String),
    /// The registry rejected publication.
    Registry(String),
    /// Update target does not exist.
    NoSuchService(String),
}

impl fmt::Display for UploadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UploadError::Db(e) => write!(f, "database: {e}"),
            UploadError::Generation(m) => write!(f, "generation: {m}"),
            UploadError::Registry(m) => write!(f, "registry: {m}"),
            UploadError::NoSuchService(s) => write!(f, "no such service: {s}"),
        }
    }
}

impl std::error::Error for UploadError {}

/// Invocation-path failures (rendered as `soap:Server` faults on the
/// wire).
#[derive(Clone, Debug, PartialEq)]
pub enum InvokeError {
    /// Unknown service (undeployed/unpublished).
    NoSuchService(String),
    /// Arguments failed validation against the declared parameters.
    BadArguments(String),
    /// Fetching the executable from the database failed.
    Db(DbError),
    /// Grid-side failure (auth, staging, submission, polling).
    Grid(String),
    /// The job failed on the Grid.
    JobFailed(String),
    /// The watchdog killed the invocation.
    WatchdogTimeout,
}

impl fmt::Display for InvokeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvokeError::NoSuchService(s) => write!(f, "no such service: {s}"),
            InvokeError::BadArguments(m) => write!(f, "bad arguments: {m}"),
            InvokeError::Db(e) => write!(f, "database: {e}"),
            InvokeError::Grid(m) => write!(f, "grid: {m}"),
            InvokeError::JobFailed(m) => write!(f, "job failed: {m}"),
            InvokeError::WatchdogTimeout => write!(f, "watchdog: invocation timed out"),
        }
    }
}

impl std::error::Error for InvokeError {}

impl From<InvokeError> for SoapFault {
    fn from(e: InvokeError) -> SoapFault {
        match &e {
            InvokeError::NoSuchService(_) | InvokeError::BadArguments(_) => {
                SoapFault::client(&e.to_string())
            }
            _ => SoapFault::server(&e.to_string()),
        }
    }
}

/// Shared failure continuation threaded through the invocation pipeline.
type FailFn = Rc<dyn Fn(&mut Sim, InvokeError)>;

struct ServiceMeta {
    exe_name: String,
    params: Vec<ParamSpec>,
    owner_user: String,
    owner_pass: String,
    profile: ExecutionProfile,
    service_key: String,
    version: generator::ServiceVersion,
}

/// The middleware.
pub struct OnServe {
    host: Rc<Host>,
    container: Rc<RefCell<SoapContainer>>,
    registry: Rc<RefCell<UddiRegistry>>,
    db: Rc<TimedDb>,
    agent: Rc<CyberaideAgent>,
    config: OnServeConfig,
    services: RefCell<BTreeMap<String, ServiceMeta>>,
    staged: RefCell<BTreeSet<(String, String)>>,
    grid_sessions: RefCell<BTreeMap<String, cyberaide::SessionId>>,
    invocations: Cell<u64>,
    invocation_failures: Cell<u64>,
    /// Authentications performed against the agent (cache misses included).
    auths: Cell<u64>,
    /// Invocations served from a cached grid session (re-auths avoided).
    session_hits: Cell<u64>,
    /// Stale cached sessions evicted (and logged out of the agent).
    session_evictions: Cell<u64>,
    /// Version stamped into subsequent generator builds. Rollout
    /// controllers bump this on vN+1 appliances before provisioning;
    /// already-deployed services keep the version they were built at.
    artifact_version: Cell<u32>,
}

impl OnServe {
    /// Assemble the middleware on an appliance.
    pub fn new(
        host: Rc<Host>,
        container: Rc<RefCell<SoapContainer>>,
        registry: Rc<RefCell<UddiRegistry>>,
        db: Rc<TimedDb>,
        agent: Rc<CyberaideAgent>,
        config: OnServeConfig,
    ) -> Rc<OnServe> {
        Rc::new(OnServe {
            host,
            container,
            registry,
            db,
            agent,
            config,
            services: RefCell::new(BTreeMap::new()),
            staged: RefCell::new(BTreeSet::new()),
            grid_sessions: RefCell::new(BTreeMap::new()),
            invocations: Cell::new(0),
            invocation_failures: Cell::new(0),
            auths: Cell::new(0),
            session_hits: Cell::new(0),
            session_evictions: Cell::new(0),
            artifact_version: Cell::new(1),
        })
    }

    /// The UDDI registry.
    pub fn registry(&self) -> &Rc<RefCell<UddiRegistry>> {
        &self.registry
    }

    /// The SOAP container.
    pub fn container(&self) -> &Rc<RefCell<SoapContainer>> {
        &self.container
    }

    /// The executable database.
    pub fn db(&self) -> &Rc<TimedDb> {
        &self.db
    }

    /// The Cyberaide agent.
    pub fn agent(&self) -> &Rc<CyberaideAgent> {
        &self.agent
    }

    /// The appliance host.
    pub fn host(&self) -> &Rc<Host> {
        &self.host
    }

    /// Active configuration.
    pub fn config(&self) -> &OnServeConfig {
        &self.config
    }

    /// `(invocations, failures)` counters.
    pub fn counters(&self) -> (u64, u64) {
        (self.invocations.get(), self.invocation_failures.get())
    }

    /// `(authentications, cache hits, stale evictions)` — how often the
    /// grid-session cache saved a MyProxy round trip, and how often a
    /// cached proxy had to be evicted (and logged out) for staleness.
    pub fn session_counters(&self) -> (u64, u64, u64) {
        (
            self.auths.get(),
            self.session_hits.get(),
            self.session_evictions.get(),
        )
    }

    /// Version stamped into the next generator build on this appliance.
    pub fn artifact_version(&self) -> generator::ServiceVersion {
        generator::ServiceVersion(self.artifact_version.get())
    }

    /// Set the version stamped into subsequent builds. Existing
    /// deployments are untouched — they keep serving the build they
    /// were provisioned with.
    pub fn set_artifact_version(&self, version: u32) {
        self.artifact_version.set(version);
    }

    /// Version of the build a published service currently serves.
    pub fn service_version(&self, service_name: &str) -> Option<generator::ServiceVersion> {
        self.services.borrow().get(service_name).map(|m| m.version)
    }

    /// Scenario A: store the uploaded executable, generate + deploy the
    /// Web service, publish it. (Network/CPU costs of *receiving* the
    /// upload belong to the portal.)
    #[allow(clippy::too_many_arguments)]
    pub fn upload_executable<F>(
        self: &Rc<Self>,
        sim: &mut Sim,
        file_name: &str,
        description: &str,
        params: Vec<ParamSpec>,
        data: Bytes,
        owner: (&str, &str),
        profile: ExecutionProfile,
        done: F,
    ) where
        F: FnOnce(&mut Sim, Result<PublishedService, UploadError>) + 'static,
    {
        let this = Rc::clone(self);
        let owner_user = owner.0.to_owned();
        let owner_pass = owner.1.to_owned();
        let file_name2 = file_name.to_owned();
        let description2 = description.to_owned();
        let up_span = sim.span_begin("onserve.upload");
        sim.span_attr(up_span, "file", file_name);
        // single close point: every exit path funnels through `done`
        let done = move |sim: &mut Sim, res: Result<PublishedService, UploadError>| {
            match &res {
                Ok(_) => sim.span_end(up_span),
                Err(e) => sim.span_fail(up_span, &e.to_string()),
            }
            done(sim, res)
        };
        let prev = sim.set_span_parent(up_span);
        self.db.clone().store(
            sim,
            file_name,
            description,
            params.clone(),
            data,
            move |sim, res, _timing| {
                let id = match res {
                    Ok(id) => id,
                    Err(e) => return done(sim, Err(UploadError::Db(e))),
                };
                let record = this
                    .db
                    .db()
                    .borrow()
                    .record_by_id(id)
                    .expect("just inserted")
                    .clone();
                let generated = match generator::generate_versioned(
                    &record,
                    this.host.name(),
                    generator::ServiceVersion(this.artifact_version.get()),
                ) {
                    Ok(g) => g,
                    Err(m) => return done(sim, Err(UploadError::Generation(m))),
                };
                let built_version = generated.version;
                // the ant build burns appliance CPU before deployment
                let this2 = Rc::clone(&this);
                let host = Rc::clone(&this.host);
                let build_span = sim.span_child("generator.build", up_span);
                sim.span_attr(build_span, "cpu_secs", generated.build_cpu_secs);
                host.compute(sim, generated.build_cpu_secs, move |sim| {
                    sim.span_end(build_span);
                    let service_name = generated.service_name.clone();
                    let wsdl_text = generated.wsdl.to_text();
                    let endpoint = generated.wsdl.endpoint.clone();
                    let handler = Self::make_handler(&this2, &service_name);
                    let archive = ServiceArchive {
                        name: service_name.clone(),
                        wsdl: generated.wsdl,
                        archive_bytes: generated.archive_bytes,
                        handler,
                    };
                    let this3 = Rc::clone(&this2);
                    let container = Rc::clone(&this2.container);
                    let prev = sim.set_span_parent(up_span);
                    SoapContainer::deploy(&container, sim, archive, move |sim, dres| {
                        if let Err(f) = dres {
                            return done(
                                sim,
                                Err(UploadError::Generation(format!("deploy failed: {f}"))),
                            );
                        }
                        let pub_span = sim.span_child("uddi.publish", up_span);
                        let publish = this3.registry.borrow_mut().publish(
                            "Cyberaide onServe",
                            &service_name,
                            &description2,
                            BindingTemplate {
                                access_point: endpoint.clone(),
                                wsdl_location: format!("{endpoint}?wsdl"),
                            },
                        );
                        match publish {
                            Err(e) => {
                                sim.span_fail(pub_span, &e.to_string());
                                this3.container.borrow_mut().undeploy(&service_name);
                                done(sim, Err(UploadError::Registry(e.to_string())))
                            }
                            Ok(service_key) => {
                                sim.span_attr(pub_span, "service_key", service_key.as_str());
                                sim.span_end(pub_span);
                                this3.services.borrow_mut().insert(
                                    service_name.clone(),
                                    ServiceMeta {
                                        exe_name: file_name2.clone(),
                                        params,
                                        owner_user,
                                        owner_pass,
                                        profile,
                                        service_key: service_key.clone(),
                                        version: built_version,
                                    },
                                );
                                done(
                                    sim,
                                    Ok(PublishedService {
                                        service_key,
                                        service_name,
                                        endpoint,
                                        wsdl_text,
                                    }),
                                )
                            }
                        }
                    });
                    sim.set_span_parent(prev);
                });
            },
        );
        sim.set_span_parent(prev);
    }

    /// Replace a published service's executable (and optionally its
    /// declared parameters, description and execution profile) in place:
    /// same service name, same UDDI key, same endpoint. Cached stagings of
    /// the old binary are invalidated so the next invocation ships the new
    /// one even under `reuse_staged_files`.
    #[allow(clippy::too_many_arguments)]
    pub fn update_executable<F>(
        self: &Rc<Self>,
        sim: &mut Sim,
        service_name: &str,
        data: Bytes,
        new_params: Option<Vec<ParamSpec>>,
        new_description: Option<String>,
        new_profile: Option<ExecutionProfile>,
        done: F,
    ) where
        F: FnOnce(&mut Sim, Result<(), UploadError>) + 'static,
    {
        let (exe_name, old_params, old_desc) = {
            let services = self.services.borrow();
            match services.get(service_name) {
                None => {
                    drop(services);
                    return done(
                        sim,
                        Err(UploadError::NoSuchService(service_name.to_owned())),
                    );
                }
                Some(m) => {
                    let desc = self
                        .db
                        .db()
                        .borrow()
                        .record(&m.exe_name)
                        .map(|r| r.description.clone())
                        .unwrap_or_default();
                    (m.exe_name.clone(), m.params.clone(), desc)
                }
            }
        };
        let params = new_params.unwrap_or(old_params);
        let description = new_description.unwrap_or(old_desc);
        // drop the old row; the timed store writes the replacement
        let _ = self.db.db().borrow_mut().delete(&exe_name);
        let this = Rc::clone(self);
        let service_name = service_name.to_owned();
        let exe_arg = exe_name.clone();
        let desc_arg = description.clone();
        self.db.clone().store(
            sim,
            &exe_arg,
            &desc_arg,
            params.clone(),
            data,
            move |sim, res, _timing| {
                let id = match res {
                    Ok(id) => id,
                    Err(e) => return done(sim, Err(UploadError::Db(e))),
                };
                let record = this
                    .db
                    .db()
                    .borrow()
                    .record_by_id(id)
                    .expect("just inserted")
                    .clone();
                let generated = match generator::generate_versioned(
                    &record,
                    this.host.name(),
                    generator::ServiceVersion(this.artifact_version.get()),
                ) {
                    Ok(g) => g,
                    Err(m) => return done(sim, Err(UploadError::Generation(m))),
                };
                let built_version = generated.version;
                let this2 = Rc::clone(&this);
                let host = Rc::clone(&this.host);
                host.compute(sim, generated.build_cpu_secs, move |sim| {
                    let handler = Self::make_handler(&this2, &service_name);
                    let archive = ServiceArchive {
                        name: service_name.clone(),
                        wsdl: generated.wsdl,
                        archive_bytes: generated.archive_bytes,
                        handler,
                    };
                    let this3 = Rc::clone(&this2);
                    let container = Rc::clone(&this2.container);
                    SoapContainer::deploy(&container, sim, archive, move |sim, dres| {
                        if let Err(f) = dres {
                            return done(
                                sim,
                                Err(UploadError::Generation(format!("redeploy failed: {f}"))),
                            );
                        }
                        {
                            let mut services = this3.services.borrow_mut();
                            let meta = services
                                .get_mut(&service_name)
                                .expect("service present for update");
                            meta.params = params;
                            meta.version = built_version;
                            if let Some(p) = new_profile {
                                meta.profile = p;
                            }
                            let _ = this3
                                .registry
                                .borrow_mut()
                                .update_description(&meta.service_key, &description);
                        }
                        // invalidate cached stagings of the replaced binary
                        this3
                            .staged
                            .borrow_mut()
                            .retain(|(_, exe)| exe != &exe_name);
                        done(sim, Ok(()));
                    });
                });
            },
        );
    }

    /// Unpublish + undeploy + delete a service and its executable.
    pub fn remove_service(&self, service_name: &str) -> bool {
        let meta = match self.services.borrow_mut().remove(service_name) {
            Some(m) => m,
            None => return false,
        };
        let _ = self.registry.borrow_mut().delete(&meta.service_key);
        self.container.borrow_mut().undeploy(service_name);
        let _ = self.db.db().borrow_mut().delete(&meta.exe_name);
        true
    }

    /// Build a typed client for a published service by reading its WSDL
    /// from the container (the `?wsdl` endpoint a real client would hit).
    pub fn client_for(&self, service_name: &str) -> Result<ClientStub, InvokeError> {
        let wsdl = self
            .container
            .borrow()
            .wsdl_for(service_name)
            .cloned()
            .ok_or_else(|| InvokeError::NoSuchService(service_name.to_owned()))?;
        Ok(ClientStub::from_wsdl(wsdl))
    }

    /// The generated `GridService` template instance for one service.
    fn make_handler(this: &Rc<Self>, service_name: &str) -> Rc<dyn wsstack::container::ServiceHandler> {
        let weak: Weak<OnServe> = Rc::downgrade(this);
        let service_name = service_name.to_owned();
        Rc::new(
            move |sim: &mut Sim,
                  _op: &str,
                  args: &BTreeMap<String, SoapValue>,
                  respond: Responder| {
                match weak.upgrade() {
                    None => respond(sim, Err(SoapFault::server("middleware shut down"))),
                    Some(onserve) => {
                        OnServe::execute_service(&onserve, sim, &service_name, args, respond)
                    }
                }
            },
        )
    }

    /// Scenario B: the full SaaS→JSE translation for one invocation.
    pub fn execute_service(
        self: &Rc<Self>,
        sim: &mut Sim,
        service_name: &str,
        args: &BTreeMap<String, SoapValue>,
        respond: Responder,
    ) {
        self.invocations.set(self.invocations.get() + 1);
        let invocation_no = self.invocations.get();
        let inv_span = sim.span_begin("onserve.invoke");
        sim.span_attr(inv_span, "service", service_name);
        sim.span_attr(inv_span, "invocation", invocation_no);
        sim.counter_add("onserve.invocations", 1);
        // one-shot responder shared between the pipeline and the watchdog
        let slot: Rc<RefCell<Option<Responder>>> = Rc::new(RefCell::new(Some(respond)));
        let fail: FailFn = {
            let this = Rc::clone(self);
            let slot = Rc::clone(&slot);
            Rc::new(move |sim: &mut Sim, e: InvokeError| {
                if let Some(r) = slot.borrow_mut().take() {
                    this.invocation_failures
                        .set(this.invocation_failures.get() + 1);
                    sim.counter_add("onserve.failures", 1);
                    sim.span_fail(inv_span, &e.to_string());
                    r(sim, Err(e.into()));
                }
            })
        };
        let (meta_exe, rendered, profile, owner_user, owner_pass) = {
            let services = self.services.borrow();
            let meta = match services.get(service_name) {
                Some(m) => m,
                None => {
                    drop(services);
                    return fail(sim, InvokeError::NoSuchService(service_name.to_owned()));
                }
            };
            match validate_args(&meta.params, args) {
                Err(m) => {
                    drop(services);
                    return fail(sim, InvokeError::BadArguments(m));
                }
                Ok(rendered) => (
                    meta.exe_name.clone(),
                    rendered,
                    meta.profile,
                    meta.owner_user.clone(),
                    meta.owner_pass.clone(),
                ),
            }
        };
        let slot_for_dog = Rc::clone(&slot);
        let this = Rc::clone(self);
        let timeout_secs = self.config.invocation_timeout.as_secs_f64();
        let dog = Rc::new(Watchdog::arm(
            sim,
            self.config.invocation_timeout,
            move |sim| {
                if let Some(r) = slot_for_dog.borrow_mut().take() {
                    this.invocation_failures
                        .set(this.invocation_failures.get() + 1);
                    sim.counter_add("onserve.failures", 1);
                    sim.span_attr(inv_span, "timeout_secs", timeout_secs);
                    sim.span_fail(inv_span, "watchdog_timeout");
                    r(sim, Err(InvokeError::WatchdogTimeout.into()));
                }
            },
        ));
        // Step 1 — file retrieval from the database (temp write included)
        let this = Rc::clone(self);
        let fail1 = Rc::clone(&fail);
        let exe_arg = meta_exe.clone();
        let prev = sim.set_span_parent(inv_span);
        self.db.clone().load_for_use(sim, &exe_arg, move |sim, res, _t| {
            let fail = fail1;
            let data = match res {
                Ok(d) => d,
                Err(e) => return fail(sim, InvokeError::Db(e)),
            };
            // Step 2 — authentication via the agent (or a cached session,
            // when the ablation is on and the proxy is still fresh)
            let agent = Rc::clone(&this.agent);
            let owner_for_cache = owner_user.clone();
            let retries = this.config.job_retries;
            type WithSession = Box<dyn FnOnce(&mut Sim, cyberaide::SessionId)>;
            let with_session: WithSession = {
                let this2 = Rc::clone(&this);
                let fail2 = Rc::clone(&fail);
                let slot2 = Rc::clone(&slot);
                Box::new(move |sim: &mut Sim, session: cyberaide::SessionId| {
                    let ctx = Rc::new(AttemptCtx {
                        onserve: this2,
                        session,
                        exe_name: meta_exe,
                        rendered,
                        profile,
                        data_len: data.len() as f64,
                        invocation_no,
                        attempts_left: Cell::new(retries),
                        excluded_sites: RefCell::new(Vec::new()),
                        fail: fail2,
                        slot: slot2,
                        dog,
                        span: inv_span,
                    });
                    OnServe::grid_attempt(ctx, sim);
                })
            };
            let this_auth = Rc::clone(&this);
            let cached = if this.config.cache_grid_sessions {
                let candidate = this.grid_sessions.borrow().get(&owner_for_cache).copied();
                match candidate {
                    // keep a safety margin so the proxy outlives the job
                    Some(s)
                        if agent
                            .session_expires(s)
                            .is_some_and(|exp| exp > sim.now() + Duration::from_secs(600)) =>
                    {
                        Some(s)
                    }
                    // stale: evict *and* log out, or the agent's session
                    // map grows by one dead proxy per expiry
                    Some(stale) => {
                        this.grid_sessions.borrow_mut().remove(&owner_for_cache);
                        agent.logout(stale);
                        this.session_evictions.set(this.session_evictions.get() + 1);
                        sim.counter_add("onserve.session_evicted", 1);
                        None
                    }
                    None => None,
                }
            } else {
                None
            };
            match cached {
                Some(session) => {
                    this.session_hits.set(this.session_hits.get() + 1);
                    sim.counter_add("onserve.session_cache_hit", 1);
                    with_session(sim, session)
                }
                None => {
                    this.auths.set(this.auths.get() + 1);
                    let fail_auth = Rc::clone(&fail);
                    let prev = sim.set_span_parent(inv_span);
                    agent.authenticate(sim, &owner_user, &owner_pass, move |sim, auth| {
                        match auth {
                            Ok(session) => {
                                if this_auth.config.cache_grid_sessions {
                                    this_auth
                                        .grid_sessions
                                        .borrow_mut()
                                        .insert(owner_for_cache, session);
                                }
                                with_session(sim, session);
                            }
                            Err(e) => fail_auth(sim, InvokeError::Grid(e.to_string())),
                        }
                    });
                    sim.set_span_parent(prev);
                }
            }
        });
        sim.set_span_parent(prev);
    }
}


/// One grid-side attempt of an invocation: everything from site selection
/// to output polling, re-enterable for the retry extension.
struct AttemptCtx {
    onserve: Rc<OnServe>,
    session: cyberaide::SessionId,
    exe_name: String,
    rendered: Vec<String>,
    profile: ExecutionProfile,
    data_len: f64,
    invocation_no: u64,
    attempts_left: Cell<u32>,
    excluded_sites: RefCell<Vec<String>>,
    fail: FailFn,
    slot: Rc<RefCell<Option<Responder>>>,
    dog: Rc<Watchdog>,
    /// The invocation root span every grid-side stage nests under.
    span: SpanId,
}

impl AttemptCtx {
    /// Drop the Grid session if sessions are per-invocation (the paper's
    /// behaviour); cached sessions stay alive for the next invocation.
    fn logout(&self) {
        if !self.onserve.config.cache_grid_sessions {
            self.onserve.agent.logout(self.session);
        }
    }

    /// Route a failure: retry (when transient, budget left, and the
    /// watchdog hasn't already answered) or surface it.
    fn fail_or_retry(
        self: &Rc<Self>,
        sim: &mut Sim,
        err: InvokeError,
        failed_site: Option<String>,
        transient: bool,
    ) {
        if transient && self.attempts_left.get() > 0 && !self.dog.timed_out() {
            self.attempts_left.set(self.attempts_left.get() - 1);
            if let Some(site) = failed_site {
                self.excluded_sites.borrow_mut().push(site);
            }
            OnServe::grid_attempt(Rc::clone(self), sim);
            return;
        }
        self.logout();
        if self.dog.disarm(sim) {
            (self.fail)(sim, err);
        } else {
            // watchdog already answered; drop silently
            let _ = err;
        }
    }
}

impl OnServe {
    /// Steps 3–7 of the pipeline (site selection → staging → job
    /// description → submission → polling) as one attempt.
    fn grid_attempt(ctx: Rc<AttemptCtx>, sim: &mut Sim) {
        let this = Rc::clone(&ctx.onserve);
        // Step 3 — resource selection (minus sites that already failed)
        let site = {
            let excluded = ctx.excluded_sites.borrow();
            this.agent.grid().select_excluding(
                &this.config.broker,
                ctx.profile.cores,
                sim.now(),
                &excluded,
            )
        };
        let site = match site {
            Ok(s) => s,
            Err(e) => {
                return ctx.fail_or_retry(sim, InvokeError::Grid(e.to_string()), None, false)
            }
        };
        // Step 4 — upload (staging), unless cached and reuse is on
        let key = (site.name().to_owned(), ctx.exe_name.clone());
        let already = this.config.reuse_staged_files
            && this.staged.borrow().contains(&key)
            && site.storage().borrow().has(&ctx.exe_name);
        let ctx2 = Rc::clone(&ctx);
        let site_for_stage = Rc::clone(&site);
        let after_stage = move |sim: &mut Sim, staged: Result<(), GridError>| {
            let ctx = ctx2;
            if let Err(e) = staged {
                let site_name = site.name().to_owned();
                return ctx.fail_or_retry(
                    sim,
                    InvokeError::Grid(e.to_string()),
                    Some(site_name),
                    true,
                );
            }
            ctx.onserve
                .staged
                .borrow_mut()
                .insert((site.name().to_owned(), ctx.exe_name.clone()));
            // Step 5 — job description generation
            let output_file = format!(
                "{}-{}-{}.out",
                ctx.exe_name,
                ctx.invocation_no,
                ctx.attempts_left.get()
            );
            let jd = JobDescription::new(&ctx.exe_name)
                .args(ctx.rendered.iter().cloned())
                .cores(ctx.profile.cores)
                .walltime(ctx.profile.walltime_limit())
                .capture_stdout(&output_file);
            let exec = ctx.profile.sample(sim.rng());
            // Step 6 — job submission
            let ctx3 = Rc::clone(&ctx);
            let site2 = Rc::clone(&site);
            let prev = sim.set_span_parent(ctx.span);
            ctx.onserve.agent.clone().submit_job(
                sim,
                ctx.session,
                &site,
                &jd,
                exec,
                move |sim, submitted| {
                    let ctx = ctx3;
                    let handle = match submitted {
                        Ok(h) => h,
                        Err(e) => {
                            let transient = matches!(
                                e,
                                GridError::Unavailable(_) | GridError::StorageFull { .. }
                            );
                            let site_name = site2.name().to_owned();
                            return ctx.fail_or_retry(
                                sim,
                                InvokeError::Grid(e.to_string()),
                                Some(site_name),
                                transient,
                            );
                        }
                    };
                    // Step 7 — tentative output polling
                    let poller = OutputPoller {
                        interval: ctx.onserve.config.poll_interval,
                        timeout: ctx.onserve.config.poll_timeout,
                    };
                    let ctx4 = Rc::clone(&ctx);
                    let site_name = site2.name().to_owned();
                    let prev = sim.set_span_parent(ctx.span);
                    poller.start(
                        sim,
                        Rc::clone(&ctx.onserve.agent),
                        ctx.session,
                        site2,
                        handle,
                        move |sim, polled| {
                            let ctx = ctx4;
                            match polled {
                                Ok(stats) => {
                                    ctx.logout();
                                    if ctx.dog.disarm(sim) {
                                        if let Some(r) = ctx.slot.borrow_mut().take() {
                                            sim.span_attr(
                                                ctx.span,
                                                "output_bytes",
                                                stats.final_bytes as u64,
                                            );
                                            sim.span_attr(ctx.span, "polls", stats.polls);
                                            sim.span_end(ctx.span);
                                            r(
                                                sim,
                                                Ok(SoapValue::Binary {
                                                    bytes: stats.final_bytes,
                                                    digest: ctx.invocation_no,
                                                }),
                                            );
                                        }
                                    }
                                }
                                Err((e, _stats)) => {
                                    let (err, transient) = match e {
                                        PollError::JobFailed(o) => {
                                            let transient = matches!(
                                                o,
                                                gridsim::JobOutcome::NodeFailure
                                                    | gridsim::JobOutcome::Cancelled
                                            );
                                            (InvokeError::JobFailed(format!("{o:?}")), transient)
                                        }
                                        PollError::TimedOut { polls } => (
                                            InvokeError::Grid(format!(
                                                "output polling timed out after {polls} polls"
                                            )),
                                            false,
                                        ),
                                        PollError::Grid(g) => {
                                            (InvokeError::Grid(g.to_string()), false)
                                        }
                                    };
                                    ctx.fail_or_retry(sim, err, Some(site_name), transient);
                                }
                            }
                        },
                    );
                    sim.set_span_parent(prev);
                },
            );
            sim.set_span_parent(prev);
        };
        if already {
            after_stage(sim, Ok(()));
        } else {
            let ctx_stage = Rc::clone(&ctx);
            let prev = sim.set_span_parent(ctx.span);
            ctx.onserve.agent.clone().stage_file(
                sim,
                ctx.session,
                &site_for_stage,
                &ctx_stage.exe_name,
                ctx_stage.data_len,
                after_stage,
            );
            sim.set_span_parent(prev);
        }
    }
}
