#![warn(missing_docs)]

//! # cyberaide-onserve — SaaS on production Grids
//!
//! Reproduction of *"Cyberaide onServe: Software as a Service on Production
//! Grids"* (ICPP 2010). onServe is "a lightweight middleware with a virtual
//! appliance \[that\] implements the SaaS methodology on production Grids by
//! translating the SaaS model to the JSE model": users upload executables
//! through a portal; onServe stores them in a database, generates a Web
//! service per executable, publishes it in a UDDI registry; invoking the
//! service fetches the executable from the database, authenticates against
//! the Grid, stages the file, generates an RSL job description, submits
//! through the gatekeeper and polls the output back.
//!
//! The crate wires the substrates together:
//!
//! * [`params`] — the portal dialog's parameter declarations and their
//!   mapping onto WSDL/SOAP types.
//! * [`profile`] — execution profiles: what an uploaded executable *does*
//!   when run (runtime, cores, output volume) — the simulation's stand-in
//!   for actually executing uploaded binaries.
//! * [`generator`] — the "ant build script": executable record → service
//!   archive (WSDL + `.aar`) ready for the SOAP container.
//! * [`watchdog`] — the `tools` package's watchdog, "used to react
//!   correctly in some situations where a problem may occur (for example
//!   when a process takes too long to complete)" (§VI).
//! * [`onserve`] — the middleware object: upload→generate→publish, plus
//!   the SaaS→JSE invocation pipeline behind every generated service.
//! * [`portal`] — the Cyberaide portal front end: receives uploads over
//!   the LAN (the Figure 8 scenario) and drives [`onserve`].
//! * [`browser`] — the registry-inspection tool §VIII-D4 says the
//!   original lacked: catalog + per-service detail views over UDDI.
//! * [`deployment`] — one-call assembly of the full measured system:
//!   appliance + grid + agent + onServe + client channel, used by the
//!   examples, the integration tests and every benchmark binary.
//!
//! ## Quick start
//!
//! ```
//! use onserve::deployment::{Deployment, DeploymentSpec};
//! use onserve::profile::ExecutionProfile;
//! use simkit::Sim;
//!
//! let mut sim = Sim::new(42);
//! let d = Deployment::build(&mut sim, &DeploymentSpec::default());
//! // upload an executable through the portal, then invoke it as a service
//! let upload = d.upload_request("hello", 4096, ExecutionProfile::quick(), &[]);
//! d.portal.upload(&mut sim, upload, |_, r| { r.expect("published"); });
//! sim.run();
//! assert_eq!(d.onserve.registry().borrow_mut().find("hello").len(), 1);
//! ```

pub mod browser;
pub mod deployment;
pub mod generator;
pub mod onserve;
pub mod params;
pub mod portal;
pub mod profile;
pub mod watchdog;

pub use deployment::{Deployment, DeploymentSpec};
pub use generator::ServiceVersion;
pub use onserve::{InvokeError, OnServe, OnServeConfig, PublishedService, UploadError};
pub use params::{param_type_from_name, validate_args};
pub use portal::{Portal, UploadRequest};
pub use profile::ExecutionProfile;
pub use watchdog::Watchdog;
