//! Parameter declarations: the portal dialog ↔ WSDL/SOAP types.
//!
//! The upload dialog (Figure 3) lets the user declare "information about
//! possible parameters, such as name and type"; the generated Web service
//! then exposes an `execute` operation with exactly those typed inputs.
//! This module maps the dialog's type names onto [`wsstack::ParamType`]s
//! and renders invocation arguments into the command-line strings the job
//! description carries.

use blobstore::ParamSpec;
use wsstack::{ParamType, SoapValue, WsdlParam};

/// Parse a dialog type name (`string`, `int`, `double`, `boolean`,
/// `base64`). Unknown names are `None`.
pub fn param_type_from_name(name: &str) -> Option<ParamType> {
    Some(match name.to_ascii_lowercase().as_str() {
        "string" | "str" => ParamType::Str,
        "int" | "integer" | "long" => ParamType::Int,
        "double" | "float" => ParamType::Double,
        "boolean" | "bool" => ParamType::Bool,
        "base64" | "binary" | "file" => ParamType::Binary,
        _ => return None,
    })
}

/// Convert declared [`ParamSpec`]s into WSDL inputs; fails on unknown type
/// names (caught at upload time, matching the dialog's validation).
pub fn to_wsdl_params(specs: &[ParamSpec]) -> Result<Vec<WsdlParam>, String> {
    specs
        .iter()
        .map(|s| {
            param_type_from_name(&s.type_name)
                .map(|ty| WsdlParam {
                    name: s.name.clone(),
                    ty,
                })
                .ok_or_else(|| format!("unknown parameter type '{}' for {}", s.type_name, s.name))
        })
        .collect()
}

/// Validate invocation arguments against the declared specs and render
/// them as command-line strings (the agent's "parameter string").
pub fn validate_args(
    specs: &[ParamSpec],
    args: &std::collections::BTreeMap<String, SoapValue>,
) -> Result<Vec<String>, String> {
    let mut rendered = Vec::with_capacity(specs.len());
    for spec in specs {
        let value = args
            .get(&spec.name)
            .ok_or_else(|| format!("missing argument {}", spec.name))?;
        let ty = param_type_from_name(&spec.type_name)
            .ok_or_else(|| format!("unknown parameter type '{}'", spec.type_name))?;
        if !ty.matches(value) {
            return Err(format!("argument {} expects {}", spec.name, ty.xsd()));
        }
        rendered.push(render_arg(value));
    }
    if args.len() > specs.len() {
        return Err("unexpected extra arguments".into());
    }
    Ok(rendered)
}

fn render_arg(value: &SoapValue) -> String {
    match value {
        SoapValue::Str(s) => s.clone(),
        SoapValue::Int(i) => i.to_string(),
        SoapValue::Double(d) => d.to_string(),
        SoapValue::Bool(b) => b.to_string(),
        SoapValue::Binary { bytes, digest } => format!("@file:{bytes}:{digest:x}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn specs() -> Vec<ParamSpec> {
        vec![
            ParamSpec::new("iterations", "int"),
            ParamSpec::new("label", "string"),
            ParamSpec::new("eps", "double"),
        ]
    }

    #[test]
    fn type_names_parse_with_aliases() {
        assert_eq!(param_type_from_name("String"), Some(ParamType::Str));
        assert_eq!(param_type_from_name("INTEGER"), Some(ParamType::Int));
        assert_eq!(param_type_from_name("float"), Some(ParamType::Double));
        assert_eq!(param_type_from_name("bool"), Some(ParamType::Bool));
        assert_eq!(param_type_from_name("file"), Some(ParamType::Binary));
        assert_eq!(param_type_from_name("quaternion"), None);
    }

    #[test]
    fn wsdl_params_conversion() {
        let w = to_wsdl_params(&specs()).unwrap();
        assert_eq!(w.len(), 3);
        assert_eq!(w[0].ty, ParamType::Int);
        assert!(to_wsdl_params(&[ParamSpec::new("x", "blob")]).is_err());
    }

    #[test]
    fn args_validate_and_render_in_declared_order() {
        let mut args = BTreeMap::new();
        args.insert("eps".to_string(), SoapValue::Double(0.5));
        args.insert("iterations".to_string(), SoapValue::Int(10));
        args.insert("label".to_string(), SoapValue::Str("run-1".into()));
        let rendered = validate_args(&specs(), &args).unwrap();
        assert_eq!(rendered, vec!["10", "run-1", "0.5"]);
    }

    #[test]
    fn validation_failures() {
        let mut args = BTreeMap::new();
        args.insert("iterations".to_string(), SoapValue::Str("ten".into()));
        args.insert("label".to_string(), SoapValue::Str("x".into()));
        args.insert("eps".to_string(), SoapValue::Double(0.5));
        assert!(validate_args(&specs(), &args).unwrap_err().contains("xsd:int"));
        args.remove("iterations");
        assert!(validate_args(&specs(), &args)
            .unwrap_err()
            .contains("missing argument"));
        args.insert("iterations".to_string(), SoapValue::Int(1));
        args.insert("surprise".to_string(), SoapValue::Int(1));
        assert!(validate_args(&specs(), &args).unwrap_err().contains("extra"));
    }

    #[test]
    fn binary_renders_as_file_reference() {
        let v = SoapValue::Binary {
            bytes: 100.0,
            digest: 0xab,
        };
        assert_eq!(render_arg(&v), "@file:100:ab");
    }
}
