//! The service generator — the paper's ant build script.
//!
//! "It uses a Web service template file and modifies its name and the
//! initial value of an instance variable. Then it modifies the service
//! description file and generates an aar-file that is finally copied into
//! the Web service framework's service directory" (§VI). Given a stored
//! executable record, this module derives the service name, synthesizes
//! the WSDL (one `execute` operation whose inputs are the declared
//! parameters and whose output is the job's output payload) and prices the
//! build (CPU seconds, archive bytes).

use blobstore::ExecutableRecord;
use wsstack::{ParamType, WsdlDocument, WsdlOperation};

use crate::params::to_wsdl_params;

/// Baseline archive size: the compiled template service + descriptors.
pub const ARCHIVE_BASE_BYTES: f64 = 22.0 * 1024.0;
/// Per-parameter archive growth (generated setter/descriptor entries).
pub const ARCHIVE_PER_PARAM_BYTES: f64 = 256.0;
/// Fixed build cost: ant + javac + aar packaging of the template.
pub const BUILD_BASE_CPU_SECS: f64 = 1.2;
/// Incremental build cost per declared parameter.
pub const BUILD_PER_PARAM_CPU_SECS: f64 = 0.05;

/// Version stamped into a built `.aar`-style unit. The paper's build
/// script only ever produces "the" archive; a production fleet upgrades
/// under load, so every generated artifact carries the version of the
/// service template it was built from and replicas report which one
/// they serve.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ServiceVersion(pub u32);

impl std::fmt::Display for ServiceVersion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Output of a generation run, ready for container deployment.
#[derive(Clone, Debug, PartialEq)]
pub struct GeneratedService {
    /// Derived service name.
    pub service_name: String,
    /// The generated interface description.
    pub wsdl: WsdlDocument,
    /// `.aar` size in bytes.
    pub archive_bytes: f64,
    /// Build CPU cost in seconds.
    pub build_cpu_secs: f64,
    /// Version stamped into the archive at build time.
    pub version: ServiceVersion,
}

/// Derive the service name from the uploaded file name: strip the
/// extension and path, sanitize to identifier characters.
pub fn service_name_for(file_name: &str) -> String {
    let base = file_name
        .rsplit(['/', '\\'])
        .next()
        .unwrap_or(file_name);
    let stem = base.split('.').next().unwrap_or(base);
    let mut name: String = stem
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    if name.is_empty() || name.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        name.insert(0, 's');
    }
    name
}

/// Generate the service for a stored executable at artifact version 1.
/// `appliance_host` names the endpoint host.
pub fn generate(
    record: &ExecutableRecord,
    appliance_host: &str,
) -> Result<GeneratedService, String> {
    generate_versioned(record, appliance_host, ServiceVersion(1))
}

/// Generate the service for a stored executable, stamping `version`
/// into the built unit. Rollouts rebuild the same record at vN+1 on new
/// replicas while vN replicas keep serving their original build.
pub fn generate_versioned(
    record: &ExecutableRecord,
    appliance_host: &str,
    version: ServiceVersion,
) -> Result<GeneratedService, String> {
    let service_name = service_name_for(&record.name);
    let inputs = to_wsdl_params(&record.params)?;
    let n_params = inputs.len() as f64;
    let endpoint = format!("http://{appliance_host}:8080/services/{service_name}");
    let wsdl = WsdlDocument::single_op(
        &service_name,
        &endpoint,
        &record.description,
        WsdlOperation {
            name: "execute".into(),
            inputs,
            output: ParamType::Binary,
        },
    );
    Ok(GeneratedService {
        service_name,
        wsdl,
        archive_bytes: ARCHIVE_BASE_BYTES + ARCHIVE_PER_PARAM_BYTES * n_params,
        build_cpu_secs: BUILD_BASE_CPU_SECS + BUILD_PER_PARAM_CPU_SECS * n_params,
        version,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use blobstore::ParamSpec;

    fn record(name: &str, params: Vec<ParamSpec>) -> ExecutableRecord {
        ExecutableRecord {
            id: 1,
            name: name.to_owned(),
            description: "a tool".into(),
            params,
            original_len: 1000,
            stored_len: 500,
            checksum: 0,
        }
    }

    #[test]
    fn name_derivation() {
        assert_eq!(service_name_for("blast.exe"), "blast");
        assert_eq!(service_name_for("/opt/bin/my-tool.bin"), "my_tool");
        assert_eq!(service_name_for("solver"), "solver");
        assert_eq!(service_name_for("3dsim.exe"), "s3dsim");
        assert_eq!(service_name_for(""), "s");
        assert_eq!(service_name_for("a b.exe"), "a_b");
    }

    #[test]
    fn generated_wsdl_matches_declaration() {
        let rec = record(
            "blast.exe",
            vec![
                ParamSpec::new("sequence", "string"),
                ParamSpec::new("evalue", "double"),
            ],
        );
        let g = generate(&rec, "appliance").unwrap();
        assert_eq!(g.service_name, "blast");
        assert_eq!(g.wsdl.endpoint, "http://appliance:8080/services/blast");
        assert_eq!(g.wsdl.documentation, "a tool");
        let op = g.wsdl.operation("execute").unwrap();
        assert_eq!(op.inputs.len(), 2);
        assert_eq!(op.inputs[0].name, "sequence");
        assert_eq!(op.output, ParamType::Binary);
    }

    #[test]
    fn costs_scale_with_params() {
        let small = generate(&record("a", vec![]), "h").unwrap();
        let big = generate(
            &record("b", (0..10).map(|i| ParamSpec::new(&format!("p{i}"), "int")).collect()),
            "h",
        )
        .unwrap();
        assert!(big.archive_bytes > small.archive_bytes);
        assert!(big.build_cpu_secs > small.build_cpu_secs);
    }

    #[test]
    fn bad_param_type_fails_generation() {
        let rec = record("x", vec![ParamSpec::new("p", "matrix")]);
        assert!(generate(&rec, "h").unwrap_err().contains("matrix"));
    }

    #[test]
    fn versioned_builds_stamp_the_artifact() {
        let rec = record("tool.exe", vec![]);
        let v1 = generate(&rec, "h").unwrap();
        assert_eq!(v1.version, ServiceVersion(1));
        let v3 = generate_versioned(&rec, "h", ServiceVersion(3)).unwrap();
        assert_eq!(v3.version, ServiceVersion(3));
        assert_eq!(v3.version.to_string(), "v3");
        // same record, same costs — only the stamp differs
        assert_eq!(v3.archive_bytes, v1.archive_bytes);
        assert_eq!(v3.wsdl, v1.wsdl);
    }

    #[test]
    fn generated_wsdl_is_parseable() {
        let rec = record("tool.exe", vec![ParamSpec::new("n", "int")]);
        let g = generate(&rec, "appliance").unwrap();
        let text = g.wsdl.to_text();
        let parsed = WsdlDocument::parse_text(&text).unwrap();
        assert_eq!(parsed, g.wsdl);
    }
}
