//! The watchdog from the paper's `tools` package.
//!
//! "The 'tools' package contains tools like a watchdog class, that is used
//! to react correctly in some situations where a problem may occur. (For
//! example when a process takes too long to complete.)" (§VI). A
//! [`Watchdog`] guards an asynchronous operation: whichever of
//! *completion* or *timeout* happens first wins, the other becomes a
//! no-op.

use std::cell::Cell;
use std::rc::Rc;

use simkit::engine::EventId;
use simkit::{Duration, Sim};

/// Guard handle for one watched operation.
pub struct Watchdog {
    fired: Rc<Cell<WatchState>>,
    timeout_event: EventId,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum WatchState {
    Armed,
    Completed,
    TimedOut,
}

impl Watchdog {
    /// Arm a watchdog: if [`Watchdog::disarm`] is not called within
    /// `timeout`, `on_timeout` fires (exactly once).
    pub fn arm<F>(sim: &mut Sim, timeout: Duration, on_timeout: F) -> Watchdog
    where
        F: FnOnce(&mut Sim) + 'static,
    {
        let fired = Rc::new(Cell::new(WatchState::Armed));
        let f2 = Rc::clone(&fired);
        let timeout_event = sim.schedule_labeled(timeout, "watchdog.timeout", move |sim| {
            if f2.get() == WatchState::Armed {
                f2.set(WatchState::TimedOut);
                on_timeout(sim);
            }
        });
        Watchdog {
            fired,
            timeout_event,
        }
    }

    /// Signal successful completion; the pending timeout event is removed
    /// from the queue so a drained simulation ends at the real completion
    /// instant. Returns `true` if the watchdog was still armed (the caller
    /// won the race and should proceed); `false` if the timeout already
    /// fired and the completion must be dropped.
    pub fn disarm(&self, sim: &mut Sim) -> bool {
        if self.fired.get() == WatchState::Armed {
            self.fired.set(WatchState::Completed);
            sim.cancel_event(self.timeout_event);
            true
        } else {
            false
        }
    }

    /// Whether the timeout has fired.
    pub fn timed_out(&self) -> bool {
        self.fired.get() == WatchState::TimedOut
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completion_before_timeout_suppresses_it() {
        let mut sim = Sim::new(0);
        let timed_out = Rc::new(Cell::new(false));
        let t2 = timed_out.clone();
        let dog = Watchdog::arm(&mut sim, Duration::from_secs(10), move |_| t2.set(true));
        sim.schedule(Duration::from_secs(5), move |sim| {
            assert!(dog.disarm(sim));
        });
        sim.run();
        assert!(!timed_out.get());
        // the cancelled timeout no longer holds the clock hostage
        assert_eq!(sim.now(), simkit::SimTime::from_secs(5));
    }

    #[test]
    fn timeout_fires_when_never_disarmed() {
        let mut sim = Sim::new(0);
        let at = Rc::new(Cell::new(-1.0));
        let a2 = at.clone();
        let _dog = Watchdog::arm(&mut sim, Duration::from_secs(10), move |sim| {
            a2.set(sim.now().as_secs_f64());
        });
        sim.run();
        assert_eq!(at.get(), 10.0);
    }

    #[test]
    fn late_disarm_returns_false() {
        let mut sim = Sim::new(0);
        let dog = Rc::new(Watchdog::arm(&mut sim, Duration::from_secs(1), |_| {}));
        let d2 = Rc::clone(&dog);
        sim.schedule(Duration::from_secs(5), move |sim| {
            assert!(!d2.disarm(sim));
            assert!(d2.timed_out());
        });
        sim.run();
    }

    #[test]
    fn timeout_fires_only_once() {
        let mut sim = Sim::new(0);
        let count = Rc::new(Cell::new(0));
        let c2 = count.clone();
        let _dog = Watchdog::arm(&mut sim, Duration::from_secs(1), move |_| {
            c2.set(c2.get() + 1);
        });
        sim.run();
        assert_eq!(count.get(), 1);
    }
}
