//! The Cyberaide portal: the upload front end.
//!
//! "By clicking the new button, the 'Upload file and generate Web Service'
//! dialog is displayed" (Figure 3); confirming it ships the file to the
//! portal server, where "a small JSP script creates a parameter list that
//! is then used to start the Java program that conducts further treatment"
//! (§VII-A). The portal models exactly the Figure 8 measurement: reception
//! over the 1000 Mbit/s LAN (the tall network-input peak), high CPU from
//! "the reception and storage of the file and also because of tomcat
//! handling the request and loading the java-classes", then the onServe
//! treatment (storage → service build → publishing).

use std::rc::Rc;

use blobstore::ParamSpec;
use bytes::Bytes;
use simkit::{Duplex, Sim};
use wsstack::container::parse_cpu_cost;

use crate::onserve::{OnServe, PublishedService, UploadError};
use crate::profile::ExecutionProfile;

/// HTTP multipart framing around the uploaded file.
pub const FORM_OVERHEAD_BYTES: f64 = 1536.0;

/// One filled-in upload dialog.
#[derive(Clone, Debug)]
pub struct UploadRequest {
    /// File chosen in the dialog.
    pub file_name: String,
    /// The executable payload.
    pub data: Bytes,
    /// The optional description field.
    pub description: String,
    /// Declared parameters (name/type rows).
    pub params: Vec<ParamSpec>,
    /// Grid identity the generated service will run jobs as.
    pub grid_user: String,
    /// MyProxy passphrase for that identity.
    pub grid_passphrase: String,
    /// Behaviour of the executable when run (simulation substitute for the
    /// binary's semantics).
    pub profile: ExecutionProfile,
}

/// The portal server front end.
pub struct Portal {
    onserve: Rc<OnServe>,
    /// client browser ↔ portal path (the 1 Gbit/s LAN of §VIII-C).
    client_path: Rc<Duplex>,
}

impl Portal {
    /// Front the given middleware over `client_path`.
    pub fn new(onserve: Rc<OnServe>, client_path: Rc<Duplex>) -> Rc<Portal> {
        Rc::new(Portal {
            onserve,
            client_path,
        })
    }

    /// The middleware behind the portal.
    pub fn onserve(&self) -> &Rc<OnServe> {
        &self.onserve
    }

    /// The client ↔ portal path.
    pub fn client_path(&self) -> &Rc<Duplex> {
        &self.client_path
    }

    /// Handle one "Upload file and generate Web Service" submission:
    /// network reception, request handling CPU, then the full onServe
    /// treatment. `done` fires when the confirmation page (or error)
    /// returns to the browser.
    pub fn upload<F>(self: &Rc<Self>, sim: &mut Sim, request: UploadRequest, done: F)
    where
        F: FnOnce(&mut Sim, Result<PublishedService, UploadError>) + 'static,
    {
        let bytes = request.data.len() as f64 + FORM_OVERHEAD_BYTES;
        let span = sim.span_begin("portal.upload");
        sim.span_attr(span, "file", request.file_name.as_str());
        sim.span_attr(span, "bytes", request.data.len() as u64);
        let portal = Rc::clone(self);
        self.client_path.forward.transfer(sim, bytes, move |sim| {
            // "The CPU utilization is very high due to the reception and
            // storage of the file and also because of tomcat handling the
            // request and loading the java-classes" — 2× the plain parse
            // cost.
            let cpu = parse_cpu_cost(bytes) * 2.0;
            let portal2 = Rc::clone(&portal);
            let host = Rc::clone(portal.onserve.host());
            host.compute(sim, cpu, move |sim| {
                let portal3 = Rc::clone(&portal2);
                let prev = sim.set_span_parent(span);
                portal2.onserve.clone().upload_executable(
                    sim,
                    &request.file_name,
                    &request.description,
                    request.params.clone(),
                    request.data.clone(),
                    (&request.grid_user, &request.grid_passphrase),
                    request.profile,
                    move |sim, result| {
                        // confirmation page back to the browser
                        portal3
                            .client_path
                            .backward
                            .transfer(sim, 6.0 * 1024.0, move |sim| {
                                match &result {
                                    Ok(_) => sim.span_end(span),
                                    Err(e) => sim.span_fail(span, &e.to_string()),
                                }
                                done(sim, result);
                            });
                    },
                );
                sim.set_span_parent(prev);
            });
        });
    }
}
