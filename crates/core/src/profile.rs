//! Execution profiles: what an uploaded executable does when run.
//!
//! The simulation cannot execute uploaded binaries, so each upload carries
//! a profile describing its Grid-side behaviour — runtime, cores, output
//! volume. This is the simulation's substitute for the real executable
//! semantics (documented in DESIGN.md); every path the middleware takes is
//! unchanged.

use gridsim::gram::ExecutionModel;
use simkit::{Duration, Rng, KB};

/// Behaviour of one executable on the Grid.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExecutionProfile {
    /// Mean true runtime.
    pub runtime: Duration,
    /// Relative runtime jitter (0.0 = deterministic, 0.2 = ±20%).
    pub runtime_jitter: f64,
    /// Cores requested.
    pub cores: u32,
    /// stdout bytes produced over the run.
    pub output_bytes: f64,
    /// Walltime limit = runtime × this factor (users pad their estimates).
    pub walltime_factor: f64,
}

impl ExecutionProfile {
    /// A seconds-scale job with small output (the paper's small-file test).
    pub fn quick() -> ExecutionProfile {
        ExecutionProfile {
            runtime: Duration::from_secs(30),
            runtime_jitter: 0.0,
            cores: 1,
            output_bytes: 24.0 * KB,
            walltime_factor: 4.0,
        }
    }

    /// A typical scientific run: tens of minutes, moderate output.
    pub fn science_run() -> ExecutionProfile {
        ExecutionProfile {
            runtime: Duration::from_secs(45 * 60),
            runtime_jitter: 0.1,
            cores: 8,
            output_bytes: 4.0 * 1024.0 * KB,
            walltime_factor: 2.0,
        }
    }

    /// Builder: fixed runtime.
    pub fn lasting(mut self, runtime: Duration) -> ExecutionProfile {
        self.runtime = runtime;
        self
    }

    /// Builder: output volume.
    pub fn producing(mut self, output_bytes: f64) -> ExecutionProfile {
        self.output_bytes = output_bytes;
        self
    }

    /// Builder: core count.
    pub fn on_cores(mut self, cores: u32) -> ExecutionProfile {
        self.cores = cores;
        self
    }

    /// The walltime limit to request.
    pub fn walltime_limit(&self) -> Duration {
        Duration::from_secs_f64(self.runtime.as_secs_f64() * self.walltime_factor)
    }

    /// Concretize into one run's [`ExecutionModel`], sampling jitter.
    pub fn sample(&self, rng: &mut Rng) -> ExecutionModel {
        let base = self.runtime.as_secs_f64();
        let actual = if self.runtime_jitter > 0.0 {
            let factor = 1.0 + rng.range_f64(-self.runtime_jitter, self.runtime_jitter);
            base * factor.max(0.01)
        } else {
            base
        };
        ExecutionModel {
            actual_runtime: Duration::from_secs_f64(actual),
            output_bytes: self.output_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_without_jitter() {
        let mut rng = Rng::new(1);
        let p = ExecutionProfile::quick();
        let a = p.sample(&mut rng);
        let b = p.sample(&mut rng);
        assert_eq!(a.actual_runtime, b.actual_runtime);
        assert_eq!(a.actual_runtime, Duration::from_secs(30));
    }

    #[test]
    fn jitter_stays_in_band() {
        let mut rng = Rng::new(2);
        let p = ExecutionProfile::science_run();
        let base = p.runtime.as_secs_f64();
        for _ in 0..200 {
            let m = p.sample(&mut rng);
            let r = m.actual_runtime.as_secs_f64();
            assert!(r >= base * 0.9 - 1.0 && r <= base * 1.1 + 1.0, "runtime {r}");
        }
    }

    #[test]
    fn walltime_limit_scales() {
        let p = ExecutionProfile::quick();
        assert_eq!(p.walltime_limit(), Duration::from_secs(120));
    }

    #[test]
    fn builders_compose() {
        let p = ExecutionProfile::quick()
            .lasting(Duration::from_secs(10))
            .producing(5.0)
            .on_cores(4);
        assert_eq!(p.runtime, Duration::from_secs(10));
        assert_eq!(p.output_bytes, 5.0);
        assert_eq!(p.cores, 4);
    }
}
