//! One-call assembly of the full measured system.
//!
//! Examples, integration tests and every benchmark binary need the same
//! topology: a client machine on a fast LAN, the onServe appliance, the
//! MyProxy service, and an eleven-site production Grid behind ~85 KB/s WAN
//! paths — the paper's Figure 2 stack on the paper's §VIII testbed. A
//! [`Deployment`] builds it with one call and offers the two high-level
//! verbs the scenarios need: [`Portal::upload`] (via `deployment.portal`)
//! and [`Deployment::invoke`].

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use blobstore::{BlobDb, ParamSpec, TimedDb};
use bytes::Bytes;
use cyberaide::agent::AgentConfig;
use cyberaide::CyberaideAgent;
use gridsim::{MyProxyServer, ProductionGrid};
use simkit::{Duplex, Duration, Host, HostSpec, Sim, SimTime, GBIT_PER_S, KB};
use wsstack::{HttpChannel, SoapContainer, SoapFault, SoapValue};

use crate::onserve::{OnServe, OnServeConfig};
use crate::portal::{Portal, UploadRequest};
use crate::profile::ExecutionProfile;

/// Topology + middleware parameters.
#[derive(Clone, Debug)]
pub struct DeploymentSpec {
    /// Appliance host name / metric prefix. Give each deployment a unique
    /// name (and unique `lan_name`/`myproxy_*`) to run several appliances
    /// in one simulation.
    pub appliance_name: String,
    /// Client host name / metric prefix.
    pub client_name: String,
    /// Name of the client↔appliance LAN path (metric prefix `<name>.fwd`/
    /// `<name>.rev`).
    pub lan_name: String,
    /// Name of the MyProxy server host.
    pub myproxy_name: String,
    /// Name of the appliance↔MyProxy path.
    pub myproxy_path_name: String,
    /// Middleware configuration (write strategy, poll interval, ...).
    pub config: OnServeConfig,
    /// Agent configuration (proxy lifetime, status-interface ablation).
    pub agent: AgentConfig,
    /// Client ↔ appliance LAN bandwidth (bytes/s); the paper's portal test
    /// ran on 1000 Mbit/s.
    pub lan_bandwidth: f64,
    /// Client ↔ appliance LAN latency.
    pub lan_latency: Duration,
    /// Grid identity used by uploads.
    pub grid_user: String,
    /// MyProxy passphrase for that identity.
    pub grid_passphrase: String,
    /// Override every site's WAN bandwidth (bytes/s); `None` keeps the
    /// paper's ~85 KB/s.
    pub wan_bandwidth_override: Option<f64>,
}

impl Default for DeploymentSpec {
    fn default() -> Self {
        DeploymentSpec {
            appliance_name: "appliance".into(),
            client_name: "client".into(),
            lan_name: "lan".into(),
            myproxy_name: "myproxy".into(),
            myproxy_path_name: "mp".into(),
            config: OnServeConfig::default(),
            agent: AgentConfig::default(),
            lan_bandwidth: GBIT_PER_S,
            lan_latency: Duration::from_millis(1),
            grid_user: "alice".into(),
            grid_passphrase: "s3cret".into(),
            wan_bandwidth_override: None,
        }
    }
}

/// The assembled system.
pub struct Deployment {
    /// The appliance host ("appliance" metric prefix — the machine the
    /// paper's figures monitor).
    pub appliance: Rc<Host>,
    /// The client machine ("client" metric prefix).
    pub client: Rc<Host>,
    /// The production Grid.
    pub grid: Rc<ProductionGrid>,
    /// The toolkit agent.
    pub agent: Rc<CyberaideAgent>,
    /// The middleware.
    pub onserve: Rc<OnServe>,
    /// The portal front end.
    pub portal: Rc<Portal>,
    /// SOAP channel client → appliance container.
    pub channel: Rc<HttpChannel>,
    /// The MyProxy credential repository (for enrolling further tenants).
    pub myproxy: Rc<RefCell<MyProxyServer>>,
    /// The deployment's parameters.
    pub spec: DeploymentSpec,
}

/// Deterministic compressible payload for synthetic executables: a
/// repeating structured pattern salted by `seed`.
pub fn synth_payload(len: usize, seed: u64) -> Bytes {
    let mut data = Vec::with_capacity(len);
    let mut x = seed | 1;
    while data.len() < len {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let chunk = format!("SEG{:08x}:PAYLOAD-DATA-BLOCK;", x >> 40);
        data.extend_from_slice(chunk.as_bytes());
    }
    data.truncate(len);
    Bytes::from(data)
}

impl Deployment {
    /// Build the full system at `sim.now()`; the appliance is taken as
    /// already running (for on-demand cold starts, see
    /// [`Deployment::build_on_demand`]).
    pub fn build(sim: &mut Sim, spec: &DeploymentSpec) -> Deployment {
        let appliance = Host::new(&HostSpec::commodity(&spec.appliance_name));
        Self::build_with_host(sim, spec, appliance)
    }

    /// Build the system around an *existing* appliance host — e.g. the VM
    /// a [`vappliance::Appliance`] just booted.
    pub fn build_with_host(
        sim: &mut Sim,
        spec: &DeploymentSpec,
        appliance: Rc<Host>,
    ) -> Deployment {
        let db = TimedDb::new(
            Rc::new(RefCell::new(BlobDb::new())),
            Rc::clone(&appliance),
            spec.config.write_strategy,
        );
        Self::build_with_host_and_db(sim, spec, appliance, db)
    }

    /// Build the system around an existing appliance host *and* an
    /// externally-owned executable database. A fleet uses this to choose
    /// the storage topology: a [`TimedDb`] bound to the appliance host is
    /// replica-local storage, while one bound to a separate shared storage
    /// host routes every replica's database I/O through the same disk (the
    /// NAS/SAN topology §VIII-D warns about).
    pub fn build_with_host_and_db(
        sim: &mut Sim,
        spec: &DeploymentSpec,
        appliance: Rc<Host>,
        db: Rc<TimedDb>,
    ) -> Deployment {
        let client = Host::new(&HostSpec::commodity(&spec.client_name));

        // the Grid + the uploader's enrolment + MyProxy
        let grid = ProductionGrid::teragrid(&spec.appliance_name);
        if let Some(bw) = spec.wan_bandwidth_override {
            for site in grid.sites() {
                site.uplink().set_bandwidth(sim, bw);
                site.downlink().set_bandwidth(sim, bw);
            }
        }
        let grid = Rc::new(grid);
        let cred = grid.enroll_user(
            &format!("/O=SimTeraGrid/CN={}", spec.grid_user),
            &spec.grid_user,
            sim.now(),
            Duration::from_secs(365 * 86400),
        );
        let myproxy: Rc<RefCell<MyProxyServer>> = Rc::new(RefCell::new(MyProxyServer::new()));
        myproxy.borrow_mut().store(
            &spec.grid_user,
            &spec.grid_passphrase,
            cred.delegate(sim.now(), Duration::from_secs(30 * 86400)),
        );
        let myproxy_host = Host::new(&HostSpec::commodity(&spec.myproxy_name));
        let myproxy_path = Rc::new(Duplex::new(
            &spec.myproxy_path_name,
            &spec.appliance_name,
            &spec.myproxy_name,
            200.0 * KB,
            Duration::from_millis(30),
        ));

        let myproxy_for_deployment = Rc::clone(&myproxy);
        let agent = CyberaideAgent::new(
            Rc::clone(&grid),
            myproxy,
            myproxy_host,
            myproxy_path,
            Rc::clone(&appliance),
            spec.agent.clone(),
        );

        let container = SoapContainer::new(Rc::clone(&appliance));
        let registry = Rc::new(RefCell::new(wsstack::UddiRegistry::new()));
        let onserve = OnServe::new(
            Rc::clone(&appliance),
            Rc::clone(&container),
            registry,
            db,
            Rc::clone(&agent),
            spec.config.clone(),
        );

        let lan = Rc::new(Duplex::new(
            &spec.lan_name,
            &spec.client_name,
            &spec.appliance_name,
            spec.lan_bandwidth,
            spec.lan_latency,
        ));
        let portal = Portal::new(Rc::clone(&onserve), Rc::clone(&lan));
        let channel = HttpChannel::new(lan, container);

        Deployment {
            appliance,
            client,
            grid,
            agent,
            onserve,
            portal,
            channel,
            myproxy: myproxy_for_deployment,
            spec: spec.clone(),
        }
    }

    /// Enrol an additional tenant: Grid identity (optionally with a
    /// service-unit allocation at every site) plus a MyProxy credential
    /// under `passphrase`, ready for [`UploadRequest::grid_user`].
    pub fn enroll_tenant(
        &self,
        sim: &Sim,
        user: &str,
        passphrase: &str,
        allocation_core_hours: Option<f64>,
    ) {
        let dn = format!("/O=SimTeraGrid/CN={user}");
        let lifetime = Duration::from_secs(365 * 86400);
        let cred = match allocation_core_hours {
            None => self.grid.enroll_user(&dn, user, sim.now(), lifetime),
            Some(su) => self
                .grid
                .enroll_user_with_allocation(&dn, user, sim.now(), lifetime, su),
        };
        self.myproxy.borrow_mut().store(
            user,
            passphrase,
            cred.delegate(sim.now(), Duration::from_secs(30 * 86400)),
        );
    }

    /// The §V step-1 path: deploy the appliance VM *on demand* from an
    /// image, then assemble the middleware on it once it boots. `done`
    /// receives the ready deployment; the cold-start cost (image copy +
    /// boot + service start) is visible as the delay before `done` fires.
    pub fn build_on_demand<F>(
        sim: &mut Sim,
        spec: DeploymentSpec,
        image: &vappliance::ApplianceImage,
        image_link: &Rc<simkit::Link>,
        done: F,
    ) where
        F: FnOnce(&mut Sim, Deployment) + 'static,
    {
        let deploy_spec = vappliance::DeploySpec::default_for(&spec.appliance_name);
        vappliance::Appliance::deploy(sim, image, image_link, &deploy_spec, move |sim, app| {
            let d = Deployment::build_with_host(sim, &spec, Rc::clone(app.host()));
            done(sim, d);
        });
    }

    /// Build an [`UploadRequest`] with a synthetic payload of `len` bytes.
    pub fn upload_request(
        &self,
        file_name: &str,
        len: usize,
        profile: ExecutionProfile,
        params: &[(&str, &str)],
    ) -> UploadRequest {
        UploadRequest {
            file_name: file_name.to_owned(),
            data: synth_payload(len, 0x5eed ^ len as u64),
            description: format!("synthetic executable {file_name}"),
            params: params
                .iter()
                .map(|&(n, t)| ParamSpec::new(n, t))
                .collect(),
            grid_user: self.spec.grid_user.clone(),
            grid_passphrase: self.spec.grid_passphrase.clone(),
            profile,
        }
    }

    /// Invoke a published service the way a real consumer would: look the
    /// WSDL up, build the `wsimport` stub, call `execute` over the SOAP
    /// channel.
    pub fn invoke<F>(
        &self,
        sim: &mut Sim,
        service_name: &str,
        args: &[(&str, SoapValue)],
        done: F,
    ) where
        F: FnOnce(&mut Sim, Result<SoapValue, SoapFault>) + 'static,
    {
        let stub = match self.onserve.client_for(service_name) {
            Ok(s) => s,
            Err(e) => {
                let fault: SoapFault = e.into();
                sim.schedule(Duration::ZERO, move |sim| done(sim, Err(fault)));
                return;
            }
        };
        stub.call(sim, &self.channel, "execute", args, done);
    }

    /// Convenience for tests/benches: run the simulation until `deadline`
    /// and return how many invocations completed vs failed.
    pub fn run_until(&self, sim: &mut Sim, deadline: SimTime) -> (u64, u64) {
        sim.run_until(deadline);
        self.onserve.counters()
    }
}

/// Soap argument list helper: typed values from `(name, value)` string
/// pairs is overkill for tests; this just shortens common literals.
pub fn args1(name: &str, value: SoapValue) -> Vec<(String, SoapValue)> {
    vec![(name.to_owned(), value)]
}

/// Convert owned arg pairs into the borrowed form [`Deployment::invoke`]
/// takes.
pub fn as_arg_refs(args: &[(String, SoapValue)]) -> Vec<(&str, SoapValue)> {
    args.iter().map(|(n, v)| (n.as_str(), v.clone())).collect()
}

/// Map of owned args (used when driving [`OnServe::execute_service`]
/// directly, bypassing the SOAP layer).
pub fn arg_map(args: &[(&str, SoapValue)]) -> BTreeMap<String, SoapValue> {
    args.iter()
        .map(|(n, v)| (n.to_string(), v.clone()))
        .collect()
}
