//! A registry browser — the tool the paper says is missing.
//!
//! "To use the generated services, a user should examine the UDDI registry
//! provided by the solution. The user has to do so by using external tools
//! as the presented solution doesn't come with a tool to examine UDDI
//! registries" (§VIII-D4). This module closes that gap: a catalog view of
//! everything published, and a detail view per service with its operation
//! signature pulled from the live WSDL — what a consumer needs before
//! running `wsimport`.

use simkit::report::TextTable;
use wsstack::ParamType;

use crate::onserve::OnServe;

fn type_label(t: ParamType) -> &'static str {
    match t {
        ParamType::Str => "string",
        ParamType::Int => "int",
        ParamType::Double => "double",
        ParamType::Bool => "boolean",
        ParamType::Binary => "base64",
    }
}

/// One-line-per-service catalog of the registry (name, key, endpoint,
/// `execute` signature).
pub fn catalog(onserve: &OnServe) -> String {
    let mut reg = onserve.registry().borrow_mut();
    let container = onserve.container().borrow();
    let mut table = TextTable::new(vec!["service", "uddi key", "endpoint", "signature"]);
    for svc in reg.find("%") {
        let signature = container
            .wsdl_for(&svc.name)
            .and_then(|w| w.operation("execute"))
            .map(|op| {
                let params: Vec<String> = op
                    .inputs
                    .iter()
                    .map(|p| format!("{}: {}", p.name, type_label(p.ty)))
                    .collect();
                format!("execute({}) -> {}", params.join(", "), type_label(op.output))
            })
            .unwrap_or_else(|| "(undeployed)".to_owned());
        table.row(vec![
            svc.name.clone(),
            svc.service_key.clone(),
            svc.bindings[0].access_point.clone(),
            signature,
        ]);
    }
    table.render()
}

/// Detail view for services matching a UDDI `%`-pattern: description,
/// bindings and the full WSDL text.
pub fn describe(onserve: &OnServe, pattern: &str) -> String {
    let mut reg = onserve.registry().borrow_mut();
    let container = onserve.container().borrow();
    let mut out = String::new();
    let hits = reg.find(pattern);
    if hits.is_empty() {
        return format!("no services match '{pattern}'\n");
    }
    for svc in hits {
        out.push_str(&format!("service:     {}\n", svc.name));
        out.push_str(&format!("key:         {}\n", svc.service_key));
        out.push_str(&format!("business:    {}\n", svc.business));
        out.push_str(&format!("description: {}\n", svc.description));
        for b in &svc.bindings {
            out.push_str(&format!("endpoint:    {}\n", b.access_point));
            out.push_str(&format!("wsdl:        {}\n", b.wsdl_location));
        }
        match container.wsdl_for(&svc.name) {
            Some(w) => {
                out.push_str("--- WSDL ---\n");
                out.push_str(&w.to_text());
                out.push('\n');
            }
            None => out.push_str("(service not deployed in the container)\n"),
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployment::{Deployment, DeploymentSpec};
    use crate::profile::ExecutionProfile;
    use simkit::Sim;

    fn world() -> (Sim, Deployment) {
        let mut sim = Sim::new(55);
        let d = Deployment::build(&mut sim, &DeploymentSpec::default());
        for (name, params) in [
            ("alpha.exe", vec![("n", "int")]),
            ("beta.exe", vec![("x", "double"), ("label", "string")]),
        ] {
            let req = d.upload_request(name, 4096, ExecutionProfile::quick(), &params);
            d.portal.upload(&mut sim, req, |_, r| {
                r.expect("publish");
            });
            sim.run();
        }
        (sim, d)
    }

    #[test]
    fn catalog_lists_everything_with_signatures() {
        let (_sim, d) = world();
        let c = catalog(&d.onserve);
        assert!(c.contains("alpha"), "{c}");
        assert!(c.contains("beta"), "{c}");
        assert!(c.contains("execute(n: int) -> base64"), "{c}");
        assert!(c.contains("execute(x: double, label: string) -> base64"), "{c}");
        assert!(c.contains("uuid:"), "{c}");
    }

    #[test]
    fn describe_includes_wsdl() {
        let (_sim, d) = world();
        let det = describe(&d.onserve, "alpha");
        assert!(det.contains("service:     alpha"));
        assert!(det.contains("--- WSDL ---"));
        assert!(det.contains("wsdl:definitions"));
    }

    #[test]
    fn describe_unknown_pattern() {
        let (_sim, d) = world();
        assert!(describe(&d.onserve, "zzz").contains("no services match"));
    }

    #[test]
    fn describe_undeployed_service_is_flagged() {
        let (_sim, d) = world();
        d.onserve.container().borrow_mut().undeploy("alpha");
        let det = describe(&d.onserve, "alpha");
        assert!(det.contains("not deployed"), "{det}");
    }
}
