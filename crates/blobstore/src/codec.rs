//! An LZ77-family compression codec.
//!
//! Blobs are stored compressed (the paper's measured CPU peak includes
//! "decompressing the file from the database"). The format is a simple
//! byte-oriented LZ with hash-chain matching — think "mini LZ4": a stream
//! of tokens, each a literal run and/or a back-reference.
//!
//! ## Format
//!
//! ```text
//! stream  := header token*
//! header  := u32_le original_len
//! token   := tag lit_ext? literals (off_lo off_hi len_ext?)?
//! tag     := high nibble = literal count (15 = extended),
//!            low  nibble = match length - MIN_MATCH (15 = extended, 0b1111
//!            only valid when a match follows; a tag low nibble of 0 with
//!            no trailing bytes ends the stream after its literals)
//! ```
//!
//! Extended lengths use LEB-style 255-continuation bytes (as in LZ4).
//! Matches are 4..=64 KiB offsets, minimum length 4.

use std::fmt;

/// Decode failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended inside a token.
    Truncated,
    /// A back-reference points before the start of the output.
    BadOffset,
    /// Decompressed size disagrees with the header.
    LengthMismatch {
        /// Length promised by the header.
        expected: usize,
        /// Length actually produced.
        actual: usize,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "compressed stream truncated"),
            CodecError::BadOffset => write!(f, "back-reference before stream start"),
            CodecError::LengthMismatch { expected, actual } => {
                write!(f, "length mismatch: header {expected}, decoded {actual}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

const MIN_MATCH: usize = 4;
const MAX_OFFSET: usize = 65_535;
const HASH_BITS: u32 = 15;

#[inline]
fn hash4(b: &[u8]) -> usize {
    let v = u32::from_le_bytes([b[0], b[1], b[2], b[3]]);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

fn write_varlen(out: &mut Vec<u8>, mut extra: usize) {
    while extra >= 255 {
        out.push(255);
        extra -= 255;
    }
    out.push(extra as u8);
}

fn read_varlen(inp: &[u8], pos: &mut usize) -> Result<usize, CodecError> {
    let mut total = 0usize;
    loop {
        let b = *inp.get(*pos).ok_or(CodecError::Truncated)?;
        *pos += 1;
        total += b as usize;
        if b != 255 {
            return Ok(total);
        }
    }
}

/// Compress `data`. Always succeeds; incompressible input grows by a few
/// bytes per 15-literal run plus the 4-byte header.
pub fn compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    out.extend_from_slice(&(data.len() as u32).to_le_bytes());
    if data.is_empty() {
        return out;
    }
    let mut head = vec![u32::MAX; 1 << HASH_BITS];
    let mut pos = 0usize;
    let mut lit_start = 0usize;

    while pos + MIN_MATCH <= data.len() {
        let h = hash4(&data[pos..]);
        let candidate = head[h];
        head[h] = pos as u32;
        let mut match_len = 0usize;
        let mut match_off = 0usize;
        if candidate != u32::MAX {
            let cand = candidate as usize;
            let off = pos - cand;
            if off <= MAX_OFFSET && data[cand..cand + MIN_MATCH] == data[pos..pos + MIN_MATCH] {
                // extend
                let mut len = MIN_MATCH;
                while pos + len < data.len() && data[cand + len] == data[pos + len] {
                    len += 1;
                }
                match_len = len;
                match_off = off;
            }
        }
        if match_len >= MIN_MATCH {
            emit_token(
                &mut out,
                &data[lit_start..pos],
                Some((match_off, match_len)),
            );
            // index the skipped region sparsely (every other byte) to keep
            // compression fast while still finding later overlaps
            let end = pos + match_len;
            let mut p = pos + 1;
            while p + MIN_MATCH <= data.len() && p < end {
                head[hash4(&data[p..])] = p as u32;
                p += 2;
            }
            pos = end;
            lit_start = pos;
        } else {
            pos += 1;
        }
    }
    // trailing literals (omitted when the last match consumed the tail, so
    // no stream has a redundant empty final token)
    if lit_start < data.len() {
        emit_token(&mut out, &data[lit_start..], None);
    }
    out
}

fn emit_token(out: &mut Vec<u8>, literals: &[u8], m: Option<(usize, usize)>) {
    // Long literal runs are split: every token carries ≤ its encodable
    // amount, only the final carries the match.
    let lit_nibble = literals.len().min(15);
    let (match_nibble, match_extra) = match m {
        Some((_, len)) => {
            let stored = len - MIN_MATCH;
            (stored.min(14) + 1, stored.saturating_sub(14))
        }
        None => (0, 0),
    };
    out.push(((lit_nibble as u8) << 4) | match_nibble as u8);
    if lit_nibble == 15 {
        write_varlen(out, literals.len() - 15);
    }
    out.extend_from_slice(literals);
    if let Some((off, _)) = m {
        out.extend_from_slice(&(off as u16).to_le_bytes());
        if match_nibble == 15 {
            write_varlen(out, match_extra);
        }
    }
}

/// Decompress a stream produced by [`compress`].
pub fn decompress(input: &[u8]) -> Result<Vec<u8>, CodecError> {
    if input.len() < 4 {
        return Err(CodecError::Truncated);
    }
    let expected = u32::from_le_bytes([input[0], input[1], input[2], input[3]]) as usize;
    let mut out = Vec::with_capacity(expected);
    let mut pos = 4usize;
    while pos < input.len() {
        let tag = input[pos];
        pos += 1;
        let mut lit = (tag >> 4) as usize;
        if lit == 15 {
            lit += read_varlen(input, &mut pos)?;
        }
        if pos + lit > input.len() {
            return Err(CodecError::Truncated);
        }
        out.extend_from_slice(&input[pos..pos + lit]);
        pos += lit;
        let mnib = (tag & 0x0f) as usize;
        if mnib == 0 {
            continue; // literal-only token (end or long-run split)
        }
        if pos + 2 > input.len() {
            return Err(CodecError::Truncated);
        }
        let off = u16::from_le_bytes([input[pos], input[pos + 1]]) as usize;
        pos += 2;
        let mut len = MIN_MATCH + (mnib - 1);
        if mnib == 15 {
            len += read_varlen(input, &mut pos)?;
        }
        if off == 0 || off > out.len() {
            return Err(CodecError::BadOffset);
        }
        let start = out.len() - off;
        // overlapping copies are the whole point of LZ — copy byte-wise
        for i in 0..len {
            let b = out[start + i];
            out.push(b);
        }
    }
    if out.len() != expected {
        return Err(CodecError::LengthMismatch {
            expected,
            actual: out.len(),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let c = compress(data);
        let d = decompress(&c).expect("decompress");
        assert_eq!(d, data, "roundtrip failed for {} bytes", data.len());
    }

    #[test]
    fn empty_and_tiny() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"ab");
        roundtrip(b"abc");
        roundtrip(b"abcd");
    }

    #[test]
    fn repetitive_compresses_well() {
        let data: Vec<u8> = b"hello world! ".iter().copied().cycle().take(100_000).collect();
        let c = compress(&data);
        assert!(c.len() < data.len() / 10, "ratio: {}/{}", c.len(), data.len());
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn zeros_compress_extremely() {
        let data = vec![0u8; 1_000_000];
        let c = compress(&data);
        assert!(c.len() < 10_000, "{} bytes", c.len());
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn incompressible_grows_bounded() {
        // pseudo-random bytes
        let mut x: u64 = 0x2545F4914F6CDD1D;
        let data: Vec<u8> = (0..100_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x as u8
            })
            .collect();
        let c = compress(&data);
        assert!(c.len() < data.len() + data.len() / 10 + 64);
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn overlapping_match_run() {
        // 'aaaa...' forces overlapping copies (offset 1)
        roundtrip(&vec![b'a'; 5000]);
        // period-3 pattern, offset 3 overlap
        let data: Vec<u8> = b"xyz".iter().copied().cycle().take(10_001).collect();
        roundtrip(&data);
    }

    #[test]
    fn structured_text_roundtrip() {
        let text = include_str!("codec.rs");
        roundtrip(text.as_bytes());
        let c = compress(text.as_bytes());
        assert!(c.len() < text.len(), "source code should compress");
    }

    #[test]
    fn long_literal_runs_split_correctly() {
        // all-distinct bytes > 15 forces extended literal encoding
        let data: Vec<u8> = (0..=255u8).collect();
        roundtrip(&data);
        let data: Vec<u8> = (0..1000).map(|i| (i % 251) as u8).collect();
        roundtrip(&data);
    }

    #[test]
    fn truncated_stream_errors() {
        let c = compress(b"hello hello hello hello");
        for cut in 0..c.len() {
            let r = decompress(&c[..cut]);
            assert!(r.is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn corrupt_offset_errors() {
        // token claiming a match at offset 999 with no prior output
        let mut bad = Vec::new();
        bad.extend_from_slice(&10u32.to_le_bytes());
        bad.push(0x01); // 0 literals, match nibble 1 (len 4)
        bad.extend_from_slice(&999u16.to_le_bytes());
        assert_eq!(decompress(&bad), Err(CodecError::BadOffset));
    }

    #[test]
    fn length_mismatch_detected() {
        let mut c = compress(b"abcdefgh");
        // lie about the original length
        c[0] = 99;
        assert!(matches!(
            decompress(&c),
            Err(CodecError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn large_mixed_payload() {
        let mut data = Vec::new();
        for i in 0..2000u32 {
            data.extend_from_slice(format!("record-{i}: value={} ", i * 7 % 13).as_bytes());
            if i % 5 == 0 {
                data.extend_from_slice(&i.to_le_bytes());
            }
        }
        roundtrip(&data);
    }
}
