//! Timed storage paths on a simulated host.
//!
//! Section VIII-D3 diagnoses the implementation's storage flaw: "When a
//! file is loaded to the server, it is first stored into a temporary
//! location and then loaded from this location into the database. Hence
//! there are at least two write operations and one read operation necessary
//! just to store one file" — and Figure 8 shows the two disk-write peaks.
//! [`WriteStrategy::DoubleWrite`] reproduces that path;
//! [`WriteStrategy::Direct`] is the "may be improved" ablation the paper
//! suggests. Reads (service use) are "two reads and just one write ... and
//! also mandatory" (§VIII-D3): DB read + temp write + temp read.

use std::cell::RefCell;
use std::rc::Rc;

use bytes::Bytes;
use simkit::{FaultInjector, Host, Sim};

use crate::store::{BlobDb, DbError, ParamSpec};

/// CPU seconds to compress `bytes` (hash-chain LZ, ~40 MB/s on 2010 iron).
pub fn compress_cpu_secs(bytes: f64) -> f64 {
    bytes / (40.0 * 1024.0 * 1024.0)
}

/// CPU seconds to decompress `bytes` (~150 MB/s).
pub fn decompress_cpu_secs(bytes: f64) -> f64 {
    bytes / (150.0 * 1024.0 * 1024.0)
}

/// How uploads reach the database.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WriteStrategy {
    /// The paper's implementation: temp-file write → temp read → DB write.
    DoubleWrite,
    /// The suggested fix: straight into the database.
    Direct,
}

/// What a timed store operation cost, for the experiment reports.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StoreTiming {
    /// Bytes written to disk (all passes).
    pub disk_write_bytes: f64,
    /// Bytes read from disk.
    pub disk_read_bytes: f64,
    /// CPU seconds burned (compression).
    pub cpu_seconds: f64,
}

/// A [`BlobDb`] bound to a host, with timed operations.
pub struct TimedDb {
    db: Rc<RefCell<BlobDb>>,
    host: Rc<Host>,
    strategy: WriteStrategy,
    faults: RefCell<Option<Rc<FaultInjector>>>,
}

impl TimedDb {
    /// Bind `db` to `host` under the given write strategy.
    pub fn new(db: Rc<RefCell<BlobDb>>, host: Rc<Host>, strategy: WriteStrategy) -> Rc<TimedDb> {
        Rc::new(TimedDb {
            db,
            host,
            strategy,
            faults: RefCell::new(None),
        })
    }

    /// Subject stores to a [`FaultInjector`]: each store may fail with
    /// [`DbError::WriteFailed`] at the DB-write step — after the temp pass
    /// and compression were already paid for, like a real mid-transaction
    /// I/O error. Pass `None` to heal.
    pub fn inject_faults(&self, injector: Option<Rc<FaultInjector>>) {
        *self.faults.borrow_mut() = injector;
    }

    /// The raw database handle.
    pub fn db(&self) -> &Rc<RefCell<BlobDb>> {
        &self.db
    }

    /// The active strategy.
    pub fn strategy(&self) -> WriteStrategy {
        self.strategy
    }

    /// Store an uploaded executable with full timing: disk passes per the
    /// strategy, compression CPU, then the database insert.
    pub fn store<F>(
        self: &Rc<Self>,
        sim: &mut Sim,
        name: &str,
        description: &str,
        params: Vec<ParamSpec>,
        data: Bytes,
        done: F,
    ) where
        F: FnOnce(&mut Sim, Result<u64, DbError>, StoreTiming) + 'static,
    {
        let bytes = data.len() as f64;
        let span = sim.span_begin("db.store");
        sim.span_attr(span, "file", name);
        sim.span_attr(span, "bytes", bytes);
        let this = Rc::clone(self);
        let name = name.to_owned();
        let description = description.to_owned();
        // single close point: every exit path funnels through `done`
        let done = move |sim: &mut Sim, res: Result<u64, DbError>, timing: StoreTiming| {
            match &res {
                Ok(_) => sim.span_end(span),
                Err(e) => sim.span_fail(span, &e.to_string()),
            }
            done(sim, res, timing);
        };
        let insert = move |sim: &mut Sim, mut timing: StoreTiming| {
            // compress on CPU, then one disk write of the compressed blob
            let wspan = sim.span_child("db.db_write", span);
            let cpu = compress_cpu_secs(bytes);
            timing.cpu_seconds += cpu;
            let this2 = Rc::clone(&this);
            this.host.clone().compute(sim, cpu, move |sim| {
                let injected = this2
                    .faults
                    .borrow()
                    .as_ref()
                    .is_some_and(|f| f.fail_write());
                let res = if injected {
                    Err(DbError::WriteFailed(name.clone()))
                } else {
                    this2.db.borrow_mut().insert(&name, &description, params, &data)
                };
                match res {
                    Ok(id) => {
                        let stored = this2
                            .db
                            .borrow()
                            .record_by_id(id)
                            .map(|r| r.stored_len as f64)
                            .unwrap_or(bytes);
                        timing.disk_write_bytes += stored;
                        let host = Rc::clone(&this2.host);
                        host.write_disk(sim, stored, move |sim| {
                            sim.span_attr(wspan, "bytes", stored);
                            sim.span_end(wspan);
                            done(sim, Ok(id), timing);
                        });
                    }
                    Err(e) => {
                        sim.span_fail(wspan, &e.to_string());
                        done(sim, Err(e), timing);
                    }
                }
            });
        };
        match self.strategy {
            WriteStrategy::Direct => insert(sim, StoreTiming::default()),
            WriteStrategy::DoubleWrite => {
                // temp write, then read it back, then the DB path; the two
                // child spans make the §VIII-D3 double-write visible in a
                // trace of the upload
                let tspan = sim.span_child("db.temp_write", span);
                sim.span_attr(tspan, "bytes", bytes);
                let host = Rc::clone(&self.host);
                let host2 = Rc::clone(&self.host);
                host.write_disk(sim, bytes, move |sim| {
                    host2.read_disk(sim, bytes, move |sim| {
                        sim.span_end(tspan);
                        insert(
                            sim,
                            StoreTiming {
                                disk_write_bytes: bytes,
                                disk_read_bytes: bytes,
                                cpu_seconds: 0.0,
                            },
                        );
                    });
                });
            }
        }
    }

    /// Load an executable for use: DB read (compressed), decompress on
    /// CPU, write to a temporary location, read it back for the upload —
    /// the §VII-B "file retrieval" step ("loaded from the database and then
    /// stored in a temporary location").
    pub fn load_for_use<F>(self: &Rc<Self>, sim: &mut Sim, name: &str, done: F)
    where
        F: FnOnce(&mut Sim, Result<Bytes, DbError>, StoreTiming) + 'static,
    {
        let span = sim.span_begin("db.load");
        sim.span_attr(span, "file", name);
        let (stored_len, result) = {
            let db = self.db.borrow();
            match db.load(name) {
                Ok(data) => (
                    db.record(name).map(|r| r.stored_len as f64).unwrap_or(0.0),
                    Ok(Bytes::from(data)),
                ),
                Err(e) => (0.0, Err(e)),
            }
        };
        match result {
            Err(e) => {
                sim.span_fail(span, &e.to_string());
                done(sim, Err(e), StoreTiming::default());
            }
            Ok(data) => {
                let bytes = data.len() as f64;
                sim.span_attr(span, "bytes", bytes);
                let cpu = decompress_cpu_secs(bytes);
                let timing = StoreTiming {
                    disk_write_bytes: bytes,
                    disk_read_bytes: stored_len + bytes,
                    cpu_seconds: cpu,
                };
                let host = Rc::clone(&self.host);
                let host2 = Rc::clone(&self.host);
                let host3 = Rc::clone(&self.host);
                let host4 = Rc::clone(&self.host);
                // DB read of the compressed blob
                host.read_disk(sim, stored_len, move |sim| {
                    // decompress
                    host2.compute(sim, cpu, move |sim| {
                        // temp write of the decompressed file
                        host3.write_disk(sim, bytes, move |sim| {
                            // read back when handing it onward
                            host4.read_disk(sim, bytes, move |sim| {
                                sim.span_end(span);
                                done(sim, Ok(data), timing);
                            });
                        });
                    });
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::{HostSpec, MB};
    use std::cell::Cell;

    fn setup(strategy: WriteStrategy) -> (Sim, Rc<TimedDb>) {
        let sim = Sim::new(0);
        let host = Host::new(&HostSpec::commodity("portal"));
        let db = Rc::new(RefCell::new(BlobDb::new()));
        (sim, TimedDb::new(db, host, strategy))
    }

    fn payload(n: usize) -> Bytes {
        Bytes::from((0..n).map(|i| (i % 17) as u8).collect::<Vec<u8>>())
    }

    #[test]
    fn double_write_does_two_disk_writes() {
        let (mut sim, db) = setup(WriteStrategy::DoubleWrite);
        let timing = Rc::new(Cell::new(StoreTiming::default()));
        let t2 = timing.clone();
        db.store(
            &mut sim,
            "exe",
            "",
            vec![],
            payload(5 * 1024 * 1024),
            move |_, res, t| {
                res.unwrap();
                t2.set(t);
            },
        );
        sim.run();
        let t = timing.get();
        // raw temp write + compressed DB write
        assert!(t.disk_write_bytes > 5.0 * MB, "{t:?}");
        assert!(t.disk_read_bytes >= 5.0 * MB, "{t:?}");
        assert!(t.cpu_seconds > 0.0);
        // the recorder saw both write passes
        let written = sim.recorder_ref().total("portal.disk.write.bytes");
        assert!(written > 5.0 * MB, "recorded {written}");
    }

    #[test]
    fn direct_write_skips_temp_pass() {
        let (mut sim, db) = setup(WriteStrategy::Direct);
        db.store(&mut sim, "exe", "", vec![], payload(5 * 1024 * 1024), |_, res, t| {
            res.unwrap();
            assert_eq!(t.disk_read_bytes, 0.0);
            assert!(t.disk_write_bytes < 5.0 * 1024.0 * 1024.0); // compressed only
        });
        sim.run();
        let written = sim.recorder_ref().total("portal.disk.write.bytes");
        assert!(written < 5.0 * MB, "recorded {written}");
    }

    #[test]
    fn double_write_is_slower_than_direct() {
        let run = |strategy| {
            let (mut sim, db) = setup(strategy);
            let done_at = Rc::new(Cell::new(0.0));
            let d = done_at.clone();
            db.store(&mut sim, "exe", "", vec![], payload(20 * 1024 * 1024), move |sim, r, _| {
                r.unwrap();
                d.set(sim.now().as_secs_f64());
            });
            sim.run();
            done_at.get()
        };
        let dw = run(WriteStrategy::DoubleWrite);
        let direct = run(WriteStrategy::Direct);
        assert!(dw > direct, "double-write {dw} vs direct {direct}");
    }

    #[test]
    fn load_for_use_roundtrips_and_times() {
        let (mut sim, db) = setup(WriteStrategy::Direct);
        let data = payload(1024 * 1024);
        let expect = data.clone();
        db.store(&mut sim, "exe", "", vec![], data, |_, r, _| {
            r.unwrap();
        });
        sim.run();
        let db2 = Rc::clone(&db);
        let hit = Rc::new(Cell::new(false));
        let h2 = hit.clone();
        db2.load_for_use(&mut sim, "exe", move |_, r, t| {
            assert_eq!(r.unwrap(), expect);
            // two reads (DB + temp) and one write (temp): §VIII-D3
            assert!(t.disk_read_bytes > t.disk_write_bytes);
            assert!(t.cpu_seconds > 0.0);
            h2.set(true);
        });
        sim.run();
        assert!(hit.get());
    }

    #[test]
    fn load_missing_fails_fast() {
        let (mut sim, db) = setup(WriteStrategy::Direct);
        let hit = Rc::new(Cell::new(false));
        let h2 = hit.clone();
        db.load_for_use(&mut sim, "ghost", move |_, r, _| {
            assert!(matches!(r, Err(DbError::NotFound(_))));
            h2.set(true);
        });
        sim.run();
        assert!(hit.get());
    }

    #[test]
    fn injected_write_failure_surfaces_after_paying_the_io() {
        let (mut sim, db) = setup(WriteStrategy::DoubleWrite);
        // p=1: every store fails at the DB-write step, deterministically
        db.inject_faults(Some(simkit::FaultPlan::new(5).write_fail(1.0).injector()));
        let hit = Rc::new(Cell::new(false));
        let h2 = hit.clone();
        db.store(&mut sim, "exe", "", vec![], payload(1024 * 1024), move |_, r, t| {
            assert!(matches!(r, Err(DbError::WriteFailed(_))));
            // the temp pass was already spent before the failure
            assert!(t.disk_write_bytes >= 1024.0 * 1024.0, "{t:?}");
            h2.set(true);
        });
        sim.run();
        assert!(hit.get());
        // heal and retry: the name was never inserted, so it succeeds
        db.inject_faults(None);
        let ok = Rc::new(Cell::new(false));
        let o2 = ok.clone();
        db.store(&mut sim, "exe", "", vec![], payload(1024 * 1024), move |_, r, _| {
            r.unwrap();
            o2.set(true);
        });
        sim.run();
        assert!(ok.get());
    }

    #[test]
    fn duplicate_store_surfaces_error_after_timing() {
        let (mut sim, db) = setup(WriteStrategy::DoubleWrite);
        db.store(&mut sim, "exe", "", vec![], payload(100), |_, r, _| {
            r.unwrap();
        });
        sim.run();
        let hit = Rc::new(Cell::new(false));
        let h2 = hit.clone();
        db.store(&mut sim, "exe", "", vec![], payload(100), move |_, r, _| {
            assert!(matches!(r, Err(DbError::Duplicate(_))));
            h2.set(true);
        });
        sim.run();
        assert!(hit.get());
    }
}
