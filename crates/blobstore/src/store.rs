//! The table layer: executable records and compressed blob pages.
//!
//! This is the `DbManager`/`dataIO` equivalent: one table of executable
//! metadata (name, description, declared parameters — the portal dialog's
//! fields, Figure 3) and one blob table holding the compressed payloads
//! with checksums. Pure data structure; timing lives in
//! [`crate::strategy`].

use std::collections::BTreeMap;
use std::fmt;

use bytes::Bytes;

use crate::codec::{compress, decompress, CodecError};

/// A declared service parameter (the portal's "Parameter-Name/Type" rows).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParamSpec {
    /// Parameter name.
    pub name: String,
    /// Parameter type name (`string`, `int`, `double`, `boolean`,
    /// `base64`).
    pub type_name: String,
}

impl ParamSpec {
    /// Convenience constructor.
    pub fn new(name: &str, type_name: &str) -> ParamSpec {
        ParamSpec {
            name: name.to_owned(),
            type_name: type_name.to_owned(),
        }
    }
}

/// Metadata row for one stored executable.
#[derive(Clone, Debug, PartialEq)]
pub struct ExecutableRecord {
    /// Primary key.
    pub id: u64,
    /// Unique executable name.
    pub name: String,
    /// Free-text description.
    pub description: String,
    /// Declared parameters.
    pub params: Vec<ParamSpec>,
    /// Uncompressed payload size.
    pub original_len: usize,
    /// Stored (compressed) payload size.
    pub stored_len: usize,
    /// FNV-1a checksum of the uncompressed payload.
    pub checksum: u64,
}

/// Database errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DbError {
    /// Name already present.
    Duplicate(String),
    /// No row under that name/id.
    NotFound(String),
    /// Blob failed checksum or decode (storage corruption).
    Corrupt(String),
    /// A write was lost before it was durable (injected I/O fault).
    WriteFailed(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Duplicate(n) => write!(f, "duplicate executable name: {n}"),
            DbError::NotFound(n) => write!(f, "no such executable: {n}"),
            DbError::Corrupt(n) => write!(f, "corrupt blob for: {n}"),
            DbError::WriteFailed(n) => write!(f, "write failed for: {n}"),
        }
    }
}

impl std::error::Error for DbError {}

impl From<CodecError> for DbError {
    fn from(e: CodecError) -> Self {
        DbError::Corrupt(e.to_string())
    }
}

fn fnv1a(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The executable database.
#[derive(Default)]
pub struct BlobDb {
    records: BTreeMap<u64, ExecutableRecord>,
    by_name: BTreeMap<String, u64>,
    blobs: BTreeMap<u64, Bytes>,
    next_id: u64,
}

impl BlobDb {
    /// Empty database.
    pub fn new() -> BlobDb {
        BlobDb::default()
    }

    /// Insert an executable; the payload is compressed on the way in.
    /// Returns the new row id.
    pub fn insert(
        &mut self,
        name: &str,
        description: &str,
        params: Vec<ParamSpec>,
        data: &[u8],
    ) -> Result<u64, DbError> {
        if self.by_name.contains_key(name) {
            return Err(DbError::Duplicate(name.to_owned()));
        }
        self.next_id += 1;
        let id = self.next_id;
        let compressed = compress(data);
        let record = ExecutableRecord {
            id,
            name: name.to_owned(),
            description: description.to_owned(),
            params,
            original_len: data.len(),
            stored_len: compressed.len(),
            checksum: fnv1a(data),
        };
        self.by_name.insert(name.to_owned(), id);
        self.blobs.insert(id, Bytes::from(compressed));
        self.records.insert(id, record);
        Ok(id)
    }

    /// Metadata by name.
    pub fn record(&self, name: &str) -> Result<&ExecutableRecord, DbError> {
        let id = self
            .by_name
            .get(name)
            .ok_or_else(|| DbError::NotFound(name.to_owned()))?;
        Ok(&self.records[id])
    }

    /// Metadata by id.
    pub fn record_by_id(&self, id: u64) -> Result<&ExecutableRecord, DbError> {
        self.records
            .get(&id)
            .ok_or_else(|| DbError::NotFound(format!("id {id}")))
    }

    /// Decompress and verify a payload by name.
    pub fn load(&self, name: &str) -> Result<Vec<u8>, DbError> {
        let rec = self.record(name)?;
        let blob = self
            .blobs
            .get(&rec.id)
            .ok_or_else(|| DbError::Corrupt(name.to_owned()))?;
        let data = decompress(blob)?;
        if fnv1a(&data) != rec.checksum {
            return Err(DbError::Corrupt(name.to_owned()));
        }
        Ok(data)
    }

    /// Delete by name; returns the freed record.
    pub fn delete(&mut self, name: &str) -> Result<ExecutableRecord, DbError> {
        let id = self
            .by_name
            .remove(name)
            .ok_or_else(|| DbError::NotFound(name.to_owned()))?;
        self.blobs.remove(&id);
        Ok(self.records.remove(&id).expect("record present"))
    }

    /// All records, ordered by id.
    pub fn list(&self) -> impl Iterator<Item = &ExecutableRecord> {
        self.records.values()
    }

    /// Number of stored executables.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total bytes of compressed blob storage.
    pub fn stored_bytes(&self) -> usize {
        self.blobs.values().map(Bytes::len).sum()
    }

    /// Test/failure-injection hook: corrupt a stored blob in place.
    pub fn corrupt_blob(&mut self, name: &str) -> Result<(), DbError> {
        let id = *self
            .by_name
            .get(name)
            .ok_or_else(|| DbError::NotFound(name.to_owned()))?;
        let blob = self.blobs.get_mut(&id).expect("blob present");
        let mut v = blob.to_vec();
        if let Some(last) = v.last_mut() {
            *last ^= 0xff;
        }
        // also flip a mid-stream byte so decoding or checksum must fail
        let mid = v.len() / 2;
        if mid > 4 {
            v[mid] ^= 0x55;
        }
        *blob = Bytes::from(v);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i % 251) as u8).collect()
    }

    #[test]
    fn insert_load_roundtrip() {
        let mut db = BlobDb::new();
        let data = payload(10_000);
        let id = db
            .insert(
                "solver",
                "finite element solver",
                vec![ParamSpec::new("mesh", "string")],
                &data,
            )
            .unwrap();
        let rec = db.record("solver").unwrap();
        assert_eq!(rec.id, id);
        assert_eq!(rec.original_len, 10_000);
        assert!(rec.stored_len < rec.original_len);
        assert_eq!(db.load("solver").unwrap(), data);
        assert_eq!(db.record_by_id(id).unwrap().name, "solver");
    }

    #[test]
    fn duplicate_name_rejected() {
        let mut db = BlobDb::new();
        db.insert("a", "", vec![], b"x").unwrap();
        assert_eq!(
            db.insert("a", "", vec![], b"y"),
            Err(DbError::Duplicate("a".into()))
        );
    }

    #[test]
    fn not_found_errors() {
        let db = BlobDb::new();
        assert!(matches!(db.record("ghost"), Err(DbError::NotFound(_))));
        assert!(matches!(db.load("ghost"), Err(DbError::NotFound(_))));
        assert!(matches!(db.record_by_id(9), Err(DbError::NotFound(_))));
    }

    #[test]
    fn delete_frees_name_and_space() {
        let mut db = BlobDb::new();
        db.insert("a", "", vec![], &payload(5000)).unwrap();
        let before = db.stored_bytes();
        assert!(before > 0);
        let rec = db.delete("a").unwrap();
        assert_eq!(rec.name, "a");
        assert_eq!(db.stored_bytes(), 0);
        assert!(db.is_empty());
        // reinsert under the same name works
        db.insert("a", "", vec![], b"z").unwrap();
        assert_eq!(db.len(), 1);
        assert!(matches!(db.delete("ghost"), Err(DbError::NotFound(_))));
    }

    #[test]
    fn corruption_detected_on_load() {
        let mut db = BlobDb::new();
        db.insert("a", "", vec![], &payload(4096)).unwrap();
        db.corrupt_blob("a").unwrap();
        assert!(matches!(db.load("a"), Err(DbError::Corrupt(_))));
    }

    #[test]
    fn empty_payload_ok() {
        let mut db = BlobDb::new();
        db.insert("empty", "", vec![], b"").unwrap();
        assert_eq!(db.load("empty").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn list_is_ordered_by_id() {
        let mut db = BlobDb::new();
        db.insert("c", "", vec![], b"1").unwrap();
        db.insert("a", "", vec![], b"2").unwrap();
        db.insert("b", "", vec![], b"3").unwrap();
        let names: Vec<&str> = db.list().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["c", "a", "b"]);
    }

    #[test]
    fn params_preserved() {
        let mut db = BlobDb::new();
        let params = vec![
            ParamSpec::new("alpha", "double"),
            ParamSpec::new("n", "int"),
        ];
        db.insert("p", "d", params.clone(), b"bin").unwrap();
        assert_eq!(db.record("p").unwrap().params, params);
        assert_eq!(db.record("p").unwrap().description, "d");
    }
}
