#![warn(missing_docs)]

//! # blobstore — the executable database
//!
//! onServe stores every uploaded executable "in the MySQL database,
//! together with its description and the details about the parameters"
//! (§VII-A); at invocation time the file is "loaded from the database and
//! then stored in a temporary location" (§VII-B), with a CPU burst "while
//! loading and decompressing the file from the database" (§VIII-B). This
//! crate is that database, rebuilt from scratch:
//!
//! * [`codec`] — an LZ77-family compression codec (blobs are stored
//!   compressed; decompression is the Figure 6 CPU peak).
//! * [`store`] — the table layer: executable records (name, description,
//!   parameter specs) plus compressed blob pages, with checksums.
//! * [`strategy`] — the *timed* storage paths on a [`simkit::Host`],
//!   including the paper's documented flaw: "the file is first stored
//!   temporarily and then in the database. ... at least two write
//!   operations and one read operation" (§VIII-D3) — reproduced as
//!   [`strategy::WriteStrategy::DoubleWrite`] and ablated against
//!   [`strategy::WriteStrategy::Direct`].

pub mod codec;
pub mod store;
pub mod strategy;

pub use codec::{compress, decompress, CodecError};
pub use store::{BlobDb, DbError, ExecutableRecord, ParamSpec};
pub use strategy::{StoreTiming, TimedDb, WriteStrategy};
