//! Property-based invariants of the blob database and its codec.

use blobstore::{compress, decompress, BlobDb, ParamSpec, TimedDb, WriteStrategy};
use bytes::Bytes;
use proptest::prelude::*;
use simkit::{Host, HostSpec, Sim};
use std::cell::RefCell;
use std::rc::Rc;

proptest! {
    /// Codec round-trips arbitrary bytes.
    #[test]
    fn codec_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..20_000)) {
        let c = compress(&data);
        prop_assert_eq!(decompress(&c).unwrap(), data);
    }

    /// Codec round-trips highly repetitive data (the LZ-heavy regime) and
    /// actually shrinks it.
    #[test]
    fn codec_roundtrip_repetitive(
        unit in proptest::collection::vec(any::<u8>(), 1..16),
        reps in 64usize..512,
    ) {
        let data: Vec<u8> = unit.iter().copied().cycle().take(unit.len() * reps).collect();
        let c = compress(&data);
        prop_assert_eq!(decompress(&c).unwrap(), data.clone());
        prop_assert!(c.len() < data.len(), "repetitive data must compress");
    }

    /// Any *prefix* truncation of a compressed stream fails to decode (no
    /// silent partial results).
    #[test]
    fn codec_rejects_truncation(
        data in proptest::collection::vec(any::<u8>(), 1..2_000),
        cut_frac in 0.0f64..1.0,
    ) {
        let c = compress(&data);
        let cut = ((c.len() as f64) * cut_frac) as usize;
        if cut < c.len() {
            prop_assert!(decompress(&c[..cut]).is_err());
        }
    }

    /// Database insert → load is the identity and metadata is accurate.
    #[test]
    fn db_insert_load_identity(
        name in proptest::string::string_regex("[a-zA-Z0-9_.-]{1,24}").expect("regex"),
        data in proptest::collection::vec(any::<u8>(), 0..10_000),
        params in proptest::collection::vec(
            (
                proptest::string::string_regex("[a-z]{1,8}").expect("regex"),
                proptest::string::string_regex("(string|int|double|boolean)").expect("regex"),
            ),
            0..4,
        ),
    ) {
        let mut db = BlobDb::new();
        let specs: Vec<ParamSpec> = params.iter().map(|(n, t)| ParamSpec::new(n, t)).collect();
        let id = db.insert(&name, "desc", specs.clone(), &data).unwrap();
        let rec = db.record(&name).unwrap();
        prop_assert_eq!(rec.id, id);
        prop_assert_eq!(rec.original_len, data.len());
        prop_assert_eq!(&rec.params, &specs);
        prop_assert_eq!(db.load(&name).unwrap(), data);
        // delete frees everything
        db.delete(&name).unwrap();
        prop_assert!(db.is_empty());
        prop_assert_eq!(db.stored_bytes(), 0);
    }

    /// Timed store → timed load is the identity under both write
    /// strategies, and the double-write path always touches at least as
    /// much disk.
    #[test]
    fn timed_strategies_identity_and_ordering(
        data in proptest::collection::vec(any::<u8>(), 1..50_000),
    ) {
        let mut writes = Vec::new();
        for strategy in [WriteStrategy::DoubleWrite, WriteStrategy::Direct] {
            let mut sim = Sim::new(1);
            let host = Host::new(&HostSpec::commodity("h"));
            let db = TimedDb::new(Rc::new(RefCell::new(BlobDb::new())), host, strategy);
            let payload = Bytes::from(data.clone());
            let expect = payload.clone();
            let loaded: Rc<RefCell<Option<Bytes>>> = Rc::new(RefCell::new(None));
            let l2 = loaded.clone();
            let db2 = Rc::clone(&db);
            db.store(&mut sim, "x", "", vec![], payload, move |sim, r, _| {
                r.expect("store");
                db2.load_for_use(sim, "x", move |_, r, _| {
                    *l2.borrow_mut() = Some(r.expect("load"));
                });
            });
            sim.run();
            prop_assert_eq!(loaded.borrow().clone().unwrap(), expect);
            writes.push(sim.recorder_ref().total("h.disk.write.bytes"));
        }
        prop_assert!(writes[0] >= writes[1],
            "double-write {} must write at least as much as direct {}", writes[0], writes[1]);
    }
}
