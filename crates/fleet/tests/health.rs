//! End-to-end gray-failure detection against a real fleet.
//!
//! A replica is degraded to 10× its normal service latency — it still
//! answers, so crash-signal detection never fires. The health plane's
//! peer-relative detector must put it on probation within a bounded number
//! of ticks, keep probing it, and eject it for continued degradation —
//! while never flagging a healthy peer. A second test pins the plane's
//! result-neutrality: attaching it must not move a single event.

use std::cell::Cell;
use std::rc::Rc;

use fleet::{
    DetectorAction, Fleet, FleetSpec, GrayFailureDetector, HealthConfig, HealthPlane, Policy,
    Request, StorageTopology,
};
use onserve::profile::ExecutionProfile;
use simkit::{Duration, Sim, SimTime, MB};
use vappliance::ApplianceImage;

fn image() -> ApplianceImage {
    ApplianceImage {
        name: "onserve".into(),
        bytes: 600.0 * MB,
        boot_services: vec!["mysqld".into(), "tomcat".into(), "juddi".into()],
        recipe_fingerprint: 1,
    }
}

fn health_fleet(sim: &mut Sim, replicas: usize) -> Rc<Fleet> {
    let mut spec = FleetSpec::with_image(image());
    spec.topology = StorageTopology::Replicated;
    spec.initial_replicas = replicas;
    spec.dispatcher.policy = Policy::RoundRobin;
    spec.dispatcher.max_in_flight = 256;
    Fleet::new(sim, spec)
}

/// Boot, publish a 200ms service, and drain the provisioning.
fn boot_and_publish(sim: &mut Sim, fleet: &Rc<Fleet>) {
    sim.run();
    fleet.publish(
        sim,
        "svc.exe",
        256 * 1024,
        ExecutionProfile::quick().lasting(Duration::from_millis(200)),
        |_| {},
    );
    sim.run();
}

/// Submit one invoke every `every` until `until`, counting completions.
fn pump(sim: &mut Sim, fleet: &Rc<Fleet>, every: Duration, until: SimTime, ok: Rc<Cell<u64>>) {
    if sim.now() > until {
        return;
    }
    let c = Rc::clone(&ok);
    fleet.dispatcher().clone().submit(
        sim,
        Request::Invoke {
            service: "svc".into(),
            args: Vec::new(),
            principal: Some("alice".into()),
        },
        Box::new(move |_, res| {
            if res.is_ok() {
                c.set(c.get() + 1);
            }
        }),
    );
    let f = Rc::clone(fleet);
    sim.schedule(every, move |sim| pump(sim, &f, every, until, ok));
}

/// Windowing tuned to the appliance's real invoke latency (~15s end to
/// end through upload-fetch + grid job): the lookback must hold several
/// completions per replica, degraded ones included.
fn test_cfg(eject_strikes: u32) -> HealthConfig {
    HealthConfig {
        window: Duration::from_secs(15),
        ring: 32,
        lookback: Duration::from_secs(120),
        interval: Duration::from_secs(15),
        latency_factor: 3.0,
        min_samples: 2,
        probation_strikes: 2,
        eject_strikes,
        ..HealthConfig::default()
    }
}

#[test]
fn detector_probations_then_ejects_a_gray_replica() {
    let mut sim = Sim::new(31);
    let fleet = health_fleet(&mut sim, 3);
    boot_and_publish(&mut sim, &fleet);
    let cfg = test_cfg(5);
    let plane = HealthPlane::new(cfg);
    fleet.dispatcher().set_health_plane(Rc::clone(&plane));
    let t0 = sim.now();
    let until = t0 + Duration::from_secs(900);
    let detector = GrayFailureDetector::install(&mut sim, &fleet, &plane, until);
    let ok = Rc::new(Cell::new(0u64));
    // paced so the two healthy replicas stay stable even while they carry
    // the probationer's share (~15s service time per replica)
    pump(&mut sim, &fleet, Duration::from_secs(15), until, Rc::clone(&ok));
    let victim = fleet.active_replica_names()[1].clone();
    let degrade_at = t0 + Duration::from_secs(90);
    let (f2, v2) = (Rc::clone(&fleet), victim.clone());
    sim.schedule(degrade_at - t0, move |sim| {
        assert!(f2.degrade_replica(sim, &v2, 3.0));
    });
    sim.run();

    let events = detector.events();
    assert!(
        events.iter().all(|e| e.replica == victim),
        "only the degraded replica may be flagged: {events:?}"
    );
    let probation = events
        .iter()
        .find(|e| e.action == DetectorAction::Probation)
        .expect("victim goes on probation");
    let eject = events
        .iter()
        .find(|e| e.action == DetectorAction::Ejected)
        .expect("continued degradation ejects the victim");
    assert!(
        probation.at <= degrade_at + Duration::from_secs(150),
        "probation within 10 ticks of the degrade, got +{:.0}s",
        (probation.at - degrade_at).as_secs_f64()
    );
    assert!(eject.at > probation.at, "probation precedes ejection");
    assert!(
        eject.at <= degrade_at + Duration::from_secs(270),
        "bounded time to eject, got +{:.0}s",
        (eject.at - degrade_at).as_secs_f64()
    );
    assert!(
        probation.p99_s >= cfg.latency_factor * probation.median_p99_s,
        "the flag was justified by the windowed stats: {probation:?}"
    );
    assert_eq!(detector.ejections(), 1);
    assert_eq!(fleet.lost_total(), 1, "ejection looks like a crash to the fleet");
    assert_eq!(fleet.active_replicas(), 2);
    assert!(ok.get() > 40, "traffic kept flowing, got {}", ok.get());
}

#[test]
fn cleared_probation_restores_a_recovered_replica() {
    let mut sim = Sim::new(32);
    let fleet = health_fleet(&mut sim, 3);
    boot_and_publish(&mut sim, &fleet);
    // plenty of strike room: recovery must beat ejection
    let cfg = test_cfg(30);
    let plane = HealthPlane::new(cfg);
    fleet.dispatcher().set_health_plane(Rc::clone(&plane));
    let t0 = sim.now();
    let until = t0 + Duration::from_secs(900);
    let detector = GrayFailureDetector::install(&mut sim, &fleet, &plane, until);
    let ok = Rc::new(Cell::new(0u64));
    pump(&mut sim, &fleet, Duration::from_secs(6), until, Rc::clone(&ok));
    let victim = fleet.active_replica_names()[0].clone();
    let (f2, v2) = (Rc::clone(&fleet), victim.clone());
    sim.schedule(Duration::from_secs(90), move |sim| {
        assert!(f2.degrade_replica(sim, &v2, 3.0));
    });
    // recover well before the (generous) eject threshold
    let (f3, v3) = (Rc::clone(&fleet), victim.clone());
    sim.schedule(Duration::from_secs(330), move |sim| {
        assert!(f3.degrade_replica(sim, &v3, 1.0));
    });
    sim.run();

    let events = detector.events();
    assert!(events.iter().all(|e| e.replica == victim));
    assert!(detector.probations() >= 1, "degrade was caught: {events:?}");
    assert_eq!(detector.ejections(), 0, "recovered replica is not ejected");
    assert!(
        events
            .iter()
            .any(|e| e.action == DetectorAction::Cleared),
        "probation lifts once the replica rejoins the pack: {events:?}"
    );
    assert_eq!(fleet.active_replicas(), 3, "nobody lost");
    assert_eq!(fleet.dispatcher().probation_count(), 0);
}

/// Blobstore write-fault injection on one replica must surface as SOAP
/// faults on the upload path, feed the health plane's per-replica error
/// series, and drive the peer-relative detector to put the replica on
/// probation — an error outlier, not a latency one.
#[test]
fn write_faults_surface_as_soap_faults_and_draw_probation() {
    use fleet::ChaosMonkey;
    use simkit::fault::FaultPlan;

    let mut sim = Sim::new(33);
    let fleet = health_fleet(&mut sim, 3);
    boot_and_publish(&mut sim, &fleet);
    let cfg = test_cfg(999); // probation is the claim; never escalate
    let plane = HealthPlane::new(cfg);
    fleet.dispatcher().set_health_plane(Rc::clone(&plane));
    let t0 = sim.now();
    let until = t0 + Duration::from_secs(600);
    let detector = GrayFailureDetector::install(&mut sim, &fleet, &plane, until);
    // every DB write on the seeded victim fails from here on
    let monkey = ChaosMonkey::unleash(&mut sim, &fleet, &FaultPlan::new(21).write_fail(1.0));
    let victim = monkey.write_faulted().expect("one replica armed");
    // steady invokes keep latency samples flowing on every replica …
    let ok = Rc::new(Cell::new(0u64));
    pump(&mut sim, &fleet, Duration::from_secs(6), until, Rc::clone(&ok));
    // … while periodic uploads hit the broken write path
    let upload_faults = Rc::new(Cell::new(0u64));
    fn upload_every(
        sim: &mut Sim,
        fleet: &Rc<Fleet>,
        until: SimTime,
        n: u64,
        faults: Rc<Cell<u64>>,
    ) {
        if sim.now() > until {
            return;
        }
        let f2 = Rc::clone(&faults);
        fleet.dispatcher().clone().submit(
            sim,
            fleet::Request::Upload {
                file_name: format!("w{n}.exe"),
                len: 16 * 1024,
                profile: onserve::profile::ExecutionProfile::quick(),
            },
            Box::new(move |_, res| {
                if res.is_err() {
                    f2.set(f2.get() + 1);
                }
            }),
        );
        let fl = Rc::clone(fleet);
        sim.schedule(Duration::from_secs(30), move |sim| {
            upload_every(sim, &fl, until, n + 1, faults)
        });
    }
    upload_every(&mut sim, &fleet, until, 0, Rc::clone(&upload_faults));
    sim.run();

    // the broken store surfaced at the front door as SOAP faults
    assert!(
        upload_faults.get() >= 3,
        "uploads through the armed replica must fault, got {}",
        upload_faults.get()
    );
    // the error series carries the evidence
    let h = plane
        .replica_health(until, &victim)
        .expect("victim has windowed stats");
    assert!(
        h.error_rate > 0.0,
        "victim error series stayed clean: {h:?}"
    );
    // and the detector acted on it — probation for the victim, nobody else
    let events = detector.events();
    assert!(
        events.iter().all(|e| e.replica == victim),
        "only the write-faulted replica may be flagged: {events:?}"
    );
    assert!(
        events.iter().any(|e| e.action == DetectorAction::Probation),
        "victim never went on probation: {events:?}"
    );
    assert!(ok.get() > 40, "invoke traffic kept flowing, got {}", ok.get());
}

#[test]
fn health_plane_attachment_is_result_neutral() {
    let run = |attach: bool| {
        let mut sim = Sim::new(57);
        let fleet = health_fleet(&mut sim, 2);
        boot_and_publish(&mut sim, &fleet);
        if attach {
            fleet
                .dispatcher()
                .set_health_plane(HealthPlane::new(HealthConfig::default()));
        }
        let until = sim.now() + Duration::from_secs(120);
        let ok = Rc::new(Cell::new(0u64));
        pump(&mut sim, &fleet, Duration::from_millis(250), until, Rc::clone(&ok));
        // a gray failure mid-run exercises the stretch path under the plane
        let f2 = Rc::clone(&fleet);
        sim.schedule(Duration::from_secs(30), move |sim| {
            let name = f2.active_replica_names()[0].clone();
            assert!(f2.degrade_replica(sim, &name, 3.0));
        });
        sim.run();
        (
            sim.now().ticks(),
            sim.events_executed(),
            fleet.dispatcher().counters(),
            ok.get(),
        )
    };
    assert_eq!(
        run(false),
        run(true),
        "attaching the plane must not move a single event"
    );
}

