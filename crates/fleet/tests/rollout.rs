//! End-to-end rollout scenarios: rolling replacement, canary promote,
//! canary auto-rollback, and a chaos-crossed canary kill.
//!
//! The invariants under test are the zero-downtime contract:
//!
//! * a rolling upgrade drops no accepted request — retirement drains,
//!   boots precede retires, and the fleet never dips below the floor;
//! * answers are version-tagged and a principal never reads a version
//!   older than its session's first contact (monotonic-version read);
//! * an upload broadcast mid-roll reaches both the vN and vN+1 sides;
//! * a failed (or killed) canary rolls back cleanly: shifted pins are
//!   restored deterministically, the target version reverts, and no pin
//!   ever points at the dead canary;
//! * every scenario replays bit-identically from the same seed.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

use fleet::{
    answer_version, AffinityConfig, CanaryConfig, ChaosMonkey, Fleet, FleetSpec, HealthConfig,
    HealthPlane, Policy, Request, RetryConfig, RolloutConfig, RolloutController, RolloutOutcome,
    RolloutStrategy, StorageTopology,
};
use onserve::profile::ExecutionProfile;
use simkit::fault::FaultPlan;
use simkit::{Duration, Sim, SimTime, KB, MB};
use vappliance::ApplianceImage;

fn image() -> ApplianceImage {
    ApplianceImage {
        name: "onserve".into(),
        bytes: 600.0 * MB,
        boot_services: vec!["mysqld".into(), "tomcat".into(), "juddi".into()],
        recipe_fingerprint: 1,
    }
}

fn rollout_fleet(sim: &mut Sim, replicas: usize, retry: bool) -> Rc<Fleet> {
    let mut spec = FleetSpec::with_image(image());
    spec.topology = StorageTopology::Replicated;
    spec.initial_replicas = replicas;
    spec.dispatcher.policy = Policy::RoundRobin;
    spec.dispatcher.max_in_flight = 256;
    spec.dispatcher.affinity = Some(AffinityConfig::default());
    spec.base.config.cache_grid_sessions = true;
    if retry {
        spec.dispatcher.retry = Some(RetryConfig {
            max_retries: 2,
            base_backoff: Duration::from_millis(100),
            max_backoff: Duration::from_secs(1),
            jitter: 0.2,
        });
    }
    Fleet::new(sim, spec)
}

/// Boot, publish the ~15.5 s end-to-end "app" service, drain.
fn boot_and_publish(sim: &mut Sim, fleet: &Rc<Fleet>) {
    sim.run();
    fleet.publish(
        sim,
        "app.exe",
        64 * 1024,
        ExecutionProfile::quick()
            .lasting(Duration::from_millis(200))
            .producing(16.0 * KB),
        |_| {},
    );
    sim.run();
}

/// Windowing tuned to the appliance's ~15.5 s invoke latency, wide
/// enough to hold a 10×-degraded canary's completions.
fn health_config() -> HealthConfig {
    HealthConfig {
        window: Duration::from_secs(30),
        ring: 16,
        lookback: Duration::from_secs(240),
        interval: Duration::from_secs(30),
        latency_factor: 3.0,
        min_samples: 2,
        probation_strikes: 2,
        eject_strikes: 6,
        ..HealthConfig::default()
    }
}

/// Closed-loop traffic ledger: counts plus the version tag of every
/// completed answer, per principal, in completion (== per-principal
/// serve) order.
struct Traffic {
    issued: Cell<u64>,
    ok: Cell<u64>,
    bad: Cell<u64>,
    versions: RefCell<BTreeMap<String, Vec<u32>>>,
}

impl Traffic {
    fn new() -> Rc<Traffic> {
        Rc::new(Traffic {
            issued: Cell::new(0),
            ok: Cell::new(0),
            bad: Cell::new(0),
            versions: RefCell::new(BTreeMap::new()),
        })
    }

    fn answered(&self) -> u64 {
        self.ok.get() + self.bad.get()
    }
}

/// One closed-loop user: think, invoke `app` as `principal`, repeat
/// until `until`. Each request is submitted only after the previous one
/// answered, so the recorded version sequence is the serve order.
fn spawn_user(
    sim: &mut Sim,
    fleet: Rc<Fleet>,
    traffic: Rc<Traffic>,
    principal: String,
    think: Duration,
    until: SimTime,
) {
    sim.schedule(think, move |sim| {
        if sim.now() > until {
            return;
        }
        traffic.issued.set(traffic.issued.get() + 1);
        let dispatcher = Rc::clone(fleet.dispatcher());
        let f2 = Rc::clone(&fleet);
        let t2 = Rc::clone(&traffic);
        let p2 = principal.clone();
        dispatcher.submit(
            sim,
            Request::Invoke {
                service: "app".into(),
                args: Vec::new(),
                principal: Some(principal.clone()),
            },
            Box::new(move |sim, res| {
                match res {
                    Ok(v) => {
                        t2.ok.set(t2.ok.get() + 1);
                        if let Some(ver) = answer_version(&v) {
                            t2.versions.borrow_mut().entry(p2.clone()).or_default().push(ver);
                        }
                    }
                    Err(_) => t2.bad.set(t2.bad.get() + 1),
                }
                spawn_user(sim, f2, t2, p2, think, until);
            }),
        );
    });
}

const USERS: usize = 6;

fn spawn_population(sim: &mut Sim, fleet: &Rc<Fleet>, traffic: &Rc<Traffic>, until: SimTime) {
    for i in 0..USERS {
        // staggered starts so arrivals interleave without an RNG
        let think = Duration::from_secs(10) + Duration::from_millis(700 * i as u64);
        spawn_user(
            sim,
            Rc::clone(fleet),
            Rc::clone(traffic),
            format!("user{i}"),
            think,
            until,
        );
    }
}

/// Recurring pin audit: every live pin must target an active replica —
/// never one that is draining, retired, crashed, or still booting.
fn audit_pins(
    sim: &mut Sim,
    fleet: Rc<Fleet>,
    violations: Rc<RefCell<Vec<String>>>,
    until: SimTime,
) {
    sim.schedule(Duration::from_secs(5), move |sim| {
        if sim.now() > until {
            return;
        }
        let active = fleet.active_replica_names();
        for (key, target) in fleet.dispatcher().live_pins() {
            if !active.contains(&target) {
                violations
                    .borrow_mut()
                    .push(format!("{}: {key} pinned to non-active {target}", sim.now()));
            }
        }
        audit_pins(sim, fleet, violations, until);
    });
}

/// Everything a scenario measures; two same-seed runs must agree exactly.
#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    issued: u64,
    ok: u64,
    bad: u64,
    shed: u64,
    faulted: u64,
    replaced: u64,
    rollbacks: u64,
    outcome: Option<RolloutOutcome>,
    version_counts: Vec<(u32, usize)>,
    end_ticks: u64,
}

fn fingerprint(
    sim: &Sim,
    fleet: &Rc<Fleet>,
    traffic: &Rc<Traffic>,
    ctl: &Rc<RolloutController>,
) -> Fingerprint {
    let c = fleet.dispatcher().counters();
    Fingerprint {
        issued: traffic.issued.get(),
        ok: traffic.ok.get(),
        bad: traffic.bad.get(),
        shed: c.shed,
        faulted: c.faulted,
        replaced: ctl.replaced(),
        rollbacks: ctl.rollbacks(),
        outcome: ctl.outcome(),
        version_counts: fleet.version_counts().into_iter().collect(),
        end_ticks: sim.now().ticks(),
    }
}

/// Full rolling-upgrade scenario; returns the fingerprint plus the
/// per-principal version tapes and the upload-broadcast observations.
fn rolling_run() -> (Fingerprint, BTreeMap<String, Vec<u32>>, bool, u64, String) {
    let mut sim = Sim::new(0x4011);
    let fleet = rollout_fleet(&mut sim, 3, false);
    boot_and_publish(&mut sim, &fleet);
    let plane = HealthPlane::new(health_config());
    fleet.dispatcher().set_health_plane(Rc::clone(&plane));
    let t0 = sim.now();
    let until = t0 + Duration::from_secs(600);
    let traffic = Traffic::new();
    spawn_population(&mut sim, &fleet, &traffic, until);

    let ctl: Rc<RefCell<Option<Rc<RolloutController>>>> = Rc::new(RefCell::new(None));
    let (f2, c2) = (Rc::clone(&fleet), Rc::clone(&ctl));
    sim.schedule(Duration::from_secs(30), move |sim| {
        let cfg = RolloutConfig {
            min_healthy: 2,
            ..RolloutConfig::rolling(2)
        };
        *c2.borrow_mut() = Some(RolloutController::start(sim, &f2, cfg));
    });

    // mid-roll upload: the broadcast must reach whatever mix of vN and
    // vN+1 replicas is live, and catalog replay hands it to later boots
    let both_versions_at_upload = Rc::new(Cell::new(false));
    let extra_published = Rc::new(Cell::new(false));
    let (f3, b3, e3) = (Rc::clone(&fleet), Rc::clone(&both_versions_at_upload), Rc::clone(&extra_published));
    sim.schedule(Duration::from_secs(150), move |sim| {
        b3.set(f3.version_counts().len() == 2);
        let e = Rc::clone(&e3);
        f3.dispatcher().clone().submit(
            sim,
            Request::Upload {
                file_name: "extra.exe".into(),
                len: 32 * 1024,
                profile: ExecutionProfile::quick()
                    .lasting(Duration::from_millis(100))
                    .producing(8.0 * KB),
            },
            Box::new(move |_, res| {
                assert!(res.is_ok(), "mid-roll upload broadcast faulted: {res:?}");
                e.set(true);
            }),
        );
    });

    // after the roll: the mid-roll service must answer from the new
    // fleet, version-tagged with the target version
    let extra_ok = Rc::new(Cell::new(0u64));
    let (f4, x4) = (Rc::clone(&fleet), Rc::clone(&extra_ok));
    sim.schedule(Duration::from_secs(450), move |sim| {
        for i in 0..USERS {
            let x = Rc::clone(&x4);
            f4.dispatcher().clone().submit(
                sim,
                Request::Invoke {
                    service: "extra".into(),
                    args: Vec::new(),
                    principal: Some(format!("user{i}")),
                },
                Box::new(move |_, res| {
                    let v = res.expect("post-roll invoke of the mid-roll service");
                    assert_eq!(answer_version(&v), Some(2), "answer not tagged v2");
                    x.set(x.get() + 1);
                }),
            );
        }
    });
    sim.run();

    let ctl = ctl.borrow().clone().expect("rollout started");
    let fp = fingerprint(&sim, &fleet, &traffic, &ctl);
    // retirement floor: every retire left more than min_healthy behind
    let log = ctl.retire_log();
    assert_eq!(log.len(), 3, "three v1 replicas retired: {log:?}");
    for e in &log {
        assert!(e.active_before > 2, "retire at floor: {e:?}");
    }
    assert!(extra_published.get(), "mid-roll upload never completed");
    let prom = plane.prometheus_text(sim.now());
    let versions = traffic.versions.borrow().clone();
    (fp, versions, both_versions_at_upload.get(), extra_ok.get(), prom)
}

#[test]
fn rolling_upgrade_drops_nothing_and_versions_read_monotonic() {
    let (fp, versions, both_at_upload, extra_ok, prom) = rolling_run();
    assert_eq!(fp.outcome, Some(RolloutOutcome::Completed), "{fp:?}");
    assert_eq!(fp.replaced, 3, "{fp:?}");
    assert_eq!(fp.rollbacks, 0, "{fp:?}");
    assert_eq!(fp.version_counts, vec![(2, 3)], "fleet fully on v2: {fp:?}");
    // the zero-downtime contract: nothing shed, nothing faulted, every
    // issued request answered
    assert_eq!(fp.shed, 0, "{fp:?}");
    assert_eq!(fp.faulted, 0, "{fp:?}");
    assert_eq!(fp.bad, 0, "{fp:?}");
    assert_eq!(fp.ok, fp.issued, "{fp:?}");
    assert!(fp.issued > 100, "the roll ran under real load: {fp:?}");
    // monotonic-version read: no principal ever sees a version older
    // than one it already read; the roll moved everyone from 1 to 2
    let mut saw = [false, false];
    for (who, tape) in &versions {
        assert!(!tape.is_empty(), "{who} never completed a request");
        for pair in tape.windows(2) {
            assert!(pair[1] >= pair[0], "{who} read backwards: {tape:?}");
        }
        saw[0] |= tape.contains(&1);
        saw[1] |= tape.contains(&2);
    }
    assert!(saw[0] && saw[1], "both versions served during the roll");
    // the mid-roll broadcast hit a mixed fleet and the service survived
    assert!(both_at_upload, "upload landed while both versions were live");
    assert_eq!(extra_ok, USERS as u64, "mid-roll service answers post-roll");
    // the health plane exports the served version as a label
    assert!(prom.contains("version=\"v2\""), "missing version label:\n{prom}");
    simkit::metrics::validate_prometheus_text(&prom).expect("well-formed exposition");
}

#[test]
fn rolling_upgrade_replays_byte_identical() {
    assert_eq!(rolling_run().0, rolling_run().0, "same-seed roll diverged");
}

/// Canary scenario harness: start a canary roll at +30 s and let
/// `meddle` interfere (degrade the canary, crash it, or nothing).
#[allow(clippy::type_complexity)]
fn canary_run(
    seed: u64,
    meddle: impl Fn(&mut Sim, &Rc<Fleet>, &Rc<RefCell<Option<Rc<RolloutController>>>>) + 'static,
) -> (
    Fingerprint,
    Rc<Fleet>,
    Rc<RolloutController>,
    Vec<(String, String)>,
    Vec<String>,
    Sim,
) {
    let mut sim = Sim::new(seed);
    let fleet = rollout_fleet(&mut sim, 3, true);
    boot_and_publish(&mut sim, &fleet);
    let plane = HealthPlane::new(health_config());
    fleet.dispatcher().set_health_plane(Rc::clone(&plane));
    let t0 = sim.now();
    let until = t0 + Duration::from_secs(1200);
    let traffic = Traffic::new();
    spawn_population(&mut sim, &fleet, &traffic, until);

    let ctl: Rc<RefCell<Option<Rc<RolloutController>>>> = Rc::new(RefCell::new(None));
    let pre_roll_pins: Rc<RefCell<Vec<(String, String)>>> = Rc::new(RefCell::new(Vec::new()));
    let (f2, c2, p2) = (Rc::clone(&fleet), Rc::clone(&ctl), Rc::clone(&pre_roll_pins));
    sim.schedule(Duration::from_secs(30), move |sim| {
        *p2.borrow_mut() = f2.dispatcher().live_pins();
        let cfg = RolloutConfig {
            to_version: 2,
            strategy: RolloutStrategy::Canary(CanaryConfig {
                pin_fraction: 0.5,
                first_sight_pct: 50,
                judgment: Duration::from_secs(240),
                p99_factor: 3.0,
                min_samples: 2,
            }),
            min_healthy: 2,
            poll: Duration::from_secs(5),
        };
        *c2.borrow_mut() = Some(RolloutController::start(sim, &f2, cfg));
    });
    meddle(&mut sim, &fleet, &ctl);
    let violations: Rc<RefCell<Vec<String>>> = Rc::new(RefCell::new(Vec::new()));
    audit_pins(&mut sim, Rc::clone(&fleet), Rc::clone(&violations), until);
    sim.run();

    let ctl = ctl.borrow().clone().expect("rollout started");
    let fp = fingerprint(&sim, &fleet, &traffic, &ctl);
    assert_eq!(
        traffic.answered(),
        traffic.issued.get(),
        "closed loop lost a request"
    );
    let pins = pre_roll_pins.borrow().clone();
    let v = violations.borrow().clone();
    (fp, fleet, ctl, pins, v, sim)
}

#[test]
fn canary_promotes_and_completes_the_roll() {
    let (fp, fleet, ctl, _, violations, _sim) = canary_run(0xca7a, |_, _, _| {});
    assert_eq!(fp.outcome, Some(RolloutOutcome::Promoted), "{fp:?}");
    assert_eq!(fp.rollbacks, 0, "{fp:?}");
    assert_eq!(fp.replaced, 3, "{fp:?}");
    assert_eq!(fp.version_counts, vec![(2, 3)], "{fp:?}");
    assert_eq!(fp.shed, 0, "{fp:?}");
    assert_eq!(fp.faulted, 0, "promotion drops nothing: {fp:?}");
    assert!(
        ctl.shifted_pins() >= 1,
        "the canary took a pin share before judgment"
    );
    assert!(fleet.dispatcher().canary_target().is_none(), "share cleared");
    assert!(violations.is_empty(), "pin audit: {violations:?}");
}

#[test]
fn degraded_canary_rolls_back_and_restores_pins() {
    // degrade the canary to 10× the moment it enters rotation: judgment
    // must fail, the fleet must return to v1, and every shifted pin must
    // land back on its original replica
    let degraded = Rc::new(Cell::new(false));
    let d2 = Rc::clone(&degraded);
    let (fp, fleet, ctl, pre_roll_pins, violations, _sim) =
        canary_run(0xca7b, move |sim, fleet, ctl| {
            watch_and_degrade(sim, Rc::clone(fleet), Rc::clone(ctl), Rc::clone(&d2));
        });
    assert!(degraded.get(), "the canary was degraded");
    assert_eq!(fp.outcome, Some(RolloutOutcome::RolledBack), "{fp:?}");
    assert_eq!(fp.rollbacks, 1, "{fp:?}");
    assert_eq!(fp.replaced, 0, "no v1 replica was retired: {fp:?}");
    assert_eq!(fp.version_counts, vec![(1, 3)], "fleet back on v1: {fp:?}");
    assert_eq!(fleet.target_version(), 1, "target version reverted");
    assert_eq!(fp.shed, 0, "{fp:?}");
    assert_eq!(fp.faulted, 0, "rollback drains, drops nothing: {fp:?}");
    assert!(ctl.shifted_pins() >= 1, "pins were shifted before judgment");
    let canary = ctl.canary_name().expect("canary booted");
    assert!(
        !fleet.active_replica_names().contains(&canary),
        "the failed canary left the rotation"
    );
    // deterministic restore: the pin table is exactly its pre-roll self
    let now_pins: BTreeMap<_, _> = fleet.dispatcher().live_pins().into_iter().collect();
    for (key, target) in &pre_roll_pins {
        assert_eq!(
            now_pins.get(key),
            Some(target),
            "{key} not restored to {target}: {now_pins:?}"
        );
    }
    assert!(violations.is_empty(), "pin audit: {violations:?}");
}

/// Poll until the canary is in rotation, then degrade it once.
fn watch_and_degrade(
    sim: &mut Sim,
    fleet: Rc<Fleet>,
    ctl: Rc<RefCell<Option<Rc<RolloutController>>>>,
    done: Rc<Cell<bool>>,
) {
    sim.schedule(Duration::from_secs(5), move |sim| {
        if done.get() {
            return;
        }
        let canary = ctl.borrow().as_ref().and_then(|c| c.canary_name());
        if let Some(name) = canary {
            if fleet.replica_version(&name).is_some() {
                assert!(fleet.degrade_replica(sim, &name, 10.0));
                done.set(true);
                return;
            }
        }
        watch_and_degrade(sim, fleet, ctl, done);
    });
}

/// Chaos × rollout: a seeded [`ChaosMonkey`] crash lands on the canary
/// in the middle of its judgment window. The controller must roll back
/// cleanly — conservation holds, the fleet returns to v1, and no pin
/// ever points at the dead canary.
#[test]
fn chaos_kill_of_canary_mid_judgment_rolls_back_cleanly() {
    // plan seed chosen so the crash victim drawn at +205 s (4 actives:
    // 3×v1 + the canary) is the canary itself
    const PLAN_SEED: u64 = 0;
    let monkey: Rc<RefCell<Option<Rc<ChaosMonkey>>>> = Rc::new(RefCell::new(None));
    let m2 = Rc::clone(&monkey);
    let (fp, fleet, ctl, _, violations, _sim) = canary_run(0xca7c, move |sim, fleet, _| {
        let plan = FaultPlan::new(PLAN_SEED).crash_at(Duration::from_secs(205));
        let f = Rc::clone(fleet);
        let m = Rc::clone(&m2);
        sim.schedule(Duration::from_secs(30), move |sim| {
            *m.borrow_mut() = Some(ChaosMonkey::unleash(sim, &f, &plan));
        });
    });
    let monkey = monkey.borrow().clone().expect("monkey unleashed");
    let canary = ctl.canary_name().expect("canary booted");
    assert_eq!(monkey.landed(), 1, "the pinned crash landed");
    assert_eq!(fleet.lost_total(), 1);
    assert!(
        fleet.replica_version(&canary).is_none(),
        "the crash victim was the canary (re-pick PLAN_SEED if this fails)"
    );
    assert_eq!(fp.outcome, Some(RolloutOutcome::RolledBack), "{fp:?}");
    assert_eq!(fp.rollbacks, 1, "{fp:?}");
    assert_eq!(fp.version_counts, vec![(1, 3)], "fleet back on v1: {fp:?}");
    assert_eq!(fleet.target_version(), 1, "target version reverted");
    assert_eq!(fp.shed, 0, "{fp:?}");
    // in-flight work on the killed canary was retried on survivors
    assert_eq!(fp.bad, 0, "retries absorbed the crash: {fp:?}");
    assert!(violations.is_empty(), "a pin pointed at a dead/draining replica: {violations:?}");
}

#[test]
fn canary_rollback_replays_byte_identical() {
    let run = || {
        let degraded = Rc::new(Cell::new(false));
        let d = Rc::clone(&degraded);
        canary_run(0xca7d, move |sim, fleet, ctl| {
            watch_and_degrade(sim, Rc::clone(fleet), Rc::clone(ctl), Rc::clone(&d));
        })
        .0
    };
    assert_eq!(run(), run(), "same-seed canary rollback diverged");
}

