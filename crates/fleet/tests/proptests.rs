//! Property-based invariants of the front-end dispatcher.
//!
//! The load-bearing property is *conservation*: every request submitted at
//! the front door is answered exactly once — shed at the door, completed,
//! or faulted — under arbitrary arrival schedules, replica counts, replica
//! speeds, fault injection, admission limits, and mid-run scale-downs, for
//! every routing policy.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use fleet::{Backend, Dispatcher, DispatcherConfig, Policy, Request, Responder, RetryConfig};
use onserve::profile::ExecutionProfile;
use proptest::prelude::*;
use simkit::fault::FaultPlan;
use simkit::{Duration, Sim, SimTime, SpanId};
use wsstack::{SoapFault, SoapValue};

/// Test double: serves after a fixed delay, optionally always faulting.
struct Echo {
    name: String,
    delay: Duration,
    fault: bool,
}

impl Backend for Echo {
    fn name(&self) -> &str {
        &self.name
    }
    fn serve(&self, sim: &mut Sim, _req: Request, done: Responder) {
        let fault = self.fault;
        sim.schedule(self.delay, move |sim| {
            if fault {
                done(sim, Err(SoapFault::server("echo fault")));
            } else {
                done(sim, Ok(SoapValue::Bool(true)));
            }
        });
    }
}

/// One generated front-door submission: arrival offset and request kind.
fn arb_arrival() -> impl Strategy<Value = (u64, bool)> {
    (0u64..2_000, any::<bool>())
}

proptest! {
    /// Conservation: with `A` arrivals, the responder fires exactly `A`
    /// times, `accepted + shed == A`, `accepted == completed + faulted`,
    /// and nothing is left in flight once the simulation drains — for
    /// every policy, over arbitrary fleets, faults, admission limits and
    /// mid-run backend removals.
    #[test]
    fn dispatcher_conserves_requests(
        backends in proptest::collection::vec((1u64..400, any::<bool>()), 1..5),
        arrivals in proptest::collection::vec(arb_arrival(), 1..40),
        max_in_flight in 1usize..9,
        removals in proptest::collection::vec((0u64..2_000, 0usize..4), 0..3),
    ) {
        for policy in Policy::ALL {
            let mut sim = Sim::new(0xd15);
            let d = Dispatcher::new(DispatcherConfig {
                policy,
                max_in_flight,
                ..DispatcherConfig::default()
            });
            for (i, &(delay_ms, fault)) in backends.iter().enumerate() {
                d.add_backend(Rc::new(Echo {
                    name: format!("r{i}"),
                    delay: Duration::from_millis(delay_ms),
                    fault,
                }));
            }
            let answered = Rc::new(Cell::new(0u64));
            for &(at_ms, is_upload) in &arrivals {
                let d2 = Rc::clone(&d);
                let a = Rc::clone(&answered);
                sim.schedule(Duration::from_millis(at_ms), move |sim| {
                    let req = if is_upload {
                        Request::Upload {
                            file_name: "f.exe".into(),
                            len: 64,
                            profile: ExecutionProfile::quick(),
                        }
                    } else {
                        Request::Invoke { service: "svc".into(), args: Vec::new(), principal: None }
                    };
                    let fired = Cell::new(false);
                    d2.submit(sim, req, Box::new(move |_, _| {
                        assert!(!fired.replace(true), "responder fired twice");
                        a.set(a.get() + 1);
                    }));
                });
            }
            // scale-downs racing the traffic must not lose or double-answer
            // requests; removing an unknown/already-draining name is a no-op
            for &(at_ms, idx) in &removals {
                let d2 = Rc::clone(&d);
                let name = format!("r{}", idx % backends.len());
                sim.schedule(Duration::from_millis(at_ms), move |sim| {
                    let _ = d2.remove_backend(sim, &name);
                });
            }
            sim.run();
            let c = d.counters();
            let total = arrivals.len() as u64;
            prop_assert_eq!(answered.get(), total, "{}: answered != submitted", policy.label());
            prop_assert_eq!(c.accepted + c.shed, total, "{}: door ledger", policy.label());
            prop_assert_eq!(c.accepted, c.completed + c.faulted, "{}: outcome ledger", policy.label());
            prop_assert_eq!(d.in_flight(), 0, "{}: in-flight after drain", policy.label());
        }
    }

    /// The admission limit is a hard ceiling: at no instant do more than
    /// `max_in_flight` requests sit past the front door.
    #[test]
    fn in_flight_never_exceeds_limit(
        arrivals in proptest::collection::vec(arb_arrival(), 1..40),
        max_in_flight in 1usize..6,
        delay_ms in 1u64..1_000,
    ) {
        let mut sim = Sim::new(0xcab);
        let d = Dispatcher::new(DispatcherConfig {
            policy: Policy::LeastOutstanding,
            max_in_flight,
            ..DispatcherConfig::default()
        });
        d.add_backend(Rc::new(Echo {
            name: "r0".into(),
            delay: Duration::from_millis(delay_ms),
            fault: false,
        }));
        let high_water = Rc::new(Cell::new(0usize));
        for &(at_ms, _) in &arrivals {
            let d2 = Rc::clone(&d);
            let hw = Rc::clone(&high_water);
            sim.schedule(Duration::from_millis(at_ms), move |sim| {
                d2.submit(
                    sim,
                    Request::Invoke { service: "svc".into(), args: Vec::new(), principal: None },
                    Box::new(|_, _| {}),
                );
                hw.set(hw.get().max(d2.in_flight()));
            });
        }
        sim.run();
        prop_assert!(
            high_water.get() <= max_in_flight,
            "in-flight high water {} exceeded limit {}",
            high_water.get(),
            max_in_flight
        );
        prop_assert_eq!(d.in_flight(), 0);
    }

    /// Under an arbitrary seeded fault plan (Poisson crash schedule mapped
    /// onto backends) and every routing policy, with retry enabled:
    ///
    /// 1. the dispatcher never routes work to a backend after its eject —
    ///    no serve call carries a timestamp past the crash instant;
    /// 2. no request is retried more than `max_retries` times (counted per
    ///    request span from the `dispatcher.retry` telemetry trail);
    ///
    /// and conservation still holds on top of the chaos.
    #[test]
    fn fault_plans_never_reach_ejected_backends_and_retries_stay_capped(
        seed in any::<u64>(),
        mean_gap_ms in 100u64..1_500,
        n_backends in 2usize..5,
        arrivals in proptest::collection::vec(0u64..2_000, 1..40),
        max_retries in 0u32..4,
    ) {
        for policy in Policy::ALL {
            let mut sim = Sim::new(seed);
            sim.enable_telemetry();
            let d = Dispatcher::new(DispatcherConfig {
                policy,
                max_in_flight: 64,
                retry: Some(RetryConfig {
                    max_retries,
                    base_backoff: Duration::from_millis(50),
                    max_backoff: Duration::from_millis(400),
                    jitter: 0.2,
                }),
                ..DispatcherConfig::default()
            });
            let serves: Vec<Rc<RefCell<Vec<SimTime>>>> =
                (0..n_backends).map(|_| Rc::new(RefCell::new(Vec::new()))).collect();
            for (i, log) in serves.iter().enumerate() {
                d.add_backend(Rc::new(StampingEcho {
                    name: format!("r{i}"),
                    delay: Duration::from_millis(80),
                    log: Rc::clone(log),
                }));
            }
            // materialize the plan's crash schedule against backend indices
            let plan = FaultPlan::new(seed)
                .poisson_crashes(Duration::from_millis(mean_gap_ms), Duration::from_secs(2));
            let mut victims = plan.derived_rng(0xe1ec);
            let mut ejected_at: HashMap<usize, SimTime> = HashMap::new();
            for offset in plan.crash_times() {
                let idx = victims.below(n_backends as u64) as usize;
                let d2 = Rc::clone(&d);
                let name = format!("r{idx}");
                sim.schedule(offset, move |sim| {
                    let _ = d2.eject_backend(sim, &name);
                });
                // first eject of an index is the one that counts; later
                // strikes on the same name are no-ops
                ejected_at.entry(idx).or_insert(SimTime::ZERO + offset);
            }
            let answered = Rc::new(Cell::new(0u64));
            for &at_ms in &arrivals {
                let d2 = Rc::clone(&d);
                let a = Rc::clone(&answered);
                sim.schedule(Duration::from_millis(at_ms), move |sim| {
                    d2.submit(
                        sim,
                        Request::Invoke { service: "svc".into(), args: Vec::new(), principal: None },
                        Box::new(move |_, _| a.set(a.get() + 1)),
                    );
                });
            }
            sim.run();
            // 1. no serve after the backend's eject instant
            for (idx, log) in serves.iter().enumerate() {
                if let Some(&cutoff) = ejected_at.get(&idx) {
                    for &t in log.borrow().iter() {
                        prop_assert!(
                            t <= cutoff,
                            "{}: r{idx} served at {:?} after eject at {:?}",
                            policy.label(), t, cutoff
                        );
                    }
                }
            }
            // 2. per-request retry count never exceeds the cap
            let t = sim.telemetry().expect("telemetry on");
            let mut per_request: HashMap<SpanId, u32> = HashMap::new();
            for id in t.spans_named("dispatcher.retry") {
                let parent = t.span(id).expect("retry span").parent;
                *per_request.entry(parent).or_insert(0) += 1;
            }
            for (req, n) in &per_request {
                prop_assert!(
                    *n <= max_retries,
                    "{}: request span {:?} retried {} times, cap is {}",
                    policy.label(), req, n, max_retries
                );
            }
            // conservation still holds on top of the chaos
            let c = d.counters();
            let total = arrivals.len() as u64;
            prop_assert_eq!(answered.get(), total, "{}: answered != submitted", policy.label());
            prop_assert_eq!(c.accepted + c.shed, total, "{}: door ledger", policy.label());
            prop_assert_eq!(c.accepted, c.completed + c.faulted, "{}: outcome ledger", policy.label());
            prop_assert_eq!(d.in_flight(), 0, "{}: in-flight after drain", policy.label());
        }
    }
}

/// Test double: serves after a fixed delay, stamping the virtual time of
/// every serve call so the fault-plan property can prove no work reached
/// it after its eject.
struct StampingEcho {
    name: String,
    delay: Duration,
    log: Rc<RefCell<Vec<SimTime>>>,
}

impl Backend for StampingEcho {
    fn name(&self) -> &str {
        &self.name
    }
    fn serve(&self, sim: &mut Sim, _req: Request, done: Responder) {
        self.log.borrow_mut().push(sim.now());
        sim.schedule(self.delay, move |sim| done(sim, Ok(SoapValue::Bool(true))));
    }
}

proptest! {
    /// Session affinity must never override liveness: under an arbitrary
    /// seeded fault plan (ejects) plus arbitrary drains, a pinned request
    /// is never routed to an ejected or draining replica — no serve call
    /// lands on a replica after its first eject/drain instant. Every routed
    /// attempt records exactly one affinity outcome, and conservation holds.
    #[test]
    fn affinity_never_routes_to_ejected_or_draining_replicas(
        seed in any::<u64>(),
        mean_gap_ms in 100u64..1_500,
        n_backends in 2usize..5,
        arrivals in proptest::collection::vec((0u64..2_000, 0usize..6), 1..40),
        drains in proptest::collection::vec((0u64..2_000, 0usize..4), 0..3),
    ) {
        let mut sim = Sim::new(seed);
        let d = Dispatcher::new(DispatcherConfig {
            policy: Policy::RoundRobin,
            max_in_flight: 64,
            retry: Some(RetryConfig {
                max_retries: 2,
                base_backoff: Duration::from_millis(50),
                max_backoff: Duration::from_millis(400),
                jitter: 0.2,
            }),
            affinity: Some(fleet::AffinityConfig::default()),
            ..DispatcherConfig::default()
        });
        let serves: Vec<Rc<RefCell<Vec<SimTime>>>> =
            (0..n_backends).map(|_| Rc::new(RefCell::new(Vec::new()))).collect();
        for (i, log) in serves.iter().enumerate() {
            d.add_backend(Rc::new(StampingEcho {
                name: format!("r{i}"),
                delay: Duration::from_millis(80),
                log: Rc::clone(log),
            }));
        }
        // the cutoff for "no new work" per replica is its earliest eject or
        // drain instant: both stop new serves (drain keeps only what was
        // already dispatched, and those serve calls happened before it)
        let mut cutoff: HashMap<usize, SimTime> = HashMap::new();
        let plan = FaultPlan::new(seed)
            .poisson_crashes(Duration::from_millis(mean_gap_ms), Duration::from_secs(2));
        let mut victims = plan.derived_rng(0xe1ec);
        for offset in plan.crash_times() {
            let idx = victims.below(n_backends as u64) as usize;
            let d2 = Rc::clone(&d);
            let name = format!("r{idx}");
            sim.schedule(offset, move |sim| {
                let _ = d2.eject_backend(sim, &name);
            });
            let at = SimTime::ZERO + offset;
            cutoff.entry(idx).and_modify(|t| *t = (*t).min(at)).or_insert(at);
        }
        for &(at_ms, idx) in &drains {
            let idx = idx % n_backends;
            let d2 = Rc::clone(&d);
            let name = format!("r{idx}");
            sim.schedule(Duration::from_millis(at_ms), move |sim| {
                let _ = d2.remove_backend(sim, &name);
            });
            let at = SimTime::ZERO + Duration::from_millis(at_ms);
            cutoff.entry(idx).and_modify(|t| *t = (*t).min(at)).or_insert(at);
        }
        let answered = Rc::new(Cell::new(0u64));
        for &(at_ms, user) in &arrivals {
            let d2 = Rc::clone(&d);
            let a = Rc::clone(&answered);
            sim.schedule(Duration::from_millis(at_ms), move |sim| {
                d2.submit(
                    sim,
                    Request::Invoke {
                        service: "svc".into(),
                        args: Vec::new(),
                        principal: Some(format!("u{user}")),
                    },
                    Box::new(move |_, _| a.set(a.get() + 1)),
                );
            });
        }
        sim.run();
        // the pinned-routing safety property: no serve past the cutoff
        for (idx, log) in serves.iter().enumerate() {
            if let Some(&at) = cutoff.get(&idx) {
                for &t in log.borrow().iter() {
                    prop_assert!(
                        t <= at,
                        "r{idx} served pinned work at {:?} after loss/drain at {:?}",
                        t, at
                    );
                }
            }
        }
        // every routed attempt (== every serve call) recorded exactly one
        // affinity outcome, since every request here carries a principal
        let c = d.counters();
        let routed: u64 = serves.iter().map(|l| l.borrow().len() as u64).sum();
        prop_assert_eq!(c.affinity_hits + c.affinity_misses + c.affinity_repins, routed);
        let total = arrivals.len() as u64;
        prop_assert_eq!(answered.get(), total, "answered != submitted");
        prop_assert_eq!(c.accepted + c.shed, total, "door ledger");
        prop_assert_eq!(c.accepted, c.completed + c.faulted, "outcome ledger");
        prop_assert_eq!(d.in_flight(), 0, "in-flight after drain");
    }
}
