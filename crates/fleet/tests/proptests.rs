//! Property-based invariants of the front-end dispatcher.
//!
//! The load-bearing property is *conservation*: every request submitted at
//! the front door is answered exactly once — shed at the door, completed,
//! or faulted — under arbitrary arrival schedules, replica counts, replica
//! speeds, fault injection, admission limits, and mid-run scale-downs, for
//! every routing policy.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use fleet::{
    Backend, Dispatcher, DispatcherConfig, Fleet, FleetSpec, GeoPlane, Policy, Request, Responder,
    RetryConfig, SiteMap, StorageTopology,
};
use onserve::profile::ExecutionProfile;
use proptest::prelude::*;
use simkit::fault::FaultPlan;
use simkit::{Duration, Sim, SimTime, SpanId, KB, MB};
use vappliance::ApplianceImage;
use wsstack::{SoapFault, SoapValue};

/// Test double: serves after a fixed delay, optionally always faulting.
struct Echo {
    name: String,
    delay: Duration,
    fault: bool,
}

impl Backend for Echo {
    fn name(&self) -> &str {
        &self.name
    }
    fn serve(&self, sim: &mut Sim, _req: Request, done: Responder) {
        let fault = self.fault;
        sim.schedule(self.delay, move |sim| {
            if fault {
                done(sim, Err(SoapFault::server("echo fault")));
            } else {
                done(sim, Ok(SoapValue::Bool(true)));
            }
        });
    }
}

/// One generated front-door submission: arrival offset and request kind.
fn arb_arrival() -> impl Strategy<Value = (u64, bool)> {
    (0u64..2_000, any::<bool>())
}

proptest! {
    /// Conservation: with `A` arrivals, the responder fires exactly `A`
    /// times, `accepted + shed == A`, `accepted == completed + faulted`,
    /// and nothing is left in flight once the simulation drains — for
    /// every policy, over arbitrary fleets, faults, admission limits and
    /// mid-run backend removals.
    #[test]
    fn dispatcher_conserves_requests(
        backends in proptest::collection::vec((1u64..400, any::<bool>()), 1..5),
        arrivals in proptest::collection::vec(arb_arrival(), 1..40),
        max_in_flight in 1usize..9,
        removals in proptest::collection::vec((0u64..2_000, 0usize..4), 0..3),
    ) {
        for policy in Policy::ALL {
            let mut sim = Sim::new(0xd15);
            let d = Dispatcher::new(DispatcherConfig {
                policy,
                max_in_flight,
                ..DispatcherConfig::default()
            });
            for (i, &(delay_ms, fault)) in backends.iter().enumerate() {
                d.add_backend(Rc::new(Echo {
                    name: format!("r{i}"),
                    delay: Duration::from_millis(delay_ms),
                    fault,
                }));
            }
            let answered = Rc::new(Cell::new(0u64));
            for &(at_ms, is_upload) in &arrivals {
                let d2 = Rc::clone(&d);
                let a = Rc::clone(&answered);
                sim.schedule(Duration::from_millis(at_ms), move |sim| {
                    let req = if is_upload {
                        Request::Upload {
                            file_name: "f.exe".into(),
                            len: 64,
                            profile: ExecutionProfile::quick(),
                        }
                    } else {
                        Request::Invoke { service: "svc".into(), args: Vec::new(), principal: None }
                    };
                    let fired = Cell::new(false);
                    d2.submit(sim, req, Box::new(move |_, _| {
                        assert!(!fired.replace(true), "responder fired twice");
                        a.set(a.get() + 1);
                    }));
                });
            }
            // scale-downs racing the traffic must not lose or double-answer
            // requests; removing an unknown/already-draining name is a no-op
            for &(at_ms, idx) in &removals {
                let d2 = Rc::clone(&d);
                let name = format!("r{}", idx % backends.len());
                sim.schedule(Duration::from_millis(at_ms), move |sim| {
                    let _ = d2.remove_backend(sim, &name);
                });
            }
            sim.run();
            let c = d.counters();
            let total = arrivals.len() as u64;
            prop_assert_eq!(answered.get(), total, "{}: answered != submitted", policy.label());
            prop_assert_eq!(c.accepted + c.shed, total, "{}: door ledger", policy.label());
            prop_assert_eq!(c.accepted, c.completed + c.faulted, "{}: outcome ledger", policy.label());
            prop_assert_eq!(d.in_flight(), 0, "{}: in-flight after drain", policy.label());
        }
    }

    /// The admission limit is a hard ceiling: at no instant do more than
    /// `max_in_flight` requests sit past the front door.
    #[test]
    fn in_flight_never_exceeds_limit(
        arrivals in proptest::collection::vec(arb_arrival(), 1..40),
        max_in_flight in 1usize..6,
        delay_ms in 1u64..1_000,
    ) {
        let mut sim = Sim::new(0xcab);
        let d = Dispatcher::new(DispatcherConfig {
            policy: Policy::LeastOutstanding,
            max_in_flight,
            ..DispatcherConfig::default()
        });
        d.add_backend(Rc::new(Echo {
            name: "r0".into(),
            delay: Duration::from_millis(delay_ms),
            fault: false,
        }));
        let high_water = Rc::new(Cell::new(0usize));
        for &(at_ms, _) in &arrivals {
            let d2 = Rc::clone(&d);
            let hw = Rc::clone(&high_water);
            sim.schedule(Duration::from_millis(at_ms), move |sim| {
                d2.submit(
                    sim,
                    Request::Invoke { service: "svc".into(), args: Vec::new(), principal: None },
                    Box::new(|_, _| {}),
                );
                hw.set(hw.get().max(d2.in_flight()));
            });
        }
        sim.run();
        prop_assert!(
            high_water.get() <= max_in_flight,
            "in-flight high water {} exceeded limit {}",
            high_water.get(),
            max_in_flight
        );
        prop_assert_eq!(d.in_flight(), 0);
    }

    /// Under an arbitrary seeded fault plan (Poisson crash schedule mapped
    /// onto backends) and every routing policy, with retry enabled:
    ///
    /// 1. the dispatcher never routes work to a backend after its eject —
    ///    no serve call carries a timestamp past the crash instant;
    /// 2. no request is retried more than `max_retries` times (counted per
    ///    request span from the `dispatcher.retry` telemetry trail);
    ///
    /// and conservation still holds on top of the chaos.
    #[test]
    fn fault_plans_never_reach_ejected_backends_and_retries_stay_capped(
        seed in any::<u64>(),
        mean_gap_ms in 100u64..1_500,
        n_backends in 2usize..5,
        arrivals in proptest::collection::vec(0u64..2_000, 1..40),
        max_retries in 0u32..4,
    ) {
        for policy in Policy::ALL {
            let mut sim = Sim::new(seed);
            sim.enable_telemetry();
            let d = Dispatcher::new(DispatcherConfig {
                policy,
                max_in_flight: 64,
                retry: Some(RetryConfig {
                    max_retries,
                    base_backoff: Duration::from_millis(50),
                    max_backoff: Duration::from_millis(400),
                    jitter: 0.2,
                }),
                ..DispatcherConfig::default()
            });
            let serves: Vec<Rc<RefCell<Vec<SimTime>>>> =
                (0..n_backends).map(|_| Rc::new(RefCell::new(Vec::new()))).collect();
            for (i, log) in serves.iter().enumerate() {
                d.add_backend(Rc::new(StampingEcho {
                    name: format!("r{i}"),
                    delay: Duration::from_millis(80),
                    log: Rc::clone(log),
                }));
            }
            // materialize the plan's crash schedule against backend indices
            let plan = FaultPlan::new(seed)
                .poisson_crashes(Duration::from_millis(mean_gap_ms), Duration::from_secs(2));
            let mut victims = plan.derived_rng(0xe1ec);
            let mut ejected_at: HashMap<usize, SimTime> = HashMap::new();
            for offset in plan.crash_times() {
                let idx = victims.below(n_backends as u64) as usize;
                let d2 = Rc::clone(&d);
                let name = format!("r{idx}");
                sim.schedule(offset, move |sim| {
                    let _ = d2.eject_backend(sim, &name);
                });
                // first eject of an index is the one that counts; later
                // strikes on the same name are no-ops
                ejected_at.entry(idx).or_insert(SimTime::ZERO + offset);
            }
            let answered = Rc::new(Cell::new(0u64));
            for &at_ms in &arrivals {
                let d2 = Rc::clone(&d);
                let a = Rc::clone(&answered);
                sim.schedule(Duration::from_millis(at_ms), move |sim| {
                    d2.submit(
                        sim,
                        Request::Invoke { service: "svc".into(), args: Vec::new(), principal: None },
                        Box::new(move |_, _| a.set(a.get() + 1)),
                    );
                });
            }
            sim.run();
            // 1. no serve after the backend's eject instant
            for (idx, log) in serves.iter().enumerate() {
                if let Some(&cutoff) = ejected_at.get(&idx) {
                    for &t in log.borrow().iter() {
                        prop_assert!(
                            t <= cutoff,
                            "{}: r{idx} served at {:?} after eject at {:?}",
                            policy.label(), t, cutoff
                        );
                    }
                }
            }
            // 2. per-request retry count never exceeds the cap
            let t = sim.telemetry().expect("telemetry on");
            let mut per_request: HashMap<SpanId, u32> = HashMap::new();
            for id in t.spans_named("dispatcher.retry") {
                let parent = t.span(id).expect("retry span").parent;
                *per_request.entry(parent).or_insert(0) += 1;
            }
            for (req, n) in &per_request {
                prop_assert!(
                    *n <= max_retries,
                    "{}: request span {:?} retried {} times, cap is {}",
                    policy.label(), req, n, max_retries
                );
            }
            // conservation still holds on top of the chaos
            let c = d.counters();
            let total = arrivals.len() as u64;
            prop_assert_eq!(answered.get(), total, "{}: answered != submitted", policy.label());
            prop_assert_eq!(c.accepted + c.shed, total, "{}: door ledger", policy.label());
            prop_assert_eq!(c.accepted, c.completed + c.faulted, "{}: outcome ledger", policy.label());
            prop_assert_eq!(d.in_flight(), 0, "{}: in-flight after drain", policy.label());
        }
    }
}

/// Test double: serves after a fixed delay, stamping the virtual time of
/// every serve call so the fault-plan property can prove no work reached
/// it after its eject.
struct StampingEcho {
    name: String,
    delay: Duration,
    log: Rc<RefCell<Vec<SimTime>>>,
}

impl Backend for StampingEcho {
    fn name(&self) -> &str {
        &self.name
    }
    fn serve(&self, sim: &mut Sim, _req: Request, done: Responder) {
        self.log.borrow_mut().push(sim.now());
        sim.schedule(self.delay, move |sim| done(sim, Ok(SoapValue::Bool(true))));
    }
}

proptest! {
    /// Session affinity must never override liveness: under an arbitrary
    /// seeded fault plan (ejects) plus arbitrary drains, a pinned request
    /// is never routed to an ejected or draining replica — no serve call
    /// lands on a replica after its first eject/drain instant. Every routed
    /// attempt records exactly one affinity outcome, and conservation holds.
    #[test]
    fn affinity_never_routes_to_ejected_or_draining_replicas(
        seed in any::<u64>(),
        mean_gap_ms in 100u64..1_500,
        n_backends in 2usize..5,
        arrivals in proptest::collection::vec((0u64..2_000, 0usize..6), 1..40),
        drains in proptest::collection::vec((0u64..2_000, 0usize..4), 0..3),
    ) {
        let mut sim = Sim::new(seed);
        let d = Dispatcher::new(DispatcherConfig {
            policy: Policy::RoundRobin,
            max_in_flight: 64,
            retry: Some(RetryConfig {
                max_retries: 2,
                base_backoff: Duration::from_millis(50),
                max_backoff: Duration::from_millis(400),
                jitter: 0.2,
            }),
            affinity: Some(fleet::AffinityConfig::default()),
            ..DispatcherConfig::default()
        });
        let serves: Vec<Rc<RefCell<Vec<SimTime>>>> =
            (0..n_backends).map(|_| Rc::new(RefCell::new(Vec::new()))).collect();
        for (i, log) in serves.iter().enumerate() {
            d.add_backend(Rc::new(StampingEcho {
                name: format!("r{i}"),
                delay: Duration::from_millis(80),
                log: Rc::clone(log),
            }));
        }
        // the cutoff for "no new work" per replica is its earliest eject or
        // drain instant: both stop new serves (drain keeps only what was
        // already dispatched, and those serve calls happened before it)
        let mut cutoff: HashMap<usize, SimTime> = HashMap::new();
        let plan = FaultPlan::new(seed)
            .poisson_crashes(Duration::from_millis(mean_gap_ms), Duration::from_secs(2));
        let mut victims = plan.derived_rng(0xe1ec);
        for offset in plan.crash_times() {
            let idx = victims.below(n_backends as u64) as usize;
            let d2 = Rc::clone(&d);
            let name = format!("r{idx}");
            sim.schedule(offset, move |sim| {
                let _ = d2.eject_backend(sim, &name);
            });
            let at = SimTime::ZERO + offset;
            cutoff.entry(idx).and_modify(|t| *t = (*t).min(at)).or_insert(at);
        }
        for &(at_ms, idx) in &drains {
            let idx = idx % n_backends;
            let d2 = Rc::clone(&d);
            let name = format!("r{idx}");
            sim.schedule(Duration::from_millis(at_ms), move |sim| {
                let _ = d2.remove_backend(sim, &name);
            });
            let at = SimTime::ZERO + Duration::from_millis(at_ms);
            cutoff.entry(idx).and_modify(|t| *t = (*t).min(at)).or_insert(at);
        }
        let answered = Rc::new(Cell::new(0u64));
        for &(at_ms, user) in &arrivals {
            let d2 = Rc::clone(&d);
            let a = Rc::clone(&answered);
            sim.schedule(Duration::from_millis(at_ms), move |sim| {
                d2.submit(
                    sim,
                    Request::Invoke {
                        service: "svc".into(),
                        args: Vec::new(),
                        principal: Some(format!("u{user}")),
                    },
                    Box::new(move |_, _| a.set(a.get() + 1)),
                );
            });
        }
        sim.run();
        // the pinned-routing safety property: no serve past the cutoff
        for (idx, log) in serves.iter().enumerate() {
            if let Some(&at) = cutoff.get(&idx) {
                for &t in log.borrow().iter() {
                    prop_assert!(
                        t <= at,
                        "r{idx} served pinned work at {:?} after loss/drain at {:?}",
                        t, at
                    );
                }
            }
        }
        // every routed attempt (== every serve call) recorded exactly one
        // affinity outcome, since every request here carries a principal
        let c = d.counters();
        let routed: u64 = serves.iter().map(|l| l.borrow().len() as u64).sum();
        prop_assert_eq!(c.affinity_hits + c.affinity_misses + c.affinity_repins, routed);
        let total = arrivals.len() as u64;
        prop_assert_eq!(answered.get(), total, "answered != submitted");
        prop_assert_eq!(c.accepted + c.shed, total, "door ledger");
        prop_assert_eq!(c.accepted, c.completed + c.faulted, "outcome ledger");
        prop_assert_eq!(d.in_flight(), 0, "in-flight after drain");
    }
}

/// A hand-built map of `n` sites `s0..sN` with every pair linked —
/// latencies spread so `nearest_order` is non-trivial.
fn grid_map(n_sites: usize) -> SiteMap {
    let mut map = SiteMap::new();
    for s in 0..n_sites {
        map.add_site(&format!("s{s}"));
    }
    for a in 0..n_sites {
        for b in (a + 1)..n_sites {
            map.link(
                &format!("s{a}"),
                &format!("s{b}"),
                Duration::from_millis(10 * (a + b + 1) as u64),
                100.0 * KB,
            );
        }
    }
    map
}

proptest! {
    /// Geo routing treats a site outage as a routing fact, never a
    /// request killer: under arbitrary site maps, outage windows, spill
    /// thresholds and pinned/unpinned arrival mixes,
    ///
    /// 1. no request is ever dispatched to a replica whose site is
    ///    severed at that instant — for the first-sight, sticky-hit,
    ///    federation-forward and repin paths alike;
    /// 2. a request arriving while *every* placed site is dark sheds at
    ///    the door instead of being fed into a partition;
    /// 3. every federation forward the dispatcher counts is one the geo
    ///    plane counts (the two ledgers agree);
    ///
    /// and conservation holds throughout.
    #[test]
    fn geo_routing_never_dispatches_into_a_severed_site(
        n_sites in 2usize..5,
        n_backends in 2usize..6,
        outages in proptest::collection::vec((0usize..5, 0u64..2_500, 100u64..1_500), 0..4),
        arrivals in proptest::collection::vec((0u64..3_000, 0usize..6, any::<bool>()), 1..40),
        spill in 1usize..4,
        federation in any::<bool>(),
    ) {
        let mut sim = Sim::new(0x9e0);
        let geo = GeoPlane::new(grid_map(n_sites));
        geo.set_spill_threshold(spill);
        geo.set_federation(federation);
        let d = Dispatcher::new(DispatcherConfig {
            policy: Policy::LeastOutstanding,
            max_in_flight: 64,
            affinity: Some(fleet::AffinityConfig::default()),
            ..DispatcherConfig::default()
        });
        let serves: Vec<Rc<RefCell<Vec<SimTime>>>> =
            (0..n_backends).map(|_| Rc::new(RefCell::new(Vec::new()))).collect();
        for (i, log) in serves.iter().enumerate() {
            d.add_backend(Rc::new(StampingEcho {
                name: format!("r{i}"),
                delay: Duration::from_millis(80),
                log: Rc::clone(log),
            }));
            geo.assign(&format!("r{i}"), &format!("s{}", i % n_sites));
        }
        d.set_geo(Rc::clone(&geo));
        for &(site_idx, from_ms, dur_ms) in &outages {
            let from = SimTime::ZERO + Duration::from_millis(from_ms);
            geo.add_outage(
                &format!("s{}", site_idx % n_sites),
                from,
                from + Duration::from_millis(dur_ms),
            );
        }
        let answered = Rc::new(Cell::new(0u64));
        for &(at_ms, user, pinned) in &arrivals {
            let d2 = Rc::clone(&d);
            let a = Rc::clone(&answered);
            sim.schedule(Duration::from_millis(at_ms), move |sim| {
                d2.submit(
                    sim,
                    Request::Invoke {
                        service: "svc".into(),
                        args: Vec::new(),
                        principal: pinned.then(|| format!("u{user}")),
                    },
                    Box::new(move |_, _| a.set(a.get() + 1)),
                );
            });
        }
        sim.run();
        // 1. no dispatch lands inside an outage window of the replica's site
        for (i, log) in serves.iter().enumerate() {
            let site = format!("s{}", i % n_sites);
            for &t in log.borrow().iter() {
                prop_assert!(
                    !geo.is_down(&site, t),
                    "r{i} on {site} was dispatched work at {t:?} while the site was severed"
                );
            }
        }
        let c = d.counters();
        let total = arrivals.len() as u64;
        // 2 + conservation: all-dark arrivals shed at the door, nothing lost
        prop_assert_eq!(answered.get(), total, "answered != submitted");
        prop_assert_eq!(c.accepted + c.shed, total, "door ledger");
        prop_assert_eq!(c.accepted, c.completed + c.faulted, "outcome ledger");
        prop_assert_eq!(d.in_flight(), 0, "in-flight after drain");
        // 3. the dispatcher's forward count and the plane's agree
        prop_assert_eq!(c.forwarded, geo.counters().forwards, "forward ledgers disagree");
    }
}

/// One full-fleet geo run; returns the run's observable signature so the
/// replay-determinism property can compare two executions bit for bit.
#[allow(clippy::too_many_arguments)]
fn geo_fleet_run(
    seed: u64,
    victim: usize,
    offset_s: u64,
    dur_s: u64,
    drop_pct: u64,
    jitter_ms: u64,
    n_arrivals: u64,
    gap_ms: u64,
    federated: bool,
) -> (u64, u64, u64, u64, u64, u64, u64, u64, u64, u64) {
    let mut sim = Sim::new(seed);
    let mut spec = FleetSpec::with_image(ApplianceImage {
        name: "onserve".into(),
        bytes: 600.0 * MB,
        boot_services: vec!["mysqld".into(), "tomcat".into(), "juddi".into()],
        recipe_fingerprint: 1,
    });
    spec.topology = StorageTopology::Replicated;
    spec.initial_replicas = 3;
    spec.dispatcher.max_in_flight = 64;
    spec.dispatcher.affinity = Some(fleet::AffinityConfig::default());
    spec.dispatcher.request_timeout = Some(Duration::from_secs(60));
    spec.dispatcher.retry = None;
    let fleet = Fleet::new(&mut sim, spec);
    // attach before the scheduled boots run so every replica activates
    // with its site placement
    let geo = GeoPlane::new(grid_map(3));
    geo.set_payload_bytes(32.0 * KB);
    geo.set_spill_threshold(1);
    geo.set_federation(federated);
    let inj = FaultPlan::new(seed)
        .link_drop(drop_pct as f64 / 100.0)
        .link_extra_delay(Duration::from_millis(jitter_ms))
        .injector();
    geo.set_injector(Rc::clone(&inj));
    fleet.attach_geo(Rc::clone(&geo));
    if federated {
        fleet.dispatcher().set_geo(Rc::clone(&geo));
    }
    sim.run();
    fleet.publish(&mut sim, "app.exe", 64 * 1024, ExecutionProfile::quick(), |_| {});
    sim.run();
    let t0 = sim.now();
    let site = format!("s{}", victim % 3);
    let from = t0 + Duration::from_secs(offset_s);
    geo.add_outage(&site, from, from + Duration::from_secs(dur_s));
    let (f2, s2) = (Rc::clone(&fleet), site.clone());
    sim.schedule(Duration::from_secs(offset_s), move |sim| {
        f2.sever_site(sim, &s2);
    });
    let f3 = Rc::clone(&fleet);
    sim.schedule(Duration::from_secs(offset_s + dur_s), move |sim| {
        f3.restore_site(sim, &site);
    });
    let answered = Rc::new(Cell::new(0u64));
    let completed = Rc::new(Cell::new(0u64));
    for i in 0..n_arrivals {
        let d2 = Rc::clone(fleet.dispatcher());
        let (a, c) = (Rc::clone(&answered), Rc::clone(&completed));
        sim.schedule(Duration::from_millis(i * gap_ms), move |sim| {
            d2.submit(
                sim,
                Request::Invoke {
                    service: "app".into(),
                    args: Vec::new(),
                    principal: Some(format!("u{}", i % 5)),
                },
                Box::new(move |_, res| {
                    a.set(a.get() + 1);
                    if res.is_ok() {
                        c.set(c.get() + 1);
                    }
                }),
            );
        });
    }
    sim.run(); // drain every answer, held result and watchdog
    let c = fleet.dispatcher().counters();
    let g = geo.counters();
    (
        answered.get(),
        completed.get(),
        c.accepted,
        c.shed,
        c.completed,
        c.faulted,
        fleet.dispatcher().in_flight() as u64,
        g.blackholed,
        g.wan_hops,
        inj.counts().link_drops,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    /// The full fleet — real replica boots, WAN answer delivery, held
    /// results, watchdogs — conserves requests under an arbitrary seeded
    /// site outage stacked on arbitrary link faults, in both the
    /// site-oblivious and federated arms; with geo routing on, nothing is
    /// ever fed into the partition (zero blackholes); and the entire run
    /// replays bit-identically from the same seed.
    #[test]
    fn fleet_conserves_requests_under_site_outages_and_link_faults(
        seed in any::<u64>(),
        victim in 0usize..3,
        offset_s in 1u64..30,
        dur_s in 2u64..40,
        drop_pct in 0u64..40,
        jitter_ms in 0u64..400,
        n_arrivals in 4u64..20,
        gap_ms in 500u64..3_000,
        federated in any::<bool>(),
    ) {
        let run = || geo_fleet_run(
            seed, victim, offset_s, dur_s, drop_pct, jitter_ms,
            n_arrivals, gap_ms, federated,
        );
        let sig = run();
        let (answered, _, accepted, shed, completed, faulted, in_flight, blackholed, _, _) = sig;
        prop_assert_eq!(answered, n_arrivals, "answered != submitted");
        prop_assert_eq!(accepted + shed, n_arrivals, "door ledger");
        prop_assert_eq!(accepted, completed + faulted, "outcome ledger");
        prop_assert_eq!(in_flight, 0, "in-flight after drain");
        if federated {
            // routing filters severed sites at dispatch time, so no
            // request can vanish into the partition
            prop_assert_eq!(blackholed, 0, "federated arm fed the partition");
        }
        // same seed, same knobs — same run, bit for bit
        prop_assert_eq!(run(), sig, "replay diverged");
    }
}

/// One full-fleet rollout run — rolling or canary — under an arbitrary
/// seeded crash schedule, returning the run's observable signature plus
/// the invariant evidence (pin-audit violations and the retire log).
#[allow(clippy::type_complexity)]
fn rollout_fleet_run(
    seed: u64,
    canary: bool,
    min_healthy: usize,
    mean_gap_s: u64,
    n_arrivals: u64,
    gap_ms: u64,
) -> (
    ((u64, u64, u64, u64, u64, u64), (u64, u64, i64), Vec<(u32, usize)>, (u64, u64, u64)),
    Vec<String>,
    Vec<fleet::RetireEvent>,
) {
    use fleet::{CanaryConfig, RolloutConfig, RolloutController, RolloutStrategy};
    use fleet::{ChaosMonkey, HealthConfig, HealthPlane};

    let mut sim = Sim::new(seed);
    let mut spec = FleetSpec::with_image(ApplianceImage {
        name: "onserve".into(),
        bytes: 600.0 * MB,
        boot_services: vec!["mysqld".into(), "tomcat".into(), "juddi".into()],
        recipe_fingerprint: 1,
    });
    spec.topology = StorageTopology::Replicated;
    spec.initial_replicas = 3;
    spec.dispatcher.max_in_flight = 64;
    spec.dispatcher.affinity = Some(fleet::AffinityConfig::default());
    spec.dispatcher.retry = Some(RetryConfig {
        max_retries: 2,
        base_backoff: Duration::from_millis(100),
        max_backoff: Duration::from_secs(1),
        jitter: 0.2,
    });
    let fleet = Fleet::new(&mut sim, spec);
    sim.run();
    fleet.publish(&mut sim, "app.exe", 64 * 1024, ExecutionProfile::quick(), |_| {});
    sim.run();
    let plane = HealthPlane::new(HealthConfig {
        window: Duration::from_secs(30),
        ring: 16,
        lookback: Duration::from_secs(240),
        interval: Duration::from_secs(30),
        min_samples: 2,
        ..HealthConfig::default()
    });
    fleet.dispatcher().set_health_plane(Rc::clone(&plane));
    let t0 = sim.now();

    let answered = Rc::new(Cell::new(0u64));
    for i in 0..n_arrivals {
        let d2 = Rc::clone(fleet.dispatcher());
        let a = Rc::clone(&answered);
        sim.schedule(Duration::from_millis(i * gap_ms), move |sim| {
            d2.submit(
                sim,
                Request::Invoke {
                    service: "app".into(),
                    args: Vec::new(),
                    principal: Some(format!("u{}", i % 5)),
                },
                Box::new(move |_, _| a.set(a.get() + 1)),
            );
        });
    }

    // arbitrary crash schedule overlapping the roll
    let plan = FaultPlan::new(seed)
        .poisson_crashes(Duration::from_secs(mean_gap_s), Duration::from_secs(240));
    let f2 = Rc::clone(&fleet);
    let monkey: Rc<RefCell<Option<Rc<ChaosMonkey>>>> = Rc::new(RefCell::new(None));
    let m2 = Rc::clone(&monkey);
    sim.schedule(Duration::from_secs(10), move |sim| {
        *m2.borrow_mut() = Some(ChaosMonkey::unleash(sim, &f2, &plan));
    });

    let strategy = if canary {
        RolloutStrategy::Canary(CanaryConfig {
            pin_fraction: 0.4,
            first_sight_pct: 30,
            judgment: Duration::from_secs(120),
            p99_factor: 3.0,
            min_samples: 2,
        })
    } else {
        RolloutStrategy::Rolling
    };
    let ctl: Rc<RefCell<Option<Rc<RolloutController>>>> = Rc::new(RefCell::new(None));
    let (f3, c3) = (Rc::clone(&fleet), Rc::clone(&ctl));
    sim.schedule(Duration::from_secs(10), move |sim| {
        *c3.borrow_mut() = Some(RolloutController::start(
            sim,
            &f3,
            RolloutConfig {
                to_version: 2,
                strategy,
                min_healthy,
                poll: Duration::from_secs(5),
            },
        ));
    });

    // recurring pin audit: a live pin must never target a replica that
    // is draining, retired, crashed, or still booting
    let violations: Rc<RefCell<Vec<String>>> = Rc::new(RefCell::new(Vec::new()));
    fn audit(sim: &mut Sim, fleet: Rc<Fleet>, v: Rc<RefCell<Vec<String>>>, until: SimTime) {
        sim.schedule(Duration::from_secs(7), move |sim| {
            if sim.now() > until {
                return;
            }
            let active = fleet.active_replica_names();
            for (key, target) in fleet.dispatcher().live_pins() {
                if !active.contains(&target) {
                    v.borrow_mut()
                        .push(format!("{}: {key} -> non-active {target}", sim.now()));
                }
            }
            audit(sim, fleet, v, until);
        });
    }
    audit(&mut sim, Rc::clone(&fleet), Rc::clone(&violations), t0 + Duration::from_secs(1800));
    sim.run();

    let ctl = ctl.borrow().clone().expect("rollout started");
    let c = fleet.dispatcher().counters();
    let outcome = match ctl.outcome() {
        None => -1,
        Some(fleet::RolloutOutcome::Completed) => 0,
        Some(fleet::RolloutOutcome::Promoted) => 1,
        Some(fleet::RolloutOutcome::RolledBack) => 2,
    };
    let sig = (
        (
            answered.get(),
            c.accepted,
            c.shed,
            c.completed,
            c.faulted,
            fleet.dispatcher().in_flight() as u64,
        ),
        (ctl.replaced(), ctl.rollbacks(), outcome),
        fleet.version_counts().into_iter().collect::<Vec<_>>(),
        (fleet.lost_total(), fleet.booted_total(), sim.now().ticks()),
    );
    let v = violations.borrow().clone();
    let log = ctl.retire_log();
    (sig, v, log)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    /// Rollout invariants under arbitrary rolling/canary schedules
    /// crossed with arbitrary crash faults:
    ///
    /// 1. the controller always finishes (completed, promoted, or rolled
    ///    back) and voluntary retirement never cuts into the
    ///    `min_healthy` floor — every retire left `> min_healthy`
    ///    actives behind;
    /// 2. no affinity pin ever targets a draining, retired, crashed, or
    ///    mid-boot replica;
    /// 3. conservation holds at the front door throughout;
    /// 4. the same seed replays the entire run byte-identically.
    #[test]
    fn rollouts_hold_the_floor_keep_pins_live_and_replay(
        seed in any::<u64>(),
        canary in any::<bool>(),
        min_healthy in 1usize..3,
        mean_gap_s in 60u64..400,
        n_arrivals in 4u64..24,
        gap_ms in 500u64..3_000,
    ) {
        let run = || rollout_fleet_run(seed, canary, min_healthy, mean_gap_s, n_arrivals, gap_ms);
        let (sig, violations, log) = run();
        let (answered, accepted, shed, completed, faulted, in_flight) = sig.0;
        prop_assert_eq!(answered, n_arrivals, "answered != submitted");
        prop_assert_eq!(accepted + shed, n_arrivals, "door ledger");
        prop_assert_eq!(accepted, completed + faulted, "outcome ledger");
        prop_assert_eq!(in_flight, 0, "in-flight after drain");
        prop_assert!(sig.1 .2 >= 0, "the rollout never finished");
        for e in &log {
            prop_assert!(
                e.active_before > min_healthy,
                "retire of {} at the floor: {} actives, min_healthy {}",
                e.replica, e.active_before, min_healthy
            );
        }
        prop_assert!(violations.is_empty(), "pin audit failed: {:?}", violations);
        // same seed, same knobs — same run, bit for bit
        let (sig2, ..) = run();
        prop_assert_eq!(sig2, sig, "replay diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    /// Per-tenant QoS invariants under arbitrary tenant mixes, tier
    /// assignments, quota knobs, and mid-run replica drains/ejects
    /// (the drain-window shed case: a request queued at the door and
    /// then flushed when the last replica leaves must count exactly
    /// once, as shed):
    ///
    /// 1. every tenant's ledger conserves — `issued == accepted + shed`
    ///    once drained, with `queued` and per-tenant `in_flight` at 0;
    /// 2. the per-tenant ledgers sum to the global door ledger, and
    ///    every responder fires exactly once;
    /// 3. fairness: at no audited instant does a tenant sit queued and
    ///    under-quota while the admission window has room — an
    ///    over-quota admission can only have happened when nobody
    ///    under-quota was waiting.
    #[test]
    fn qos_conserves_per_tenant_and_never_starves_underquota_tenants(
        backends in proptest::collection::vec((1u64..400, any::<bool>()), 1..4),
        arrivals in proptest::collection::vec((0u64..2_000, 0usize..4), 1..60),
        tiers in proptest::collection::vec(0usize..3, 4),
        max_in_flight in 1usize..9,
        queue_depth in 1usize..6,
        borrow in 0usize..3,
        removals in proptest::collection::vec((0u64..2_000, 0usize..4, any::<bool>()), 0..3),
    ) {
        use fleet::{QosConfig, QosTier};
        let mut sim = Sim::new(0x905);
        let d = Dispatcher::new(DispatcherConfig {
            policy: Policy::RoundRobin,
            max_in_flight,
            ..DispatcherConfig::default()
        });
        let tier_of = |i: usize| QosTier::ALL[tiers[i] % QosTier::ALL.len()];
        d.set_qos(QosConfig {
            tiers: (0..4).map(|i| (format!("t{i}"), tier_of(i))).collect(),
            queue_depth,
            borrow,
            ..QosConfig::default()
        });
        for (i, &(delay_ms, fault)) in backends.iter().enumerate() {
            d.add_backend(Rc::new(Echo {
                name: format!("r{i}"),
                delay: Duration::from_millis(delay_ms),
                fault,
            }));
        }
        let answered = Rc::new(Cell::new(0u64));
        let mut issued_by_tenant = HashMap::new();
        for &(at_ms, tenant_idx) in &arrivals {
            let tenant = format!("t{tenant_idx}");
            *issued_by_tenant.entry(tenant.clone()).or_insert(0u64) += 1;
            let d2 = Rc::clone(&d);
            let a = Rc::clone(&answered);
            sim.schedule(Duration::from_millis(at_ms), move |sim| {
                let fired = Cell::new(false);
                d2.submit(
                    sim,
                    Request::Invoke {
                        service: "svc".into(),
                        args: Vec::new(),
                        principal: Some(tenant),
                    },
                    Box::new(move |_, _| {
                        assert!(!fired.replace(true), "responder fired twice");
                        a.set(a.get() + 1);
                    }),
                );
            });
        }
        // scale-downs and crashes racing the queued traffic
        for &(at_ms, idx, eject) in &removals {
            let d2 = Rc::clone(&d);
            let name = format!("r{}", idx % backends.len());
            sim.schedule(Duration::from_millis(at_ms), move |sim| {
                if eject {
                    let _ = d2.eject_backend(sim, &name);
                } else {
                    let _ = d2.remove_backend(sim, &name);
                }
            });
        }
        // fairness audit on an off-cadence clock across the whole run
        let violations: Rc<RefCell<Vec<String>>> = Rc::new(RefCell::new(Vec::new()));
        for k in 0..30u64 {
            let d2 = Rc::clone(&d);
            let v = Rc::clone(&violations);
            sim.schedule(Duration::from_millis(137 * k), move |_| {
                let window_full = d2.in_flight() >= max_in_flight;
                let dead = d2.live_backends() == 0;
                for (t, s) in d2.qos_tenants() {
                    if s.queued > 0 && s.in_flight < s.quota && !window_full && !dead {
                        v.borrow_mut().push(format!(
                            "{t}: queued {} under quota ({}/{}) with {} door slots free",
                            s.queued, s.in_flight, s.quota,
                            max_in_flight - d2.in_flight(),
                        ));
                    }
                }
            });
        }
        sim.run();
        prop_assert!(violations.borrow().is_empty(), "fairness audit: {:?}", violations.borrow());
        let total = arrivals.len() as u64;
        prop_assert_eq!(answered.get(), total, "answered != submitted");
        let c = d.counters();
        prop_assert_eq!(c.accepted + c.shed, total, "door ledger");
        prop_assert_eq!(c.accepted, c.completed + c.faulted, "outcome ledger");
        prop_assert_eq!(d.in_flight(), 0, "in-flight after drain");
        let snap = d.qos_tenants();
        let (mut sum_accepted, mut sum_shed) = (0u64, 0u64);
        for (t, s) in &snap {
            let issued = issued_by_tenant.get(t).copied().unwrap_or(0);
            prop_assert_eq!(s.issued, issued, "{}: issued ledger", t);
            prop_assert_eq!(s.queued, 0, "{}: queue drained", t);
            prop_assert_eq!(s.in_flight, 0, "{}: per-tenant in-flight", t);
            prop_assert_eq!(
                s.accepted + s.shed, s.issued,
                "{}: queued-then-shed must count exactly once", t
            );
            sum_accepted += s.accepted;
            sum_shed += s.shed;
        }
        prop_assert_eq!(sum_accepted, c.accepted, "tenant slices sum to the door ledger");
        prop_assert_eq!(sum_shed, c.shed, "tenant shed slices sum to the door ledger");
    }
}
