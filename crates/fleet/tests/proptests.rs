//! Property-based invariants of the front-end dispatcher.
//!
//! The load-bearing property is *conservation*: every request submitted at
//! the front door is answered exactly once — shed at the door, completed,
//! or faulted — under arbitrary arrival schedules, replica counts, replica
//! speeds, fault injection, admission limits, and mid-run scale-downs, for
//! every routing policy.

use std::cell::Cell;
use std::rc::Rc;

use fleet::{Backend, Dispatcher, DispatcherConfig, Policy, Request, Responder};
use onserve::profile::ExecutionProfile;
use proptest::prelude::*;
use simkit::{Duration, Sim};
use wsstack::{SoapFault, SoapValue};

/// Test double: serves after a fixed delay, optionally always faulting.
struct Echo {
    name: String,
    delay: Duration,
    fault: bool,
}

impl Backend for Echo {
    fn name(&self) -> &str {
        &self.name
    }
    fn serve(&self, sim: &mut Sim, _req: Request, done: Responder) {
        let fault = self.fault;
        sim.schedule(self.delay, move |sim| {
            if fault {
                done(sim, Err(SoapFault::server("echo fault")));
            } else {
                done(sim, Ok(SoapValue::Bool(true)));
            }
        });
    }
}

/// One generated front-door submission: arrival offset and request kind.
fn arb_arrival() -> impl Strategy<Value = (u64, bool)> {
    (0u64..2_000, any::<bool>())
}

proptest! {
    /// Conservation: with `A` arrivals, the responder fires exactly `A`
    /// times, `accepted + shed == A`, `accepted == completed + faulted`,
    /// and nothing is left in flight once the simulation drains — for
    /// every policy, over arbitrary fleets, faults, admission limits and
    /// mid-run backend removals.
    #[test]
    fn dispatcher_conserves_requests(
        backends in proptest::collection::vec((1u64..400, any::<bool>()), 1..5),
        arrivals in proptest::collection::vec(arb_arrival(), 1..40),
        max_in_flight in 1usize..9,
        removals in proptest::collection::vec((0u64..2_000, 0usize..4), 0..3),
    ) {
        for policy in Policy::ALL {
            let mut sim = Sim::new(0xd15);
            let d = Dispatcher::new(DispatcherConfig { policy, max_in_flight });
            for (i, &(delay_ms, fault)) in backends.iter().enumerate() {
                d.add_backend(Rc::new(Echo {
                    name: format!("r{i}"),
                    delay: Duration::from_millis(delay_ms),
                    fault,
                }));
            }
            let answered = Rc::new(Cell::new(0u64));
            for &(at_ms, is_upload) in &arrivals {
                let d2 = Rc::clone(&d);
                let a = Rc::clone(&answered);
                sim.schedule(Duration::from_millis(at_ms), move |sim| {
                    let req = if is_upload {
                        Request::Upload {
                            file_name: "f.exe".into(),
                            len: 64,
                            profile: ExecutionProfile::quick(),
                        }
                    } else {
                        Request::Invoke { service: "svc".into(), args: Vec::new() }
                    };
                    let fired = Cell::new(false);
                    d2.submit(sim, req, Box::new(move |_, _| {
                        assert!(!fired.replace(true), "responder fired twice");
                        a.set(a.get() + 1);
                    }));
                });
            }
            // scale-downs racing the traffic must not lose or double-answer
            // requests; removing an unknown/already-draining name is a no-op
            for &(at_ms, idx) in &removals {
                let d2 = Rc::clone(&d);
                let name = format!("r{}", idx % backends.len());
                sim.schedule(Duration::from_millis(at_ms), move |sim| {
                    let _ = d2.remove_backend(sim, &name);
                });
            }
            sim.run();
            let c = d.counters();
            let total = arrivals.len() as u64;
            prop_assert_eq!(answered.get(), total, "{}: answered != submitted", policy.label());
            prop_assert_eq!(c.accepted + c.shed, total, "{}: door ledger", policy.label());
            prop_assert_eq!(c.accepted, c.completed + c.faulted, "{}: outcome ledger", policy.label());
            prop_assert_eq!(d.in_flight(), 0, "{}: in-flight after drain", policy.label());
        }
    }

    /// The admission limit is a hard ceiling: at no instant do more than
    /// `max_in_flight` requests sit past the front door.
    #[test]
    fn in_flight_never_exceeds_limit(
        arrivals in proptest::collection::vec(arb_arrival(), 1..40),
        max_in_flight in 1usize..6,
        delay_ms in 1u64..1_000,
    ) {
        let mut sim = Sim::new(0xcab);
        let d = Dispatcher::new(DispatcherConfig {
            policy: Policy::LeastOutstanding,
            max_in_flight,
        });
        d.add_backend(Rc::new(Echo {
            name: "r0".into(),
            delay: Duration::from_millis(delay_ms),
            fault: false,
        }));
        let high_water = Rc::new(Cell::new(0usize));
        for &(at_ms, _) in &arrivals {
            let d2 = Rc::clone(&d);
            let hw = Rc::clone(&high_water);
            sim.schedule(Duration::from_millis(at_ms), move |sim| {
                d2.submit(
                    sim,
                    Request::Invoke { service: "svc".into(), args: Vec::new() },
                    Box::new(|_, _| {}),
                );
                hw.set(hw.get().max(d2.in_flight()));
            });
        }
        sim.run();
        prop_assert!(
            high_water.get() <= max_in_flight,
            "in-flight high water {} exceeded limit {}",
            high_water.get(),
            max_in_flight
        );
        prop_assert_eq!(d.in_flight(), 0);
    }
}
