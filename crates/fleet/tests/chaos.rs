//! Chaos soak and telemetry coverage for involuntary replica loss.
//!
//! The soak drives a seeded 10 000-request closed loop against a fleet
//! under Poisson replica crashes with autoscaler replacement, and asserts
//! *request conservation*: every issued request is answered exactly once
//! (completed or faulted) — crashes may cost goodput, never answers. The
//! same run twice must produce an identical fingerprint, byte-for-byte
//! determinism being what makes a chaos schedule a reproducible test
//! fixture rather than flake.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use fleet::{
    AffinityConfig, Autoscaler, AutoscalerConfig, ChaosMonkey, Fleet, FleetSpec, Policy, Request,
    StorageTopology,
};
use onserve::profile::ExecutionProfile;
use simkit::fault::FaultPlan;
use simkit::telemetry::{validate_chrome_trace, AttrValue};
use simkit::{Duration, Rng, Sim, MB};
use vappliance::ApplianceImage;

fn image() -> ApplianceImage {
    ApplianceImage {
        name: "onserve".into(),
        bytes: 600.0 * MB,
        boot_services: vec!["mysqld".into(), "tomcat".into(), "juddi".into()],
        recipe_fingerprint: 1,
    }
}

fn chaos_fleet(sim: &mut Sim, replicas: usize, affinity: bool) -> Rc<Fleet> {
    let mut spec = FleetSpec::with_image(image());
    spec.topology = StorageTopology::Replicated;
    spec.initial_replicas = replicas;
    spec.dispatcher.policy = Policy::RoundRobin;
    spec.dispatcher.max_in_flight = 256;
    if affinity {
        // sticky routing pays off through the per-replica session cache,
        // so the two switches travel together in these scenarios
        spec.dispatcher.affinity = Some(AffinityConfig::default());
        spec.base.config.cache_grid_sessions = true;
    }
    Fleet::new(sim, spec)
}

/// Everything the soak measures; two same-seed runs must agree exactly.
#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    completed: u64,
    faulted: u64,
    shed: u64,
    retried: u64,
    ejected: u64,
    lost: u64,
    booted: u64,
    end_ticks: u64,
}

const SOAK_TOTAL: u64 = 10_000;
const SOAK_USERS: usize = 40;

struct Tally {
    issued: Cell<u64>,
    completed: Cell<u64>,
    faulted: Cell<u64>,
}

fn spawn_user(
    sim: &mut Sim,
    fleet: Rc<Fleet>,
    tally: Rc<Tally>,
    rng: Rc<RefCell<Rng>>,
    principal: Option<String>,
) {
    let think = Duration::from_millis(rng.borrow_mut().range(50, 400));
    sim.schedule(think, move |sim| {
        if tally.issued.get() >= SOAK_TOTAL {
            return; // population drains once the budget is spent
        }
        tally.issued.set(tally.issued.get() + 1);
        let dispatcher = Rc::clone(fleet.dispatcher());
        let t2 = Rc::clone(&tally);
        let f2 = Rc::clone(&fleet);
        let r2 = Rc::clone(&rng);
        dispatcher.submit(
            sim,
            Request::Invoke {
                service: "app".into(),
                args: Vec::new(),
                principal: principal.clone(),
            },
            Box::new(move |sim, res| {
                match res {
                    Ok(_) => t2.completed.set(t2.completed.get() + 1),
                    Err(_) => t2.faulted.set(t2.faulted.get() + 1),
                }
                spawn_user(sim, f2, t2, r2, principal);
            }),
        );
    });
}

fn soak(seed: u64, affinity: bool) -> Fingerprint {
    let mut sim = Sim::new(seed);
    let fleet = chaos_fleet(&mut sim, 3, affinity);
    sim.run();
    fleet.publish(
        &mut sim,
        "app.exe",
        64 * 1024,
        ExecutionProfile::quick()
            .lasting(Duration::from_millis(500))
            .producing(16.0 * 1024.0),
        |_| {},
    );
    sim.run();
    // replacement-only autoscaler: crash loss is re-ordered, load is not
    let until = sim.now() + Duration::from_secs(3600);
    let _scaler = Autoscaler::install(
        &mut sim,
        &fleet,
        AutoscalerConfig {
            interval: Duration::from_secs(10),
            cooldown: Duration::from_secs(60),
            scale_up_load: f64::INFINITY,
            scale_down_load: 0.0,
            min_replicas: 3,
            max_replicas: 6,
            ..AutoscalerConfig::default()
        },
        until,
    );
    let plan = FaultPlan::new(seed)
        .poisson_crashes(Duration::from_secs(120), Duration::from_secs(600));
    let monkey = ChaosMonkey::unleash(&mut sim, &fleet, &plan);
    let tally = Rc::new(Tally {
        issued: Cell::new(0),
        completed: Cell::new(0),
        faulted: Cell::new(0),
    });
    let rng = Rc::new(RefCell::new(sim.rng().fork()));
    for i in 0..SOAK_USERS {
        // with affinity on, every user is a distinct sticky principal
        let principal = affinity.then(|| format!("user{i}"));
        spawn_user(&mut sim, Rc::clone(&fleet), Rc::clone(&tally), Rc::clone(&rng), principal);
    }
    sim.run();

    // conservation: 10k issued, every one answered exactly once
    assert_eq!(tally.issued.get(), SOAK_TOTAL);
    assert_eq!(
        tally.completed.get() + tally.faulted.get(),
        SOAK_TOTAL,
        "requests lost: neither completed nor faulted"
    );
    let c = fleet.dispatcher().counters();
    assert_eq!(c.accepted + c.shed, SOAK_TOTAL, "door ledger");
    assert_eq!(c.accepted, c.completed + c.faulted, "outcome ledger");
    assert_eq!(fleet.dispatcher().in_flight(), 0, "nothing stuck in flight");
    assert_eq!(monkey.landed(), fleet.lost_total());
    assert!(
        monkey.landed() >= 2,
        "the Poisson schedule should land several crashes, got {}",
        monkey.landed()
    );
    assert_eq!(
        fleet.lost_total() + fleet.retired_total(),
        fleet.lost_total(),
        "nothing was voluntarily retired in this scenario"
    );
    // the fleet healed: replacements restored the floor
    assert!(fleet.active_replicas() >= 3);
    Fingerprint {
        completed: tally.completed.get(),
        faulted: tally.faulted.get(),
        shed: c.shed,
        retried: c.retried,
        ejected: c.ejected,
        lost: fleet.lost_total(),
        booted: fleet.booted_total(),
        end_ticks: sim.now().ticks(),
    }
}

#[test]
fn soak_10k_requests_conserved_under_poisson_crashes_and_deterministic() {
    const SEED: u64 = 0x50a4;
    let first = soak(SEED, false);
    let second = soak(SEED, false);
    assert_eq!(first, second, "same-seed chaos soak must replay exactly");
    assert!(first.lost > 0, "chaos actually happened: {first:?}");
    assert!(
        first.completed > SOAK_TOTAL * 9 / 10,
        "retry should keep goodput high: {first:?}"
    );
}

#[test]
fn soak_10k_requests_conserved_and_deterministic_with_affinity() {
    // same chaos, sticky routing on: conservation and same-seed
    // byte-identical replay must survive the affinity table's bookkeeping
    const SEED: u64 = 0x50a5;
    let first = soak(SEED, true);
    let second = soak(SEED, true);
    assert_eq!(first, second, "same-seed affinity soak must replay exactly");
    assert!(first.lost > 0, "chaos actually happened: {first:?}");
    assert!(
        first.completed > SOAK_TOTAL * 9 / 10,
        "retry should keep goodput high: {first:?}"
    );
}

/// Crash → eject → retry → success leaves a causal telemetry trail naming
/// the dead replica, and the export stays strictly well-formed.
#[test]
fn crash_retry_success_emits_replica_lost_and_retry_spans() {
    let mut sim = Sim::new(77);
    sim.enable_telemetry();
    let fleet = chaos_fleet(&mut sim, 2, false);
    sim.run();
    fleet.publish(
        &mut sim,
        "slow.exe",
        1024 * 1024,
        ExecutionProfile::quick().lasting(Duration::from_secs(30)),
        |_| {},
    );
    sim.run();
    // occupy both replicas, then kill replica0 mid-flight
    let ok = Rc::new(Cell::new(0u32));
    for _ in 0..2 {
        let ok = Rc::clone(&ok);
        fleet.dispatcher().clone().submit(
            &mut sim,
            Request::Invoke {
                service: "slow".into(),
                args: Vec::new(),
                principal: None,
            },
            Box::new(move |_, res| {
                assert!(res.is_ok(), "{res:?}");
                ok.set(ok.get() + 1);
            }),
        );
    }
    let victim = fleet.active_replica_names()[0].clone();
    let fleet2 = Rc::clone(&fleet);
    let v2 = victim.clone();
    sim.schedule(Duration::from_secs(5), move |sim| {
        assert!(fleet2.crash_replica(sim, &v2));
    });
    sim.run();
    assert_eq!(ok.get(), 2);

    let t = sim.telemetry().expect("telemetry on");
    let dead = AttrValue::Str(victim.clone());
    // the fleet recorded the loss, attributed to the dead replica
    let lost = t.spans_named("fleet.replica_lost");
    assert_eq!(lost.len(), 1);
    let lost_rec = t.span(lost[0]).expect("resolvable");
    assert_eq!(lost_rec.attr("replica"), Some(&dead));
    assert!(lost_rec.end.is_some(), "fleet.replica_lost never closed");
    // the dispatcher retried the in-flight request, blaming the same
    // replica, under the original request span
    let retries = t.spans_named("dispatcher.retry");
    assert!(!retries.is_empty(), "no dispatcher.retry span");
    for id in retries {
        let rec = t.span(id).expect("resolvable");
        assert_eq!(rec.attr("replica"), Some(&dead));
        assert!(rec.end.is_some(), "retry span never closed");
        assert_ne!(rec.parent, simkit::SpanId::NONE, "retry span is parented");
    }
    let check = validate_chrome_trace(&sim.export_chrome_trace()).expect("well-formed trace");
    assert!(check.events > 0);
    assert_eq!(check.begins, check.ends, "unbalanced B/E events");
}

/// A sticky user whose pinned replica crashes mid-request is retried on the
/// survivor and re-authenticates there exactly once — the session cache
/// absorbs every later request, so the crash costs one credential exchange,
/// not one per request.
#[test]
fn sticky_replica_crash_retries_on_survivor_and_reauthenticates_once() {
    let mut sim = Sim::new(78);
    sim.enable_telemetry();
    let fleet = chaos_fleet(&mut sim, 2, true);
    sim.run();
    fleet.publish(
        &mut sim,
        "slow.exe",
        1024 * 1024,
        ExecutionProfile::quick().lasting(Duration::from_secs(30)),
        |_| {},
    );
    sim.run();
    let auth_spans =
        |sim: &Sim| sim.telemetry().expect("telemetry on").spans_named("agent.authenticate").len();
    let invoke_as_alice = |sim: &mut Sim, fleet: &Rc<Fleet>, ok: &Rc<Cell<u32>>| {
        let ok = Rc::clone(ok);
        fleet.dispatcher().clone().submit(
            sim,
            Request::Invoke {
                service: "slow".into(),
                args: Vec::new(),
                principal: Some("alice".into()),
            },
            Box::new(move |_, res| {
                assert!(res.is_ok(), "{res:?}");
                ok.set(ok.get() + 1);
            }),
        );
    };
    let ok = Rc::new(Cell::new(0u32));

    // request 1 pins alice to a replica and authenticates there once
    let base = auth_spans(&sim);
    invoke_as_alice(&mut sim, &fleet, &ok);
    sim.run();
    assert_eq!(ok.get(), 1);
    assert_eq!(auth_spans(&sim), base + 1, "first request authenticates once");
    let t = sim.telemetry().expect("telemetry on");
    let dispatches = t.spans_named("dispatcher.dispatch");
    let Some(AttrValue::Str(pinned)) =
        t.span(*dispatches.last().expect("dispatched")).expect("resolvable").attr("replica").cloned()
    else {
        panic!("dispatch span records the chosen replica")
    };

    // request 2 heads for the pinned replica; kill it mid-flight
    invoke_as_alice(&mut sim, &fleet, &ok);
    let fleet2 = Rc::clone(&fleet);
    let victim = pinned.clone();
    sim.schedule(Duration::from_secs(5), move |sim| {
        assert!(fleet2.crash_replica(sim, &victim));
    });
    sim.run();
    assert_eq!(ok.get(), 2, "retry must answer the interrupted request");
    // the retry re-pinned onto the survivor and authenticated there — once
    assert_eq!(auth_spans(&sim), base + 2, "crash costs exactly one re-auth");
    assert_eq!(fleet.dispatcher().counters().affinity_repins, 1);

    // request 3 rides the survivor's cached session: no new credential work
    invoke_as_alice(&mut sim, &fleet, &ok);
    sim.run();
    assert_eq!(ok.get(), 3);
    assert_eq!(auth_spans(&sim), base + 2, "cached session absorbs request 3");
    assert!(fleet.dispatcher().counters().affinity_hits >= 1);
    // and the retry trail blames the dead replica
    let t = sim.telemetry().expect("telemetry on");
    let retries = t.spans_named("dispatcher.retry");
    assert!(!retries.is_empty());
    for id in retries {
        assert_eq!(
            t.span(id).expect("resolvable").attr("replica"),
            Some(&AttrValue::Str(pinned.clone()))
        );
    }
}
