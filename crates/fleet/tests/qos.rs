//! Per-tenant QoS end-to-end: the ticket's tenant + tier identity is
//! assigned exactly once, at admission, and provably survives every
//! path that re-routes an in-flight request afterwards:
//!
//! * a crash-driven retry (the replica dies mid-request and the ticket
//!   re-routes on the survivor);
//! * a rendezvous re-pin (the pinned replica leaves rotation and the
//!   principal's next request reassigns);
//! * a canary `shift_pins` (the pin is deliberately moved onto a canary
//!   target);
//! * a door-queued request granted later by the DRR stage.
//!
//! Each scenario asserts the per-tenant conservation ledger
//! (`issued == accepted + shed + queued`, in-flight returns to zero) and
//! reads the `tenant`/`tier` span attributes off the telemetry to prove
//! the identity rode along rather than being re-derived.

use std::cell::Cell;
use std::rc::Rc;

use fleet::{
    AffinityConfig, Backend, Dispatcher, DispatcherConfig, Policy, QosConfig, QosTier, Request,
    Responder, RetryConfig,
};
use simkit::{AttrValue, Duration, Sim};
use wsstack::SoapValue;

/// Serves after a fixed delay; counts what it saw.
struct Echo {
    name: String,
    delay: Duration,
    served: Cell<u64>,
}

impl Echo {
    fn new(name: &str, delay_ms: u64) -> Rc<Echo> {
        Rc::new(Echo {
            name: name.into(),
            delay: Duration::from_millis(delay_ms),
            served: Cell::new(0),
        })
    }
}

impl Backend for Echo {
    fn name(&self) -> &str {
        &self.name
    }
    fn serve(&self, sim: &mut Sim, _req: Request, done: Responder) {
        self.served.set(self.served.get() + 1);
        sim.schedule(self.delay, move |sim| done(sim, Ok(SoapValue::Bool(true))));
    }
}

/// A backend that never answers — only an eject can resolve its ops.
struct BlackHole {
    name: String,
}

impl Backend for BlackHole {
    fn name(&self) -> &str {
        &self.name
    }
    fn serve(&self, _sim: &mut Sim, _req: Request, _done: Responder) {}
}

fn invoke_as(principal: &str) -> Request {
    Request::Invoke {
        service: "svc".into(),
        args: Vec::new(),
        principal: Some(principal.into()),
    }
}

fn qos_dispatcher(tiers: &[(&str, QosTier)], max_in_flight: usize) -> Rc<Dispatcher> {
    let d = Dispatcher::new(DispatcherConfig {
        policy: Policy::RoundRobin,
        max_in_flight,
        affinity: Some(AffinityConfig::default()),
        retry: Some(RetryConfig {
            max_retries: 2,
            base_backoff: Duration::from_millis(100),
            max_backoff: Duration::from_secs(1),
            jitter: 0.0,
        }),
        ..DispatcherConfig::default()
    });
    d.set_qos(QosConfig {
        tiers: tiers
            .iter()
            .map(|(t, w)| ((*t).to_owned(), *w))
            .collect(),
        ..QosConfig::default()
    });
    d
}

fn str_attr<'a>(sim: &'a Sim, span: simkit::SpanId, key: &str) -> Option<&'a str> {
    match sim.telemetry().expect("telemetry on").span(span)?.attr(key)? {
        AttrValue::Str(s) => Some(s.as_str()),
        _ => None,
    }
}

/// Assert alice's ledger is fully conserved and drained.
fn assert_clean_ledger(d: &Dispatcher, tenant: &str, issued: u64) {
    let snap = &d.qos_tenants()[tenant];
    assert_eq!(snap.issued, issued);
    assert_eq!(snap.accepted, issued, "nothing shed in this scenario");
    assert_eq!(snap.shed, 0);
    assert_eq!(snap.queued, 0);
    assert_eq!(snap.in_flight, 0, "per-tenant in-flight returned to zero");
    assert_eq!(snap.issued, snap.accepted + snap.shed + snap.queued as u64);
}

#[test]
fn tier_survives_crash_retry() {
    let mut sim = Sim::new(70);
    sim.enable_telemetry();
    let d = qos_dispatcher(&[("alice", QosTier::Gold)], 8);
    let hole = Rc::new(BlackHole { name: "a".into() });
    let b = Echo::new("b", 10);
    d.add_backend(hole);
    d.add_backend(b.clone());
    let ok = Rc::new(Cell::new(false));
    let o = ok.clone();
    // round-robin sends alice's first request to the black hole "a"
    d.submit(
        &mut sim,
        invoke_as("alice"),
        Box::new(move |_, r| o.set(r.is_ok())),
    );
    // the replica dies mid-request: the ticket must retry on "b" at its
    // admission-time identity, not re-enter the door
    let d2 = Rc::clone(&d);
    sim.schedule(Duration::from_millis(50), move |sim| {
        assert!(d2.eject_backend(sim, "a"));
    });
    sim.run();
    assert!(ok.get(), "retried onto the survivor");
    assert_eq!(b.served.get(), 1);
    assert_clean_ledger(&d, "alice", 1);
    let snap = &d.qos_tenants()["alice"];
    assert_eq!(snap.tier, QosTier::Gold);
    // the retry span carries the admission-time tenant and tier
    let t = sim.telemetry().expect("telemetry on");
    let retries = t.spans_named("dispatcher.retry");
    assert_eq!(retries.len(), 1);
    assert_eq!(str_attr(&sim, retries[0], "tenant"), Some("alice"));
    assert_eq!(str_attr(&sim, retries[0], "tier"), Some("gold"));
    // the dispatch span was tagged once, at admission
    let dispatches = t.spans_named("dispatcher.dispatch");
    assert_eq!(str_attr(&sim, dispatches[0], "tenant"), Some("alice"));
    assert_eq!(str_attr(&sim, dispatches[0], "tier"), Some("gold"));
}

#[test]
fn tier_survives_rendezvous_repin() {
    let mut sim = Sim::new(71);
    sim.enable_telemetry();
    let d = qos_dispatcher(&[("alice", QosTier::Batch)], 8);
    let (a, b) = (Echo::new("a", 10), Echo::new("b", 10));
    d.add_backend(a.clone());
    d.add_backend(b.clone());
    // request 1 pins alice to "a"
    d.submit(
        &mut sim,
        invoke_as("alice"),
        Box::new(|_, r| assert!(r.is_ok())),
    );
    sim.run();
    assert_eq!(d.pin_target("alice").as_deref(), Some("a"));
    // the pinned replica leaves rotation; the orphaned pin reassigns by
    // rendezvous on alice's next request — at her original tier
    assert!(d.eject_backend(&mut sim, "a"));
    d.submit(
        &mut sim,
        invoke_as("alice"),
        Box::new(|_, r| assert!(r.is_ok())),
    );
    sim.run();
    assert_eq!(d.pin_target("alice").as_deref(), Some("b"), "re-pinned");
    assert_eq!(d.counters().affinity_repins, 1);
    assert_eq!(b.served.get(), 1);
    assert_clean_ledger(&d, "alice", 2);
    assert_eq!(d.qos_tenants()["alice"].tier, QosTier::Batch);
    let t = sim.telemetry().expect("telemetry on");
    let dispatches = t.spans_named("dispatcher.dispatch");
    assert_eq!(dispatches.len(), 2);
    for span in dispatches {
        assert_eq!(str_attr(&sim, span, "tenant"), Some("alice"));
        assert_eq!(str_attr(&sim, span, "tier"), Some("batch"));
    }
}

#[test]
fn tier_survives_canary_shift_pins() {
    let mut sim = Sim::new(72);
    sim.enable_telemetry();
    let d = qos_dispatcher(&[("alice", QosTier::Gold)], 8);
    let (a, b) = (Echo::new("a", 10), Echo::new("b", 10));
    d.add_backend(a.clone());
    d.add_backend(b.clone());
    d.submit(
        &mut sim,
        invoke_as("alice"),
        Box::new(|_, r| assert!(r.is_ok())),
    );
    sim.run();
    assert_eq!(d.pin_target("alice").as_deref(), Some("a"));
    // a canary deliberately moves every live pin onto "b"
    let shifted = d.shift_pins("b", 1.0);
    assert_eq!(shifted.len(), 1);
    assert_eq!(d.pin_target("alice").as_deref(), Some("b"));
    d.submit(
        &mut sim,
        invoke_as("alice"),
        Box::new(|_, r| assert!(r.is_ok())),
    );
    sim.run();
    assert_eq!(b.served.get(), 1, "shifted pin routed to the canary");
    assert_clean_ledger(&d, "alice", 2);
    assert_eq!(d.qos_tenants()["alice"].tier, QosTier::Gold);
    let t = sim.telemetry().expect("telemetry on");
    for span in t.spans_named("dispatcher.dispatch") {
        assert_eq!(str_attr(&sim, span, "tenant"), Some("alice"));
        assert_eq!(str_attr(&sim, span, "tier"), Some("gold"));
    }
    // and the undo restores the pin to its pre-shift replica
    assert_eq!(d.restore_pins("b", &shifted), 1);
    assert_eq!(d.pin_target("alice").as_deref(), Some("a"));
}

#[test]
fn door_queued_request_is_granted_at_its_tier() {
    let mut sim = Sim::new(73);
    sim.enable_telemetry();
    // window of 1: bob's request occupies the door, alice queues
    let d = qos_dispatcher(&[("alice", QosTier::Gold), ("bob", QosTier::Standard)], 1);
    let a = Echo::new("a", 100);
    d.add_backend(a.clone());
    d.submit(
        &mut sim,
        invoke_as("bob"),
        Box::new(|_, r| assert!(r.is_ok())),
    );
    let finished_at = Rc::new(Cell::new(0u64));
    let f = finished_at.clone();
    d.submit(
        &mut sim,
        invoke_as("alice"),
        Box::new(move |sim, r| {
            assert!(r.is_ok());
            f.set(sim.now().ticks() / 1_000);
        }),
    );
    {
        let snap = d.qos_tenants();
        assert_eq!(snap["alice"].queued, 1, "alice queued behind the window");
        assert_eq!(snap["alice"].enqueued, 1);
    }
    sim.run();
    assert_eq!(
        finished_at.get(),
        200,
        "granted when bob's slot freed, served for 100 ms"
    );
    assert_clean_ledger(&d, "alice", 1);
    assert_clean_ledger(&d, "bob", 1);
    let t = sim.telemetry().expect("telemetry on");
    let dispatches = t.spans_named("dispatcher.dispatch");
    // alice's span shows both the queue transit and the gold tier
    assert_eq!(str_attr(&sim, dispatches[1], "tenant"), Some("alice"));
    assert_eq!(str_attr(&sim, dispatches[1], "tier"), Some("gold"));
    assert_eq!(str_attr(&sim, dispatches[1], "qos"), Some("queued"));
    assert_eq!(d.qos_tenants()["alice"].tier, QosTier::Gold);
}

#[test]
fn queued_shed_and_admitted_requests_all_settle_their_responders() {
    // soak of the queue paths: every submitted request must resolve its
    // responder exactly once whatever mix of grant/shed it hits
    let mut sim = Sim::new(74);
    let d = qos_dispatcher(&[("alice", QosTier::Gold), ("bob", QosTier::Batch)], 2);
    let a = Echo::new("a", 30);
    d.add_backend(a.clone());
    let answered = Rc::new(Cell::new(0u64));
    for k in 0..40u64 {
        let tenant = if k % 2 == 0 { "alice" } else { "bob" };
        let ans = answered.clone();
        let d2 = Rc::clone(&d);
        sim.schedule(Duration::from_millis(10 * k), move |sim| {
            d2.submit(
                sim,
                invoke_as(tenant),
                Box::new(move |_, _| ans.set(ans.get() + 1)),
            );
        });
    }
    sim.run();
    assert_eq!(answered.get(), 40, "every responder fired exactly once");
    let snap = d.qos_tenants();
    for tenant in ["alice", "bob"] {
        let s = &snap[tenant];
        assert_eq!(s.issued, 20);
        assert_eq!(s.issued, s.accepted + s.shed + s.queued as u64);
        assert_eq!(s.queued, 0, "drained");
        assert_eq!(s.in_flight, 0);
    }
    let c = d.counters();
    assert_eq!(c.accepted + c.shed, 40, "global ledger conserves too");
    assert_eq!(c.accepted, c.completed + c.faulted);
}
