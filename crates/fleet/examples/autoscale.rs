//! Autoscaling demo: a bursty open-loop workload against a fleet that
//! starts at one replica, with the control loop ordering and draining
//! capacity as the bursts come and go.
//!
//! Run with: `cargo run -p onserve-fleet --example autoscale`

use std::rc::Rc;

use fleet::{
    start_open_loop, ArrivalProcess, Autoscaler, AutoscalerConfig, Fleet, FleetSpec, Mix,
    ScaleDecision, SubmitFn,
};
use onserve::profile::ExecutionProfile;
use simkit::{Duration, Sim, MB};
use vappliance::ApplianceImage;

fn main() {
    let mut sim = Sim::new(42);
    sim.enable_telemetry();

    let image = ApplianceImage {
        name: "onserve".into(),
        bytes: 600.0 * MB,
        boot_services: vec!["mysqld".into(), "tomcat".into(), "juddi".into()],
        recipe_fingerprint: 1,
    };
    let mut spec = FleetSpec::with_image(image);
    spec.initial_replicas = 1;
    spec.base.wan_bandwidth_override = Some(10.0 * MB);
    let fleet = Fleet::new(&mut sim, spec);
    sim.run(); // cold-start the first appliance
    println!(
        "first replica running at t={:.0}s",
        sim.now().as_secs_f64()
    );

    // small executable, fat result: keeps per-invoke work on the WAN and
    // grid rather than the (byte-accurate, hence wall-clock-expensive)
    // database decompression path
    fleet.publish(
        &mut sim,
        "app.exe",
        64 * 1024,
        ExecutionProfile::quick()
            .lasting(Duration::from_secs(5))
            .producing(4.0 * MB),
        |_| {},
    );
    sim.run();

    let horizon = sim.now() + Duration::from_secs(3600);
    let scaler = Autoscaler::install(
        &mut sim,
        &fleet,
        AutoscalerConfig {
            scale_up_load: 4.0,
            scale_down_load: 0.5,
            max_replicas: 4,
            ..AutoscalerConfig::default()
        },
        horizon,
    );

    let dispatcher = Rc::clone(fleet.dispatcher());
    let sink: Rc<SubmitFn> = Rc::new(move |sim, req, done| dispatcher.submit(sim, req, done));
    let stats = start_open_loop(
        &mut sim,
        ArrivalProcess::Bursty {
            rate_on: 3.0,
            mean_on: Duration::from_secs(300),
            mean_off: Duration::from_secs(600),
        },
        Mix::invoke_only(&["app"]),
        sink,
        horizon,
    );
    sim.run();

    println!("\nscale actions:");
    for a in scaler.actions() {
        match a.decision {
            ScaleDecision::Up | ScaleDecision::Down => println!(
                "  t={:>6.0}s {:?} (load {:.1} across {} replicas)",
                a.at.as_secs_f64(),
                a.decision,
                a.load,
                a.effective
            ),
            _ => {}
        }
    }
    let c = fleet.dispatcher().counters();
    println!(
        "\nissued {} | completed {} | faulted {} | shed {}",
        stats.issued(),
        stats.completed(),
        stats.faulted(),
        c.shed
    );
    println!(
        "replicas booted {} | retired {} | active at end {}",
        fleet.booted_total(),
        fleet.retired_total(),
        fleet.active_replicas()
    );
    println!(
        "latency p50 {:.1}s p95 {:.1}s p99 {:.1}s",
        stats.latency_percentile(50.0),
        stats.latency_percentile(95.0),
        stats.latency_percentile(99.0)
    );
}
