//! Seeded workload generation: open-loop arrival processes and a
//! closed-loop user population.
//!
//! Schroeder et al. ("Open Versus Closed: A Cautionary Tale") is the
//! reason both modes exist: an open-loop generator keeps offering load no
//! matter how slow the system gets — which is what exposes the §VIII-D
//! storage bottleneck — while a closed loop self-throttles behind think
//! times, the way a fixed user population actually behaves. Everything is
//! driven off a forked [`simkit::Rng`] stream, so runs are byte-for-byte
//! reproducible per seed.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use onserve::profile::ExecutionProfile;
use simkit::{Duration, Rng, Sim, SimTime};
use wsstack::{SoapFault, SoapValue};

use crate::dispatcher::{Request, Responder};

/// Where generated requests go — typically the fleet dispatcher.
pub type SubmitFn = dyn Fn(&mut Sim, Request, Responder);

/// Arrival process shapes for the open-loop generator.
#[derive(Clone, Copy, Debug)]
pub enum ArrivalProcess {
    /// Memoryless arrivals at a constant rate (requests/second).
    Poisson {
        /// Mean arrival rate, requests per second.
        rate: f64,
    },
    /// On/off bursts: exponentially distributed on and off phases, Poisson
    /// arrivals at `rate_on` during on phases, silence during off phases.
    Bursty {
        /// Arrival rate during an on phase, requests per second.
        rate_on: f64,
        /// Mean on-phase length.
        mean_on: Duration,
        /// Mean off-phase length.
        mean_off: Duration,
    },
    /// A diurnal rate curve: sinusoidal modulation between `base_rate`
    /// (trough) and `peak_rate` (crest) with the given period, sampled by
    /// thinning a Poisson process at the peak rate.
    Diurnal {
        /// Trough arrival rate, requests per second.
        base_rate: f64,
        /// Crest arrival rate, requests per second.
        peak_rate: f64,
        /// Full cycle length (a simulated "day").
        period: Duration,
    },
}

/// Stateful interarrival sampler for one [`ArrivalProcess`].
///
/// Separate from the simulator so the processes can be unit-tested as pure
/// functions of (time, rng).
pub struct Arrivals {
    process: ArrivalProcess,
    /// Bursty only: when the current phase ends (seconds).
    phase_end: f64,
    /// Bursty only: whether the current phase is an on phase.
    in_on: bool,
}

impl Arrivals {
    /// Fresh sampler; bursty processes start at an off→on boundary.
    pub fn new(process: ArrivalProcess) -> Arrivals {
        if let ArrivalProcess::Poisson { rate } = process {
            assert!(rate > 0.0, "Poisson rate must be positive");
        }
        if let ArrivalProcess::Bursty { rate_on, .. } = process {
            assert!(rate_on > 0.0, "burst rate must be positive");
        }
        if let ArrivalProcess::Diurnal {
            base_rate,
            peak_rate,
            ..
        } = process
        {
            assert!(
                peak_rate >= base_rate && peak_rate > 0.0 && base_rate >= 0.0,
                "diurnal rates must satisfy 0 <= base <= peak, peak > 0"
            );
        }
        Arrivals {
            process,
            phase_end: 0.0,
            in_on: false,
        }
    }

    /// Seconds from `now_secs` until the next arrival.
    pub fn next_gap(&mut self, now_secs: f64, rng: &mut Rng) -> f64 {
        match self.process {
            ArrivalProcess::Poisson { rate } => rng.exp(1.0 / rate),
            ArrivalProcess::Bursty {
                rate_on,
                mean_on,
                mean_off,
            } => {
                let mut t = now_secs;
                loop {
                    if self.phase_end <= t {
                        // phase expired: flip and draw the next phase length
                        self.in_on = !self.in_on;
                        let mean = if self.in_on { mean_on } else { mean_off };
                        self.phase_end = t + rng.exp(mean.as_secs_f64());
                    }
                    if !self.in_on {
                        t = self.phase_end;
                        continue;
                    }
                    let candidate = t + rng.exp(1.0 / rate_on);
                    if candidate <= self.phase_end {
                        return candidate - now_secs;
                    }
                    // burst ended before the candidate arrival: skip ahead
                    t = self.phase_end;
                }
            }
            ArrivalProcess::Diurnal {
                base_rate,
                peak_rate,
                period,
            } => {
                // Lewis–Shedler thinning against the peak rate.
                let p = period.as_secs_f64();
                let mut t = now_secs;
                loop {
                    t += rng.exp(1.0 / peak_rate);
                    let phase = std::f64::consts::TAU * t / p;
                    let rate = base_rate + (peak_rate - base_rate) * 0.5 * (1.0 - phase.cos());
                    if rng.chance(rate / peak_rate) {
                        return t - now_secs;
                    }
                }
            }
        }
    }
}

/// One invocation target: a service plus the identity its requests carry.
#[derive(Clone, Debug)]
pub struct ServiceTarget {
    /// Service name (the executable's base name).
    pub service: String,
    /// The authenticating principal the generated requests declare —
    /// normally the service owner's grid user, which is what the fleet
    /// dispatcher's session affinity keys on. `None` opts out.
    pub principal: Option<String>,
}

/// What the generated requests *are*: a probabilistic upload/invoke blend.
#[derive(Clone, Debug)]
pub struct Mix {
    /// Probability that an arrival is a portal upload rather than a
    /// service invocation.
    pub upload_fraction: f64,
    /// Size of workload-generated uploads, bytes.
    pub upload_len: usize,
    /// Execution profile attached to workload-generated uploads.
    pub upload_profile: ExecutionProfile,
    /// Invocation targets, picked uniformly per arrival.
    pub services: Vec<ServiceTarget>,
    /// When set, every drawn invocation carries a synthetic principal
    /// `u{k}` with `k` drawn uniformly from `0..population`, overriding
    /// the target's own principal. This is the million-user shape: the
    /// principal is purely the dispatcher's sticky-routing key (services
    /// authenticate as their owner, not the caller), so a population needs
    /// no per-user grid enrolment.
    pub principal_population: Option<u64>,
}

impl Mix {
    /// Pure invocation traffic against the given services, carrying no
    /// identity.
    pub fn invoke_only(services: &[&str]) -> Mix {
        Mix {
            upload_fraction: 0.0,
            upload_len: 0,
            upload_profile: ExecutionProfile::quick(),
            services: services
                .iter()
                .map(|s| ServiceTarget {
                    service: s.to_string(),
                    principal: None,
                })
                .collect(),
            principal_population: None,
        }
    }

    /// Pure invocation traffic where each `(service, owner)` request
    /// carries the owner as its principal — the multi-tenant shape the
    /// session-affinity bench drives.
    pub fn invoke_as(targets: &[(&str, &str)]) -> Mix {
        Mix {
            upload_fraction: 0.0,
            upload_len: 0,
            upload_profile: ExecutionProfile::quick(),
            services: targets
                .iter()
                .map(|&(s, p)| ServiceTarget {
                    service: s.to_string(),
                    principal: Some(p.to_string()),
                })
                .collect(),
            principal_population: None,
        }
    }

    /// Invocation traffic against `services` where each request carries a
    /// principal drawn uniformly from a synthetic population of
    /// `population` users (`u0` .. `u{population-1}`) — the
    /// million-principal bench shape.
    pub fn invoke_population(services: &[&str], population: u64) -> Mix {
        assert!(population > 0, "population must be positive");
        let mut mix = Mix::invoke_only(services);
        mix.principal_population = Some(population);
        mix
    }

    /// Draw one request. `seq` uniquifies upload file names — replica
    /// databases reject duplicate executables.
    fn draw(&self, seq: u64, rng: &mut Rng) -> Request {
        if self.services.is_empty() || rng.chance(self.upload_fraction) {
            Request::Upload {
                file_name: format!("wl{seq}.exe"),
                len: self.upload_len,
                profile: self.upload_profile,
            }
        } else {
            let target = rng.choose(&self.services);
            let principal = match self.principal_population {
                Some(population) => Some(format!("u{}", rng.below(population))),
                None => target.principal.clone(),
            };
            Request::Invoke {
                service: target.service.clone(),
                args: Vec::new(),
                principal,
            }
        }
    }
}

/// The `p`th latency percentile (nearest-rank on the index scale) of an
/// ascending sample slice. Hardened: empty input and NaN `p` return 0;
/// `p` outside `[0, 100]` clamps to the nearest end (so `-5` reads the
/// minimum and `250` the maximum rather than indexing out of bounds).
fn percentile_of_sorted(lat: &[f64], p: f64) -> f64 {
    if lat.is_empty() || p.is_nan() {
        return 0.0;
    }
    let p = p.clamp(0.0, 100.0);
    let idx = ((p / 100.0) * (lat.len() - 1) as f64).round() as usize;
    lat[idx.min(lat.len() - 1)]
}

/// Per-tenant slice of a workload's accounting (opt-in via
/// [`WorkloadStats::track_tenants`]).
#[derive(Default)]
struct TenantStats {
    issued: u64,
    completed: u64,
    faulted: u64,
    latencies: Vec<f64>,
}

/// Latency/outcome accounting shared by both loop modes.
#[derive(Default)]
pub struct WorkloadStats {
    issued: Cell<u64>,
    completed: Cell<u64>,
    faulted: Cell<u64>,
    latencies: RefCell<Vec<f64>>,
    /// Prefix of `latencies` known to be sorted; percentile queries only
    /// re-sort when observations arrived since the last query.
    sorted_len: Cell<usize>,
    /// When set, requests carrying a principal also land in `by_tenant`.
    /// Off by default: the million-principal bench must not pay a
    /// `String` clone plus map entry per request.
    tenants_on: Cell<bool>,
    by_tenant: RefCell<std::collections::BTreeMap<String, TenantStats>>,
}

impl WorkloadStats {
    /// Requests submitted so far.
    pub fn issued(&self) -> u64 {
        self.issued.get()
    }

    /// Requests answered successfully.
    pub fn completed(&self) -> u64 {
        self.completed.get()
    }

    /// Requests answered with a SOAP fault (including shed requests).
    pub fn faulted(&self) -> u64 {
        self.faulted.get()
    }

    /// Completion throughput over `horizon`, requests/second.
    pub fn throughput(&self, horizon: Duration) -> f64 {
        self.completed.get() as f64 / horizon.as_secs_f64()
    }

    /// Latency percentile (successes only); `p` clamps to `[0, 100]` and
    /// an empty sample set reads 0. Amortized: the sample vector is
    /// sorted in place at most once per batch of new observations, so
    /// pollers (the autoscaler, sweep reporters) don't pay a full sort
    /// per query. The memo is sound because `record` only ever appends:
    /// a new observation makes `len` exceed `sorted_len`, which forces
    /// the re-sort on the next query — there is no interior mutation
    /// that could leave a stale full-length memo.
    pub fn latency_percentile(&self, p: f64) -> f64 {
        let mut lat = self.latencies.borrow_mut();
        if self.sorted_len.get() < lat.len() {
            lat.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
            self.sorted_len.set(lat.len());
        }
        debug_assert!(lat.windows(2).all(|w| w[0] <= w[1]), "memo served unsorted data");
        percentile_of_sorted(&lat, p)
    }

    /// Start keeping per-tenant issued/completed/faulted/latency slices
    /// for requests that carry a principal. Call before the run starts;
    /// off by default (per-request cost at million-principal scale).
    pub fn track_tenants(&self) {
        self.tenants_on.set(true);
    }

    /// Tenants seen since [`WorkloadStats::track_tenants`], sorted.
    pub fn tenants(&self) -> Vec<String> {
        self.by_tenant.borrow().keys().cloned().collect()
    }

    /// `(issued, completed, faulted)` for one tenant; zeros when unseen.
    pub fn tenant_counts(&self, tenant: &str) -> (u64, u64, u64) {
        self.by_tenant
            .borrow()
            .get(tenant)
            .map_or((0, 0, 0), |t| (t.issued, t.completed, t.faulted))
    }

    /// One tenant's latency percentile (successes only), hardened the
    /// same way as [`WorkloadStats::latency_percentile`].
    pub fn tenant_latency_percentile(&self, tenant: &str, p: f64) -> f64 {
        let mut map = self.by_tenant.borrow_mut();
        let Some(t) = map.get_mut(tenant) else {
            return 0.0;
        };
        t.latencies
            .sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        percentile_of_sorted(&t.latencies, p)
    }

    /// Mean latency of successful requests, seconds; 0 when nothing
    /// completed.
    pub fn latency_mean(&self) -> f64 {
        let lat = self.latencies.borrow();
        if lat.is_empty() {
            return 0.0;
        }
        lat.iter().sum::<f64>() / lat.len() as f64
    }

    /// The tenant key for `req`, but only when tenant tracking is on —
    /// the clone is the per-request cost the flag exists to gate.
    fn tenant_of(&self, req: &Request) -> Option<String> {
        if !self.tenants_on.get() {
            return None;
        }
        match req {
            Request::Invoke {
                principal: Some(p), ..
            } => Some(p.clone()),
            _ => None,
        }
    }

    /// One request drawn for `tenant` (tracking on only).
    fn note_issued(&self, tenant: &str) {
        let mut map = self.by_tenant.borrow_mut();
        map.entry(tenant.to_owned()).or_default().issued += 1;
    }

    fn record(
        &self,
        issued_at: SimTime,
        now: SimTime,
        res: &Result<SoapValue, SoapFault>,
        tenant: Option<&str>,
    ) {
        let tenant = tenant.filter(|_| self.tenants_on.get());
        match res {
            Ok(_) => {
                self.completed.set(self.completed.get() + 1);
                let secs = (now - issued_at).as_secs_f64();
                self.latencies.borrow_mut().push(secs);
                if let Some(t) = tenant {
                    let mut map = self.by_tenant.borrow_mut();
                    let ts = map.entry(t.to_owned()).or_default();
                    ts.completed += 1;
                    ts.latencies.push(secs);
                }
            }
            Err(_) => {
                self.faulted.set(self.faulted.get() + 1);
                if let Some(t) = tenant {
                    self.by_tenant.borrow_mut().entry(t.to_owned()).or_default().faulted += 1;
                }
            }
        }
    }
}

struct GenState {
    arrivals: Arrivals,
    mix: Mix,
    rng: Rng,
    seq: u64,
}

/// Start an open-loop generator: arrivals per `process` until `until`
/// (virtual time), each submitted through `sink` regardless of how many
/// are still outstanding. Returns the stats handle to read after the run.
pub fn start_open_loop(
    sim: &mut Sim,
    process: ArrivalProcess,
    mix: Mix,
    sink: Rc<SubmitFn>,
    until: SimTime,
) -> Rc<WorkloadStats> {
    let stats = Rc::new(WorkloadStats::default());
    let state = Rc::new(RefCell::new(GenState {
        arrivals: Arrivals::new(process),
        mix,
        rng: sim.rng().fork(),
        seq: 0,
    }));
    schedule_arrival(sim, state, sink, Rc::clone(&stats), until);
    stats
}

fn schedule_arrival(
    sim: &mut Sim,
    state: Rc<RefCell<GenState>>,
    sink: Rc<SubmitFn>,
    stats: Rc<WorkloadStats>,
    until: SimTime,
) {
    let gap = {
        let now = sim.now().as_secs_f64();
        let st = &mut *state.borrow_mut();
        Duration::from_secs_f64(st.arrivals.next_gap(now, &mut st.rng))
    };
    if sim.now() + gap > until {
        return;
    }
    sim.schedule(gap, move |sim| {
        let req = {
            let st = &mut *state.borrow_mut();
            st.seq += 1;
            st.mix.draw(st.seq, &mut st.rng)
        };
        stats.issued.set(stats.issued.get() + 1);
        let tenant = stats.tenant_of(&req);
        if let Some(t) = &tenant {
            stats.note_issued(t);
        }
        let issued_at = sim.now();
        let s2 = Rc::clone(&stats);
        sink(
            sim,
            req,
            Box::new(move |sim, res| s2.record(issued_at, sim.now(), &res, tenant.as_deref())),
        );
        schedule_arrival(sim, state, sink, stats, until);
    });
}

/// Start a closed-loop population: `users` independent users, each cycling
/// think (exponential, mean `think_mean`) → request → wait-for-response,
/// until `until`. The population self-throttles: a slow fleet is hit by at
/// most `users` concurrent requests.
pub fn start_closed_loop(
    sim: &mut Sim,
    users: usize,
    think_mean: Duration,
    mix: Mix,
    sink: Rc<SubmitFn>,
    until: SimTime,
) -> Rc<WorkloadStats> {
    let stats = Rc::new(WorkloadStats::default());
    let state = Rc::new(RefCell::new(GenState {
        // arrivals unused in closed loop; any process works as a placeholder
        arrivals: Arrivals::new(ArrivalProcess::Poisson { rate: 1.0 }),
        mix,
        rng: sim.rng().fork(),
        seq: 0,
    }));
    for _ in 0..users {
        user_cycle(
            sim,
            Rc::clone(&state),
            Rc::clone(&sink),
            Rc::clone(&stats),
            think_mean,
            until,
        );
    }
    stats
}

fn user_cycle(
    sim: &mut Sim,
    state: Rc<RefCell<GenState>>,
    sink: Rc<SubmitFn>,
    stats: Rc<WorkloadStats>,
    think_mean: Duration,
    until: SimTime,
) {
    let think = {
        let st = &mut *state.borrow_mut();
        Duration::from_secs_f64(st.rng.exp(think_mean.as_secs_f64()))
    };
    if sim.now() + think > until {
        return;
    }
    sim.schedule(think, move |sim| {
        let req = {
            let st = &mut *state.borrow_mut();
            st.seq += 1;
            st.mix.draw(st.seq, &mut st.rng)
        };
        stats.issued.set(stats.issued.get() + 1);
        let tenant = stats.tenant_of(&req);
        if let Some(t) = &tenant {
            stats.note_issued(t);
        }
        let issued_at = sim.now();
        let s2 = Rc::clone(&stats);
        let submit = Rc::clone(&sink);
        submit(
            sim,
            req,
            Box::new(move |sim, res| {
                s2.record(issued_at, sim.now(), &res, tenant.as_deref());
                user_cycle(sim, state, sink, Rc::clone(&s2), think_mean, until);
            }),
        );
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count_arrivals(process: ArrivalProcess, horizon_s: f64, seed: u64) -> Vec<f64> {
        let mut rng = Rng::new(seed);
        let mut a = Arrivals::new(process);
        let mut t = 0.0;
        let mut out = Vec::new();
        loop {
            t += a.next_gap(t, &mut rng);
            if t > horizon_s {
                return out;
            }
            out.push(t);
        }
    }

    #[test]
    fn poisson_rate_is_close() {
        let n = count_arrivals(ArrivalProcess::Poisson { rate: 5.0 }, 2000.0, 1).len();
        let rate = n as f64 / 2000.0;
        assert!((rate - 5.0).abs() < 0.3, "rate={rate}");
    }

    #[test]
    fn arrivals_are_deterministic_per_seed() {
        let p = ArrivalProcess::Bursty {
            rate_on: 10.0,
            mean_on: Duration::from_secs(5),
            mean_off: Duration::from_secs(15),
        };
        assert_eq!(count_arrivals(p, 500.0, 9), count_arrivals(p, 500.0, 9));
        assert_ne!(count_arrivals(p, 500.0, 9), count_arrivals(p, 500.0, 10));
    }

    #[test]
    fn bursty_mean_rate_reflects_duty_cycle() {
        // 5 s on at 10/s, 15 s off → long-run mean 2.5/s
        let n = count_arrivals(
            ArrivalProcess::Bursty {
                rate_on: 10.0,
                mean_on: Duration::from_secs(5),
                mean_off: Duration::from_secs(15),
            },
            4000.0,
            2,
        )
        .len();
        let rate = n as f64 / 4000.0;
        assert!((rate - 2.5).abs() < 0.4, "rate={rate}");
    }

    #[test]
    fn bursty_has_long_silences() {
        let times = count_arrivals(
            ArrivalProcess::Bursty {
                rate_on: 10.0,
                mean_on: Duration::from_secs(5),
                mean_off: Duration::from_secs(15),
            },
            1000.0,
            3,
        );
        let max_gap = times
            .windows(2)
            .map(|w| w[1] - w[0])
            .fold(0.0f64, f64::max);
        // a pure Poisson at the same mean rate would essentially never show
        // a 10 s gap; the off phases guarantee them
        assert!(max_gap > 8.0, "max_gap={max_gap}");
    }

    #[test]
    fn diurnal_peak_outweighs_trough() {
        let period = Duration::from_secs(1000);
        let times = count_arrivals(
            ArrivalProcess::Diurnal {
                base_rate: 0.5,
                peak_rate: 8.0,
                period,
            },
            10_000.0,
            4,
        );
        // crest is mid-period (t=500 mod 1000), trough at t=0 mod 1000
        let crest = times
            .iter()
            .filter(|t| (0.4..0.6).contains(&((*t % 1000.0) / 1000.0)))
            .count();
        let trough = times
            .iter()
            .filter(|t| {
                let frac = (*t % 1000.0) / 1000.0;
                !(0.1..0.9).contains(&frac)
            })
            .count();
        assert!(
            crest as f64 > 3.0 * trough as f64,
            "crest={crest} trough={trough}"
        );
    }

    #[test]
    fn open_loop_offers_load_regardless_of_completion() {
        // a sink that never answers: open loop must keep issuing anyway
        let mut sim = Sim::new(11);
        let sink: Rc<SubmitFn> = Rc::new(|_sim, _req, _done| {});
        let stats = start_open_loop(
            &mut sim,
            ArrivalProcess::Poisson { rate: 2.0 },
            Mix::invoke_only(&["svc"]),
            sink,
            SimTime::from_secs(100),
        );
        sim.run();
        assert!(stats.issued() > 150, "issued={}", stats.issued());
        assert_eq!(stats.completed(), 0);
    }

    #[test]
    fn closed_loop_self_throttles_to_population_size() {
        // a sink that answers after 10 s: N users → at most N outstanding,
        // so issues ≈ users × horizon / (think + service)
        let mut sim = Sim::new(12);
        let outstanding = Rc::new(Cell::new(0usize));
        let peak = Rc::new(Cell::new(0usize));
        let (o2, p2) = (outstanding.clone(), peak.clone());
        let sink: Rc<SubmitFn> = Rc::new(move |sim, _req, done| {
            o2.set(o2.get() + 1);
            p2.set(p2.get().max(o2.get()));
            let o3 = o2.clone();
            sim.schedule(Duration::from_secs(10), move |sim| {
                o3.set(o3.get() - 1);
                done(sim, Ok(SoapValue::Bool(true)));
            });
        });
        let stats = start_closed_loop(
            &mut sim,
            4,
            Duration::from_secs(5),
            Mix::invoke_only(&["svc"]),
            sink,
            SimTime::from_secs(300),
        );
        sim.run();
        assert!(peak.get() <= 4, "peak={}", peak.get());
        assert!(stats.completed() >= 40, "completed={}", stats.completed());
        // ≈ 4 users × 300 s / 15 s = 80 cycles
        assert!(stats.issued() <= 100, "issued={}", stats.issued());
    }

    #[test]
    fn mix_emits_unique_upload_names() {
        let mut rng = Rng::new(5);
        let mix = Mix {
            upload_fraction: 1.0,
            upload_len: 64,
            upload_profile: ExecutionProfile::quick(),
            services: vec![ServiceTarget {
                service: "svc".into(),
                principal: None,
            }],
            principal_population: None,
        };
        let mut names = std::collections::BTreeSet::new();
        for seq in 0..50 {
            match mix.draw(seq, &mut rng) {
                Request::Upload { file_name, .. } => assert!(names.insert(file_name)),
                Request::Invoke { .. } => panic!("upload_fraction=1 must upload"),
            }
        }
    }

    #[test]
    fn stats_percentiles_are_order_statistics() {
        let stats = WorkloadStats::default();
        for ms in [10u64, 20, 30, 40, 1000] {
            stats.record(
                SimTime::ZERO,
                SimTime::ZERO + Duration::from_millis(ms),
                &Ok(SoapValue::Bool(true)),
                None,
            );
        }
        stats.record(SimTime::ZERO, SimTime::ZERO, &Err(SoapFault::server("x")), None);
        assert_eq!(stats.completed(), 5);
        assert_eq!(stats.faulted(), 1);
        assert!((stats.latency_percentile(50.0) - 0.03).abs() < 1e-9);
        assert!((stats.latency_percentile(100.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn stats_percentiles_stay_correct_when_queries_interleave_records() {
        // the sort memo must invalidate on every new observation, even
        // when a poller queries between records (the autoscaler pattern)
        let stats = WorkloadStats::default();
        let mut max_s = 0.0f64;
        for ms in [500u64, 100, 900, 300, 700, 200, 800, 400, 600, 1000] {
            stats.record(
                SimTime::ZERO,
                SimTime::ZERO + Duration::from_millis(ms),
                &Ok(SoapValue::Bool(true)),
                None,
            );
            max_s = max_s.max(ms as f64 / 1e3);
            // query after every record: each answer must be the true max
            assert!((stats.latency_percentile(100.0) - max_s).abs() < 1e-9);
        }
        assert!((stats.latency_percentile(0.0) - 0.1).abs() < 1e-9);
        // 10 samples: index round(0.5 * 9) = 5 → the 0.6 s observation
        assert!((stats.latency_percentile(50.0) - 0.6).abs() < 1e-9);
        assert!((stats.latency_mean() - 0.55).abs() < 1e-9);
    }

    #[test]
    fn percentile_edge_cases_are_hardened() {
        let stats = WorkloadStats::default();
        // empty sample set: every p reads 0, including weird ones
        for p in [0.0, 50.0, 100.0, -3.0, 400.0, f64::NAN] {
            assert_eq!(stats.latency_percentile(p), 0.0);
        }
        for ms in [30u64, 10, 20] {
            stats.record(
                SimTime::ZERO,
                SimTime::ZERO + Duration::from_millis(ms),
                &Ok(SoapValue::Bool(true)),
                None,
            );
        }
        // p=0 is the min, p=100 the max
        assert!((stats.latency_percentile(0.0) - 0.01).abs() < 1e-9);
        assert!((stats.latency_percentile(100.0) - 0.03).abs() < 1e-9);
        // out-of-range p clamps to the ends instead of indexing wild
        assert!((stats.latency_percentile(-50.0) - 0.01).abs() < 1e-9);
        assert!((stats.latency_percentile(1e6) - 0.03).abs() < 1e-9);
        // NaN p can't pick an index: defined as 0
        assert_eq!(stats.latency_percentile(f64::NAN), 0.0);
    }

    #[test]
    fn tenant_tracking_is_opt_in_and_conserves() {
        let off = WorkloadStats::default();
        off.record(
            SimTime::ZERO,
            SimTime::ZERO + Duration::from_millis(5),
            &Ok(SoapValue::Bool(true)),
            Some("alice"),
        );
        assert!(off.tenants().is_empty(), "tracking off: no per-tenant state");

        let on = WorkloadStats::default();
        on.track_tenants();
        on.note_issued("alice");
        on.note_issued("alice");
        on.note_issued("bob");
        on.record(
            SimTime::ZERO,
            SimTime::ZERO + Duration::from_millis(10),
            &Ok(SoapValue::Bool(true)),
            Some("alice"),
        );
        on.record(
            SimTime::ZERO,
            SimTime::ZERO,
            &Err(SoapFault::server("x")),
            Some("alice"),
        );
        on.record(
            SimTime::ZERO,
            SimTime::ZERO + Duration::from_millis(30),
            &Ok(SoapValue::Bool(true)),
            Some("bob"),
        );
        assert_eq!(on.tenants(), vec!["alice".to_owned(), "bob".to_owned()]);
        assert_eq!(on.tenant_counts("alice"), (2, 1, 1));
        assert_eq!(on.tenant_counts("bob"), (1, 1, 0));
        assert_eq!(on.tenant_counts("unseen"), (0, 0, 0));
        assert!((on.tenant_latency_percentile("alice", 99.0) - 0.01).abs() < 1e-9);
        assert!((on.tenant_latency_percentile("bob", 50.0) - 0.03).abs() < 1e-9);
        assert_eq!(on.tenant_latency_percentile("unseen", 99.0), 0.0);
    }

    #[test]
    fn open_loop_tenant_slices_sum_to_the_totals() {
        let mut sim = Sim::new(13);
        let sink: Rc<SubmitFn> = Rc::new(|sim, _req, done| {
            sim.schedule(Duration::from_millis(20), move |sim| {
                done(sim, Ok(SoapValue::Bool(true)));
            });
        });
        let stats = Rc::new(WorkloadStats::default());
        stats.track_tenants();
        // start_open_loop builds its own stats handle, so drive the same
        // path by hand: draw → note_issued → record, as the generator does
        let mix = Mix::invoke_as(&[("app0", "user0"), ("app1", "user1")]);
        let mut rng = Rng::new(13);
        for seq in 0..40 {
            let req = mix.draw(seq, &mut rng);
            stats.issued.set(stats.issued.get() + 1);
            let tenant = stats.tenant_of(&req);
            if let Some(t) = &tenant {
                stats.note_issued(t);
            }
            let issued_at = sim.now();
            let s2 = Rc::clone(&stats);
            sink(
                &mut sim,
                req,
                Box::new(move |sim, res| s2.record(issued_at, sim.now(), &res, tenant.as_deref())),
            );
        }
        sim.run();
        let tenants = stats.tenants();
        assert_eq!(tenants, vec!["user0".to_owned(), "user1".to_owned()]);
        let (mut issued, mut completed) = (0, 0);
        for t in &tenants {
            let (i, c, f) = stats.tenant_counts(t);
            assert_eq!(f, 0);
            issued += i;
            completed += c;
        }
        assert_eq!(issued, stats.issued());
        assert_eq!(completed, stats.completed());
    }

    #[test]
    fn invoke_as_requests_carry_their_owner_as_principal() {
        let mut rng = Rng::new(7);
        let mix = Mix::invoke_as(&[("app0", "user0"), ("app1", "user1")]);
        for seq in 0..20 {
            match mix.draw(seq, &mut rng) {
                Request::Invoke {
                    service, principal, ..
                } => {
                    let expect = service.replace("app", "user");
                    assert_eq!(principal.as_deref(), Some(expect.as_str()));
                }
                Request::Upload { .. } => panic!("invoke_as never uploads"),
            }
        }
    }
}
