//! Replica lifecycle and storage topology.
//!
//! A [`Fleet`] boots N copies of the onServe virtual appliance through
//! [`vappliance::Appliance::deploy`] — so cold-start latency (image copy +
//! VM boot + service start, ~1 minute) counts against every scale-up — and
//! wires each booted replica into the shared [`Dispatcher`]. The front-end
//! UDDI registry carries one `bindingTemplate` per replica per service, the
//! classic replicated-SOA publication shape.
//!
//! The storage switch is the point of the whole exercise: §VIII-D says the
//! appliance is disk-bound, so adding replicas only helps if the executable
//! database replicates with them. [`StorageTopology::Shared`] binds every
//! replica's [`blobstore::TimedDb`] to one storage host (a NAS: all
//! database I/O serializes on its disk); [`StorageTopology::Replicated`]
//! gives each replica its own store on its own appliance disk.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

use blobstore::{BlobDb, TimedDb};
use onserve::deployment::{Deployment, DeploymentSpec};
use onserve::profile::ExecutionProfile;
use simkit::{Host, HostSpec, Link, Sim, GBIT_PER_S};
use simkit::{Duration, SpanId};
use vappliance::{Appliance, ApplianceImage, DeploySpec};
use wsstack::{BindingTemplate, SoapFault, UddiRegistry};

use crate::dispatcher::{Backend, Dispatcher, DispatcherConfig, Request, Responder};
use crate::geo::GeoPlane;

/// Where the executable database lives relative to the replicas.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StorageTopology {
    /// One storage host serves every replica's database — all blob I/O
    /// contends for a single disk (the paper's bottleneck, preserved).
    Shared,
    /// Every replica carries its own database on its own disk — storage
    /// capacity grows with the fleet.
    Replicated,
}

impl StorageTopology {
    /// Short label for tables and CSV columns.
    pub fn label(self) -> &'static str {
        match self {
            StorageTopology::Shared => "shared",
            StorageTopology::Replicated => "replicated",
        }
    }
}

/// Everything needed to boot and grow a fleet.
#[derive(Clone)]
pub struct FleetSpec {
    /// Per-replica deployment template. `appliance_name` becomes the
    /// replica name prefix (`replica0`, `replica1`, ...); the other names
    /// are suffixed per replica to keep metric prefixes unique.
    pub base: DeploymentSpec,
    /// Appliance image every replica boots from.
    pub image: ApplianceImage,
    /// Where the executable database lives.
    pub topology: StorageTopology,
    /// Hardware of the shared storage host (ignored under
    /// [`StorageTopology::Replicated`]). Defaults to a commodity box; turn
    /// the disk rates down to model the thin NAS the paper warns about.
    pub shared_storage_spec: HostSpec,
    /// Front-end routing and admission parameters.
    pub dispatcher: DispatcherConfig,
    /// Replicas to boot immediately.
    pub initial_replicas: usize,
}

impl FleetSpec {
    /// Spec with the paper's defaults around the given image: replicated
    /// storage, least-outstanding routing, one replica.
    pub fn with_image(image: ApplianceImage) -> FleetSpec {
        FleetSpec {
            base: DeploymentSpec {
                appliance_name: "replica".into(),
                ..DeploymentSpec::default()
            },
            image,
            topology: StorageTopology::Replicated,
            shared_storage_spec: HostSpec::commodity("blobstore"),
            dispatcher: DispatcherConfig::default(),
            initial_replicas: 1,
        }
    }
}

/// One catalogued executable, replayed onto every replica that boots.
#[derive(Clone)]
struct CatalogEntry {
    file_name: String,
    len: usize,
    profile: ExecutionProfile,
    /// `(grid user, passphrase)` the service runs jobs as; `None` uses
    /// the deployment's default identity. Tenants are enrolled on each
    /// replica before the upload so MyProxy can delegate for them.
    owner: Option<(String, String)>,
}

struct Replica {
    name: String,
    appliance: Rc<Appliance>,
    deployment: Option<Rc<Deployment>>,
    retired: bool,
    /// Artifact version this replica builds and serves — frozen at boot
    /// from [`Fleet::target_version`]; rollouts replace replicas rather
    /// than mutate them.
    version: u32,
    /// Shared with the [`ReplicaBackend`]; flipped by
    /// [`Fleet::crash_replica`] so late responses read as a dead peer.
    crashed: Rc<Cell<bool>>,
    /// Shared with the [`ReplicaBackend`]; a gray-failure latency
    /// multiplier set by [`Fleet::degrade_replica`] (1.0 = full speed).
    slow_factor: Rc<Cell<f64>>,
    boot_span: SpanId,
}

struct Inner {
    next_id: usize,
    replicas: Vec<Replica>,
    catalog: Vec<CatalogEntry>,
    booting: usize,
    booted: u64,
    retired: u64,
    lost: u64,
    /// Front-end UDDI key per service name.
    service_keys: BTreeMap<String, String>,
}

/// A replicated onServe installation behind one front end.
pub struct Fleet {
    base: DeploymentSpec,
    image: ApplianceImage,
    topology: StorageTopology,
    dispatcher: Rc<Dispatcher>,
    image_link: Rc<Link>,
    registry: Rc<RefCell<UddiRegistry>>,
    shared_storage: Option<Rc<Host>>,
    /// Optional geo plane ([`Fleet::attach_geo`]): replicas get placed on
    /// sites and pay WAN costs; the dispatcher stays site-blind unless the
    /// plane is *also* attached there ([`Dispatcher::set_geo`]).
    geo: RefCell<Option<Rc<GeoPlane>>>,
    /// Artifact version stamped into the *next* replica to boot. Bumped
    /// by rollout controllers; existing replicas keep the version they
    /// booted at.
    target_version: Cell<u32>,
    /// Whether per-replica `version` labels feed the health plane.
    /// Off until the first [`Fleet::set_target_version`] call so
    /// rollout-free runs keep a byte-identical Prometheus exposition.
    version_labels: Cell<bool>,
    inner: RefCell<Inner>,
}

impl Fleet {
    /// Assemble the fleet and start booting `initial_replicas` appliances.
    /// Replicas join the rotation as they finish booting and provisioning;
    /// drain the simulation (or watch [`Fleet::active_replicas`]) before
    /// offering load.
    pub fn new(sim: &mut Sim, spec: FleetSpec) -> Rc<Fleet> {
        let image_link = Link::new(
            "imgstore",
            "store",
            "vmm",
            GBIT_PER_S,
            Duration::from_millis(5),
        );
        let shared_storage = match spec.topology {
            StorageTopology::Shared => Some(Host::new(&spec.shared_storage_spec)),
            StorageTopology::Replicated => None,
        };
        let fleet = Rc::new(Fleet {
            base: spec.base,
            image: spec.image,
            topology: spec.topology,
            dispatcher: Dispatcher::new(spec.dispatcher),
            image_link,
            registry: Rc::new(RefCell::new(UddiRegistry::new())),
            shared_storage,
            geo: RefCell::new(None),
            target_version: Cell::new(1),
            version_labels: Cell::new(false),
            inner: RefCell::new(Inner {
                next_id: 0,
                replicas: Vec::new(),
                catalog: Vec::new(),
                booting: 0,
                booted: 0,
                retired: 0,
                lost: 0,
                service_keys: BTreeMap::new(),
            }),
        });
        let weak = Rc::downgrade(&fleet);
        fleet.dispatcher.set_drain_hook(move |sim, name| {
            if let Some(fleet) = weak.upgrade() {
                fleet.on_backend_drained(sim, name);
            }
        });
        let weak = Rc::downgrade(&fleet);
        fleet.dispatcher.set_upload_hook(move |sim, req| {
            if let Some(fleet) = weak.upgrade() {
                let _ = sim;
                if let Request::Upload {
                    file_name,
                    len,
                    profile,
                } = req
                {
                    fleet.catalog_service(file_name, *len, *profile, None);
                }
            }
        });
        for _ in 0..spec.initial_replicas {
            fleet.scale_up(sim);
        }
        fleet
    }

    /// The front-end router (also the workload sink).
    pub fn dispatcher(&self) -> &Rc<Dispatcher> {
        &self.dispatcher
    }

    /// Attach a geo plane: every current and future replica is placed on
    /// a site (round-robin in boot order) and pays the plane's WAN cost
    /// for cross-site answers; severed sites swallow requests and hold
    /// answers for the outage window. This alone keeps the *dispatcher*
    /// site-blind — the site-oblivious control in the geo bench. Call
    /// [`Dispatcher::set_geo`] with the same plane for latency-aware
    /// routing and federation. If a health plane is already attached its
    /// per-replica series get `site` labels; attach health first when you
    /// want labelled exposition.
    pub fn attach_geo(&self, plane: Rc<GeoPlane>) {
        let names: Vec<String> = self
            .inner
            .borrow()
            .replicas
            .iter()
            .filter(|r| !r.retired)
            .map(|r| r.name.clone())
            .collect();
        for name in names {
            let site = plane.place(&name);
            if let Some(health) = self.dispatcher.health_plane() {
                health.set_site(&name, &site);
            }
        }
        *self.geo.borrow_mut() = Some(plane);
    }

    /// The attached geo plane, if any.
    pub fn geo_plane(&self) -> Option<Rc<GeoPlane>> {
        self.geo.borrow().clone()
    }

    /// A site was just severed (chaos tier): emit telemetry and — when
    /// federation is on — park the dispatcher's in-flight watchdogs on
    /// that site past the reconnect, so work already inside the partition
    /// is waited out instead of ejected. The unreachability itself comes
    /// from the plane's outage window, which must already be registered.
    pub fn sever_site(self: &Rc<Self>, sim: &mut Sim, site: &str) {
        let Some(geo) = self.geo.borrow().clone() else {
            return;
        };
        let span = sim.span_begin("fleet.site_severed");
        sim.span_attr(span, "site", site.to_owned());
        sim.counter_add("fleet.site_severed", 1);
        if geo.federation() {
            if let Some(at) = geo.reconnect_at(site, sim.now()) {
                let parked = self.dispatcher.park_site(sim, site, at);
                sim.span_attr(span, "parked", parked as u64);
            }
        }
        sim.span_end(span);
    }

    /// A severed site reconnected: telemetry only — held answers deliver
    /// themselves ([`GeoPlane`] outage semantics) and routing readmits
    /// the site the moment its outage window closes.
    pub fn restore_site(&self, sim: &mut Sim, site: &str) {
        if self.geo.borrow().is_none() {
            return;
        }
        let span = sim.span_begin("fleet.site_restored");
        sim.span_attr(span, "site", site.to_owned());
        sim.counter_add("fleet.site_restored", 1);
        sim.span_end(span);
    }

    /// The front-end UDDI registry: one businessService per published
    /// executable, one bindingTemplate per replica currently advertising
    /// it.
    pub fn registry(&self) -> &Rc<RefCell<UddiRegistry>> {
        &self.registry
    }

    /// The chosen storage topology.
    pub fn topology(&self) -> StorageTopology {
        self.topology
    }

    /// Replicas serving traffic right now.
    pub fn active_replicas(&self) -> usize {
        self.inner
            .borrow()
            .replicas
            .iter()
            .filter(|r| r.deployment.is_some() && !r.retired)
            .count()
    }

    /// Replicas still booting or provisioning.
    pub fn booting_replicas(&self) -> usize {
        self.inner.borrow().booting
    }

    /// Capacity already paid for: active plus booting. The autoscaler
    /// sizes against this so it doesn't double-order replicas that are
    /// still in their ~1-minute boot.
    pub fn effective_replicas(&self) -> usize {
        self.active_replicas() + self.booting_replicas()
    }

    /// Replicas that ever reached the rotation.
    pub fn booted_total(&self) -> u64 {
        self.inner.borrow().booted
    }

    /// Replicas drained and destroyed (voluntary scale-down only).
    pub fn retired_total(&self) -> u64 {
        self.inner.borrow().retired
    }

    /// Replicas lost to crashes ([`Fleet::crash_replica`]) — disjoint from
    /// [`Fleet::retired_total`], so the autoscaler can tell involuntary
    /// loss from its own scale-downs.
    pub fn lost_total(&self) -> u64 {
        self.inner.borrow().lost
    }

    /// Names of the replicas serving traffic right now, in boot order.
    pub fn active_replica_names(&self) -> Vec<String> {
        self.inner
            .borrow()
            .replicas
            .iter()
            .filter(|r| r.deployment.is_some() && !r.retired)
            .map(|r| r.name.clone())
            .collect()
    }

    /// Boot one more replica; it joins the rotation after image copy, VM
    /// boot, service start and catalog provisioning. Returns the new
    /// replica's name (it builds at the current [`Fleet::target_version`]).
    pub fn scale_up(self: &Rc<Self>, sim: &mut Sim) -> String {
        let (id, name) = {
            let mut inner = self.inner.borrow_mut();
            let id = inner.next_id;
            inner.next_id += 1;
            inner.booting += 1;
            (id, format!("{}{}", self.base.appliance_name, id))
        };
        let boot_span = sim.span_begin("fleet.boot");
        sim.span_attr(boot_span, "replica", name.clone());
        let fleet = Rc::clone(self);
        let boot_name = name.clone();
        let appliance = Appliance::deploy(
            sim,
            &self.image,
            &self.image_link,
            &DeploySpec::default_for(&name),
            move |sim, app| {
                fleet.on_replica_running(sim, id, Rc::clone(app), boot_name);
            },
        );
        self.inner.borrow_mut().replicas.push(Replica {
            name: name.clone(),
            appliance,
            deployment: None,
            retired: false,
            version: self.target_version.get(),
            crashed: Rc::new(Cell::new(false)),
            slow_factor: Rc::new(Cell::new(1.0)),
            boot_span,
        });
        name
    }

    /// Version stamped into the next replica to boot.
    pub fn target_version(&self) -> u32 {
        self.target_version.get()
    }

    /// Set the version stamped into subsequently booted replicas.
    /// Replicas already booted (or booting) keep their version — a
    /// rollout upgrades by replacement, never in place. The first call
    /// turns on `version="vN"` health-plane labels, retro-tagging every
    /// active replica so the exposition shows both sides of the roll.
    pub fn set_target_version(&self, version: u32) {
        self.target_version.set(version);
        self.version_labels.set(true);
        if let Some(health) = self.dispatcher.health_plane() {
            for r in self
                .inner
                .borrow()
                .replicas
                .iter()
                .filter(|r| r.deployment.is_some() && !r.retired)
            {
                health.set_version(&r.name, &format!("v{}", r.version));
            }
        }
    }

    /// The artifact version an *active* replica serves (`None` when
    /// `name` is retired, crashed, still booting, or unknown).
    pub fn replica_version(&self, name: &str) -> Option<u32> {
        self.inner
            .borrow()
            .replicas
            .iter()
            .find(|r| r.name == name && r.deployment.is_some() && !r.retired)
            .map(|r| r.version)
    }

    /// Is `name` still booting or provisioning (ordered but not yet in
    /// rotation)? `false` once active, retired, crashed, or unknown —
    /// so a controller waiting on a boot can tell "not yet" from
    /// "never coming".
    pub fn replica_booting(&self, name: &str) -> bool {
        self.inner
            .borrow()
            .replicas
            .iter()
            .any(|r| r.name == name && r.deployment.is_none() && !r.retired)
    }

    /// Active replicas per artifact version — the rollout controller's
    /// progress gauge (a finished roll has exactly one entry).
    pub fn version_counts(&self) -> BTreeMap<u32, usize> {
        let mut counts = BTreeMap::new();
        for r in self
            .inner
            .borrow()
            .replicas
            .iter()
            .filter(|r| r.deployment.is_some() && !r.retired)
        {
            *counts.entry(r.version).or_insert(0) += 1;
        }
        counts
    }

    /// Gray-degrade an active replica: every response it produces from now
    /// on is delayed to `factor ×` its normal service latency. The replica
    /// still answers and emits no crash signal — only the health plane's
    /// latency statistics can tell. `factor` 1.0 restores full speed.
    /// Returns `false` if `name` is not an active replica.
    pub fn degrade_replica(self: &Rc<Self>, sim: &mut Sim, name: &str, factor: f64) -> bool {
        assert!(factor >= 1.0, "slow factor must be >= 1.0, got {factor}");
        {
            let inner = self.inner.borrow();
            let Some(replica) = inner
                .replicas
                .iter()
                .find(|r| r.name == name && r.deployment.is_some() && !r.retired)
            else {
                return false;
            };
            replica.slow_factor.set(factor);
        }
        let span = sim.span_begin("fleet.replica_degraded");
        sim.span_attr(span, "replica", name.to_owned());
        sim.span_attr(span, "factor", factor);
        sim.counter_add("fleet.replica_degraded", 1);
        sim.span_end(span);
        true
    }

    /// The gray-failure latency multiplier currently applied to `name`
    /// (`None` when it is not an active replica).
    pub fn replica_slow_factor(&self, name: &str) -> Option<f64> {
        self.inner
            .borrow()
            .replicas
            .iter()
            .find(|r| r.name == name && r.deployment.is_some() && !r.retired)
            .map(|r| r.slow_factor.get())
    }

    /// Kill an active replica with no drain: the VM is hard-destroyed
    /// ([`Appliance::destroy_now`]), its front-end bindings vanish, and the
    /// dispatcher ejects it — resolving every in-flight request on it as a
    /// backend loss (retried on survivors when retry is enabled). Returns
    /// `false` if `name` is not an active replica.
    pub fn crash_replica(self: &Rc<Self>, sim: &mut Sim, name: &str) -> bool {
        {
            let mut inner = self.inner.borrow_mut();
            let Some(replica) = inner
                .replicas
                .iter_mut()
                .find(|r| r.name == name && r.deployment.is_some() && !r.retired)
            else {
                return false;
            };
            replica.retired = true;
            replica.crashed.set(true);
            replica.deployment = None;
            let _ = replica.appliance.destroy_now();
            inner.lost += 1;
        }
        let span = sim.span_begin("fleet.replica_lost");
        sim.span_attr(span, "replica", name.to_owned());
        sim.counter_add("fleet.replica_lost", 1);
        self.unadvertise(name);
        self.dispatcher.eject_backend(sim, name);
        sim.span_end(span);
        true
    }

    /// Take the cheapest active replica out of rotation: the one holding
    /// the fewest affinity pins (orphaning the minimum number of
    /// sessions), breaking ties on fewest outstanding attempts, then on
    /// newest boot — so with no pins and no load the choice degrades to
    /// the classic newest-first. Stops advertising it, lets its in-flight
    /// work drain, then destroys the appliance. Refuses (returns `false`)
    /// when it would leave no capacity at all.
    pub fn scale_down(self: &Rc<Self>, sim: &mut Sim) -> bool {
        if self.active_replicas() <= 1 {
            return false;
        }
        let pin_counts = self.dispatcher.live_pin_counts();
        let name = {
            let mut inner = self.inner.borrow_mut();
            let victim_idx = inner
                .replicas
                .iter()
                .enumerate()
                .filter(|(_, r)| r.deployment.is_some() && !r.retired)
                .min_by_key(|(i, r)| {
                    let pins = pin_counts.get(&r.name).copied().unwrap_or(0);
                    let load = self.dispatcher.outstanding_on(&r.name);
                    (pins, load, std::cmp::Reverse(*i))
                })
                .map(|(i, _)| i);
            let Some(i) = victim_idx else {
                return false;
            };
            let victim = &mut inner.replicas[i];
            victim.retired = true;
            victim.name.clone()
        };
        self.unadvertise(&name);
        self.dispatcher.remove_backend(sim, &name);
        true
    }

    /// Take a *specific* active replica out of rotation with a full
    /// drain, exactly like [`Fleet::scale_down`] but by name — the
    /// rollout controller's retirement path: stop advertising, orphan
    /// its affinity pins, let in-flight work finish, then destroy the
    /// appliance. Refuses (returns `false`) when `name` is not an
    /// active replica or when retiring it would leave no capacity.
    pub fn retire_replica(self: &Rc<Self>, sim: &mut Sim, name: &str) -> bool {
        if self.active_replicas() <= 1 {
            return false;
        }
        {
            let mut inner = self.inner.borrow_mut();
            let Some(replica) = inner
                .replicas
                .iter_mut()
                .find(|r| r.name == name && r.deployment.is_some() && !r.retired)
            else {
                return false;
            };
            replica.retired = true;
        }
        self.unadvertise(name);
        self.dispatcher.remove_backend(sim, name);
        true
    }

    /// Arm (or disarm, with `None`) seeded blobstore write-fault
    /// injection on one active replica's executable database: every DB
    /// write there then flips a coin from the injector's stream and may
    /// fail, surfacing as a SOAP fault on the upload path and feeding
    /// the health plane's per-replica error series. Returns `false` if
    /// `name` is not an active replica.
    pub fn inject_write_faults(
        &self,
        name: &str,
        injector: Option<Rc<simkit::fault::FaultInjector>>,
    ) -> bool {
        let inner = self.inner.borrow();
        let Some(replica) = inner
            .replicas
            .iter()
            .find(|r| r.name == name && r.deployment.is_some() && !r.retired)
        else {
            return false;
        };
        let deployment = replica.deployment.as_ref().expect("active replica");
        deployment.onserve.db().inject_faults(injector);
        true
    }

    /// Upload `file_name` to every active replica, catalog it for future
    /// replicas, and advertise it in the front-end UDDI. `done` fires when
    /// the slowest replica finishes provisioning. (The workload path — a
    /// front-door upload through the dispatcher — lands in the same
    /// catalog via the dispatcher's upload hook.)
    pub fn publish<F>(
        self: &Rc<Self>,
        sim: &mut Sim,
        file_name: &str,
        len: usize,
        profile: ExecutionProfile,
        done: F,
    ) where
        F: FnOnce(&mut Sim) + 'static,
    {
        self.publish_as(sim, file_name, len, profile, None, done);
    }

    /// [`Fleet::publish`] with an explicit owning tenant: the service runs
    /// jobs as `owner`'s `(grid user, passphrase)`, who is enrolled on
    /// every replica (current and future) before the upload. Invocations
    /// that carry the owner as their principal then share that tenant's
    /// cached grid session wherever session affinity routes them.
    pub fn publish_as<F>(
        self: &Rc<Self>,
        sim: &mut Sim,
        file_name: &str,
        len: usize,
        profile: ExecutionProfile,
        owner: Option<(&str, &str)>,
        done: F,
    ) where
        F: FnOnce(&mut Sim) + 'static,
    {
        let owner: Option<(String, String)> =
            owner.map(|(u, p)| (u.to_owned(), p.to_owned()));
        self.catalog_service(file_name, len, profile, owner.clone());
        let targets: Vec<Rc<Deployment>> = self
            .inner
            .borrow()
            .replicas
            .iter()
            .filter(|r| !r.retired)
            .filter_map(|r| r.deployment.clone())
            .collect();
        if targets.is_empty() {
            // replicas still booting will provision from the catalog
            done(sim);
            return;
        }
        let remaining = Rc::new(std::cell::Cell::new(targets.len()));
        let done = Rc::new(RefCell::new(Some(done)));
        for d in targets {
            let req = owned_upload_request(sim, &d, file_name, len, profile, owner.as_ref());
            let remaining = Rc::clone(&remaining);
            let done = Rc::clone(&done);
            d.portal.upload(sim, req, move |sim, res| {
                debug_assert!(res.is_ok(), "catalog provisioning failed");
                let _ = res;
                remaining.set(remaining.get() - 1);
                if remaining.get() == 0 {
                    if let Some(done) = done.borrow_mut().take() {
                        done(sim);
                    }
                }
            });
        }
    }

    // -- internal -----------------------------------------------------------

    /// Record a service in the catalog and advertise active replicas for
    /// it in the front-end registry.
    fn catalog_service(
        &self,
        file_name: &str,
        len: usize,
        profile: ExecutionProfile,
        owner: Option<(String, String)>,
    ) {
        let service = service_name(file_name);
        {
            let mut inner = self.inner.borrow_mut();
            if inner.catalog.iter().any(|c| c.file_name == file_name) {
                return;
            }
            inner.catalog.push(CatalogEntry {
                file_name: file_name.to_owned(),
                len,
                profile,
                owner,
            });
        }
        let actives: Vec<String> = self
            .inner
            .borrow()
            .replicas
            .iter()
            .filter(|r| r.deployment.is_some() && !r.retired)
            .map(|r| r.name.clone())
            .collect();
        for replica in actives {
            self.advertise(&service, &replica);
        }
    }

    /// Add `replica`'s endpoint for `service` to the front-end registry,
    /// publishing the businessService on first sight.
    fn advertise(&self, service: &str, replica: &str) {
        let binding = BindingTemplate {
            access_point: access_point(replica, service),
            wsdl_location: format!("{}?wsdl", access_point(replica, service)),
        };
        let mut inner = self.inner.borrow_mut();
        let mut registry = self.registry.borrow_mut();
        match inner.service_keys.get(service) {
            Some(key) => {
                // duplicate adds are harmless (replica already advertised)
                let _ = registry.add_binding(key, binding);
            }
            None => {
                let key = registry
                    .publish(
                        "onserve-fleet",
                        service,
                        "fleet front-end endpoint",
                        binding,
                    )
                    .expect("front-end service names are unique");
                inner.service_keys.insert(service.to_owned(), key);
            }
        }
    }

    /// Remove every front-end binding pointing at `replica`.
    fn unadvertise(&self, replica: &str) {
        let inner = self.inner.borrow();
        let mut registry = self.registry.borrow_mut();
        for (service, key) in &inner.service_keys {
            // LastBinding is deliberately ignored: the final advertised
            // endpoint stays until another replica takes over.
            let _ = registry.remove_binding(key, &access_point(replica, service));
        }
    }

    /// A replica's VM reached `Running`: assemble the middleware on it,
    /// replay the catalog, then join the rotation.
    fn on_replica_running(
        self: Rc<Self>,
        sim: &mut Sim,
        id: usize,
        appliance: Rc<Appliance>,
        name: String,
    ) {
        let rspec = DeploymentSpec {
            appliance_name: name.clone(),
            client_name: format!("{name}-client"),
            lan_name: format!("{name}-lan"),
            myproxy_name: format!("{name}-myproxy"),
            myproxy_path_name: format!("{name}-mp"),
            ..self.base.clone()
        };
        let host = Rc::clone(appliance.host());
        let db_host = match &self.shared_storage {
            Some(storage) => Rc::clone(storage),
            None => Rc::clone(&host),
        };
        let db = TimedDb::new(
            Rc::new(RefCell::new(BlobDb::new())),
            db_host,
            rspec.config.write_strategy,
        );
        let d = Rc::new(Deployment::build_with_host_and_db(sim, &rspec, host, db));
        // stamp the replica's frozen version before catalog replay so
        // every service it provisions is built at that version
        let version = self
            .inner
            .borrow()
            .replicas
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.version)
            .unwrap_or(1);
        d.onserve.set_artifact_version(version);
        self.provision_next(sim, id, d, 0);
    }

    /// Replay catalog entry `idx` onto the fresh replica, then recurse;
    /// activates the replica when the catalog is exhausted. The length is
    /// re-checked each step so executables uploaded mid-boot are included.
    fn provision_next(self: Rc<Self>, sim: &mut Sim, id: usize, d: Rc<Deployment>, idx: usize) {
        let entry = {
            let inner = self.inner.borrow();
            inner.catalog.get(idx).cloned()
        };
        match entry {
            None => self.activate(sim, id, d),
            Some(entry) => {
                let req = owned_upload_request(
                    sim,
                    &d,
                    &entry.file_name,
                    entry.len,
                    entry.profile,
                    entry.owner.as_ref(),
                );
                let d2 = Rc::clone(&d);
                let fleet = self;
                d.portal.upload(sim, req, move |sim, res| {
                    debug_assert!(res.is_ok(), "catalog replay failed");
                    let _ = res;
                    fleet.provision_next(sim, id, d2, idx + 1);
                });
            }
        }
    }

    /// Put a provisioned replica into the rotation and advertise it.
    fn activate(self: Rc<Self>, sim: &mut Sim, id: usize, d: Rc<Deployment>) {
        let expected = format!("{}{}", self.base.appliance_name, id);
        let (name, services, boot_span, crashed, slow_factor, version) = {
            let mut inner = self.inner.borrow_mut();
            inner.booting -= 1;
            inner.booted += 1;
            let services: Vec<String> = inner
                .catalog
                .iter()
                .map(|c| service_name(&c.file_name))
                .collect();
            let replica = inner
                .replicas
                .iter_mut()
                .find(|r| r.name == expected)
                .expect("booting replica present");
            replica.deployment = Some(Rc::clone(&d));
            (
                replica.name.clone(),
                services,
                replica.boot_span,
                Rc::clone(&replica.crashed),
                Rc::clone(&replica.slow_factor),
                replica.version,
            )
        };
        sim.counter_add("fleet.booted", 1);
        sim.span_end(boot_span);
        for service in services {
            self.advertise(&service, &name);
        }
        if self.version_labels.get() {
            if let Some(health) = self.dispatcher.health_plane() {
                health.set_version(&name, &format!("v{version}"));
            }
        }
        let geo = self.geo.borrow().clone().map(|g| {
            // idempotent for replicas placed at attach time; a replacement
            // booted later gets the next site round-robin here
            let site = g.place(&name);
            if let Some(health) = self.dispatcher.health_plane() {
                health.set_site(&name, &site);
            }
            (g, site)
        });
        self.dispatcher.add_backend(Rc::new(ReplicaBackend {
            name,
            deployment: d,
            version,
            crashed,
            slow_factor,
            geo,
        }));
    }

    /// A drained replica's last request finished: tear the VM down.
    fn on_backend_drained(&self, sim: &mut Sim, name: &str) {
        let mut inner = self.inner.borrow_mut();
        if let Some(replica) = inner.replicas.iter_mut().find(|r| r.name == name) {
            let _ = replica.appliance.destroy();
            replica.deployment = None;
            inner.retired += 1;
            drop(inner);
            sim.counter_add("fleet.retired", 1);
        }
    }
}

/// Build an [`onserve::portal::UploadRequest`] against `d`, running as
/// `owner` when given (enrolling the tenant first — enrolment is
/// idempotent) or as the deployment's default grid identity.
fn owned_upload_request(
    sim: &Sim,
    d: &Rc<Deployment>,
    file_name: &str,
    len: usize,
    profile: ExecutionProfile,
    owner: Option<&(String, String)>,
) -> onserve::portal::UploadRequest {
    let mut req = d.upload_request(file_name, len, profile, &[]);
    if let Some((user, pass)) = owner {
        d.enroll_tenant(sim, user, pass, None);
        req.grid_user = user.clone();
        req.grid_passphrase = pass.clone();
    }
    req
}

/// The service name onServe derives from an executable's file name.
fn service_name(file_name: &str) -> String {
    file_name
        .strip_suffix(".exe")
        .unwrap_or(file_name)
        .to_owned()
}

/// The endpoint a replica serves a generated service at.
fn access_point(replica: &str, service: &str) -> String {
    format!("http://{replica}:8080/axis2/services/{service}")
}

/// Bits of a fleet-served answer digest that carry the payload digest;
/// the top byte carries the serving replica's artifact version.
const ANSWER_DIGEST_MASK: u64 = 0x00ff_ffff_ffff_ffff;

/// The artifact version a fleet-served invoke answer was tagged with by
/// its [`ReplicaBackend`] (`None` for non-binary answers or answers
/// that never passed through a fleet replica). The core digest is an
/// invocation counter nowhere near 2^56, so the top byte is free.
pub fn answer_version(value: &wsstack::SoapValue) -> Option<u32> {
    match value {
        wsstack::SoapValue::Binary { digest, .. } => {
            let v = (digest >> 56) as u32;
            (v != 0).then_some(v)
        }
        _ => None,
    }
}

/// [`Backend`] adapter over one replica's full onServe deployment.
struct ReplicaBackend {
    name: String,
    deployment: Rc<Deployment>,
    /// Artifact version stamped into the top byte of every binary
    /// answer digest (see [`answer_version`]).
    version: u32,
    crashed: Rc<Cell<bool>>,
    slow_factor: Rc<Cell<f64>>,
    /// Set when the owning fleet carries a geo plane: which site this
    /// replica lives on. Requests then pay the WAN round trip back to
    /// their origin, and a severed site swallows requests / holds
    /// answers for its outage window.
    geo: Option<(Rc<GeoPlane>, String)>,
}

impl ReplicaBackend {
    /// Wrap `done` so a gray-degraded replica ([`Fleet::degrade_replica`])
    /// stretches the request's service time to `factor ×` normal: the real
    /// work completes as usual, then the response is held for the extra
    /// `(factor − 1) × elapsed`. At factor 1.0 (the default) the responder
    /// is invoked directly — no event is scheduled, so healthy runs are
    /// bit-for-bit unchanged.
    fn stretch(&self, start: simkit::SimTime, done: Responder) -> Responder {
        let factor = Rc::clone(&self.slow_factor);
        Box::new(move |sim: &mut Sim, res| {
            let f = factor.get();
            if f > 1.0 {
                let elapsed = sim.now() - start;
                let extra = Duration::from_secs_f64(elapsed.as_secs_f64() * (f - 1.0));
                if !extra.is_zero() {
                    sim.schedule(extra, move |sim| done(sim, res));
                    return;
                }
            }
            done(sim, res);
        })
    }

    /// Wrap `done` with the geo plane's delivery semantics. When the
    /// answer is ready: if the replica's site is severed *at that moment*
    /// the answer is held at the site and pulled back on reconnect
    /// (HTCondor-C result pull — this covers outages that begin after the
    /// request was accepted); then the WAN round trip back to the
    /// request's origin site is charged. Intra-site delivery adds zero
    /// delay and schedules no event, so a single-site fleet is
    /// bit-for-bit unchanged.
    fn geo_deliver(geo: Rc<GeoPlane>, site: String, origin: String, done: Responder) -> Responder {
        Box::new(move |sim: &mut Sim, res| {
            let mut delay = Duration::ZERO;
            if let Some(at) = geo.reconnect_at(&site, sim.now()) {
                delay += at - sim.now();
                geo.note_result_pulled();
                sim.counter_add("geo.result_pulled", 1);
            }
            delay += geo.round_trip(&origin, &site);
            if delay.is_zero() {
                done(sim, res);
            } else {
                sim.schedule(delay, move |sim| done(sim, res));
            }
        })
    }
}

impl Backend for ReplicaBackend {
    fn name(&self) -> &str {
        &self.name
    }

    fn healthy(&self) -> bool {
        !self.crashed.get()
    }

    fn serve(&self, sim: &mut Sim, req: Request, done: Responder) {
        if self.crashed.get() {
            // connection refused: the VM behind this endpoint is gone
            let name = self.name.clone();
            done(
                sim,
                Err(SoapFault::server(&format!("replica {name} unreachable"))),
            );
            return;
        }
        let done = match &self.geo {
            Some((geo, site)) => {
                if geo.is_down(site, sim.now()) {
                    // the partition swallows the request whole: no refusal,
                    // no answer — only the front door's watchdog can tell
                    geo.note_blackholed();
                    sim.counter_add("geo.blackholed", 1);
                    return;
                }
                // ambient origin of the request being dispatched right now
                Self::geo_deliver(Rc::clone(geo), site.clone(), geo.origin(), done)
            }
            None => done,
        };
        let done = self.stretch(sim.now(), done);
        match req {
            Request::Invoke { service, args, .. } => {
                let refs: Vec<(&str, wsstack::SoapValue)> =
                    args.iter().map(|(n, v)| (n.as_str(), v.clone())).collect();
                let version = self.version;
                let done: Responder = Box::new(move |sim: &mut Sim, res| {
                    let res = res.map(|v| match v {
                        wsstack::SoapValue::Binary { bytes, digest } => {
                            wsstack::SoapValue::Binary {
                                bytes,
                                digest: (digest & ANSWER_DIGEST_MASK)
                                    | (u64::from(version) & 0xff) << 56,
                            }
                        }
                        other => other,
                    });
                    done(sim, res)
                });
                self.deployment.invoke(sim, &service, &refs, done);
            }
            Request::Upload {
                file_name,
                len,
                profile,
            } => {
                let req = self.deployment.upload_request(&file_name, len, profile, &[]);
                self.deployment.portal.upload(sim, req, move |sim, res| {
                    done(
                        sim,
                        res.map(|_| wsstack::SoapValue::Bool(true))
                            .map_err(|e| SoapFault::server(&format!("upload: {e}"))),
                    );
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use std::cell::Cell;

    use super::*;

    fn image() -> ApplianceImage {
        ApplianceImage {
            name: "onserve".into(),
            bytes: 600.0 * simkit::MB,
            boot_services: vec!["mysqld".into(), "tomcat".into(), "juddi".into()],
            recipe_fingerprint: 1,
        }
    }

    fn spec(topology: StorageTopology, replicas: usize) -> FleetSpec {
        let mut spec = FleetSpec::with_image(image());
        spec.topology = topology;
        spec.initial_replicas = replicas;
        spec
    }

    fn invoke(service: &str) -> Request {
        Request::Invoke {
            service: service.into(),
            args: Vec::new(),
            principal: None,
        }
    }

    #[test]
    fn boots_replicas_provisions_and_serves_through_the_front_end() {
        let mut sim = Sim::new(11);
        let fleet = Fleet::new(&mut sim, spec(StorageTopology::Replicated, 2));
        assert_eq!(fleet.active_replicas(), 0);
        assert_eq!(fleet.booting_replicas(), 2);
        sim.run();
        assert_eq!(fleet.active_replicas(), 2);
        assert_eq!(fleet.booted_total(), 2);

        let published = Rc::new(Cell::new(false));
        let p = Rc::clone(&published);
        fleet.publish(
            &mut sim,
            "app.exe",
            4 * 1024 * 1024,
            ExecutionProfile::quick(),
            move |_| p.set(true),
        );
        sim.run();
        assert!(published.get());
        // one businessService, one bindingTemplate per replica
        let services: Vec<wsstack::BusinessService> = fleet
            .registry()
            .borrow_mut()
            .find("app")
            .into_iter()
            .cloned()
            .collect();
        assert_eq!(services.len(), 1);
        assert_eq!(services[0].bindings.len(), 2);

        let ok = Rc::new(Cell::new(false));
        let ok2 = Rc::clone(&ok);
        fleet.dispatcher().clone().submit(
            &mut sim,
            invoke("app"),
            Box::new(move |_, res| ok2.set(res.is_ok())),
        );
        sim.run();
        assert!(ok.get());
        let c = fleet.dispatcher().counters();
        assert_eq!((c.accepted, c.completed, c.faulted), (1, 1, 0));
    }

    #[test]
    fn front_door_upload_is_replayed_onto_later_replicas() {
        let mut sim = Sim::new(12);
        let fleet = Fleet::new(&mut sim, spec(StorageTopology::Replicated, 1));
        sim.run();
        // upload through the dispatcher, like the workload generator does
        fleet.dispatcher().clone().submit(
            &mut sim,
            Request::Upload {
                file_name: "tool.exe".into(),
                len: 2 * 1024 * 1024,
                profile: ExecutionProfile::quick(),
            },
            Box::new(|_, res| assert!(res.is_ok())),
        );
        sim.run();
        fleet.scale_up(&mut sim);
        sim.run();
        assert_eq!(fleet.active_replicas(), 2);
        // the late replica replayed the catalog and advertises the service
        let registry = fleet.registry();
        let mut registry = registry.borrow_mut();
        let services = registry.find("tool");
        assert_eq!(services.len(), 1);
        assert_eq!(services[0].bindings.len(), 2);
    }

    #[test]
    fn scale_down_victim_is_the_least_pinned_replica_not_the_newest() {
        let mut sim = Sim::new(14);
        let mut s = spec(StorageTopology::Replicated, 3);
        s.dispatcher.policy = crate::dispatcher::Policy::RoundRobin;
        s.dispatcher.affinity = Some(crate::dispatcher::AffinityConfig::default());
        let fleet = Fleet::new(&mut sim, s);
        sim.run();
        fleet.publish(
            &mut sim,
            "app.exe",
            1024,
            ExecutionProfile::quick(),
            |_| {},
        );
        sim.run();
        let names = fleet.active_replica_names();
        assert_eq!(names.len(), 3);
        // an unpinned request advances round-robin past the oldest
        // replica, then two principals pin themselves to the other two —
        // leaving the OLDEST replica pin-free
        fleet
            .dispatcher()
            .clone()
            .submit(&mut sim, invoke("app"), Box::new(|_, r| assert!(r.is_ok())));
        for principal in ["alice", "bob"] {
            let req = Request::Invoke {
                service: "app".into(),
                args: Vec::new(),
                principal: Some(principal.into()),
            };
            fleet
                .dispatcher()
                .clone()
                .submit(&mut sim, req, Box::new(|_, r| assert!(r.is_ok())));
        }
        sim.run();
        let pins = fleet.dispatcher().live_pin_counts();
        assert_eq!(pins[&names[0]], 0);
        assert_eq!(pins[&names[1]], 1);
        assert_eq!(pins[&names[2]], 1);
        assert!(fleet.scale_down(&mut sim));
        sim.run();
        let survivors = fleet.active_replica_names();
        assert_eq!(
            survivors,
            vec![names[1].clone(), names[2].clone()],
            "the pin-free oldest replica retires, not the newest"
        );
    }

    #[test]
    fn scale_down_drains_in_flight_work_then_destroys() {
        let mut sim = Sim::new(13);
        let fleet = Fleet::new(&mut sim, spec(StorageTopology::Replicated, 2));
        sim.run();
        fleet.publish(
            &mut sim,
            "slow.exe",
            1024 * 1024,
            ExecutionProfile::quick().lasting(Duration::from_secs(30)),
            |_| {},
        );
        sim.run();
        // occupy both replicas so the retiring one has in-flight work
        let done = Rc::new(Cell::new(0u32));
        for _ in 0..2 {
            let done = Rc::clone(&done);
            fleet.dispatcher().clone().submit(
                &mut sim,
                invoke("slow"),
                Box::new(move |_, res| {
                    assert!(res.is_ok());
                    done.set(done.get() + 1);
                }),
            );
        }
        assert!(fleet.scale_down(&mut sim));
        // out of rotation immediately, but not destroyed until drained
        assert_eq!(fleet.active_replicas(), 1);
        assert_eq!(fleet.retired_total(), 0);
        sim.run();
        assert_eq!(done.get(), 2, "draining replica finished its request");
        assert_eq!(fleet.retired_total(), 1);
        // the last replica can never be retired
        assert!(!fleet.scale_down(&mut sim));
        assert_eq!(fleet.active_replicas(), 1);
    }

    #[test]
    fn crash_mid_request_retries_on_the_survivor() {
        let mut sim = Sim::new(15);
        let fleet = Fleet::new(&mut sim, spec(StorageTopology::Replicated, 2));
        sim.run();
        fleet.publish(
            &mut sim,
            "slow.exe",
            1024 * 1024,
            ExecutionProfile::quick().lasting(Duration::from_secs(60)),
            |_| {},
        );
        sim.run();
        // one long request per replica, then kill one replica mid-flight
        let ok = Rc::new(Cell::new(0u32));
        for _ in 0..2 {
            let ok = Rc::clone(&ok);
            fleet.dispatcher().clone().submit(
                &mut sim,
                invoke("slow"),
                Box::new(move |_, res| {
                    assert!(res.is_ok(), "request survived the crash: {res:?}");
                    ok.set(ok.get() + 1);
                }),
            );
        }
        let fleet2 = Rc::clone(&fleet);
        sim.schedule(Duration::from_secs(5), move |sim| {
            let victim = fleet2.active_replica_names()[0].clone();
            assert!(fleet2.crash_replica(sim, &victim));
            assert!(
                !fleet2.crash_replica(sim, &victim),
                "double-kill is refused"
            );
        });
        sim.run();
        assert_eq!(ok.get(), 2, "both requests completed despite the crash");
        assert_eq!(fleet.active_replicas(), 1);
        assert_eq!(fleet.lost_total(), 1);
        assert_eq!(fleet.retired_total(), 0);
        let c = fleet.dispatcher().counters();
        assert_eq!((c.accepted, c.completed, c.faulted), (2, 2, 0));
        assert_eq!(c.retried, 1);
        assert_eq!(c.ejected, 1);
        // the dead replica's front-end bindings are gone
        let registry = fleet.registry();
        let mut registry = registry.borrow_mut();
        assert_eq!(registry.find("slow")[0].bindings.len(), 1);
    }

    #[test]
    fn shared_topology_charges_all_database_io_to_one_host() {
        let run = |topology| {
            let mut sim = Sim::new(14);
            let fleet = Fleet::new(&mut sim, spec(topology, 2));
            sim.run();
            fleet.publish(
                &mut sim,
                "app.exe",
                8 * 1024 * 1024,
                ExecutionProfile::quick(),
                |_| {},
            );
            sim.run();
            for _ in 0..4 {
                fleet
                    .dispatcher()
                    .clone()
                    .submit(&mut sim, invoke("app"), Box::new(|_, res| assert!(res.is_ok())));
            }
            sim.run();
            let r = sim.recorder_ref();
            r.total("blobstore.disk.read.busy") + r.total("blobstore.disk.write.busy")
        };
        assert!(run(StorageTopology::Shared) > 0.0);
        assert_eq!(run(StorageTopology::Replicated), 0.0);
    }
}
