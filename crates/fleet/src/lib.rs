#![warn(missing_docs)]

//! # onserve-fleet — scale-out for the onServe appliance
//!
//! The paper's §VIII-D concludes a single appliance is limited by disk or
//! network I/O, never CPU, and points at the remedy without building it:
//! the appliance is *virtual*, so deploy more of them. This crate is that
//! missing tier, built entirely on the deterministic `simkit` clock:
//!
//! * [`workload`] — seeded open-loop arrival processes (Poisson, bursty
//!   on/off, diurnal) and a closed-loop user population with think times,
//!   emitting mixed upload/invoke traffic.
//! * [`dispatcher`] — the front end: owns the published UDDI binding,
//!   admits requests under a bounded in-flight limit (shedding overload as
//!   a SOAP fault) and routes to replicas under round-robin,
//!   least-outstanding or utilization-weighted policies.
//! * [`fleet`] — replica lifecycle over `vappliance` (boot latency counts)
//!   with the storage topology switch §VIII-D demands: one shared
//!   blobstore host vs a replicated per-appliance store.
//! * [`autoscaler`] — a sampling control loop with cooldown and
//!   boot-latency awareness that never scales below one replica, and
//!   replaces crash-lost capacity outside the cooldown.
//! * [`chaos`] — materializes a `simkit` fault plan's crash and
//!   slow-replica schedules against the fleet: seeded, replayable kills
//!   (no drain) and silent latency degradations.
//! * [`health`] — the observability plane: windowed per-replica and
//!   per-tenant series fed from the dispatcher with zero effect on the
//!   event schedule, a peer-relative gray-failure detector
//!   (probation-weighted routing, then ejection), and Prometheus-text /
//!   time-series-CSV export.
//! * [`geo`] — the geography plane: multi-site replica placement over
//!   modelled WAN links, nearest-site routing with cross-site spill,
//!   whole-site outage windows with held-and-pulled answers, and
//!   HTCondor-C-style federation that forwards pinned work away from a
//!   severed site without losing it.
//!
//! ## Quick start
//!
//! ```
//! use fleet::{Fleet, FleetSpec, StorageTopology};
//! use simkit::{Sim, MB};
//! use vappliance::ApplianceImage;
//!
//! let mut sim = Sim::new(7);
//! let image = ApplianceImage {
//!     name: "onserve".into(),
//!     bytes: 600.0 * MB,
//!     boot_services: vec!["mysqld".into(), "tomcat".into(), "juddi".into()],
//!     recipe_fingerprint: 1,
//! };
//! let mut spec = FleetSpec::with_image(image);
//! spec.initial_replicas = 2;
//! spec.topology = StorageTopology::Replicated;
//! let fleet = Fleet::new(&mut sim, spec);
//! sim.run(); // boot both appliances (~1 virtual minute)
//! assert_eq!(fleet.active_replicas(), 2);
//! ```

pub mod autoscaler;
pub mod chaos;
pub mod dispatcher;
pub mod fleet;
pub mod geo;
pub mod health;
pub mod rollout;
pub mod workload;

pub use autoscaler::{Autoscaler, AutoscalerConfig, ScaleAction, ScaleDecision};
pub use chaos::ChaosMonkey;
pub use dispatcher::{
    AffinityConfig, Backend, DispatchCounters, Dispatcher, DispatcherConfig, Policy, QosConfig,
    QosTier, Request, Responder, RetryConfig, TenantQos,
};
pub use fleet::{answer_version, Fleet, FleetSpec, StorageTopology};
pub use geo::{GeoCounters, GeoPlane, SiteMap, WanLink};
pub use health::{
    DetectorAction, DetectorEvent, GrayFailureDetector, HealthConfig, HealthPlane, ReplicaHealth,
};
pub use rollout::{
    CanaryConfig, RetireEvent, RolloutConfig, RolloutController, RolloutOutcome, RolloutStrategy,
};
pub use workload::{
    start_closed_loop, start_open_loop, ArrivalProcess, Arrivals, Mix, ServiceTarget, SubmitFn,
    WorkloadStats,
};
