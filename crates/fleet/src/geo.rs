//! The geo plane: multi-site placement, WAN cost model, site outages and
//! HTCondor-C-style federation accounting.
//!
//! The paper's TeraGrid was eleven centres behind wide-area links, yet the
//! fleet has always booted every replica "in one room". A [`SiteMap`]
//! names the sites and the modelled WAN path between each pair (latency +
//! bandwidth, built from [`gridsim::SiteSpec`]s via
//! [`gridsim::wan_between`] or declared by hand); a [`GeoPlane`] then
//! carries everything the fleet tier needs to be geography-aware:
//!
//! * **placement** — replicas are assigned to sites round-robin in boot
//!   order ([`GeoPlane::place`]), so placement is a pure function of the
//!   boot sequence and replays byte-identically;
//! * **WAN cost** — answers delivered across sites pay a full round trip
//!   plus a payload transfer on the pair's path
//!   ([`GeoPlane::round_trip`]), with optional seeded link faults
//!   (drop → retransmit, exponential jitter) drawn from an attached
//!   [`FaultInjector`]. Intra-site hops are free and schedule no event,
//!   so a single-site fleet with a plane attached is bit-for-bit
//!   identical to one without;
//! * **outage windows** — a severed site ([`GeoPlane::add_outage`]) is
//!   *silent*, not connection-refused: requests sent into the partition
//!   vanish (only the dispatcher's watchdog can tell), and answers
//!   produced behind it are held at the site and pulled back on
//!   reconnect — which is exactly what lets federation lose nothing;
//! * **federation** — with [`GeoPlane::set_federation`] on, the
//!   dispatcher forwards work pinned to an unreachable site to the
//!   nearest healthy peer (pin preserved, so the principal comes home
//!   after reconnect) and parks in-flight watchdogs across the window.
//!
//! The plane itself schedules nothing and draws randomness only through
//! the injector on cross-site hops; every decision is a deterministic
//! function of (map, boot order, outage schedule, virtual time).

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

use gridsim::{wan_between, SiteSpec};
use simkit::fault::FaultInjector;
use simkit::{Duration, SimTime};

/// One modelled WAN path between a pair of sites.
#[derive(Clone, Copy, Debug)]
pub struct WanLink {
    /// One-way latency.
    pub latency: Duration,
    /// Path bandwidth, bytes/s.
    pub bandwidth_bps: f64,
}

/// Named sites and the WAN link between each pair.
///
/// Pairs are symmetric; a site paired with itself is a free local hop.
#[derive(Clone, Debug, Default)]
pub struct SiteMap {
    sites: Vec<String>,
    links: BTreeMap<(String, String), WanLink>,
}

/// Symmetric pair key.
fn pair(a: &str, b: &str) -> (String, String) {
    if a <= b {
        (a.to_owned(), b.to_owned())
    } else {
        (b.to_owned(), a.to_owned())
    }
}

impl SiteMap {
    /// An empty map; add sites with [`SiteMap::add_site`] +
    /// [`SiteMap::link`].
    pub fn new() -> SiteMap {
        SiteMap::default()
    }

    /// Build from gridsim site specs: every pair gets the
    /// [`wan_between`] path (latencies sum through the access layer,
    /// bandwidth is the min of the two access links).
    pub fn from_specs(specs: &[SiteSpec]) -> SiteMap {
        let mut map = SiteMap::new();
        for s in specs {
            map.add_site(&s.name);
        }
        for a in specs {
            for b in specs {
                if a.name < b.name {
                    let (latency, bandwidth_bps) = wan_between(a, b);
                    map.link(&a.name, &b.name, latency, bandwidth_bps);
                }
            }
        }
        map
    }

    /// Declare a site (declaration order is placement order).
    pub fn add_site(&mut self, name: &str) {
        assert!(
            !self.sites.iter().any(|s| s == name),
            "site {name:?} declared twice"
        );
        self.sites.push(name.to_owned());
    }

    /// Declare the WAN path between two distinct sites.
    pub fn link(&mut self, a: &str, b: &str, latency: Duration, bandwidth_bps: f64) {
        assert_ne!(a, b, "a site needs no link to itself");
        assert!(bandwidth_bps > 0.0, "WAN bandwidth must be positive");
        self.links.insert(
            pair(a, b),
            WanLink {
                latency,
                bandwidth_bps,
            },
        );
    }

    /// Declared sites, in declaration order.
    pub fn sites(&self) -> &[String] {
        &self.sites
    }

    /// The WAN path between `a` and `b`. A site paired with itself is a
    /// free infinite-bandwidth local hop; an undeclared pair panics
    /// (misconfigured map).
    pub fn path(&self, a: &str, b: &str) -> WanLink {
        if a == b {
            return WanLink {
                latency: Duration::ZERO,
                bandwidth_bps: f64::INFINITY,
            };
        }
        *self
            .links
            .get(&pair(a, b))
            .unwrap_or_else(|| panic!("no WAN link declared between {a:?} and {b:?}"))
    }

    /// Sites ordered by one-way latency from `origin`, nearest first
    /// (`origin` itself leads with zero); ties break on name so the
    /// order is deterministic.
    pub fn nearest_order(&self, origin: &str) -> Vec<String> {
        let mut v: Vec<(Duration, String)> = self
            .sites
            .iter()
            .map(|s| (self.path(origin, s).latency, s.clone()))
            .collect();
        v.sort();
        v.into_iter().map(|(_, s)| s).collect()
    }

    /// The follow-the-sun origin: which site the load peak sits over at
    /// `elapsed` into a rotation of length `period`. Each site leads for
    /// `period / n`, in declaration order, wrapping every period.
    pub fn sun_origin(&self, elapsed: Duration, period: Duration) -> &str {
        assert!(!self.sites.is_empty(), "sun needs at least one site");
        let n = self.sites.len();
        let phase = elapsed.as_secs_f64() / period.as_secs_f64();
        let idx = (phase * n as f64).floor() as usize % n;
        &self.sites[idx]
    }
}

/// Running totals of geo-plane activity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GeoCounters {
    /// Pinned attempts forwarded to a peer site while the pinned site
    /// was severed (federation).
    pub forwards: u64,
    /// Answers produced behind a partition, held at the site, and pulled
    /// back on reconnect.
    pub results_pulled: u64,
    /// Cross-site answer deliveries (WAN round trips paid).
    pub wan_hops: u64,
    /// Requests that vanished into a severed site (no answer until the
    /// watchdog tells).
    pub blackholed: u64,
}

/// The fleet tier's geography: site map, replica placement, outage
/// schedule, ambient request origin, and federation switches. Attach to a
/// [`crate::Fleet`] with [`crate::Fleet::attach_geo`] (WAN costs +
/// placement) and to the [`crate::Dispatcher`] with
/// [`crate::Dispatcher::set_geo`] (latency-aware routing).
pub struct GeoPlane {
    map: SiteMap,
    /// Replica → site, filled by [`GeoPlane::place`] /
    /// [`GeoPlane::assign`].
    placement: RefCell<BTreeMap<String, String>>,
    /// Round-robin placement cursor.
    cursor: Cell<usize>,
    /// Outage windows: `(site, from, to)`.
    outages: RefCell<Vec<(String, SimTime, SimTime)>>,
    /// Ambient origin site of the *next* submitted request (set by the
    /// workload, read by the WAN cost model and nearest-site routing).
    origin: RefCell<String>,
    /// Bytes charged against the path bandwidth per cross-site answer.
    payload_bytes: Cell<f64>,
    /// Outstanding attempts per replica at which nearest-site routing
    /// spills to the next site out.
    spill_threshold: Cell<usize>,
    federation: Cell<bool>,
    injector: RefCell<Option<Rc<FaultInjector>>>,
    forwards: Cell<u64>,
    results_pulled: Cell<u64>,
    wan_hops: Cell<u64>,
    blackholed: Cell<u64>,
}

impl GeoPlane {
    /// New plane over `map`; the ambient origin starts at the first
    /// declared site.
    pub fn new(map: SiteMap) -> Rc<GeoPlane> {
        assert!(!map.sites().is_empty(), "a geo plane needs sites");
        let origin = map.sites()[0].clone();
        Rc::new(GeoPlane {
            map,
            placement: RefCell::new(BTreeMap::new()),
            cursor: Cell::new(0),
            outages: RefCell::new(Vec::new()),
            origin: RefCell::new(origin),
            payload_bytes: Cell::new(2048.0),
            spill_threshold: Cell::new(4),
            federation: Cell::new(false),
            injector: RefCell::new(None),
            forwards: Cell::new(0),
            results_pulled: Cell::new(0),
            wan_hops: Cell::new(0),
            blackholed: Cell::new(0),
        })
    }

    /// The site map.
    pub fn map(&self) -> &SiteMap {
        &self.map
    }

    /// Forward work away from severed sites and park in-flight watchdogs
    /// across outages (HTCondor-C-style disconnect resilience). Off by
    /// default: a site-oblivious fleet pays the outage in timeouts.
    pub fn set_federation(&self, on: bool) {
        self.federation.set(on);
    }

    /// Whether federation is on.
    pub fn federation(&self) -> bool {
        self.federation.get()
    }

    /// Bytes charged against the path bandwidth per cross-site answer
    /// delivery (request + response payload).
    pub fn set_payload_bytes(&self, bytes: f64) {
        assert!(bytes >= 0.0);
        self.payload_bytes.set(bytes);
    }

    /// Outstanding-attempt depth at which nearest-site routing spills to
    /// the next-nearest site.
    pub fn set_spill_threshold(&self, depth: usize) {
        assert!(depth > 0, "a zero spill threshold would never route home");
        self.spill_threshold.set(depth);
    }

    /// The current spill threshold.
    pub fn spill_threshold(&self) -> usize {
        self.spill_threshold.get()
    }

    /// Seeded draw source for cross-site link faults (drop → retransmit,
    /// exponential extra delay), from a [`simkit::fault::FaultPlan`]'s
    /// injector. `None` (the default) models clean links.
    pub fn set_injector(&self, injector: Rc<FaultInjector>) {
        *self.injector.borrow_mut() = Some(injector);
    }

    /// Place `replica` on the next site round-robin and return the site.
    /// Already-placed replicas keep their site.
    pub fn place(&self, replica: &str) -> String {
        if let Some(site) = self.placement.borrow().get(replica) {
            return site.clone();
        }
        let sites = self.map.sites();
        let site = sites[self.cursor.get() % sites.len()].clone();
        self.cursor.set(self.cursor.get() + 1);
        self.placement
            .borrow_mut()
            .insert(replica.to_owned(), site.clone());
        site
    }

    /// Pin `replica` to an explicit site (tests, hand-built layouts).
    pub fn assign(&self, replica: &str, site: &str) {
        assert!(
            self.map.sites().iter().any(|s| s == site),
            "unknown site {site:?}"
        );
        self.placement
            .borrow_mut()
            .insert(replica.to_owned(), site.to_owned());
    }

    /// The site `replica` lives on, if placed. Placements survive the
    /// replica's loss — an orphaned affinity pin still knows its home.
    pub fn site_of(&self, replica: &str) -> Option<String> {
        self.placement.borrow().get(replica).cloned()
    }

    /// Set the ambient origin site of subsequently submitted requests.
    pub fn set_origin(&self, site: &str) {
        assert!(
            self.map.sites().iter().any(|s| s == site),
            "unknown origin site {site:?}"
        );
        *self.origin.borrow_mut() = site.to_owned();
    }

    /// The ambient request origin.
    pub fn origin(&self) -> String {
        self.origin.borrow().clone()
    }

    /// Register one outage window: `site` is severed over `[from, to)`.
    pub fn add_outage(&self, site: &str, from: SimTime, to: SimTime) {
        assert!(
            self.map.sites().iter().any(|s| s == site),
            "unknown site {site:?}"
        );
        assert!(from < to, "outage window must have positive length");
        self.outages
            .borrow_mut()
            .push((site.to_owned(), from, to));
    }

    /// Is `site` severed at `now`?
    pub fn is_down(&self, site: &str, now: SimTime) -> bool {
        self.outages
            .borrow()
            .iter()
            .any(|(s, from, to)| s == site && *from <= now && now < *to)
    }

    /// When `site` reconnects, if it is severed at `now` (the latest end
    /// over every active window).
    pub fn reconnect_at(&self, site: &str, now: SimTime) -> Option<SimTime> {
        self.outages
            .borrow()
            .iter()
            .filter(|(s, from, to)| s == site && *from <= now && now < *to)
            .map(|&(_, _, to)| to)
            .max()
    }

    /// The WAN cost of delivering one answer from `site` back to `from`:
    /// a full round trip plus the payload transfer, plus any injected
    /// link faults (a dropped pass costs a retransmit timeout; jitter
    /// adds exponential delay). Intra-site delivery is free and draws
    /// nothing.
    pub fn round_trip(&self, from: &str, to: &str) -> Duration {
        if from == to {
            return Duration::ZERO;
        }
        let link = self.map.path(from, to);
        self.wan_hops.set(self.wan_hops.get() + 1);
        let mut d = link.latency
            + link.latency
            + Duration::from_secs_f64(self.payload_bytes.get() / link.bandwidth_bps);
        if let Some(inj) = self.injector.borrow().as_ref() {
            if inj.drop_transfer() {
                d += inj.config().link_retransmit;
            }
            d += inj.extra_delay();
        }
        d
    }

    /// Note one federation forward (dispatcher bookkeeping).
    pub fn note_forward(&self) {
        self.forwards.set(self.forwards.get() + 1);
    }

    /// Note one answer held behind a partition and pulled on reconnect.
    pub fn note_result_pulled(&self) {
        self.results_pulled.set(self.results_pulled.get() + 1);
    }

    /// Note one request swallowed by a severed site.
    pub fn note_blackholed(&self) {
        self.blackholed.set(self.blackholed.get() + 1);
    }

    /// Totals so far.
    pub fn counters(&self) -> GeoCounters {
        GeoCounters {
            forwards: self.forwards.get(),
            results_pulled: self.results_pulled.get(),
            wan_hops: self.wan_hops.get(),
            blackholed: self.blackholed.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::KB;

    fn three_sites() -> SiteMap {
        let mut east = SiteSpec::teragrid_like("east", 2, 4);
        east.wan_latency = Duration::from_millis(30);
        east.wan_bandwidth_bps = 100.0 * KB;
        let mut central = SiteSpec::teragrid_like("central", 2, 4);
        central.wan_latency = Duration::from_millis(40);
        central.wan_bandwidth_bps = 85.0 * KB;
        let mut west = SiteSpec::teragrid_like("west", 2, 4);
        west.wan_latency = Duration::from_millis(55);
        west.wan_bandwidth_bps = 70.0 * KB;
        SiteMap::from_specs(&[east, central, west])
    }

    #[test]
    fn from_specs_builds_every_pair() {
        let map = three_sites();
        assert_eq!(map.sites(), &["east", "central", "west"]);
        let ec = map.path("east", "central");
        assert_eq!(ec.latency, Duration::from_millis(70));
        assert_eq!(ec.bandwidth_bps, 85.0 * KB);
        let ew = map.path("west", "east");
        assert_eq!(ew.latency, Duration::from_millis(85));
        assert_eq!(ew.bandwidth_bps, 70.0 * KB);
        // self-pair is free
        assert!(map.path("east", "east").latency.is_zero());
    }

    #[test]
    fn nearest_order_is_latency_sorted_and_deterministic() {
        let map = three_sites();
        assert_eq!(map.nearest_order("east"), vec!["east", "central", "west"]);
        // west: east (85ms) beats central (95ms) — pairwise sums, not hops
        assert_eq!(map.nearest_order("west"), vec!["west", "east", "central"]);
        // central: east (70ms) beats west (95ms)
        assert_eq!(map.nearest_order("central"), vec!["central", "east", "west"]);
    }

    #[test]
    fn sun_origin_rotates_across_sites_and_wraps() {
        let map = three_sites();
        let period = Duration::from_secs(900);
        assert_eq!(map.sun_origin(Duration::ZERO, period), "east");
        assert_eq!(map.sun_origin(Duration::from_secs(300), period), "central");
        assert_eq!(map.sun_origin(Duration::from_secs(600), period), "west");
        assert_eq!(map.sun_origin(Duration::from_secs(900), period), "east");
        assert_eq!(map.sun_origin(Duration::from_secs(1200), period), "central");
    }

    #[test]
    fn placement_is_round_robin_in_boot_order() {
        let geo = GeoPlane::new(three_sites());
        assert_eq!(geo.place("replica0"), "east");
        assert_eq!(geo.place("replica1"), "central");
        assert_eq!(geo.place("replica2"), "west");
        assert_eq!(geo.place("replica3"), "east");
        // re-placing is idempotent and does not advance the cursor
        assert_eq!(geo.place("replica1"), "central");
        assert_eq!(geo.place("replica4"), "central");
        assert_eq!(geo.site_of("replica0").as_deref(), Some("east"));
        assert_eq!(geo.site_of("ghost"), None);
    }

    #[test]
    fn outage_windows_answer_is_down_and_reconnect() {
        let geo = GeoPlane::new(three_sites());
        let t = SimTime::from_secs;
        geo.add_outage("west", t(100), t(200));
        geo.add_outage("west", t(150), t(260));
        assert!(!geo.is_down("west", t(99)));
        assert!(geo.is_down("west", t(100)));
        assert!(geo.is_down("west", t(199)));
        assert!(geo.is_down("west", t(230)), "overlapping window extends");
        assert!(!geo.is_down("west", t(260)), "end is exclusive");
        assert!(!geo.is_down("east", t(150)), "other sites unaffected");
        assert_eq!(geo.reconnect_at("west", t(120)), Some(t(200)));
        assert_eq!(
            geo.reconnect_at("west", t(160)),
            Some(t(260)),
            "latest end over active windows"
        );
        assert_eq!(geo.reconnect_at("west", t(300)), None);
    }

    #[test]
    fn round_trip_charges_latency_and_payload_and_is_free_at_home() {
        let geo = GeoPlane::new(three_sites());
        geo.set_payload_bytes(85.0 * KB); // one second at the e-c path rate
        assert!(geo.round_trip("east", "east").is_zero());
        assert_eq!(geo.counters().wan_hops, 0, "local hops are not WAN hops");
        let d = geo.round_trip("east", "central");
        // 2 × 70 ms + 1 s payload
        assert!((d.as_secs_f64() - 1.14).abs() < 1e-9, "{d:?}");
        assert_eq!(geo.counters().wan_hops, 1);
    }

    #[test]
    fn injected_link_faults_are_seeded_and_replayable() {
        let run = || {
            let geo = GeoPlane::new(three_sites());
            let plan = simkit::fault::FaultPlan::new(9)
                .link_drop(0.5)
                .link_extra_delay(Duration::from_millis(100));
            geo.set_injector(plan.injector());
            let v: Vec<f64> = (0..20)
                .map(|_| geo.round_trip("east", "west").as_secs_f64())
                .collect();
            v
        };
        let (a, b) = (run(), run());
        assert_eq!(a, b, "same plan, same WAN draws");
        let base = 2.0 * 0.085 + 2048.0 / (70.0 * KB);
        assert!(a.iter().all(|&d| d > base - 1e-9));
        assert!(
            a.iter().any(|&d| d > base + 0.9),
            "half the passes should eat the 1 s retransmit"
        );
    }
}
