//! Chaos driver: materialize a [`FaultPlan`]'s crash schedule against a
//! live fleet.
//!
//! [`ChaosMonkey::unleash`] walks [`FaultPlan::crash_times`] and schedules
//! one strike per entry on the virtual clock. Each strike picks a victim
//! uniformly among the replicas active *at strike time* — drawn from a
//! dedicated RNG derived from the plan seed, so the whole kill sequence is
//! a pure function of `(plan, workload)` and replays byte-identically.
//! Strikes that find no active replica (the fleet is already dark, or
//! still booting replacements) are counted as skipped rather than
//! deferred, mirroring real chaos tooling that fires on wall-clock
//! schedules regardless of fleet state.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use simkit::fault::FaultPlan;
use simkit::{Rng, Sim};

use crate::fleet::Fleet;

/// Salt for the victim-selection RNG stream (distinct from the plan's
/// schedule and injector streams).
const VICTIM_SALT: u64 = 0x7669_6374_696d; // "victim"

/// Salt for the slow-strike victim stream. Separate from [`VICTIM_SALT`]
/// so adding gray failures to a plan leaves its crash-victim sequence —
/// and every existing chaos golden — untouched.
const SLOW_SALT: u64 = 0x736c_6f77; // "slow"

/// Salt for the site-outage victim stream, separate again so site strikes
/// never perturb the crash or slow sequences.
const SITE_SALT: u64 = 0x7369_7465; // "site"

/// Salt for the write-fault victim stream. Drawn only when the plan has
/// `write_fail_p > 0`, so plans without storage faults — every existing
/// golden — keep their exact victim sequences.
const WRITE_SALT: u64 = 0x0077_7269_7465; // "write"

/// Scheduled replica killer; create with [`ChaosMonkey::unleash`].
pub struct ChaosMonkey {
    rng: RefCell<Rng>,
    slow_rng: RefCell<Rng>,
    scheduled: usize,
    landed: Cell<u64>,
    skipped: Cell<u64>,
    slowed: Cell<u64>,
    site_outages: Cell<u64>,
    write_faulted: RefCell<Option<String>>,
}

impl ChaosMonkey {
    /// Schedule every crash and gray-failure event in `plan` against
    /// `fleet`, offset from the current virtual time. Returns a handle for
    /// post-run accounting.
    pub fn unleash(sim: &mut Sim, fleet: &Rc<Fleet>, plan: &FaultPlan) -> Rc<ChaosMonkey> {
        let times = plan.crash_times();
        let slows = plan.slow_times();
        let monkey = Rc::new(ChaosMonkey {
            rng: RefCell::new(plan.derived_rng(VICTIM_SALT)),
            slow_rng: RefCell::new(plan.derived_rng(SLOW_SALT)),
            scheduled: times.len(),
            landed: Cell::new(0),
            skipped: Cell::new(0),
            slowed: Cell::new(0),
            site_outages: Cell::new(0),
            write_faulted: RefCell::new(None),
        });
        for t in times {
            let fleet = Rc::clone(fleet);
            let monkey2 = Rc::clone(&monkey);
            sim.schedule(t, move |sim| monkey2.strike(sim, &fleet));
        }
        for (t, factor) in slows {
            let fleet = Rc::clone(fleet);
            let monkey2 = Rc::clone(&monkey);
            sim.schedule(t, move |sim| monkey2.slow_strike(sim, &fleet, factor));
        }
        // Site outages resolve their victim *now*, not at strike time: the
        // outage window must be on the geo plane before the strike fires so
        // routing, blackholing and answer-holding all read one schedule. A
        // fleet with no geo plane has no sites to sever — those strikes
        // count as skipped, like crashes against a dark fleet.
        let site_rng = RefCell::new(plan.derived_rng(SITE_SALT));
        for (offset, duration) in plan.site_down_times() {
            let Some(geo) = fleet.geo_plane() else {
                monkey.skipped.set(monkey.skipped.get() + 1);
                continue;
            };
            let sites = geo.map().sites();
            let site = sites[site_rng.borrow_mut().below(sites.len() as u64) as usize].clone();
            let from = sim.now() + offset;
            let to = from + duration;
            geo.add_outage(&site, from, to);
            monkey.site_outages.set(monkey.site_outages.get() + 1);
            let fleet2 = Rc::clone(fleet);
            let sever_site = site.clone();
            sim.schedule(offset, move |sim| {
                sim.counter_add("chaos.site_severed", 1);
                fleet2.sever_site(sim, &sever_site);
            });
            let fleet2 = Rc::clone(fleet);
            sim.schedule(offset + duration, move |sim| {
                fleet2.restore_site(sim, &site);
            });
        }
        // Blobstore write faults land on ONE replica's database — a bad
        // disk, not a bad fleet — chosen now among the active replicas
        // (seeded, own salt so fault-free plans are unperturbed). Each
        // failed write surfaces as a SOAP fault on the upload path and
        // feeds the health plane's per-replica error series.
        if plan.config.write_fail_p > 0.0 {
            let names = fleet.active_replica_names();
            if names.is_empty() {
                monkey.skipped.set(monkey.skipped.get() + 1);
            } else {
                let mut write_rng = plan.derived_rng(WRITE_SALT);
                let victim = names[write_rng.below(names.len() as u64) as usize].clone();
                if fleet.inject_write_faults(&victim, Some(plan.injector())) {
                    sim.counter_add("chaos.write_faulted", 1);
                    *monkey.write_faulted.borrow_mut() = Some(victim);
                } else {
                    monkey.skipped.set(monkey.skipped.get() + 1);
                }
            }
        }
        monkey
    }

    /// The replica whose blobstore got the plan's write faults, if any.
    pub fn write_faulted(&self) -> Option<String> {
        self.write_faulted.borrow().clone()
    }

    /// Crashes on the plan's schedule.
    pub fn scheduled(&self) -> usize {
        self.scheduled
    }

    /// Strikes that killed a replica.
    pub fn landed(&self) -> u64 {
        self.landed.get()
    }

    /// Strikes that found no active replica to kill.
    pub fn skipped(&self) -> u64 {
        self.skipped.get()
    }

    /// Gray-failure strikes that degraded a replica.
    pub fn slowed(&self) -> u64 {
        self.slowed.get()
    }

    /// Site outage windows registered against the fleet's geo plane.
    pub fn site_outages(&self) -> u64 {
        self.site_outages.get()
    }

    fn strike(&self, sim: &mut Sim, fleet: &Rc<Fleet>) {
        let names = fleet.active_replica_names();
        if names.is_empty() {
            self.skipped.set(self.skipped.get() + 1);
            sim.counter_add("chaos.skipped", 1);
            return;
        }
        let idx = self.rng.borrow_mut().below(names.len() as u64) as usize;
        if fleet.crash_replica(sim, &names[idx]) {
            self.landed.set(self.landed.get() + 1);
            sim.counter_add("chaos.landed", 1);
        } else {
            self.skipped.set(self.skipped.get() + 1);
            sim.counter_add("chaos.skipped", 1);
        }
    }

    fn slow_strike(&self, sim: &mut Sim, fleet: &Rc<Fleet>, factor: f64) {
        let names = fleet.active_replica_names();
        if names.is_empty() {
            self.skipped.set(self.skipped.get() + 1);
            sim.counter_add("chaos.skipped", 1);
            return;
        }
        let idx = self.slow_rng.borrow_mut().below(names.len() as u64) as usize;
        if fleet.degrade_replica(sim, &names[idx], factor) {
            self.slowed.set(self.slowed.get() + 1);
            sim.counter_add("chaos.slowed", 1);
        } else {
            self.skipped.set(self.skipped.get() + 1);
            sim.counter_add("chaos.skipped", 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::{FleetSpec, StorageTopology};
    use simkit::Duration;
    use vappliance::ApplianceImage;

    fn fleet_of(sim: &mut Sim, replicas: usize) -> Rc<Fleet> {
        let image = ApplianceImage {
            name: "onserve".into(),
            bytes: 600.0 * simkit::MB,
            boot_services: vec!["mysqld".into(), "tomcat".into(), "juddi".into()],
            recipe_fingerprint: 1,
        };
        let mut spec = FleetSpec::with_image(image);
        spec.topology = StorageTopology::Replicated;
        spec.initial_replicas = replicas;
        Fleet::new(sim, spec)
    }

    #[test]
    fn strikes_land_on_active_replicas_and_replay_per_seed() {
        let run = |seed| {
            let mut sim = Sim::new(41);
            let fleet = fleet_of(&mut sim, 3);
            sim.run(); // boot everyone before the monkey wakes up
            let plan = FaultPlan::new(seed)
                .crash_at(Duration::from_secs(10))
                .crash_at(Duration::from_secs(20));
            let monkey = ChaosMonkey::unleash(&mut sim, &fleet, &plan);
            sim.run();
            assert_eq!(monkey.scheduled(), 2);
            assert_eq!(monkey.landed(), 2);
            assert_eq!(monkey.skipped(), 0);
            assert_eq!(fleet.lost_total(), 2);
            assert_eq!(fleet.active_replicas(), 1);
            fleet.active_replica_names()
        };
        assert_eq!(run(7), run(7), "victim sequence replays from the seed");
    }

    #[test]
    fn slow_strikes_degrade_without_killing() {
        let mut sim = Sim::new(43);
        let fleet = fleet_of(&mut sim, 2);
        sim.run();
        let plan = FaultPlan::new(11).slow_at(Duration::from_secs(10), 10.0);
        let monkey = ChaosMonkey::unleash(&mut sim, &fleet, &plan);
        sim.run();
        assert_eq!(monkey.slowed(), 1);
        assert_eq!(monkey.landed(), 0);
        assert_eq!(fleet.active_replicas(), 2, "gray failure kills nobody");
        let degraded: Vec<String> = fleet
            .active_replica_names()
            .into_iter()
            .filter(|n| fleet.replica_slow_factor(n) == Some(10.0))
            .collect();
        assert_eq!(degraded.len(), 1, "exactly one victim runs slow");
    }

    #[test]
    fn site_strikes_register_outage_windows_on_the_geo_plane() {
        let run = || {
            let mut sim = Sim::new(47);
            let fleet = fleet_of(&mut sim, 3);
            sim.run();
            let mut map = crate::geo::SiteMap::new();
            map.add_site("east");
            map.add_site("west");
            map.link("east", "west", Duration::from_millis(60), 1e6);
            fleet.attach_geo(crate::geo::GeoPlane::new(map));
            let plan = FaultPlan::new(13)
                .site_down(Duration::from_secs(30), Duration::from_secs(120));
            let monkey = ChaosMonkey::unleash(&mut sim, &fleet, &plan);
            assert_eq!(monkey.site_outages(), 1);
            let geo = fleet.geo_plane().unwrap();
            let mid = sim.now() + Duration::from_secs(60); // inside [30, 150)
            let down = |s: &str| geo.is_down(s, mid);
            let victim = ["east", "west"].iter().find(|s| down(s)).copied();
            assert!(victim.is_some(), "one site must be severed mid-window");
            sim.run();
            assert_eq!(
                fleet.active_replicas(),
                3,
                "a site outage kills no replica"
            );
            victim.map(str::to_owned)
        };
        assert_eq!(run(), run(), "victim site replays from the seed");
    }

    #[test]
    fn site_strikes_without_a_geo_plane_are_skipped() {
        let mut sim = Sim::new(48);
        let fleet = fleet_of(&mut sim, 2);
        sim.run();
        let plan = FaultPlan::new(5).site_down(Duration::from_secs(10), Duration::from_secs(10));
        let monkey = ChaosMonkey::unleash(&mut sim, &fleet, &plan);
        sim.run();
        assert_eq!(monkey.site_outages(), 0);
        assert_eq!(monkey.skipped(), 1);
    }

    #[test]
    fn write_faults_arm_exactly_one_replica_and_replay_per_seed() {
        let run = |seed| {
            let mut sim = Sim::new(44);
            let fleet = fleet_of(&mut sim, 3);
            sim.run();
            let plan = FaultPlan::new(seed).write_fail(1.0);
            let monkey = ChaosMonkey::unleash(&mut sim, &fleet, &plan);
            sim.run();
            let victim = monkey.write_faulted().expect("one replica armed");
            assert!(
                fleet.active_replica_names().contains(&victim),
                "the armed replica is active (arming is not a kill)"
            );
            assert_eq!(monkey.landed(), 0);
            assert_eq!(monkey.skipped(), 0);
            victim
        };
        assert_eq!(run(9), run(9), "victim replays from the seed");
    }

    #[test]
    fn write_fault_strikes_against_a_dark_fleet_are_skipped() {
        let mut sim = Sim::new(45);
        let fleet = fleet_of(&mut sim, 1);
        sim.run();
        let kill = fleet.active_replica_names()[0].clone();
        assert!(fleet.crash_replica(&mut sim, &kill));
        let plan = FaultPlan::new(6).write_fail(0.5);
        let monkey = ChaosMonkey::unleash(&mut sim, &fleet, &plan);
        sim.run();
        assert_eq!(monkey.write_faulted(), None);
        assert_eq!(monkey.skipped(), 1);
    }

    #[test]
    fn strikes_against_a_dark_fleet_are_skipped() {
        let mut sim = Sim::new(42);
        let fleet = fleet_of(&mut sim, 1);
        sim.run();
        let plan = FaultPlan::new(3)
            .crash_at(Duration::from_secs(5))
            .crash_at(Duration::from_secs(6));
        let monkey = ChaosMonkey::unleash(&mut sim, &fleet, &plan);
        sim.run();
        assert_eq!(monkey.landed(), 1, "only one replica existed to kill");
        assert_eq!(monkey.skipped(), 1);
        assert_eq!(fleet.active_replicas(), 0);
    }
}
