//! The control loop: sample load on the virtual clock, scale with
//! cooldown and boot-latency awareness.
//!
//! The signal is in-flight requests per *effective* replica — active plus
//! still-booting — so a scale-up that is still paying its ~1-minute
//! appliance boot is not re-ordered every tick. A cooldown between actions
//! damps oscillation on top of that. The loop never drops the fleet below
//! one replica, no matter how the thresholds are configured.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use simkit::{Duration, Sim, SimTime};

use crate::fleet::Fleet;

/// Control-loop parameters.
#[derive(Clone, Copy, Debug)]
pub struct AutoscalerConfig {
    /// Sampling period.
    pub interval: Duration,
    /// Minimum gap between two scale actions. Should exceed the appliance
    /// boot time, or the loop will order capacity it cannot see yet.
    pub cooldown: Duration,
    /// Scale up when in-flight per effective replica exceeds this.
    pub scale_up_load: f64,
    /// Scale down when in-flight per effective replica falls below this.
    pub scale_down_load: f64,
    /// Floor (clamped to at least 1).
    pub min_replicas: usize,
    /// Ceiling.
    pub max_replicas: usize,
    /// Also scale up when the health plane's windowed fleet p99 (seconds)
    /// exceeds this, and never scale down while it does. Needs a
    /// [`crate::health::HealthPlane`] attached to the dispatcher; without
    /// one (or with `None`, the default) the controller stays purely
    /// in-flight-driven.
    pub scale_up_p99: Option<f64>,
    /// Also scale up when dispatcher queued depth (attempts outstanding,
    /// queued + serving) per effective replica exceeds this, and never
    /// scale down while it does. `None` (the default) disables the signal.
    pub scale_up_queue: Option<f64>,
}

impl Default for AutoscalerConfig {
    fn default() -> Self {
        AutoscalerConfig {
            interval: Duration::from_secs(15),
            cooldown: Duration::from_secs(90),
            scale_up_load: 8.0,
            scale_down_load: 1.0,
            min_replicas: 1,
            max_replicas: 8,
            scale_up_p99: None,
            scale_up_queue: None,
        }
    }
}

/// One recorded decision, for tests and reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScaleDecision {
    /// Ordered one more replica.
    Up,
    /// Started draining one replica.
    Down,
    /// Re-ordered capacity lost to a crash. Unlike [`ScaleDecision::Up`]
    /// this bypasses the cooldown: replacing involuntary loss is not an
    /// oscillation risk, it restores the size the loop already chose.
    Replace,
    /// Thresholds not crossed.
    Hold,
    /// Threshold crossed but inside the cooldown window.
    Cooldown,
}

/// A timestamped decision.
#[derive(Clone, Copy, Debug)]
pub struct ScaleAction {
    /// When the decision was taken.
    pub at: SimTime,
    /// What was decided.
    pub decision: ScaleDecision,
    /// Effective replicas at decision time (before the action).
    pub effective: usize,
    /// The load signal at decision time.
    pub load: f64,
}

/// The periodic controller; create with [`Autoscaler::install`].
pub struct Autoscaler {
    fleet: Rc<Fleet>,
    cfg: AutoscalerConfig,
    last_action: Cell<Option<SimTime>>,
    /// Crash losses already replaced, vs [`Fleet::lost_total`].
    seen_lost: Cell<u64>,
    actions: RefCell<Vec<ScaleAction>>,
    stopped: Cell<bool>,
}

impl Autoscaler {
    /// Start ticking every `cfg.interval` until `until` (virtual time).
    pub fn install(
        sim: &mut Sim,
        fleet: &Rc<Fleet>,
        cfg: AutoscalerConfig,
        until: SimTime,
    ) -> Rc<Autoscaler> {
        let scaler = Rc::new(Autoscaler {
            fleet: Rc::clone(fleet),
            cfg,
            last_action: Cell::new(None),
            seen_lost: Cell::new(0),
            actions: RefCell::new(Vec::new()),
            stopped: Cell::new(false),
        });
        Autoscaler::arm(sim, Rc::clone(&scaler), until);
        scaler
    }

    /// Stop the loop (takes effect at the next tick).
    pub fn stop(&self) {
        self.stopped.set(true);
    }

    /// Every decision taken so far, in order.
    pub fn actions(&self) -> Vec<ScaleAction> {
        self.actions.borrow().clone()
    }

    fn arm(sim: &mut Sim, scaler: Rc<Autoscaler>, until: SimTime) {
        if sim.now() + scaler.cfg.interval > until {
            return;
        }
        let interval = scaler.cfg.interval;
        sim.schedule(interval, move |sim| {
            if scaler.stopped.get() {
                return;
            }
            scaler.tick(sim);
            Autoscaler::arm(sim, Rc::clone(&scaler), until);
        });
    }

    fn tick(self: &Rc<Self>, sim: &mut Sim) {
        let span = sim.span_begin("autoscaler.decide");
        let effective = self.fleet.effective_replicas();
        let in_flight = self.fleet.dispatcher().in_flight();
        let load = in_flight as f64 / effective.max(1) as f64;
        sim.span_attr(span, "in_flight", in_flight as u64);
        sim.span_attr(span, "effective_replicas", effective as u64);
        sim.span_attr(span, "load", load);
        let min = self.cfg.min_replicas.max(1);
        let in_cooldown = self
            .last_action
            .get()
            .is_some_and(|t| sim.now() < t + self.cfg.cooldown);
        let lost = self.fleet.lost_total();
        let newly_lost = lost.saturating_sub(self.seen_lost.get());
        self.seen_lost.set(lost);
        // richer signals: windowed fleet p99 from the health plane and
        // dispatcher queue depth — only consulted when configured, so the
        // default controller decides exactly as it always has
        let p99_hot = self.cfg.scale_up_p99.is_some_and(|threshold| {
            let p99 = self
                .fleet
                .dispatcher()
                .health_plane()
                .and_then(|plane| plane.fleet_p99(sim.now()));
            if let Some(p) = p99 {
                sim.span_attr(span, "fleet_p99_s", p);
            }
            p99.is_some_and(|p| p > threshold)
        });
        let queue_hot = self.cfg.scale_up_queue.is_some_and(|threshold| {
            let per = self.fleet.dispatcher().queued_depth() as f64 / effective.max(1) as f64;
            sim.span_attr(span, "queue_per_replica", per);
            per > threshold
        });
        let wants_up = (load > self.cfg.scale_up_load || p99_hot || queue_hot)
            && effective < self.cfg.max_replicas;
        let wants_down =
            load < self.cfg.scale_down_load && effective > min && !p99_hot && !queue_hot;
        let decision = if newly_lost > 0 && effective < self.cfg.max_replicas {
            // crash-loss replacement: retired_total (voluntary drains)
            // never lands here, only lost_total deltas do
            let replacements = (newly_lost as usize).min(self.cfg.max_replicas - effective);
            sim.span_attr(span, "replacing", replacements as u64);
            for _ in 0..replacements {
                self.fleet.scale_up(sim);
            }
            sim.counter_add("autoscaler.replace", replacements as u64);
            ScaleDecision::Replace
        } else if (wants_up || wants_down) && in_cooldown {
            ScaleDecision::Cooldown
        } else if wants_up {
            self.fleet.scale_up(sim);
            self.last_action.set(Some(sim.now()));
            sim.counter_add("autoscaler.scale_up", 1);
            ScaleDecision::Up
        } else if wants_down {
            if self.fleet.scale_down(sim) {
                self.last_action.set(Some(sim.now()));
                sim.counter_add("autoscaler.scale_down", 1);
                ScaleDecision::Down
            } else {
                ScaleDecision::Hold
            }
        } else {
            ScaleDecision::Hold
        };
        sim.span_attr(
            span,
            "decision",
            match decision {
                ScaleDecision::Up => "up",
                ScaleDecision::Down => "down",
                ScaleDecision::Replace => "replace",
                ScaleDecision::Hold => "hold",
                ScaleDecision::Cooldown => "cooldown",
            },
        );
        sim.span_end(span);
        self.actions.borrow_mut().push(ScaleAction {
            at: sim.now(),
            decision,
            effective,
            load,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatcher::Request;
    use crate::fleet::{FleetSpec, StorageTopology};
    use onserve::profile::ExecutionProfile;
    use vappliance::ApplianceImage;

    fn fleet_of(sim: &mut Sim, replicas: usize) -> Rc<Fleet> {
        let image = ApplianceImage {
            name: "onserve".into(),
            bytes: 600.0 * simkit::MB,
            boot_services: vec!["mysqld".into(), "tomcat".into(), "juddi".into()],
            recipe_fingerprint: 1,
        };
        let mut spec = FleetSpec::with_image(image);
        spec.topology = StorageTopology::Replicated;
        spec.initial_replicas = replicas;
        Fleet::new(sim, spec)
    }

    #[test]
    fn never_scales_below_one_replica() {
        let mut sim = Sim::new(21);
        let fleet = fleet_of(&mut sim, 2);
        sim.run();
        // idle fleet, aggressive scale-down, no cooldown, min_replicas=0
        // (which the controller must clamp to 1)
        let until = sim.now() + Duration::from_secs(900);
        let scaler = Autoscaler::install(
            &mut sim,
            &fleet,
            AutoscalerConfig {
                interval: Duration::from_secs(15),
                cooldown: Duration::from_secs(0),
                scale_down_load: 0.5,
                min_replicas: 0,
                ..AutoscalerConfig::default()
            },
            until,
        );
        sim.run();
        assert_eq!(fleet.active_replicas(), 1);
        let downs = scaler
            .actions()
            .iter()
            .filter(|a| a.decision == ScaleDecision::Down)
            .count();
        assert_eq!(downs, 1, "exactly one replica may be retired");
    }

    #[test]
    fn cooldown_spaces_scale_actions() {
        let mut sim = Sim::new(22);
        let fleet = fleet_of(&mut sim, 1);
        sim.run();
        fleet.publish(
            &mut sim,
            "slow.exe",
            1024 * 1024,
            ExecutionProfile::quick().lasting(Duration::from_secs(3600)),
            |_| {},
        );
        sim.run();
        // pin 40 requests in flight for the whole test: load stays >> 8
        for _ in 0..40 {
            fleet.dispatcher().clone().submit(
                &mut sim,
                Request::Invoke {
                    service: "slow".into(),
                    args: Vec::new(),
                    principal: None,
                },
                Box::new(|_, _| {}),
            );
        }
        let cooldown = Duration::from_secs(90);
        let until = sim.now() + Duration::from_secs(400);
        let scaler = Autoscaler::install(
            &mut sim,
            &fleet,
            AutoscalerConfig {
                cooldown,
                ..AutoscalerConfig::default()
            },
            until,
        );
        sim.run_until(until + Duration::from_secs(1));
        let actions = scaler.actions();
        let ups: Vec<SimTime> = actions
            .iter()
            .filter(|a| a.decision == ScaleDecision::Up)
            .map(|a| a.at)
            .collect();
        assert!(ups.len() >= 2, "sustained overload keeps ordering capacity");
        for pair in ups.windows(2) {
            assert!(pair[1] - pair[0] >= cooldown, "actions violate cooldown");
        }
        assert!(
            actions
                .iter()
                .any(|a| a.decision == ScaleDecision::Cooldown),
            "overload inside the window is deferred, not acted on"
        );
    }

    #[test]
    fn crash_loss_is_replaced_inside_the_cooldown_window() {
        let mut sim = Sim::new(23);
        let fleet = fleet_of(&mut sim, 2);
        sim.run();
        fleet.publish(
            &mut sim,
            "slow.exe",
            1024 * 1024,
            ExecutionProfile::quick().lasting(Duration::from_secs(3600)),
            |_| {},
        );
        sim.run();
        // sustained overload: the first tick scales up and arms a long
        // cooldown
        for _ in 0..40 {
            fleet.dispatcher().clone().submit(
                &mut sim,
                Request::Invoke {
                    service: "slow".into(),
                    args: Vec::new(),
                    principal: None,
                },
                Box::new(|_, _| {}),
            );
        }
        let cooldown = Duration::from_secs(600);
        let until = sim.now() + Duration::from_secs(300);
        let scaler = Autoscaler::install(
            &mut sim,
            &fleet,
            AutoscalerConfig {
                cooldown,
                ..AutoscalerConfig::default()
            },
            until,
        );
        // a replica dies well inside the cooldown armed by the scale-up
        let fleet2 = Rc::clone(&fleet);
        sim.schedule(Duration::from_secs(60), move |sim| {
            let victim = fleet2.active_replica_names()[0].clone();
            assert!(fleet2.crash_replica(sim, &victim));
        });
        sim.run();
        let actions = scaler.actions();
        let up_at = actions
            .iter()
            .find(|a| a.decision == ScaleDecision::Up)
            .expect("overload ordered capacity")
            .at;
        let replace_at = actions
            .iter()
            .find(|a| a.decision == ScaleDecision::Replace)
            .expect("the crash was replaced")
            .at;
        assert!(
            replace_at - up_at < cooldown,
            "replacement did not wait out the cooldown"
        );
        assert_eq!(fleet.lost_total(), 1);
        assert_eq!(fleet.retired_total(), 0, "a crash is not a drain");
        // initial 2 + load-driven up + crash replacement
        assert_eq!(fleet.booted_total(), 4);
    }

    #[test]
    fn windowed_p99_signal_scales_up_and_vetoes_scale_down() {
        use crate::health::{HealthConfig, HealthPlane};

        let mut sim = Sim::new(24);
        let fleet = fleet_of(&mut sim, 2);
        sim.run();
        // an idle fleet (load 0) whose windowed tail is terrible: only the
        // p99 signal can explain any scale-up, and the aggressive
        // scale-down threshold would retire a replica without the veto
        let plane = HealthPlane::new(HealthConfig {
            window: Duration::from_secs(60),
            ring: 64,
            lookback: Duration::from_secs(3600),
            ..HealthConfig::default()
        });
        fleet.dispatcher().set_health_plane(Rc::clone(&plane));
        for i in 0..20 {
            plane.record_attempt(sim.now(), "replica0", Duration::from_secs(5 + i % 3), false);
        }
        let until = sim.now() + Duration::from_secs(300);
        let scaler = Autoscaler::install(
            &mut sim,
            &fleet,
            AutoscalerConfig {
                cooldown: Duration::from_secs(0),
                scale_down_load: 5.0,
                scale_up_p99: Some(1.0),
                min_replicas: 1,
                max_replicas: 3,
                ..AutoscalerConfig::default()
            },
            until,
        );
        sim.run();
        let actions = scaler.actions();
        assert!(
            actions.iter().any(|a| a.decision == ScaleDecision::Up),
            "hot windowed p99 must order capacity: {actions:?}"
        );
        assert!(
            actions.iter().all(|a| a.decision != ScaleDecision::Down),
            "a hot tail vetoes scale-down even at zero load: {actions:?}"
        );
        assert_eq!(fleet.active_replicas(), 3, "scaled to the ceiling");
    }

    #[test]
    fn queue_depth_signal_scales_up_below_the_load_threshold() {
        let mut sim = Sim::new(25);
        let fleet = fleet_of(&mut sim, 1);
        sim.run();
        fleet.publish(
            &mut sim,
            "slow.exe",
            1024 * 1024,
            ExecutionProfile::quick().lasting(Duration::from_secs(3600)),
            |_| {},
        );
        sim.run();
        // 4 outstanding on one replica: load 4 stays under the default
        // scale_up_load of 8, so only the queue signal can trigger
        for _ in 0..4 {
            fleet.dispatcher().clone().submit(
                &mut sim,
                Request::Invoke {
                    service: "slow".into(),
                    args: Vec::new(),
                    principal: None,
                },
                Box::new(|_, _| {}),
            );
        }
        let until = sim.now() + Duration::from_secs(300);
        let scaler = Autoscaler::install(
            &mut sim,
            &fleet,
            AutoscalerConfig {
                cooldown: Duration::from_secs(0),
                scale_up_queue: Some(2.0),
                max_replicas: 4,
                ..AutoscalerConfig::default()
            },
            until,
        );
        sim.run_until(until + Duration::from_secs(1));
        let ups = scaler
            .actions()
            .iter()
            .filter(|a| a.decision == ScaleDecision::Up)
            .count();
        assert!(ups >= 1, "queued depth must order capacity");
        // 4 queued over 2 replicas = 2.0, not > 2.0: the signal settles
        assert_eq!(fleet.active_replicas(), 2, "stops once per-replica depth clears");
    }
}
