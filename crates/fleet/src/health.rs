//! The fleet health plane: windowed metrics and gray-failure detection.
//!
//! A [`HealthPlane`] is a pure measurement facade over a
//! [`simkit::WindowedRegistry`]: the dispatcher feeds it one latency/error
//! sample per answered (or lost) attempt, a queue-depth sample per routed
//! attempt, and an in-flight/tenant sample per admitted request. Recording
//! is arithmetic only — no events, no randomness — so attaching a plane
//! leaves every run bit-for-bit identical.
//!
//! On top of it, [`GrayFailureDetector`] closes the loop on the failure
//! mode crashes cannot express: a replica that still answers, but slowly.
//! Each tick it scores every active replica *relative to its peers* — a
//! replica whose windowed p99 or error rate sustains ≥ k× the fleet median
//! accumulates strikes; at `probation_strikes` it is probation-weighted in
//! the dispatcher (probe traffic only), and at `eject_strikes` it is
//! ejected exactly like a crash, which lets the autoscaler's replace path
//! restore the capacity. A replica that returns to the pack has its
//! strikes cleared and its probation lifted.
//!
//! Peer-relative scoring is what makes the detector workload-proof: a
//! fleet-wide slowdown (overload, shared-storage contention) moves the
//! median with it and flags nobody; only an *outlier* is a gray failure.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

use simkit::{Duration, Sim, SimTime, WindowedRegistry};

use crate::fleet::Fleet;

/// Health-plane windowing and detector thresholds.
#[derive(Clone, Copy, Debug)]
pub struct HealthConfig {
    /// Width of one aggregation window.
    pub window: Duration,
    /// Windows retained per series; `window × ring` is the plane's memory.
    pub ring: usize,
    /// How far back detector queries look (should span several windows).
    pub lookback: Duration,
    /// Detector tick period.
    pub interval: Duration,
    /// A replica is a latency outlier when its windowed p99 is at least
    /// this many times the fleet median p99.
    pub latency_factor: f64,
    /// A replica is an error outlier when its windowed error rate is at
    /// least this many times the fleet median error rate…
    pub error_factor: f64,
    /// …and at least this absolute rate (so a lone error in a quiet
    /// window cannot flag anyone).
    pub error_floor: f64,
    /// Replicas with fewer samples than this in the lookback are not
    /// scored (freshly booted, or starved of traffic).
    pub min_samples: u64,
    /// Consecutive outlier ticks before probation-weighting.
    pub probation_strikes: u32,
    /// Consecutive outlier ticks before ejection (must exceed
    /// `probation_strikes`; probation is the intermediate state).
    pub eject_strikes: u32,
    /// Distinct per-tenant request series kept before further tenants
    /// fold into the `tenant.other.requests` overflow series.
    pub max_tenants: usize,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            window: Duration::from_secs(5),
            ring: 64,
            lookback: Duration::from_secs(30),
            interval: Duration::from_secs(5),
            latency_factor: 3.0,
            error_factor: 4.0,
            error_floor: 0.05,
            min_samples: 10,
            probation_strikes: 2,
            eject_strikes: 8,
            max_tenants: 64,
        }
    }
}

/// One replica's windowed health, as the detector sees it.
#[derive(Clone, Copy, Debug)]
pub struct ReplicaHealth {
    /// Latency samples inside the lookback.
    pub samples: u64,
    /// Windowed p99 latency, seconds.
    pub p99_s: f64,
    /// Errors ÷ samples inside the lookback.
    pub error_rate: f64,
}

/// Per-replica latency/error/queue and per-tenant request series on the
/// virtual clock. Create once, attach via
/// [`crate::Dispatcher::set_health_plane`].
pub struct HealthPlane {
    cfg: HealthConfig,
    reg: RefCell<WindowedRegistry>,
    tenants: Cell<usize>,
    /// Replica → geo site, for `site="..."` labels on per-replica series
    /// in the Prometheus exposition. Fed by [`crate::Fleet::attach_geo`];
    /// empty (the default) leaves the exposition byte-identical to the
    /// pre-geo format.
    sites: RefCell<BTreeMap<String, String>>,
    /// Replica → served artifact version, for `version="vN"` labels on
    /// per-replica series. Fed by the fleet at activation; empty (the
    /// default) leaves the exposition byte-identical to the unversioned
    /// format.
    versions: RefCell<BTreeMap<String, String>>,
    /// Tenants granted distinct `fleet.tenant.<t>.*` QoS series (capped
    /// at [`HealthConfig::max_tenants`]; overflow folds into
    /// `fleet.tenant.other.*`). Only populated when the dispatcher's QoS
    /// stage is on — QoS-off runs emit no `tenant="..."`-labeled series
    /// and stay byte-identical.
    qos_tenants: RefCell<BTreeSet<String>>,
}

impl HealthPlane {
    /// New, empty plane.
    pub fn new(cfg: HealthConfig) -> Rc<HealthPlane> {
        assert!(
            cfg.eject_strikes > cfg.probation_strikes,
            "eject_strikes must exceed probation_strikes"
        );
        Rc::new(HealthPlane {
            reg: RefCell::new(WindowedRegistry::new(cfg.window, cfg.ring)),
            tenants: Cell::new(0),
            sites: RefCell::new(BTreeMap::new()),
            versions: RefCell::new(BTreeMap::new()),
            qos_tenants: RefCell::new(BTreeSet::new()),
            cfg,
        })
    }

    /// Tag `replica`'s per-replica series with its geo site: every
    /// `fleet_replica_<name>_*` sample in the Prometheus exposition gains
    /// a `site="<site>"` label. Idempotent; called by
    /// [`crate::Fleet::attach_geo`] and on every later replica activation.
    pub fn set_site(&self, replica: &str, site: &str) {
        self.sites
            .borrow_mut()
            .insert(replica.to_owned(), site.to_owned());
    }

    /// The geo site `replica` was tagged with, if any.
    pub fn site_of(&self, replica: &str) -> Option<String> {
        self.sites.borrow().get(replica).cloned()
    }

    /// Tag `replica`'s per-replica series with the artifact version it
    /// serves: every `fleet_replica_<name>_*` sample gains a
    /// `version="vN"` label. Idempotent; re-tagged when a rollout boots
    /// a replacement at a newer version.
    pub fn set_version(&self, replica: &str, version: &str) {
        self.versions
            .borrow_mut()
            .insert(replica.to_owned(), version.to_owned());
    }

    /// The artifact version `replica` was tagged with, if any.
    pub fn version_of(&self, replica: &str) -> Option<String> {
        self.versions.borrow().get(replica).cloned()
    }

    /// The active thresholds.
    pub fn config(&self) -> &HealthConfig {
        &self.cfg
    }

    /// One finished attempt on `replica`: its latency (and whether it was
    /// an error) lands in the replica's series and the fleet-wide series.
    pub fn record_attempt(&self, now: SimTime, replica: &str, latency: Duration, error: bool) {
        let micros = latency.ticks().max(1);
        let mut reg = self.reg.borrow_mut();
        let lat = reg.histogram(&format!("fleet.replica.{replica}.latency_us"));
        reg.record(lat, now, micros);
        let fleet_lat = reg.histogram("fleet.attempt_latency_us");
        reg.record(fleet_lat, now, micros);
        if error {
            let err = reg.counter(&format!("fleet.replica.{replica}.errors"));
            reg.record(err, now, 1);
        }
    }

    /// Outstanding-attempt depth on `replica` right after an attempt was
    /// routed to it.
    pub fn record_depth(&self, now: SimTime, replica: &str, depth: u64) {
        let mut reg = self.reg.borrow_mut();
        let id = reg.histogram(&format!("fleet.replica.{replica}.depth"));
        reg.record(id, now, depth);
    }

    /// One admitted front-door request: fleet-wide in-flight and queued
    /// depth, plus the requesting tenant (capped at
    /// [`HealthConfig::max_tenants`] distinct series; the overflow folds
    /// into `tenant.other.requests`).
    pub fn record_submit(&self, now: SimTime, in_flight: u64, queued: u64, tenant: Option<&str>) {
        let mut reg = self.reg.borrow_mut();
        let inf = reg.histogram("dispatcher.in_flight");
        reg.record(inf, now, in_flight);
        let q = reg.histogram("dispatcher.queue_depth");
        reg.record(q, now, queued);
        if let Some(t) = tenant {
            let name = format!("tenant.{t}.requests");
            let known = reg.series(&name).is_some();
            let id = if known {
                reg.counter(&name)
            } else if self.tenants.get() < self.cfg.max_tenants {
                self.tenants.set(self.tenants.get() + 1);
                reg.counter(&name)
            } else {
                reg.counter("tenant.other.requests")
            };
            reg.record(id, now, 1);
        }
    }

    /// `replica`'s windowed health over the configured lookback; `None`
    /// when it has produced no latency sample in the lookback.
    pub fn replica_health(&self, now: SimTime, replica: &str) -> Option<ReplicaHealth> {
        let reg = self.reg.borrow();
        let lat = reg.series(&format!("fleet.replica.{replica}.latency_us"))?;
        let agg = lat.range(now, self.cfg.lookback);
        if agg.count() == 0 {
            return None;
        }
        let errors = reg
            .series(&format!("fleet.replica.{replica}.errors"))
            .map(|s| s.range(now, self.cfg.lookback).sum())
            .unwrap_or(0);
        Some(ReplicaHealth {
            samples: agg.count(),
            p99_s: agg.quantile(0.99) / 1e6,
            error_rate: errors as f64 / agg.count() as f64,
        })
    }

    /// Fleet-wide windowed p99 attempt latency (seconds) over the
    /// configured lookback; `None` before any attempt finished.
    pub fn fleet_p99(&self, now: SimTime) -> Option<f64> {
        let reg = self.reg.borrow();
        let s = reg.series("fleet.attempt_latency_us")?;
        let agg = s.range(now, self.cfg.lookback);
        (agg.count() > 0).then(|| agg.quantile(0.99) / 1e6)
    }

    /// Distinct tenant series seen (excluding the overflow series).
    pub fn tenant_series(&self) -> usize {
        self.tenants.get()
    }

    /// The series key a QoS tenant writes under: its own name while we
    /// are under [`HealthConfig::max_tenants`] distinct tenants, `other`
    /// past the cap.
    fn qos_key(&self, tenant: &str) -> String {
        let mut known = self.qos_tenants.borrow_mut();
        if known.contains(tenant) {
            tenant.to_owned()
        } else if known.len() < self.cfg.max_tenants {
            known.insert(tenant.to_owned());
            tenant.to_owned()
        } else {
            "other".to_owned()
        }
    }

    /// One request admitted past the QoS stage for `tenant`.
    pub fn record_tenant_accepted(&self, now: SimTime, tenant: &str) {
        let key = self.qos_key(tenant);
        let mut reg = self.reg.borrow_mut();
        let id = reg.counter(&format!("fleet.tenant.{key}.accepted"));
        reg.record(id, now, 1);
    }

    /// One request shed at the QoS stage (quota + queue full, or no
    /// replicas) for `tenant`.
    pub fn record_tenant_shed(&self, now: SimTime, tenant: &str) {
        let key = self.qos_key(tenant);
        let mut reg = self.reg.borrow_mut();
        let id = reg.counter(&format!("fleet.tenant.{key}.shed"));
        reg.record(id, now, 1);
    }

    /// `tenant`'s door-queue depth right after one of its requests was
    /// queued.
    pub fn record_tenant_queue_depth(&self, now: SimTime, tenant: &str, depth: u64) {
        let key = self.qos_key(tenant);
        let mut reg = self.reg.borrow_mut();
        let id = reg.histogram(&format!("fleet.tenant.{key}.queue_depth"));
        reg.record(id, now, depth);
    }

    /// One finished QoS-admitted request for `tenant`: door-to-answer
    /// latency (including any time spent queued at the door).
    pub fn record_tenant_latency(&self, now: SimTime, tenant: &str, latency: Duration, error: bool) {
        let key = self.qos_key(tenant);
        let mut reg = self.reg.borrow_mut();
        let id = reg.histogram(&format!("fleet.tenant.{key}.latency_us"));
        reg.record(id, now, latency.ticks().max(1));
        if error {
            let id = reg.counter(&format!("fleet.tenant.{key}.errors"));
            reg.record(id, now, 1);
        }
    }

    /// Prometheus text exposition of every series at `now`. Per-replica
    /// series carry a `site` label when the replica was tagged with
    /// [`HealthPlane::set_site`] and a `version` label when tagged with
    /// [`HealthPlane::set_version`]; with no tags the output is
    /// byte-identical to the unlabeled format.
    pub fn prometheus_text(&self, now: SimTime) -> String {
        let sites = self.sites.borrow();
        let versions = self.versions.borrow();
        self.reg.borrow().prometheus_text_multi_labeled(now, |name| {
            if let Some(rest) = name.strip_prefix("fleet.tenant.") {
                // suffixes (accepted/shed/queue_depth/latency_us/errors)
                // carry no dot, so the last dot ends the tenant name
                let Some((tenant, _)) = rest.rsplit_once('.') else {
                    return Vec::new();
                };
                return vec![("tenant".to_owned(), tenant.to_owned())];
            }
            let Some(rest) = name.strip_prefix("fleet.replica.") else {
                return Vec::new();
            };
            let Some((replica, _)) = rest.split_once('.') else {
                return Vec::new();
            };
            let mut labels = Vec::new();
            if let Some(site) = sites.get(replica) {
                labels.push(("site".to_owned(), site.clone()));
            }
            if let Some(version) = versions.get(replica) {
                labels.push(("version".to_owned(), version.clone()));
            }
            labels
        })
    }

    /// Full time-series CSV dump (one row per non-empty window).
    pub fn timeseries_csv(&self) -> String {
        self.reg.borrow().timeseries_csv()
    }
}

/// What the detector did about a replica.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DetectorAction {
    /// Sustained outlier: probation-weighted in the dispatcher.
    Probation,
    /// Back with the pack: probation lifted, strikes reset.
    Cleared,
    /// Outlier through `eject_strikes`: ejected like a crash.
    Ejected,
}

/// One timestamped detector decision, for tests and reports.
#[derive(Clone, Debug)]
pub struct DetectorEvent {
    /// When the decision was taken.
    pub at: SimTime,
    /// The replica acted on.
    pub replica: String,
    /// What was done.
    pub action: DetectorAction,
    /// The replica's windowed p99 (seconds) at decision time.
    pub p99_s: f64,
    /// The fleet median p99 (seconds) at decision time.
    pub median_p99_s: f64,
}

/// Peer-relative gray-failure detector; create with
/// [`GrayFailureDetector::install`].
pub struct GrayFailureDetector {
    fleet: Rc<Fleet>,
    plane: Rc<HealthPlane>,
    /// Consecutive outlier ticks per replica (BTreeMap: deterministic
    /// iteration, though decisions are driven by the fleet's name order).
    strikes: RefCell<BTreeMap<String, u32>>,
    events: RefCell<Vec<DetectorEvent>>,
    stopped: Cell<bool>,
}

impl GrayFailureDetector {
    /// Start scoring every `plane.config().interval` until `until`
    /// (virtual time). The plane should already be attached to the
    /// fleet's dispatcher, or there will be nothing to score.
    pub fn install(
        sim: &mut Sim,
        fleet: &Rc<Fleet>,
        plane: &Rc<HealthPlane>,
        until: SimTime,
    ) -> Rc<GrayFailureDetector> {
        let det = Rc::new(GrayFailureDetector {
            fleet: Rc::clone(fleet),
            plane: Rc::clone(plane),
            strikes: RefCell::new(BTreeMap::new()),
            events: RefCell::new(Vec::new()),
            stopped: Cell::new(false),
        });
        GrayFailureDetector::arm(sim, Rc::clone(&det), until);
        det
    }

    /// Stop the loop (takes effect at the next tick).
    pub fn stop(&self) {
        self.stopped.set(true);
    }

    /// Every decision taken so far, in order.
    pub fn events(&self) -> Vec<DetectorEvent> {
        self.events.borrow().clone()
    }

    /// Probation decisions so far.
    pub fn probations(&self) -> usize {
        self.count(DetectorAction::Probation)
    }

    /// Ejection decisions so far.
    pub fn ejections(&self) -> usize {
        self.count(DetectorAction::Ejected)
    }

    fn count(&self, action: DetectorAction) -> usize {
        self.events
            .borrow()
            .iter()
            .filter(|e| e.action == action)
            .count()
    }

    fn arm(sim: &mut Sim, det: Rc<GrayFailureDetector>, until: SimTime) {
        let interval = det.plane.cfg.interval;
        if sim.now() + interval > until {
            return;
        }
        sim.schedule(interval, move |sim| {
            if det.stopped.get() {
                return;
            }
            det.tick(sim);
            GrayFailureDetector::arm(sim, Rc::clone(&det), until);
        });
    }

    fn tick(self: &Rc<Self>, sim: &mut Sim) {
        let cfg = self.plane.cfg;
        let now = sim.now();
        let names = self.fleet.active_replica_names();
        // score only replicas with enough recent traffic
        let stats: Vec<(String, ReplicaHealth)> = names
            .iter()
            .filter_map(|n| {
                self.plane
                    .replica_health(now, n)
                    .filter(|h| h.samples >= cfg.min_samples)
                    .map(|h| (n.clone(), h))
            })
            .collect();
        // forget strikes for replicas that left the fleet (crashed,
        // drained, or already ejected by us)
        self.strikes
            .borrow_mut()
            .retain(|name, _| names.iter().any(|n| n == name));
        let mut decisions: Vec<DetectorEvent> = Vec::new();
        // Unanswered probes: a replica already on probation that cannot
        // even produce `min_samples` completions in the lookback is worse
        // than a slow outlier — its probe traffic is going in and nothing
        // is coming out. That earns a strike without peer stats (a replica
        // so degraded it answers slower than the lookback would otherwise
        // stall on probation forever).
        {
            let mut strikes = self.strikes.borrow_mut();
            for name in &names {
                if stats.iter().any(|(n, _)| n == name) {
                    continue;
                }
                let Some(s) = strikes.get_mut(name) else {
                    continue;
                };
                if *s >= cfg.probation_strikes {
                    *s += 1;
                    if *s == cfg.eject_strikes {
                        decisions.push(DetectorEvent {
                            at: now,
                            replica: name.clone(),
                            action: DetectorAction::Ejected,
                            p99_s: f64::INFINITY, // no completion to measure
                            median_p99_s: 0.0,
                        });
                    }
                }
            }
        }
        if stats.len() < 2 {
            // peer-relative scoring needs peers; apply what we have
            self.apply(sim, decisions);
            return;
        }
        // lower medians: with half the fleet degraded the reference still
        // sits on a healthy replica
        let median_p99 = lower_median(stats.iter().map(|(_, h)| h.p99_s));
        let median_err = lower_median(stats.iter().map(|(_, h)| h.error_rate));
        {
            let mut strikes = self.strikes.borrow_mut();
            for (name, h) in &stats {
                let lat_outlier = median_p99 > 0.0 && h.p99_s >= cfg.latency_factor * median_p99;
                let err_outlier = h.error_rate >= cfg.error_floor
                    && h.error_rate >= cfg.error_factor * median_err.max(1e-9);
                let s = strikes.entry(name.clone()).or_insert(0);
                if !(lat_outlier || err_outlier) {
                    if *s >= cfg.probation_strikes {
                        decisions.push(DetectorEvent {
                            at: now,
                            replica: name.clone(),
                            action: DetectorAction::Cleared,
                            p99_s: h.p99_s,
                            median_p99_s: median_p99,
                        });
                    }
                    *s = 0;
                    continue;
                }
                *s += 1;
                let action = if *s == cfg.probation_strikes {
                    Some(DetectorAction::Probation)
                } else if *s == cfg.eject_strikes {
                    Some(DetectorAction::Ejected)
                } else {
                    None
                };
                if let Some(action) = action {
                    decisions.push(DetectorEvent {
                        at: now,
                        replica: name.clone(),
                        action,
                        p99_s: h.p99_s,
                        median_p99_s: median_p99,
                    });
                }
            }
        }
        self.apply(sim, decisions);
    }

    /// Carry out this tick's decisions (with no internal borrows held:
    /// ejection re-enters the dispatcher and the fleet).
    fn apply(self: &Rc<Self>, sim: &mut Sim, decisions: Vec<DetectorEvent>) {
        for d in &decisions {
            match d.action {
                DetectorAction::Probation => {
                    self.fleet.dispatcher().set_probation(&d.replica, true);
                    sim.counter_add("health.probation", 1);
                }
                DetectorAction::Cleared => {
                    self.fleet.dispatcher().set_probation(&d.replica, false);
                    sim.counter_add("health.cleared", 1);
                }
                DetectorAction::Ejected => {
                    sim.counter_add("health.ejected", 1);
                    self.fleet.crash_replica(sim, &d.replica);
                    self.strikes.borrow_mut().remove(&d.replica);
                }
            }
        }
        self.events.borrow_mut().extend(decisions);
    }
}

/// The lower median: element at index `(n-1)/2` of the sorted values.
fn lower_median(values: impl Iterator<Item = f64>) -> f64 {
    let mut v: Vec<f64> = values.collect();
    v.sort_by(|a, b| a.partial_cmp(b).expect("health stats are never NaN"));
    v[(v.len() - 1) / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lower_median_prefers_the_healthy_side() {
        assert_eq!(lower_median([1.0, 10.0].into_iter()), 1.0);
        assert_eq!(lower_median([1.0, 2.0, 10.0].into_iter()), 2.0);
        assert_eq!(lower_median([5.0].into_iter()), 5.0);
    }

    #[test]
    fn plane_records_and_queries_replica_health() {
        let cfg = HealthConfig {
            min_samples: 5,
            ..HealthConfig::default()
        };
        let plane = HealthPlane::new(cfg);
        let mut t = SimTime::from_secs(0);
        for i in 0..20 {
            t = SimTime::from_secs_f64(0.1 * (i + 1) as f64);
            plane.record_attempt(t, "replica0", Duration::from_millis(10), false);
            plane.record_attempt(t, "replica1", Duration::from_millis(200), i % 2 == 0);
        }
        let h0 = plane.replica_health(t, "replica0").expect("has samples");
        let h1 = plane.replica_health(t, "replica1").expect("has samples");
        assert_eq!(h0.samples, 20);
        assert_eq!(h0.error_rate, 0.0);
        assert!(h0.p99_s < h1.p99_s, "slow replica has the higher p99");
        assert!(h1.p99_s >= 0.128 && h1.p99_s < 0.256, "p99 in the 200ms bucket");
        assert!((h1.error_rate - 0.5).abs() < 1e-9);
        assert!(plane.replica_health(t, "ghost").is_none());
        let fleet = plane.fleet_p99(t).expect("fleet series exists");
        assert!(fleet > h0.p99_s / 2.0, "fleet p99 dominated by the slow half");
    }

    #[test]
    fn tenant_series_cap_folds_into_other() {
        let cfg = HealthConfig {
            max_tenants: 2,
            ..HealthConfig::default()
        };
        let plane = HealthPlane::new(cfg);
        let t = SimTime::from_secs(1);
        for tenant in ["alice", "bob", "carol", "dave", "alice"] {
            plane.record_submit(t, 1, 1, Some(tenant));
        }
        assert_eq!(plane.tenant_series(), 2);
        let csv = plane.timeseries_csv();
        assert!(csv.contains("tenant.alice.requests"));
        assert!(csv.contains("tenant.bob.requests"));
        assert!(!csv.contains("tenant.carol.requests"));
        assert!(csv.contains("tenant.other.requests"));
    }

    #[test]
    fn exposition_snapshot_is_strictly_valid() {
        let plane = HealthPlane::new(HealthConfig::default());
        let t = SimTime::from_secs(3);
        plane.record_attempt(t, "replica0", Duration::from_millis(7), false);
        plane.record_attempt(t, "replica0", Duration::from_millis(9), true);
        plane.record_submit(t, 2, 3, Some("alice"));
        let text = plane.prometheus_text(t);
        let (families, samples) =
            simkit::validate_prometheus_text(&text).expect("snapshot parses strictly");
        assert!(families >= 5, "got {families} families:\n{text}");
        assert!(samples > families, "summaries expose multiple samples");
    }

    #[test]
    fn site_labels_tag_per_replica_series_and_still_validate() {
        let plane = HealthPlane::new(HealthConfig::default());
        let t = SimTime::from_secs(3);
        plane.record_attempt(t, "replica0", Duration::from_millis(7), false);
        plane.record_attempt(t, "replica0", Duration::from_millis(9), true);
        plane.record_attempt(t, "replica1", Duration::from_millis(5), false);
        plane.record_submit(t, 2, 3, Some("alice"));
        let untagged = plane.prometheus_text(t);
        assert!(
            !untagged.contains("site="),
            "no tags, no labels:\n{untagged}"
        );

        plane.set_site("replica0", "east");
        assert_eq!(plane.site_of("replica0").as_deref(), Some("east"));
        let text = plane.prometheus_text(t);
        simkit::validate_prometheus_text(&text).expect("labeled snapshot parses strictly");
        assert!(
            text.contains(r#"fleet_replica_replica0_latency_us{quantile="0.5",site="east"}"#),
            "quantile series carry the site label:\n{text}"
        );
        assert!(
            text.contains(r#"fleet_replica_replica0_latency_us_sum{site="east"}"#),
            "summary _sum carries the site label:\n{text}"
        );
        assert!(
            text.contains(r#"fleet_replica_replica0_errors{site="east"}"#),
            "counters carry the site label:\n{text}"
        );
        // replicas with no placement and fleet-wide series stay label-free
        assert!(text.contains(r#"fleet_replica_replica1_latency_us{quantile="0.5"}"#));
        assert!(!text.contains(r#"fleet_attempt_latency_us{quantile="0.5",site="#));
    }

    #[test]
    fn version_labels_compose_with_site_labels() {
        let plane = HealthPlane::new(HealthConfig::default());
        let t = SimTime::from_secs(3);
        plane.record_attempt(t, "replica0", Duration::from_millis(7), false);
        plane.record_attempt(t, "replica1", Duration::from_millis(5), false);
        plane.record_submit(t, 2, 3, Some("alice"));

        // version alone
        plane.set_version("replica1", "v2");
        assert_eq!(plane.version_of("replica1").as_deref(), Some("v2"));
        let text = plane.prometheus_text(t);
        simkit::validate_prometheus_text(&text).expect("version-labeled snapshot parses");
        assert!(
            text.contains(r#"fleet_replica_replica1_latency_us{quantile="0.5",version="v2"}"#),
            "quantile series carry the version label:\n{text}"
        );

        // site + version together, in site-then-version order
        plane.set_site("replica0", "east");
        plane.set_version("replica0", "v1");
        let text = plane.prometheus_text(t);
        simkit::validate_prometheus_text(&text).expect("two-label snapshot parses");
        assert!(
            text.contains(
                r#"fleet_replica_replica0_latency_us{quantile="0.5",site="east",version="v1"}"#
            ),
            "both labels render on one series:\n{text}"
        );
        assert!(
            text.contains(r#"fleet_replica_replica0_latency_us_sum{site="east",version="v1"}"#),
            "summary _sum carries both labels:\n{text}"
        );
        // fleet-wide series never pick up per-replica labels
        assert!(!text.contains(r#"fleet_attempt_latency_us{quantile="0.5",version="#));
    }
}
