//! The fleet front end: one published endpoint fanning out to N replicas.
//!
//! The dispatcher owns the request path the paper never built: it holds the
//! published UDDI binding, admits requests under a bounded in-flight limit
//! (shedding overload as a SOAP `Server` fault, the way a SOAP intermediary
//! would), and routes each admitted invocation to one replica under a
//! pluggable [`Policy`]. Uploads are *broadcast* — every replica must hold
//! the executable before the generated service can be served from any of
//! them.
//!
//! Backends are abstract ([`Backend`]) so the routing and conservation
//! logic is testable without booting appliances; the production backend
//! wrapping a replica's [`onserve::Deployment`] lives in [`crate::fleet`].
//!
//! ## Failure model
//!
//! Replicas can die without draining ([`Dispatcher::eject_backend`]). Every
//! dispatched attempt is registered in a central *op table*; ejecting a
//! backend resolves its outstanding ops as `backend lost`, and any response
//! the dead replica produces later finds its op gone and is dropped (no
//! zombie completions, no double-settle). Lost or suspect invocations are
//! retried on surviving replicas under [`RetryConfig`] — capped attempts,
//! exponential backoff with seeded jitter — and shed as a SOAP fault only
//! when retries are exhausted or no backend remains. Uploads are *not*
//! retried (at-most-once; see DESIGN.md §failure model). An optional
//! per-attempt timeout treats a silent backend as dead and ejects it.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::rc::Rc;

use onserve::profile::ExecutionProfile;
use simkit::engine::EventId;
use simkit::{Duration, Sim, SimTime, SpanId};
use wsstack::{SoapFault, SoapValue};

use crate::geo::GeoPlane;
use crate::health::HealthPlane;

/// One front-door request.
#[derive(Clone, Debug)]
pub enum Request {
    /// Provision a new executable on every replica (portal upload).
    Upload {
        /// Executable file name (must be fleet-unique; replica databases
        /// reject duplicates).
        file_name: String,
        /// Synthetic payload size in bytes.
        len: usize,
        /// What the executable does when invoked.
        profile: ExecutionProfile,
    },
    /// Call a published service on one replica.
    Invoke {
        /// Service name (the executable's base name).
        service: String,
        /// SOAP arguments.
        args: Vec<(String, SoapValue)>,
        /// Stable identity of the authenticating principal — today the
        /// service owner's grid user. Session-affinity routing keys on it;
        /// `None` opts the request out of affinity.
        principal: Option<String>,
    },
}

/// Completion callback: called exactly once per submitted request.
pub type Responder = Box<dyn FnOnce(&mut Sim, Result<SoapValue, SoapFault>)>;

/// Something that can serve front-door requests — a replica, or a test
/// double.
pub trait Backend {
    /// Stable replica name (the metric prefix of its appliance host).
    fn name(&self) -> &str;
    /// Serve one request, calling `done` exactly once (now or later).
    /// After the backend's owner has ejected it, `done` may also never
    /// fire — the dispatcher's op table absorbs both shapes.
    fn serve(&self, sim: &mut Sim, req: Request, done: Responder);
    /// Liveness hint. A backend that answers with a fault *while
    /// unhealthy* is treated as lost (fault-signal detection) rather than
    /// as an application error. Defaults to healthy.
    fn healthy(&self) -> bool {
        true
    }
}

/// Replica-selection policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Policy {
    /// Cycle through live replicas in order.
    RoundRobin,
    /// Pick the replica with the fewest outstanding requests (first wins
    /// ties).
    LeastOutstanding,
    /// Pick the replica whose appliance CPU has accumulated the least busy
    /// time, read straight from the recorder's `<name>.cpu.busy` series
    /// (the same rollup [`Sim::profile`] reports; first wins ties).
    /// Spreads load by *measured* work, not request counts.
    UtilizationWeighted,
}

impl Policy {
    /// All policies, for sweeps and property tests.
    pub const ALL: [Policy; 3] = [
        Policy::RoundRobin,
        Policy::LeastOutstanding,
        Policy::UtilizationWeighted,
    ];

    /// Short label for tables and span attributes.
    pub fn label(self) -> &'static str {
        match self {
            Policy::RoundRobin => "round-robin",
            Policy::LeastOutstanding => "least-outstanding",
            Policy::UtilizationWeighted => "utilization-weighted",
        }
    }
}

/// Front-door retry behaviour for invocations that lose their replica.
#[derive(Clone, Copy, Debug)]
pub struct RetryConfig {
    /// Retries per request on top of the first attempt.
    pub max_retries: u32,
    /// Backoff before retry *n* is `base * 2^(n-1)`, capped at `max`.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Jitter fraction in `[0, 1]`: the backoff is scaled by a seeded
    /// uniform draw from `[1-jitter, 1+jitter]` so synchronized losses
    /// don't retry in lock-step.
    pub jitter: f64,
}

impl Default for RetryConfig {
    fn default() -> Self {
        RetryConfig {
            max_retries: 3,
            base_backoff: Duration::from_millis(200),
            max_backoff: Duration::from_secs(5),
            jitter: 0.2,
        }
    }
}

impl RetryConfig {
    /// Backoff before retry `attempt` (1-based), jittered from the sim rng.
    fn backoff(&self, sim: &mut Sim, attempt: u32) -> Duration {
        let exp = self
            .base_backoff
            .saturating_mul(1u64 << attempt.saturating_sub(1).min(32));
        let capped = exp.min(self.max_backoff);
        if self.jitter <= 0.0 {
            return capped;
        }
        let j = self.jitter.min(1.0);
        let scale = sim.rng().range_f64(1.0 - j, 1.0 + j);
        Duration::from_secs_f64(capped.as_secs_f64() * scale)
    }
}

/// Session-affinity (sticky-routing) behaviour.
///
/// With affinity on, each invocation carrying a [`Request::Invoke`]
/// `principal` is pinned to one replica, so that replica's per-`OnServe`
/// grid-session cache keeps hitting instead of every replica paying its
/// own MyProxy delegation for the same principal. Pins never outlive their
/// replica: eject/drain orphans them immediately, and an orphaned key is
/// reassigned by rendezvous hash over the live set — a pure function of
/// (key, live replica names), so same-seed runs replay byte-identically
/// no matter how the loss interleaved with traffic.
#[derive(Clone, Copy, Debug)]
pub struct AffinityConfig {
    /// Pinned keys kept at most; when full, the oldest pin is dropped and
    /// that key starts over as a fresh assignment.
    pub capacity: usize,
}

impl Default for AffinityConfig {
    fn default() -> Self {
        AffinityConfig { capacity: 1024 }
    }
}

/// Priority tier for per-tenant QoS. The tier sets the tenant's weight in
/// both the quota split and the deficit-round-robin drain of the door
/// queues — gold tenants get four grants for every batch grant when both
/// are backlogged.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum QosTier {
    /// Interactive / paying traffic: weight 4.
    Gold,
    /// The default tier: weight 2.
    Standard,
    /// Bulk / best-effort traffic: weight 1.
    Batch,
}

impl QosTier {
    /// All tiers, for sweeps and property tests.
    pub const ALL: [QosTier; 3] = [QosTier::Gold, QosTier::Standard, QosTier::Batch];

    /// DRR quantum and quota share.
    pub fn weight(self) -> u64 {
        match self {
            QosTier::Gold => 4,
            QosTier::Standard => 2,
            QosTier::Batch => 1,
        }
    }

    /// Short label for tables and span attributes.
    pub fn label(self) -> &'static str {
        match self {
            QosTier::Gold => "gold",
            QosTier::Standard => "standard",
            QosTier::Batch => "batch",
        }
    }
}

/// Per-tenant QoS at the front door ([`Dispatcher::set_qos`]).
///
/// With QoS on, every invocation carrying a principal is admitted against
/// its tenant's *quota* — a soft share of [`DispatcherConfig::max_in_flight`]
/// proportional to the tenant's tier weight over the total weight of all
/// known tenants (`max(1, max_in_flight · w/W)`). A tenant at quota does
/// not shed: its requests wait in a per-tenant FIFO (bounded by
/// [`QosConfig::queue_depth`]; overflow sheds with per-tenant accounting)
/// and are granted capacity by deficit round-robin as requests finish —
/// weighted by tier, deterministic on the virtual clock, no randomness.
///
/// *Borrowing*: when capacity is idle — no other tenant is waiting below
/// its own quota — a tenant may run up to [`QosConfig::borrow`] requests
/// above quota. Lent slots are never taken from a waiting under-quota
/// tenant: the grant loop always prefers under-quota queues.
///
/// Anonymous invocations and uploads bypass the per-tenant stage and are
/// admitted against the global `max_in_flight` gate alone, exactly as with
/// QoS off.
#[derive(Clone, Debug)]
pub struct QosConfig {
    /// Tier for tenants not named in `tiers`.
    pub default_tier: QosTier,
    /// Explicit tenant → tier assignments. Tenants listed here are
    /// registered (and weigh into the quota split) from the start;
    /// unlisted tenants are registered at `default_tier` on first sight.
    pub tiers: BTreeMap<String, QosTier>,
    /// Per-tenant door-queue bound; a request arriving with its tenant's
    /// queue full is shed.
    pub queue_depth: usize,
    /// Requests a tenant may run *above* quota while no under-quota
    /// tenant is waiting (idle-capacity borrowing). 0 makes quotas hard.
    pub borrow: usize,
}

impl Default for QosConfig {
    fn default() -> Self {
        QosConfig {
            default_tier: QosTier::Standard,
            tiers: BTreeMap::new(),
            queue_depth: 64,
            borrow: 1,
        }
    }
}

/// One tenant's QoS ledger and live state, from [`Dispatcher::qos_tenants`].
/// Conservation: `issued == accepted + shed + queued` at every instant, and
/// `queued == 0` once the simulation drains.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TenantQos {
    /// The tenant's priority tier.
    pub tier: QosTier,
    /// Current quota: `max(1, max_in_flight · weight/total_weight)`.
    pub quota: usize,
    /// Requests admitted and not yet answered.
    pub in_flight: usize,
    /// Requests waiting in the door queue right now.
    pub queued: usize,
    /// Front-door submissions (admitted + queued + shed).
    pub issued: u64,
    /// Requests admitted past the door.
    pub accepted: u64,
    /// Requests refused (queue full, or flushed when every replica left).
    pub shed: u64,
    /// Cumulative enqueues (a queued request later counts accepted or
    /// shed as well — `enqueued` records that it waited).
    pub enqueued: u64,
}

/// A request parked at the door, waiting for a DRR grant.
struct QueuedReq {
    req: Request,
    done: Responder,
    span: SpanId,
    submitted_at: SimTime,
}

/// Per-tenant QoS state.
struct QosTenantState {
    tier: QosTier,
    in_flight: usize,
    queue: VecDeque<QueuedReq>,
    /// DRR deficit: grants available before the tenant's next top-up.
    deficit: u64,
    issued: u64,
    accepted: u64,
    shed: u64,
    enqueued: u64,
}

impl QosTenantState {
    fn new(tier: QosTier) -> QosTenantState {
        QosTenantState {
            tier,
            in_flight: 0,
            queue: VecDeque::new(),
            deficit: 0,
            issued: 0,
            accepted: 0,
            shed: 0,
            enqueued: 0,
        }
    }
}

/// The weighted-fair admission stage: per-tenant FIFOs drained by deficit
/// round-robin. Everything is keyed on event order and the virtual clock —
/// no randomness — so same-seed runs replay byte-identically.
struct QosState {
    cfg: QosConfig,
    max_in_flight: usize,
    tenants: BTreeMap<String, QosTenantState>,
    /// Sum of tier weights over all registered tenants (the quota
    /// denominator). Grows monotonically as tenants are first seen.
    total_weight: u64,
    /// Tenants with queued work, in first-enqueue order — the DRR ring.
    ring: VecDeque<String>,
}

impl QosState {
    fn new(cfg: QosConfig, max_in_flight: usize) -> QosState {
        let mut q = QosState {
            cfg,
            max_in_flight,
            tenants: BTreeMap::new(),
            total_weight: 0,
            ring: VecDeque::new(),
        };
        let listed: Vec<(String, QosTier)> = q
            .cfg
            .tiers
            .iter()
            .map(|(t, tier)| (t.clone(), *tier))
            .collect();
        for (t, tier) in listed {
            q.register(&t, tier);
        }
        q
    }

    /// Ensure `tenant` exists; returns its tier.
    fn register(&mut self, tenant: &str, tier: QosTier) -> QosTier {
        if let Some(st) = self.tenants.get(tenant) {
            return st.tier;
        }
        self.total_weight += tier.weight();
        self.tenants
            .insert(tenant.to_owned(), QosTenantState::new(tier));
        tier
    }

    /// The tier `tenant` would get (config lookup; does not register).
    fn tier_of(&self, tenant: &str) -> QosTier {
        self.cfg
            .tiers
            .get(tenant)
            .copied()
            .unwrap_or(self.cfg.default_tier)
    }

    /// `tenant`'s quota: its weighted share of the admission window,
    /// never below one slot.
    fn quota(&self, tier: QosTier) -> usize {
        let share = (self.max_in_flight as u64) * tier.weight() / self.total_weight.max(1);
        (share as usize).max(1)
    }

    /// Is some tenant waiting below its own quota? While true, no tenant
    /// may be granted (or admitted) above quota — idle capacity is lent
    /// only when nobody under-quota wants it.
    fn under_quota_waiting(&self) -> bool {
        self.ring.iter().any(|t| {
            let st = &self.tenants[t];
            !st.queue.is_empty() && st.in_flight < self.quota(st.tier)
        })
    }

    /// May a fresh arrival for `tenant` be admitted immediately? Only if
    /// its own queue is empty (per-tenant FIFO order), it is under quota —
    /// or borrowing while no under-quota tenant waits.
    fn may_admit(&self, tenant: &str) -> bool {
        let st = &self.tenants[tenant];
        if !st.queue.is_empty() {
            return false;
        }
        let quota = self.quota(st.tier);
        if st.in_flight < quota {
            return true;
        }
        st.in_flight < quota.saturating_add(self.cfg.borrow) && !self.under_quota_waiting()
    }

    /// Park a request in its tenant's FIFO (the caller checked the bound).
    fn enqueue(&mut self, tenant: &str, item: QueuedReq) {
        let st = self.tenants.get_mut(tenant).expect("tenant registered");
        st.queue.push_back(item);
        st.enqueued += 1;
        if !self.ring.iter().any(|t| t == tenant) {
            self.ring.push_back(tenant.to_owned());
        }
    }

    /// One deficit-round-robin grant: pop the next eligible tenant's
    /// queue head. Under-quota waiters are always served first; over-quota
    /// tenants are served (borrowing) only when no under-quota tenant
    /// waits. `None` when nothing is eligible.
    fn next_grant(&mut self) -> Option<(String, QosTier, QueuedReq)> {
        let under_waiting = self.under_quota_waiting();
        // each ring member is visited at most twice per grant (top-up,
        // then serve), so 2·len + 1 passes always reach a fixed point
        for _ in 0..(self.ring.len() * 2 + 1) {
            let t = self.ring.front()?.clone();
            let quota;
            {
                let st = self.tenants.get_mut(&t).expect("ring member registered");
                if st.queue.is_empty() {
                    st.deficit = 0;
                    self.ring.pop_front();
                    continue;
                }
                quota = {
                    let tier = st.tier;
                    let w = tier.weight();
                    let share = (self.max_in_flight as u64) * w / self.total_weight.max(1);
                    (share as usize).max(1)
                };
                let cap = if under_waiting {
                    quota
                } else {
                    quota.saturating_add(self.cfg.borrow)
                };
                if st.in_flight >= cap {
                    // not eligible this round: rotate past without
                    // touching its deficit
                    self.ring.rotate_left(1);
                    continue;
                }
                if st.deficit == 0 {
                    st.deficit = st.tier.weight();
                    self.ring.rotate_left(1);
                    continue;
                }
                st.deficit -= 1;
                let item = st.queue.pop_front().expect("non-empty queue");
                let tier = st.tier;
                return Some((t, tier, item));
            }
        }
        None
    }

    /// Pop every queued request (total-outage flush: nothing can ever be
    /// granted once the last replica is gone).
    fn flush_all(&mut self) -> Vec<(String, QueuedReq)> {
        let mut out = Vec::new();
        for t in std::mem::take(&mut self.ring) {
            let st = self.tenants.get_mut(&t).expect("ring member registered");
            st.deficit = 0;
            while let Some(item) = st.queue.pop_front() {
                out.push((t.clone(), item));
            }
        }
        out
    }
}

/// Dispatcher parameters.
#[derive(Clone, Copy, Debug)]
pub struct DispatcherConfig {
    /// Replica-selection policy.
    pub policy: Policy,
    /// Admission limit: requests in flight across the whole fleet before
    /// new arrivals are shed.
    pub max_in_flight: usize,
    /// Retry invocations whose replica was lost mid-flight. `None`
    /// fail-fasts the loss to the client as a SOAP fault.
    pub retry: Option<RetryConfig>,
    /// Eject a backend that has not answered an attempt within this long
    /// (the timeout dead-backend signal). `None` disables the watchdog.
    pub request_timeout: Option<Duration>,
    /// Pin each principal to one replica. `None` routes every attempt by
    /// `policy` alone.
    pub affinity: Option<AffinityConfig>,
}

impl Default for DispatcherConfig {
    fn default() -> Self {
        DispatcherConfig {
            policy: Policy::LeastOutstanding,
            max_in_flight: 64,
            retry: Some(RetryConfig::default()),
            request_timeout: None,
            affinity: None,
        }
    }
}

/// Conservation ledger: `accepted == completed + faulted` once the
/// simulation drains, and `accepted + shed` equals every request ever
/// submitted.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DispatchCounters {
    /// Requests admitted past the in-flight limit.
    pub accepted: u64,
    /// Admitted requests that completed successfully.
    pub completed: u64,
    /// Admitted requests that came back as a SOAP fault.
    pub faulted: u64,
    /// Requests refused at the door (admission limit or no replicas).
    pub shed: u64,
    /// Admitted requests that had to wait behind another request already
    /// outstanding on their chosen replica.
    pub queued: u64,
    /// Retry attempts dispatched after a replica loss (does not change
    /// `accepted`: a retried request is still one admitted request).
    pub retried: u64,
    /// Backends thrown out of rotation without drain.
    pub ejected: u64,
    /// Attempts routed to the replica their principal was pinned to.
    pub affinity_hits: u64,
    /// Attempts whose principal had no pin yet (pinned by base policy).
    pub affinity_misses: u64,
    /// Attempts whose pin had been invalidated by a replica loss or drain
    /// (reassigned by rendezvous hash).
    pub affinity_repins: u64,
    /// Attempts whose pinned replica sat behind a severed site and were
    /// forwarded to a peer site with the pin preserved (federation); the
    /// principal comes home when the site reconnects.
    pub forwarded: u64,
}

struct Slot {
    backend: Rc<dyn Backend>,
    /// Ops currently outstanding on this backend (attempt granularity).
    ops: Vec<u64>,
    draining: bool,
    /// Probation-weighted by the gray-failure detector: the slot stays in
    /// rotation but only receives probe traffic (every Nth route) until
    /// the detector clears or ejects it.
    probation: bool,
    /// The backend's `<name>.cpu.busy` recorder key, precomputed so the
    /// utilization-weighted pick allocates nothing per candidate.
    busy_key: String,
}

impl Slot {
    fn outstanding(&self) -> usize {
        self.ops.len()
    }
}

/// How one dispatched attempt ended.
enum OpOutcome {
    /// The backend answered (well-formed response or application fault).
    Answered(Result<SoapValue, SoapFault>),
    /// The named backend was ejected while the attempt was outstanding,
    /// or its watchdog fired.
    BackendLost(String),
}

/// How an attempt resolves once its fate is known.
type OpComplete = Box<dyn FnOnce(&mut Sim, OpOutcome)>;

/// One outstanding attempt in the central op table.
struct PendingOp {
    backend: String,
    complete: OpComplete,
    timeout: Option<EventId>,
    /// When the attempt was dispatched — the health plane's latency sample
    /// is `answer time − started`.
    started: SimTime,
}

/// The QoS identity an admitted request carries end-to-end: set once at
/// admission and never re-derived, so a retried, re-pinned, or
/// canary-shifted request keeps its tenant and priority tier.
#[derive(Clone)]
struct QosTag {
    tenant: String,
    tier: QosTier,
    /// When the request first hit the front door (queue wait included) —
    /// the per-tenant latency series measures door-to-answer.
    submitted_at: SimTime,
}

/// One admitted invocation making its way through attempts.
struct Ticket {
    req: Request,
    done: Option<Responder>,
    span: SpanId,
    retries: u32,
    /// Present iff the request was admitted through the QoS stage.
    qos: Option<QosTag>,
}

/// One affinity-table entry.
enum Pin {
    /// Pinned to the named live replica.
    Live(String),
    /// The pinned replica (named, so a geo plane can still look up its
    /// home site) was ejected or drained; the key is reassigned
    /// (rendezvous hash) on its next request.
    Orphaned(String),
}

/// Bounded `principal → replica` table, oldest-key eviction.
#[derive(Default)]
struct AffinityTable {
    pins: HashMap<String, Pin>,
    /// Keys in insertion order, for capacity eviction.
    order: VecDeque<String>,
}

impl AffinityTable {
    /// Pin `key` to `replica`, evicting the oldest key at capacity.
    fn pin(&mut self, key: &str, replica: &str, capacity: usize) {
        if let Some(p) = self.pins.get_mut(key) {
            *p = Pin::Live(replica.to_owned());
            return;
        }
        while self.order.len() >= capacity.max(1) {
            if let Some(old) = self.order.pop_front() {
                self.pins.remove(&old);
            }
        }
        self.pins.insert(key.to_owned(), Pin::Live(replica.to_owned()));
        self.order.push_back(key.to_owned());
    }

    /// Orphan every pin pointing at `replica` (loss/drain invalidation).
    fn orphan_replica(&mut self, replica: &str) {
        for p in self.pins.values_mut() {
            if matches!(p, Pin::Live(r) if r == replica) {
                *p = Pin::Orphaned(replica.to_owned());
            }
        }
    }
}

/// Rendezvous (highest-random-weight) score of `replica` for `key`:
/// FNV-1a over both names, finished with a splitmix64 mix. Deliberately
/// hand-rolled — `std`'s default hasher is randomly seeded per process,
/// which would break byte-identical replays.
fn rendezvous_score(key: &str, replica: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key.as_bytes().iter().chain(&[0xff]).chain(replica.as_bytes()) {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

type DrainHook = Box<dyn Fn(&mut Sim, &str)>;
type UploadHook = Box<dyn Fn(&mut Sim, &Request)>;

/// Canary traffic share ([`Dispatcher::set_canary`]): while set, a
/// deterministic counter sends `share_pct`% of first-sight routes to
/// the named replica instead of the base-policy pick. No randomness —
/// route `k` goes to the canary iff `k % 100 < share_pct`, so replays
/// are byte-identical.
struct CanaryShare {
    target: String,
    share_pct: u32,
    cursor: Cell<u64>,
}

/// Of every `PROBE_EVERY` routes made while any slot is on probation, one
/// may consider the probationers — so a recovering replica still sees
/// enough traffic for the detector to clear it.
const PROBE_EVERY: u64 = 8;

/// The front-end request router.
pub struct Dispatcher {
    cfg: DispatcherConfig,
    slots: RefCell<Vec<Slot>>,
    rr_cursor: Cell<usize>,
    in_flight: Cell<usize>,
    counters: RefCell<DispatchCounters>,
    next_op: Cell<u64>,
    ops: RefCell<HashMap<u64, PendingOp>>,
    affinity: RefCell<AffinityTable>,
    drain_hook: RefCell<Option<DrainHook>>,
    upload_hook: RefCell<Option<UploadHook>>,
    /// Optional fleet health plane; when attached, every attempt feeds a
    /// per-replica latency/error sample and every admitted request feeds
    /// queue-depth and per-tenant series. Pure measurement — attaching it
    /// schedules nothing and draws no randomness.
    health: RefCell<Option<Rc<HealthPlane>>>,
    /// Optional geo plane; when attached, routing filters out replicas on
    /// severed sites, first-sight picks prefer the site nearest the
    /// request's origin (spilling outward when a site saturates), and —
    /// with federation on — pinned work whose home site is severed is
    /// forwarded to the nearest healthy peer without losing the pin.
    geo: RefCell<Option<Rc<GeoPlane>>>,
    /// Counts routes made while probation is active, for the probe window.
    probe_cursor: Cell<u64>,
    /// Optional canary share: a slice of first-sight traffic diverted to
    /// one replica during a canary judgment window.
    canary: RefCell<Option<CanaryShare>>,
    /// Optional per-tenant QoS stage ([`Dispatcher::set_qos`]). `None` —
    /// the default — leaves the admission path byte-identical to the
    /// QoS-less dispatcher.
    qos: RefCell<Option<QosState>>,
}

impl Dispatcher {
    /// New dispatcher with no backends yet.
    pub fn new(cfg: DispatcherConfig) -> Rc<Dispatcher> {
        Rc::new(Dispatcher {
            cfg,
            slots: RefCell::new(Vec::new()),
            rr_cursor: Cell::new(0),
            in_flight: Cell::new(0),
            counters: RefCell::new(DispatchCounters::default()),
            next_op: Cell::new(0),
            ops: RefCell::new(HashMap::new()),
            affinity: RefCell::new(AffinityTable::default()),
            drain_hook: RefCell::new(None),
            upload_hook: RefCell::new(None),
            health: RefCell::new(None),
            geo: RefCell::new(None),
            probe_cursor: Cell::new(0),
            canary: RefCell::new(None),
            qos: RefCell::new(None),
        })
    }

    /// Turn on the per-tenant QoS stage: invocations carrying a principal
    /// are admitted against per-tenant quotas, wait in weighted-fair door
    /// queues when at quota, and shed (with per-tenant accounting) when
    /// their queue overflows. Attach before traffic; anonymous requests
    /// and uploads keep the plain global gate.
    pub fn set_qos(&self, cfg: QosConfig) {
        *self.qos.borrow_mut() = Some(QosState::new(cfg, self.cfg.max_in_flight));
    }

    /// Is the per-tenant QoS stage attached?
    pub fn qos_enabled(&self) -> bool {
        self.qos.borrow().is_some()
    }

    /// Per-tenant QoS ledgers and live state (empty map with QoS off).
    /// Every tenant satisfies `issued == accepted + shed + queued`, and
    /// an under-quota tenant only ever waits because the global window is
    /// full (or no replica is left) — the fairness invariant the
    /// proptests audit mid-run.
    pub fn qos_tenants(&self) -> BTreeMap<String, TenantQos> {
        match self.qos.borrow().as_ref() {
            None => BTreeMap::new(),
            Some(q) => q
                .tenants
                .iter()
                .map(|(t, st)| {
                    (
                        t.clone(),
                        TenantQos {
                            tier: st.tier,
                            quota: q.quota(st.tier),
                            in_flight: st.in_flight,
                            queued: st.queue.len(),
                            issued: st.issued,
                            accepted: st.accepted,
                            shed: st.shed,
                            enqueued: st.enqueued,
                        },
                    )
                })
                .collect(),
        }
    }

    /// Attach a health plane. From now on every answered (or lost) attempt
    /// records a per-replica latency/error sample and every admitted
    /// invocation records in-flight depth and its tenant. Measurement
    /// only: the request path is unchanged event-for-event.
    pub fn set_health_plane(&self, plane: Rc<HealthPlane>) {
        *self.health.borrow_mut() = Some(plane);
    }

    /// The attached health plane, if any.
    pub fn health_plane(&self) -> Option<Rc<HealthPlane>> {
        self.health.borrow().clone()
    }

    /// Attach a geo plane: routing becomes latency-aware (nearest healthy
    /// site first, spill outward at the plane's saturation threshold) and
    /// severed sites drop out of rotation for the length of their outage
    /// window. Attach the same plane to the owning [`crate::Fleet`] (see
    /// [`crate::Fleet::attach_geo`]) so replicas are placed and WAN costs
    /// are charged; a fleet can carry the plane *without* the dispatcher
    /// knowing — that is the site-oblivious control.
    pub fn set_geo(&self, plane: Rc<GeoPlane>) {
        *self.geo.borrow_mut() = Some(plane);
    }

    /// The attached geo plane, if any.
    pub fn geo(&self) -> Option<Rc<GeoPlane>> {
        self.geo.borrow().clone()
    }

    /// Put `name` on (or take it off) probation: it stays in rotation but
    /// receives only probe traffic (one route window in [`PROBE_EVERY`])
    /// until cleared. Returns `false` if no live backend has that name.
    pub fn set_probation(&self, name: &str, on: bool) -> bool {
        let mut slots = self.slots.borrow_mut();
        match slots
            .iter_mut()
            .find(|s| !s.draining && s.backend.name() == name)
        {
            Some(slot) => {
                slot.probation = on;
                true
            }
            None => false,
        }
    }

    /// Live backends currently on probation.
    pub fn probation_count(&self) -> usize {
        self.slots
            .borrow()
            .iter()
            .filter(|s| !s.draining && s.probation)
            .count()
    }

    /// Attempts outstanding across all backends (queued + being served).
    pub fn queued_depth(&self) -> usize {
        self.slots.borrow().iter().map(|s| s.ops.len()).sum()
    }

    /// The configured policy.
    pub fn policy(&self) -> Policy {
        self.cfg.policy
    }

    /// Put a backend into rotation.
    pub fn add_backend(&self, backend: Rc<dyn Backend>) {
        let busy_key = format!("{}.cpu.busy", backend.name());
        self.slots.borrow_mut().push(Slot {
            backend,
            ops: Vec::new(),
            draining: false,
            probation: false,
            busy_key,
        });
    }

    /// Take `name` out of rotation. New requests stop routing to it
    /// immediately; once its outstanding requests finish, the slot is
    /// dropped and the drain hook fires. Returns `false` if no live
    /// backend has that name.
    pub fn remove_backend(&self, sim: &mut Sim, name: &str) -> bool {
        let idle = {
            let mut slots = self.slots.borrow_mut();
            let Some(slot) = slots
                .iter_mut()
                .find(|s| !s.draining && s.backend.name() == name)
            else {
                return false;
            };
            slot.draining = true;
            slot.outstanding() == 0
        };
        // a draining replica takes no new work, sticky or not
        self.affinity.borrow_mut().orphan_replica(name);
        if idle {
            self.retire(sim, name);
        }
        true
    }

    /// Called once per drained (removed + idle) backend, with its name.
    pub fn set_drain_hook(&self, f: impl Fn(&mut Sim, &str) + 'static) {
        *self.drain_hook.borrow_mut() = Some(Box::new(f));
    }

    /// Called once per *accepted* upload broadcast, before any backend
    /// sees it — the fleet uses this to catalog the executable for
    /// replicas that boot later.
    pub fn set_upload_hook(&self, f: impl Fn(&mut Sim, &Request) + 'static) {
        *self.upload_hook.borrow_mut() = Some(Box::new(f));
    }

    /// Backends still in rotation.
    pub fn live_backends(&self) -> usize {
        self.slots.borrow().iter().filter(|s| !s.draining).count()
    }

    /// Requests currently admitted and not yet answered.
    pub fn in_flight(&self) -> usize {
        self.in_flight.get()
    }

    /// The conservation ledger.
    pub fn counters(&self) -> DispatchCounters {
        *self.counters.borrow()
    }

    /// Admit and route one request; `done` is called exactly once whether
    /// the request is served, faulted, or shed at the door.
    pub fn submit(self: &Rc<Self>, sim: &mut Sim, req: Request, done: Responder) {
        let span = sim.span_begin("dispatcher.dispatch");
        sim.span_attr(span, "policy", self.cfg.policy.label());
        // Per-tenant QoS stage (opt-in): invocations carrying a principal
        // go through quota + weighted-fair queueing. Anonymous requests
        // and uploads fall through to the global gate below.
        if self.qos.borrow().is_some()
            && matches!(&req, Request::Invoke { principal: Some(_), .. })
        {
            self.qos_submit(sim, span, req, done);
            return;
        }
        // The global admission gate. Deliberately ahead of the
        // invoke/upload split so BOTH arms are behind it: an upload at a
        // saturated door sheds exactly like an invocation (pinned by the
        // upload_sheds_at_admission_limit regression test).
        if self.in_flight.get() >= self.cfg.max_in_flight {
            self.shed(sim, span, "admission limit reached", done);
            return;
        }
        match req {
            Request::Invoke { .. } => self.dispatch_one(sim, span, req, done),
            Request::Upload { .. } => self.broadcast(sim, span, req, done),
        }
    }

    /// Admission with QoS on: admit under quota, queue at quota, shed on
    /// queue overflow (or when no replica is in rotation — queueing for a
    /// dead fleet would just strand the caller).
    fn qos_submit(self: &Rc<Self>, sim: &mut Sim, span: SpanId, req: Request, done: Responder) {
        let tenant = match &req {
            Request::Invoke {
                principal: Some(p), ..
            } => p.clone(),
            _ => unreachable!("qos_submit only sees principal-carrying invokes"),
        };
        enum Decision {
            Admit(QosTier),
            Queue,
            Shed(&'static str),
        }
        let decision = {
            let mut qos = self.qos.borrow_mut();
            let q = qos.as_mut().expect("qos checked by caller");
            let tier = q.tier_of(&tenant);
            q.register(&tenant, tier);
            let st = q.tenants.get_mut(&tenant).expect("just registered");
            st.issued += 1;
            if self.live_backends() == 0 {
                st.shed += 1;
                Decision::Shed("no replicas in rotation")
            } else if self.in_flight.get() < self.cfg.max_in_flight && q.may_admit(&tenant) {
                Decision::Admit(tier)
            } else if q.tenants[&tenant].queue.len() < q.cfg.queue_depth {
                Decision::Queue
            } else {
                let st = q.tenants.get_mut(&tenant).expect("registered");
                st.shed += 1;
                Decision::Shed("tenant queue full")
            }
        };
        sim.span_attr(span, "tenant", tenant.clone());
        match decision {
            Decision::Admit(tier) => {
                sim.span_attr(span, "tier", tier.label());
                let tag = QosTag {
                    tenant,
                    tier,
                    submitted_at: sim.now(),
                };
                self.qos_admit(sim, span, req, done, tag);
            }
            Decision::Queue => {
                let tier = {
                    let mut qos = self.qos.borrow_mut();
                    let q = qos.as_mut().expect("qos on");
                    q.enqueue(
                        &tenant,
                        QueuedReq {
                            req,
                            done,
                            span,
                            submitted_at: sim.now(),
                        },
                    );
                    q.tenants[&tenant].tier
                };
                sim.span_attr(span, "tier", tier.label());
                sim.span_attr(span, "qos", "queued");
                sim.counter_add("dispatcher.qos_enqueued", 1);
                if let Some(plane) = self.health.borrow().as_ref() {
                    let depth = self.qos.borrow().as_ref().map_or(0, |q| {
                        q.tenants.get(&tenant).map_or(0, |st| st.queue.len())
                    });
                    plane.record_tenant_queue_depth(sim.now(), &tenant, depth as u64);
                }
            }
            Decision::Shed(why) => {
                sim.counter_add("dispatcher.qos_shed", 1);
                if let Some(plane) = self.health.borrow().as_ref() {
                    plane.record_tenant_shed(sim.now(), &tenant);
                }
                self.shed(sim, span, why, done);
            }
        }
    }

    /// Front-door bookkeeping for one QoS admission (fresh or granted
    /// from a door queue), then the first attempt. The ticket carries the
    /// tag from here on — retries, re-pins, and canary shifts never
    /// re-enter admission, so the tenant and tier survive end-to-end.
    fn qos_admit(
        self: &Rc<Self>,
        sim: &mut Sim,
        span: SpanId,
        req: Request,
        done: Responder,
        tag: QosTag,
    ) {
        {
            let mut qos = self.qos.borrow_mut();
            let q = qos.as_mut().expect("qos on");
            let st = q.tenants.get_mut(&tag.tenant).expect("tenant registered");
            st.accepted += 1;
            st.in_flight += 1;
        }
        self.counters.borrow_mut().accepted += 1;
        self.in_flight.set(self.in_flight.get() + 1);
        sim.counter_add("dispatcher.accepted", 1);
        sim.span_attr(span, "in_flight", self.in_flight.get() as u64);
        if let Some(plane) = self.health.borrow().as_ref() {
            plane.record_submit(
                sim.now(),
                self.in_flight.get() as u64,
                self.queued_depth() as u64,
                Some(&tag.tenant),
            );
            plane.record_tenant_accepted(sim.now(), &tag.tenant);
        }
        self.attempt(
            sim,
            Ticket {
                req,
                done: Some(done),
                span,
                retries: 0,
                qos: Some(tag),
            },
        );
    }

    /// Capacity freed (any request closed): grant door-queued work by
    /// deficit round-robin until the window refills or nothing is
    /// eligible. When the last replica is gone, flush every queue as shed
    /// — a queued-then-shed request counts exactly once, as shed.
    fn qos_dispatch_queued(self: &Rc<Self>, sim: &mut Sim) {
        if self.qos.borrow().is_none() {
            return;
        }
        if self.live_backends() == 0 {
            let flushed = {
                let mut qos = self.qos.borrow_mut();
                let q = qos.as_mut().expect("qos on");
                let flushed = q.flush_all();
                for (tenant, _) in &flushed {
                    let st = q.tenants.get_mut(tenant).expect("registered");
                    st.shed += 1;
                }
                flushed
            };
            for (tenant, item) in flushed {
                sim.counter_add("dispatcher.qos_shed", 1);
                if let Some(plane) = self.health.borrow().as_ref() {
                    plane.record_tenant_shed(sim.now(), &tenant);
                }
                self.shed(sim, item.span, "no replicas in rotation", item.done);
            }
            return;
        }
        while self.in_flight.get() < self.cfg.max_in_flight {
            let grant = {
                let mut qos = self.qos.borrow_mut();
                qos.as_mut().expect("qos on").next_grant()
            };
            let Some((tenant, tier, item)) = grant else {
                return;
            };
            sim.counter_add("dispatcher.qos_granted", 1);
            let tag = QosTag {
                tenant,
                tier,
                submitted_at: item.submitted_at,
            };
            self.qos_admit(sim, item.span, item.req, item.done, tag);
        }
    }

    /// Per-tenant bookkeeping for one closed QoS request.
    fn qos_close(&self, sim: &mut Sim, tag: &QosTag, ok: bool) {
        {
            let mut qos = self.qos.borrow_mut();
            let q = qos.as_mut().expect("qos on");
            let st = q.tenants.get_mut(&tag.tenant).expect("tenant registered");
            st.in_flight = st
                .in_flight
                .checked_sub(1)
                .expect("tenant in-flight underflow: tag lost in transit");
        }
        if let Some(plane) = self.health.borrow().as_ref() {
            plane.record_tenant_latency(sim.now(), &tag.tenant, sim.now() - tag.submitted_at, !ok);
        }
    }

    fn shed(&self, sim: &mut Sim, span: SpanId, why: &str, done: Responder) {
        self.counters.borrow_mut().shed += 1;
        sim.counter_add("dispatcher.shed", 1);
        sim.span_attr(span, "outcome", "shed");
        sim.span_fail(span, why);
        done(sim, Err(SoapFault::server(&format!("dispatcher: {why}"))));
    }

    /// Admit an invocation and start its first attempt.
    fn dispatch_one(self: &Rc<Self>, sim: &mut Sim, span: SpanId, req: Request, done: Responder) {
        if self.live_backends() == 0 {
            self.shed(sim, span, "no replicas in rotation", done);
            return;
        }
        self.counters.borrow_mut().accepted += 1;
        self.in_flight.set(self.in_flight.get() + 1);
        sim.counter_add("dispatcher.accepted", 1);
        sim.span_attr(span, "in_flight", self.in_flight.get() as u64);
        if let Some(plane) = self.health.borrow().as_ref() {
            let tenant = match &req {
                Request::Invoke { principal, .. } => principal.as_deref(),
                Request::Upload { .. } => None,
            };
            plane.record_submit(
                sim.now(),
                self.in_flight.get() as u64,
                self.queued_depth() as u64,
                tenant,
            );
        }
        self.attempt(
            sim,
            Ticket {
                req,
                done: Some(done),
                span,
                retries: 0,
                qos: None,
            },
        );
    }

    /// One routing attempt for an admitted invocation (first try or retry).
    fn attempt(self: &Rc<Self>, sim: &mut Sim, ticket: Ticket) {
        let key = match &ticket.req {
            Request::Invoke { principal, .. } => principal.clone(),
            Request::Upload { .. } => None,
        };
        let Some((pick, affinity)) = self.route(sim, key.as_deref()) else {
            // every backend is gone: re-shed to the client as a SOAP fault
            self.fail_ticket(sim, ticket, "no replicas in rotation");
            return;
        };
        let span = ticket.span;
        if let Some(outcome) = affinity {
            sim.span_attr(span, "affinity", outcome);
            let mut c = self.counters.borrow_mut();
            let counter = match outcome {
                "hit" => {
                    c.affinity_hits += 1;
                    "dispatcher.affinity_hit"
                }
                "repin" => {
                    c.affinity_repins += 1;
                    "dispatcher.affinity_repin"
                }
                "forward" => {
                    c.forwarded += 1;
                    "dispatcher.affinity_forward"
                }
                _ => {
                    c.affinity_misses += 1;
                    "dispatcher.affinity_miss"
                }
            };
            drop(c);
            sim.counter_add(counter, 1);
        }
        let req = ticket.req.clone();
        let attempt_no = ticket.retries;
        let this = Rc::clone(self);
        let (op_id, backend, queued) = self.register_op(
            sim,
            pick,
            Box::new(move |sim, outcome| match outcome {
                OpOutcome::Answered(res) => this.settle_ticket(sim, ticket, res),
                OpOutcome::BackendLost(lost) => this.retry_or_fail(sim, ticket, &lost),
            }),
        );
        if queued {
            self.counters.borrow_mut().queued += 1;
            sim.counter_add("dispatcher.queued", 1);
        }
        sim.span_attr(span, "replica", backend.name().to_owned());
        if attempt_no > 0 {
            sim.span_attr(span, "attempt", attempt_no as u64);
        }
        let this = Rc::clone(self);
        // parent replica-internal spans under the dispatch span
        let prev = sim.set_span_parent(span);
        backend.serve(
            sim,
            req,
            Box::new(move |sim, res| this.op_answered(sim, op_id, res)),
        );
        sim.set_span_parent(prev);
    }

    /// The attempt's replica was lost: back off and go again on whatever
    /// survives, or give up when the cap is hit / retry is disabled.
    fn retry_or_fail(self: &Rc<Self>, sim: &mut Sim, mut ticket: Ticket, lost: &str) {
        let Some(rc) = self.cfg.retry else {
            self.fail_ticket(sim, ticket, &format!("replica {lost} lost; retry disabled"));
            return;
        };
        if ticket.retries >= rc.max_retries {
            self.fail_ticket(sim, ticket, &format!("replica {lost} lost; retries exhausted"));
            return;
        }
        ticket.retries += 1;
        self.counters.borrow_mut().retried += 1;
        sim.counter_add("dispatcher.retried", 1);
        let rspan = sim.span_child("dispatcher.retry", ticket.span);
        sim.span_attr(rspan, "replica", lost.to_owned());
        sim.span_attr(rspan, "attempt", ticket.retries as u64);
        if let Some(tag) = &ticket.qos {
            // the retry keeps the admission-time identity: it re-routes,
            // it does not re-queue
            sim.span_attr(rspan, "tenant", tag.tenant.clone());
            sim.span_attr(rspan, "tier", tag.tier.label());
        }
        let delay = rc.backoff(sim, ticket.retries);
        sim.span_attr(rspan, "backoff_ms", delay.as_secs_f64() * 1e3);
        let this = Rc::clone(self);
        // the retry span covers the backoff window
        sim.schedule(delay, move |sim| {
            sim.span_end(rspan);
            this.attempt(sim, ticket);
        });
    }

    /// Resolve an admitted invocation exactly once.
    fn settle_ticket(
        self: &Rc<Self>,
        sim: &mut Sim,
        mut ticket: Ticket,
        res: Result<SoapValue, SoapFault>,
    ) {
        if let Some(tag) = ticket.qos.take() {
            self.qos_close(sim, &tag, res.is_ok());
        }
        self.close_front_door(sim, ticket.span, res.is_ok());
        let done = ticket.done.take().expect("ticket settles once");
        done(sim, res);
    }

    /// Resolve an admitted invocation as a dispatcher-level fault.
    fn fail_ticket(self: &Rc<Self>, sim: &mut Sim, ticket: Ticket, why: &str) {
        let fault = SoapFault::server(&format!("dispatcher: {why}"));
        self.settle_ticket(sim, ticket, Err(fault));
    }

    /// Fan an upload out to every live replica; the front-door request
    /// completes when the slowest replica has it, and faults if any
    /// replica faulted.
    fn broadcast(self: &Rc<Self>, sim: &mut Sim, span: SpanId, req: Request, done: Responder) {
        let targets: Vec<usize> = {
            let slots = self.slots.borrow();
            slots
                .iter()
                .enumerate()
                .filter(|(_, s)| !s.draining)
                .map(|(i, _)| i)
                .collect()
        };
        if targets.is_empty() {
            self.shed(sim, span, "no replicas in rotation", done);
            return;
        }
        self.counters.borrow_mut().accepted += 1;
        self.in_flight.set(self.in_flight.get() + 1);
        sim.counter_add("dispatcher.accepted", 1);
        sim.span_attr(span, "fanout", targets.len() as u64);
        let hook = self.upload_hook.borrow_mut().take();
        if let Some(hook) = hook {
            hook(sim, &req);
            // re-arm unless the hook replaced itself
            let mut h = self.upload_hook.borrow_mut();
            if h.is_none() {
                *h = Some(hook);
            }
        }
        let remaining = Rc::new(Cell::new(targets.len()));
        let first_fault: Rc<RefCell<Option<SoapFault>>> = Rc::new(RefCell::new(None));
        let done = Rc::new(RefCell::new(Some(done)));
        // register every branch as an op first (ejecting a target backend
        // then resolves its branch as a fault instead of hanging the join),
        // serve after — so a synchronous completion can't shift the indices
        // we are iterating.
        let mut branches: Vec<(u64, Rc<dyn Backend>)> = Vec::with_capacity(targets.len());
        for i in targets {
            let this = Rc::clone(self);
            let remaining = Rc::clone(&remaining);
            let first_fault = Rc::clone(&first_fault);
            let done = Rc::clone(&done);
            let (op_id, backend, _) = self.register_op(
                sim,
                i,
                Box::new(move |sim, outcome| {
                    let res = match outcome {
                        OpOutcome::Answered(res) => res,
                        OpOutcome::BackendLost(lost) => Err(SoapFault::server(&format!(
                            "replica {lost} lost during upload"
                        ))),
                    };
                    if let Err(f) = res {
                        first_fault.borrow_mut().get_or_insert(f);
                    }
                    remaining.set(remaining.get() - 1);
                    if remaining.get() == 0 {
                        let ok = first_fault.borrow().is_none();
                        this.close_front_door(sim, span, ok);
                        let done = done.borrow_mut().take().expect("single join");
                        match first_fault.borrow_mut().take() {
                            None => done(sim, Ok(SoapValue::Bool(true))),
                            Some(f) => done(sim, Err(f)),
                        }
                    }
                }),
            );
            branches.push((op_id, backend));
        }
        for (op_id, backend) in branches {
            let this = Rc::clone(self);
            let prev = sim.set_span_parent(span);
            backend.serve(
                sim,
                req.clone(),
                Box::new(move |sim, res| this.op_answered(sim, op_id, res)),
            );
            sim.set_span_parent(prev);
        }
    }

    // -- op table -----------------------------------------------------------

    /// Register one attempt on the slot at `idx`: allocate an op id, note
    /// it on the slot, arm the watchdog. Returns `(op id, backend, whether
    /// the attempt queued behind other work on that backend)`.
    fn register_op(
        self: &Rc<Self>,
        sim: &mut Sim,
        idx: usize,
        complete: OpComplete,
    ) -> (u64, Rc<dyn Backend>, bool) {
        let op_id = self.next_op.get();
        self.next_op.set(op_id + 1);
        let (backend, queued, depth) = {
            let mut slots = self.slots.borrow_mut();
            let slot = &mut slots[idx];
            slot.ops.push(op_id);
            (Rc::clone(&slot.backend), slot.ops.len() > 1, slot.ops.len())
        };
        if let Some(plane) = self.health.borrow().as_ref() {
            plane.record_depth(sim.now(), backend.name(), depth as u64);
        }
        let timeout = self.cfg.request_timeout.map(|t| {
            let this = Rc::clone(self);
            sim.schedule(t, move |sim| this.op_timed_out(sim, op_id))
        });
        self.ops.borrow_mut().insert(
            op_id,
            PendingOp {
                backend: backend.name().to_owned(),
                complete,
                timeout,
                started: sim.now(),
            },
        );
        (op_id, backend, queued)
    }

    /// A backend's `done` fired. Stale ops (already resolved by an eject)
    /// are dropped here — this is what makes a dead replica's late answer
    /// a no-op instead of a double-settle.
    fn op_answered(self: &Rc<Self>, sim: &mut Sim, op_id: u64, res: Result<SoapValue, SoapFault>) {
        let Some(op) = self.take_op(sim, op_id) else {
            return; // zombie response from an ejected backend
        };
        if let Some(plane) = self.health.borrow().as_ref() {
            plane.record_attempt(sim.now(), &op.backend, sim.now() - op.started, res.is_err());
        }
        // fault-signal detection: an error from a backend that reports
        // unhealthy is a loss, not an application fault
        let lost = res.is_err() && !self.backend_healthy(&op.backend);
        let outcome = if lost {
            OpOutcome::BackendLost(op.backend.clone())
        } else {
            OpOutcome::Answered(res)
        };
        (op.complete)(sim, outcome);
    }

    /// Remove an op from the table and its slot; cancels the watchdog and
    /// retires a draining slot that just went idle. `None` if the op was
    /// already resolved.
    fn take_op(&self, sim: &mut Sim, op_id: u64) -> Option<PendingOp> {
        let op = self.ops.borrow_mut().remove(&op_id)?;
        if let Some(ev) = op.timeout {
            sim.cancel_event(ev);
        }
        let retire = {
            let mut slots = self.slots.borrow_mut();
            match slots.iter_mut().find(|s| s.ops.contains(&op_id)) {
                None => false, // slot already ejected
                Some(slot) => {
                    slot.ops.retain(|&o| o != op_id);
                    slot.draining && slot.ops.is_empty()
                }
            }
        };
        if retire {
            self.retire(sim, &op.backend);
        }
        Some(op)
    }

    /// Watchdog: an attempt went unanswered for `request_timeout`. The
    /// whole backend is suspect — eject it, which resolves this op and
    /// every other op outstanding on it as lost.
    fn op_timed_out(self: &Rc<Self>, sim: &mut Sim, op_id: u64) {
        let name = match self.ops.borrow().get(&op_id) {
            Some(op) => op.backend.clone(),
            None => return,
        };
        sim.counter_add("dispatcher.timeout", 1);
        self.eject_backend(sim, &name);
    }

    /// Park every op outstanding on `site`'s replicas across an outage:
    /// each watchdog is re-armed to `reconnect_at + request_timeout`, so
    /// work already inside the partition is *waited out* instead of
    /// ejected — the severed site holds its answers and delivers them on
    /// reconnect (see [`GeoPlane`] outage semantics), which is what makes
    /// a federated site outage lose nothing. No-op without a geo plane or
    /// without a request timeout (nothing to re-arm). Returns how many
    /// ops were parked.
    pub fn park_site(self: &Rc<Self>, sim: &mut Sim, site: &str, reconnect_at: SimTime) -> usize {
        let Some(g) = self.geo.borrow().clone() else {
            return 0;
        };
        let Some(grace) = self.cfg.request_timeout else {
            return 0;
        };
        let targets: Vec<u64> = {
            let slots = self.slots.borrow();
            slots
                .iter()
                .filter(|s| g.site_of(s.backend.name()).as_deref() == Some(site))
                .flat_map(|s| s.ops.iter().copied())
                .collect()
        };
        let mut parked = 0usize;
        for id in targets {
            let old = match self.ops.borrow_mut().get_mut(&id) {
                None => continue,
                Some(op) => op.timeout.take(),
            };
            if let Some(ev) = old {
                sim.cancel_event(ev);
            }
            let this = Rc::clone(self);
            let ev = sim.schedule((reconnect_at - sim.now()) + grace, move |sim| {
                this.op_timed_out(sim, id)
            });
            if let Some(op) = self.ops.borrow_mut().get_mut(&id) {
                op.timeout = Some(ev);
            }
            parked += 1;
        }
        if parked > 0 {
            sim.counter_add("dispatcher.parked", parked as u64);
        }
        parked
    }

    /// Live (non-draining) backends with the count of affinity pins each
    /// currently holds — zero-pin backends included. The autoscaler's
    /// scale-down victim choice keys on this: evicting the least-pinned
    /// replica orphans the fewest sessions.
    pub fn live_pin_counts(&self) -> BTreeMap<String, usize> {
        let mut counts: BTreeMap<String, usize> = self
            .slots
            .borrow()
            .iter()
            .filter(|s| !s.draining)
            .map(|s| (s.backend.name().to_owned(), 0))
            .collect();
        for p in self.affinity.borrow().pins.values() {
            if let Pin::Live(r) = p {
                if let Some(c) = counts.get_mut(r) {
                    *c += 1;
                }
            }
        }
        counts
    }

    /// Divert `share_pct`% of first-sight routes to `target` for a
    /// canary judgment window. Deterministic (counter-based, no RNG);
    /// the counter restarts at zero so same-seed replays shift the same
    /// requests. Pinned principals are untouched — shift those
    /// explicitly with [`Dispatcher::shift_pins`].
    pub fn set_canary(&self, target: &str, share_pct: u32) {
        assert!(share_pct <= 100, "canary share is a percentage");
        *self.canary.borrow_mut() = Some(CanaryShare {
            target: target.to_owned(),
            share_pct,
            cursor: Cell::new(0),
        });
    }

    /// End the canary share: first-sight routing reverts to the base
    /// policy.
    pub fn clear_canary(&self) {
        *self.canary.borrow_mut() = None;
    }

    /// The replica currently receiving the canary share, if any.
    pub fn canary_target(&self) -> Option<String> {
        self.canary.borrow().as_ref().map(|c| c.target.clone())
    }

    /// Shift the top `fraction` of live affinity pins onto `target`,
    /// ranked by [`rendezvous_score`]`(key, target)` — the same hash
    /// that reassigns pins after a loss, so the shifted set is a pure
    /// function of (pinned keys, target) and each shifted principal
    /// re-authenticates exactly once, on its first request to `target`.
    /// Pins already on `target` are skipped. Returns the shifted
    /// `(principal, previous replica)` pairs in rank order, the undo
    /// log for [`Dispatcher::restore_pins`].
    pub fn shift_pins(&self, target: &str, fraction: f64) -> Vec<(String, String)> {
        assert!((0.0..=1.0).contains(&fraction), "fraction in [0, 1]");
        let mut table = self.affinity.borrow_mut();
        let mut ranked: Vec<(u64, String, String)> = table
            .pins
            .iter()
            .filter_map(|(k, p)| match p {
                Pin::Live(r) if r != target => {
                    Some((rendezvous_score(k, target), k.clone(), r.clone()))
                }
                _ => None,
            })
            .collect();
        ranked.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
        let n = (ranked.len() as f64 * fraction).round() as usize;
        ranked.truncate(n);
        let mut shifted = Vec::with_capacity(ranked.len());
        for (_, key, prev) in ranked {
            if let Some(p) = table.pins.get_mut(&key) {
                *p = Pin::Live(target.to_owned());
            }
            shifted.push((key, prev));
        }
        shifted
    }

    /// Undo a [`Dispatcher::shift_pins`]: every pin still on `target`
    /// goes back to its previous replica (or is orphaned for rendezvous
    /// reassignment when that replica has since left rotation). Pins no
    /// longer on `target` — orphaned by a canary crash, evicted, or
    /// re-pinned — are left alone. Returns how many pins were restored.
    pub fn restore_pins(&self, target: &str, shifted: &[(String, String)]) -> usize {
        let slots = self.slots.borrow();
        let is_live =
            |name: &str| slots.iter().any(|s| !s.draining && s.backend.name() == name);
        let mut table = self.affinity.borrow_mut();
        let mut restored = 0;
        for (key, prev) in shifted {
            let Some(p) = table.pins.get_mut(key) else {
                continue;
            };
            if !matches!(p, Pin::Live(r) if r == target) {
                continue;
            }
            *p = if is_live(prev) {
                Pin::Live(prev.clone())
            } else {
                Pin::Orphaned(prev.clone())
            };
            restored += 1;
        }
        restored
    }

    /// The replica `key`'s live affinity pin targets, if any (orphaned
    /// pins return `None`).
    pub fn pin_target(&self, key: &str) -> Option<String> {
        match self.affinity.borrow().pins.get(key) {
            Some(Pin::Live(r)) => Some(r.clone()),
            _ => None,
        }
    }

    /// Every live affinity pin as sorted `(principal, replica)` pairs —
    /// the rollout proptests' pin-validity witness.
    pub fn live_pins(&self) -> Vec<(String, String)> {
        let mut pins: Vec<(String, String)> = self
            .affinity
            .borrow()
            .pins
            .iter()
            .filter_map(|(k, p)| match p {
                Pin::Live(r) => Some((k.clone(), r.clone())),
                Pin::Orphaned(_) => None,
            })
            .collect();
        pins.sort();
        pins
    }

    /// Attempts currently outstanding on the named backend (0 if it is
    /// not in rotation).
    pub fn outstanding_on(&self, name: &str) -> usize {
        self.slots
            .borrow()
            .iter()
            .find(|s| s.backend.name() == name)
            .map_or(0, Slot::outstanding)
    }

    /// Does the named backend report healthy? Unknown backends (already
    /// ejected) count as unhealthy.
    fn backend_healthy(&self, name: &str) -> bool {
        self.slots
            .borrow()
            .iter()
            .find(|s| s.backend.name() == name)
            .is_some_and(|s| s.backend.healthy())
    }

    /// Throw a backend out of rotation *now*, no drain: the involuntary
    /// loss path. Every op outstanding on it resolves as lost — retried
    /// for invocations, faulted for upload branches — and any answer the
    /// dead backend produces later is dropped. The drain hook does NOT
    /// fire (nothing drained); the owner handles teardown itself. Returns
    /// `false` if no backend has that name.
    pub fn eject_backend(self: &Rc<Self>, sim: &mut Sim, name: &str) -> bool {
        let lost_ops: Vec<u64> = {
            let mut slots = self.slots.borrow_mut();
            match slots.iter().position(|s| s.backend.name() == name) {
                None => return false,
                Some(i) => slots.remove(i).ops,
            }
        };
        self.counters.borrow_mut().ejected += 1;
        sim.counter_add("dispatcher.ejected", 1);
        // pins to the dead replica die with it; the keys reassign by
        // rendezvous hash on their next request
        self.affinity.borrow_mut().orphan_replica(name);
        let mut resolved: Vec<PendingOp> = Vec::with_capacity(lost_ops.len());
        {
            let mut ops = self.ops.borrow_mut();
            for id in lost_ops {
                if let Some(op) = ops.remove(&id) {
                    resolved.push(op);
                }
            }
        }
        // borrows dropped: completions may re-enter the dispatcher
        for op in resolved {
            if let Some(ev) = op.timeout {
                sim.cancel_event(ev);
            }
            if let Some(plane) = self.health.borrow().as_ref() {
                plane.record_attempt(sim.now(), &op.backend, sim.now() - op.started, true);
            }
            let name = op.backend.clone();
            (op.complete)(sim, OpOutcome::BackendLost(name));
        }
        true
    }

    /// Deterministic replica choice for one attempt; `None` when nothing
    /// is in rotation. With affinity on and a `key`, the second element
    /// labels the routing outcome (`hit` / `miss` / `repin`) for the
    /// dispatch span and counters.
    fn route(&self, sim: &Sim, key: Option<&str>) -> Option<(usize, Option<&'static str>)> {
        let slots = self.slots.borrow();
        let mut live: Vec<usize> = slots
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.draining)
            .map(|(i, _)| i)
            .collect();
        if live.is_empty() {
            return None;
        }
        // Probation weighting: while any live slot is on probation, most
        // routes consider only the clean subset; every `PROBE_EVERY`th
        // route goes to the probationers instead, so they keep receiving
        // a deterministic trickle of probe traffic for the detector to
        // score (enough to clear a recovered replica or finish off a
        // still-degraded one). When every live slot is probationed the
        // filter is a no-op (keep serving rather than shed). With nothing
        // on probation — the case every detector-off run is in — `live`
        // is untouched, so routing is bit-for-bit what it always was.
        if live.iter().any(|&i| slots[i].probation) {
            let k = self.probe_cursor.get();
            self.probe_cursor.set(k.wrapping_add(1));
            let (probed, clean): (Vec<usize>, Vec<usize>) =
                live.iter().partition(|&&i| slots[i].probation);
            if !clean.is_empty() {
                live = if k.is_multiple_of(PROBE_EVERY) { probed } else { clean };
            }
        }
        // Geo filter: replicas on a severed site leave the candidate set
        // for the length of the outage window. With no plane attached (or
        // no replica placed) the set is untouched — bit-for-bit the old
        // routing. When every placed site is dark the request sheds at
        // the door rather than being fed into a partition.
        let geo = self.geo.borrow().clone();
        if let Some(g) = &geo {
            let now = sim.now();
            let up: Vec<usize> = live
                .iter()
                .copied()
                .filter(|&i| {
                    g.site_of(slots[i].backend.name())
                        .is_none_or(|site| !g.is_down(&site, now))
                })
                .collect();
            if up.is_empty() {
                return None;
            }
            live = up;
        }
        let (Some(aff), Some(key)) = (self.cfg.affinity, key) else {
            if let Some(i) = self.canary_first_sight(&slots, &live) {
                return Some((i, None));
            }
            return Some((self.pick_first_sight(sim, geo.as_deref(), &slots, &live), None));
        };
        let mut table = self.affinity.borrow_mut();
        match table.pins.get(key) {
            // sticky path: the pinned replica is live and non-draining
            // (eject/drain orphan the pin, so a Live pin always resolves;
            // the find is the belt-and-braces liveness check)
            Some(Pin::Live(replica)) => {
                if let Some(&i) = live.iter().find(|&&i| slots[i].backend.name() == replica) {
                    return Some((i, Some("hit")));
                }
                if let Some(g) = &geo {
                    let home = g.site_of(replica);
                    // HTCondor-C-style forwarding: the pinned replica is
                    // still in rotation but its site is severed. Serve the
                    // principal from the nearest healthy peer *without*
                    // re-pinning — the pin survives the outage, so the
                    // session comes home on reconnect.
                    let severed = home.as_deref().is_some_and(|s| g.is_down(s, sim.now()));
                    let in_rotation = slots
                        .iter()
                        .any(|s| !s.draining && s.backend.name() == replica);
                    if g.federation() && severed && in_rotation {
                        let i = Self::pick_geo_rendezvous(g, key, &slots, &live, home.as_deref());
                        g.note_forward();
                        return Some((i, Some("forward")));
                    }
                    let i = Self::pick_geo_rendezvous(g, key, &slots, &live, home.as_deref());
                    table.pin(key, slots[i].backend.name(), aff.capacity);
                    return Some((i, Some("repin")));
                }
                let i = Self::pick_rendezvous(key, &slots, &live);
                table.pin(key, slots[i].backend.name(), aff.capacity);
                Some((i, Some("repin")))
            }
            // the pin died with its replica: deterministic reassignment,
            // a pure function of (key, live names) — independent of how
            // retries interleaved with the loss. With a geo plane the
            // reassignment prefers peers of the dead replica's home site
            // (placements outlive the replica), keeping sessions local.
            Some(Pin::Orphaned(dead)) => {
                let i = match &geo {
                    Some(g) => {
                        let home = g.site_of(dead);
                        Self::pick_geo_rendezvous(g, key, &slots, &live, home.as_deref())
                    }
                    None => Self::pick_rendezvous(key, &slots, &live),
                };
                table.pin(key, slots[i].backend.name(), aff.capacity);
                Some((i, Some("repin")))
            }
            // first sight of the key: the canary takes its share, then
            // the base policy spreads the rest; either way the choice
            // sticks
            None => {
                let i = self
                    .canary_first_sight(&slots, &live)
                    .unwrap_or_else(|| self.pick_first_sight(sim, geo.as_deref(), &slots, &live));
                table.pin(key, slots[i].backend.name(), aff.capacity);
                Some((i, Some("miss")))
            }
        }
    }

    /// The canary's claim on this first-sight route, if a share is set:
    /// route `k` (counter, not clock) goes to the canary iff
    /// `k % 100 < share_pct` and the canary is in the live set. A
    /// crashed or draining canary simply stops claiming routes.
    fn canary_first_sight(&self, slots: &[Slot], live: &[usize]) -> Option<usize> {
        let canary = self.canary.borrow();
        let c = canary.as_ref()?;
        let k = c.cursor.get();
        c.cursor.set(k.wrapping_add(1));
        if k % 100 >= u64::from(c.share_pct) {
            return None;
        }
        live.iter()
            .copied()
            .find(|&i| slots[i].backend.name() == c.target)
    }

    /// First-sight pick: nearest-site under a geo plane, plain base
    /// policy without one.
    fn pick_first_sight(
        &self,
        sim: &Sim,
        geo: Option<&GeoPlane>,
        slots: &[Slot],
        live: &[usize],
    ) -> usize {
        let Some(g) = geo else {
            return self.pick_base(sim, slots, live);
        };
        let origin = g.origin();
        let spill = g.spill_threshold();
        // walk sites outward from the request's origin; the base policy
        // balances *within* the first site that has an open replica
        for site in g.map().nearest_order(&origin) {
            let cands: Vec<usize> = live
                .iter()
                .copied()
                .filter(|&i| g.site_of(slots[i].backend.name()).as_deref() == Some(site.as_str()))
                .collect();
            if cands.is_empty() {
                continue;
            }
            let open: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&i| slots[i].outstanding() < spill)
                .collect();
            if !open.is_empty() {
                return self.pick_base(sim, slots, &open);
            }
            // this site is saturated: spill to the next-nearest one
        }
        // every placed site saturated, or no replica placed at all
        self.pick_base(sim, slots, live)
    }

    /// Rendezvous pick preferring peers of the `home` site: the nearest
    /// site (ordered from `home`) holding any live candidate wins, and
    /// the rendezvous hash breaks ties within it — so cross-site failover
    /// is a pure function of (key, home, live names, outage schedule).
    fn pick_geo_rendezvous(
        g: &GeoPlane,
        key: &str,
        slots: &[Slot],
        live: &[usize],
        home: Option<&str>,
    ) -> usize {
        if let Some(home) = home {
            for site in g.map().nearest_order(home) {
                let cands: Vec<usize> = live
                    .iter()
                    .copied()
                    .filter(|&i| {
                        g.site_of(slots[i].backend.name()).as_deref() == Some(site.as_str())
                    })
                    .collect();
                if !cands.is_empty() {
                    return Self::pick_rendezvous(key, slots, &cands);
                }
            }
        }
        Self::pick_rendezvous(key, slots, live)
    }

    /// Highest rendezvous score over the live set wins.
    fn pick_rendezvous(key: &str, slots: &[Slot], live: &[usize]) -> usize {
        let mut best = live[0];
        let mut best_score = rendezvous_score(key, slots[best].backend.name());
        for &i in &live[1..] {
            let s = rendezvous_score(key, slots[i].backend.name());
            if s > best_score {
                best = i;
                best_score = s;
            }
        }
        best
    }

    /// The configured base [`Policy`] over the live set.
    fn pick_base(&self, sim: &Sim, slots: &[Slot], live: &[usize]) -> usize {
        match self.cfg.policy {
            Policy::RoundRobin => {
                let k = self.rr_cursor.get();
                self.rr_cursor.set(k.wrapping_add(1));
                live[k % live.len()]
            }
            Policy::LeastOutstanding => {
                let mut best = live[0];
                for &i in &live[1..] {
                    if slots[i].outstanding() < slots[best].outstanding() {
                        best = i;
                    }
                }
                best
            }
            Policy::UtilizationWeighted => {
                let recorder = sim.recorder_ref();
                let busy = |i: usize| -> f64 { recorder.total(&slots[i].busy_key) };
                let mut best = live[0];
                let mut best_busy = busy(best);
                for &i in &live[1..] {
                    let b = busy(i);
                    if b < best_busy {
                        best = i;
                        best_busy = b;
                    }
                }
                best
            }
        }
    }

    /// Front-door bookkeeping for one finished request.
    fn close_front_door(self: &Rc<Self>, sim: &mut Sim, span: SpanId, ok: bool) {
        self.in_flight.set(self.in_flight.get() - 1);
        let mut c = self.counters.borrow_mut();
        if ok {
            c.completed += 1;
            drop(c);
            sim.counter_add("dispatcher.completed", 1);
            sim.span_end(span);
        } else {
            c.faulted += 1;
            drop(c);
            sim.counter_add("dispatcher.faulted", 1);
            sim.span_fail(span, "replica returned a fault");
        }
        // a slot just opened: let door-queued tenants in (no-op with QoS off)
        self.qos_dispatch_queued(sim);
    }

    /// Drop a drained slot and notify the owner.
    fn retire(&self, sim: &mut Sim, name: &str) {
        self.slots
            .borrow_mut()
            .retain(|s| !(s.draining && s.ops.is_empty() && s.backend.name() == name));
        let hook = self.drain_hook.borrow_mut().take();
        if let Some(hook) = hook {
            hook(sim, name);
            let mut h = self.drain_hook.borrow_mut();
            if h.is_none() {
                *h = Some(hook);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::Duration;

    /// Serves every request after a fixed delay; can be told to fault.
    struct Echo {
        name: String,
        delay: Duration,
        fault: bool,
        served: Cell<u64>,
    }

    impl Echo {
        fn new(name: &str, delay_ms: u64) -> Rc<Echo> {
            Rc::new(Echo {
                name: name.into(),
                delay: Duration::from_millis(delay_ms),
                fault: false,
                served: Cell::new(0),
            })
        }
    }

    impl Backend for Echo {
        fn name(&self) -> &str {
            &self.name
        }
        fn serve(&self, sim: &mut Sim, _req: Request, done: Responder) {
            self.served.set(self.served.get() + 1);
            let fault = self.fault;
            sim.schedule(self.delay, move |sim| {
                if fault {
                    done(sim, Err(SoapFault::server("echo fault")));
                } else {
                    done(sim, Ok(SoapValue::Bool(true)));
                }
            });
        }
    }

    fn invoke() -> Request {
        Request::Invoke {
            service: "svc".into(),
            args: Vec::new(),
            principal: None,
        }
    }

    fn invoke_as(principal: &str) -> Request {
        Request::Invoke {
            service: "svc".into(),
            args: Vec::new(),
            principal: Some(principal.into()),
        }
    }

    #[test]
    fn round_robin_cycles() {
        let mut sim = Sim::new(1);
        let d = Dispatcher::new(DispatcherConfig {
            policy: Policy::RoundRobin,
            max_in_flight: 16,
            ..DispatcherConfig::default()
        });
        let (a, b) = (Echo::new("a", 10), Echo::new("b", 10));
        d.add_backend(a.clone());
        d.add_backend(b.clone());
        for _ in 0..6 {
            d.submit(&mut sim, invoke(), Box::new(|_, r| assert!(r.is_ok())));
        }
        sim.run();
        assert_eq!(a.served.get(), 3);
        assert_eq!(b.served.get(), 3);
        assert_eq!(d.counters().completed, 6);
        assert_eq!(d.in_flight(), 0);
    }

    #[test]
    fn least_outstanding_prefers_idle() {
        let mut sim = Sim::new(2);
        let d = Dispatcher::new(DispatcherConfig {
            policy: Policy::LeastOutstanding,
            max_in_flight: 16,
            ..DispatcherConfig::default()
        });
        // a is slow, so it stays loaded; b should absorb the burst
        let (a, b) = (Echo::new("a", 10_000), Echo::new("b", 10));
        d.add_backend(a.clone());
        d.add_backend(b.clone());
        d.submit(&mut sim, invoke(), Box::new(|_, _| {})); // lands on a
        // staggered arrivals: b finishes each before the next arrives, so
        // least-outstanding keeps preferring it over the loaded a
        for k in 0..4u64 {
            let d2 = Rc::clone(&d);
            sim.schedule(Duration::from_millis(100 + 50 * k), move |sim| {
                d2.submit(sim, invoke(), Box::new(|_, _| {}));
            });
        }
        sim.run();
        assert_eq!(a.served.get(), 1);
        assert_eq!(b.served.get(), 4);
    }

    #[test]
    fn admission_limit_sheds_with_fault() {
        let mut sim = Sim::new(3);
        let d = Dispatcher::new(DispatcherConfig {
            policy: Policy::RoundRobin,
            max_in_flight: 2,
            ..DispatcherConfig::default()
        });
        d.add_backend(Echo::new("a", 1000));
        let shed_seen = Rc::new(Cell::new(0u32));
        for _ in 0..5 {
            let s = shed_seen.clone();
            d.submit(
                &mut sim,
                invoke(),
                Box::new(move |_, r| {
                    if r.is_err() {
                        s.set(s.get() + 1);
                    }
                }),
            );
        }
        sim.run();
        let c = d.counters();
        assert_eq!(c.accepted, 2);
        assert_eq!(c.shed, 3);
        assert_eq!(shed_seen.get(), 3);
        assert_eq!(c.completed, 2);
    }

    #[test]
    fn no_backends_faults_every_request() {
        let mut sim = Sim::new(4);
        let d = Dispatcher::new(DispatcherConfig::default());
        let got = Rc::new(Cell::new(0u32));
        let g = got.clone();
        d.submit(
            &mut sim,
            invoke(),
            Box::new(move |_, r| {
                assert!(r.is_err());
                g.set(g.get() + 1);
            }),
        );
        sim.run();
        assert_eq!(got.get(), 1);
        assert_eq!(d.counters().shed, 1);
    }

    #[test]
    fn upload_broadcasts_to_all_live_backends() {
        let mut sim = Sim::new(5);
        let d = Dispatcher::new(DispatcherConfig::default());
        let (a, b, c) = (Echo::new("a", 10), Echo::new("b", 20), Echo::new("c", 30));
        d.add_backend(a.clone());
        d.add_backend(b.clone());
        d.add_backend(c.clone());
        let seen = Rc::new(Cell::new(0u32));
        let s = seen.clone();
        d.submit(
            &mut sim,
            Request::Upload {
                file_name: "f.exe".into(),
                len: 64,
                profile: ExecutionProfile::quick(),
            },
            Box::new(move |_, r| {
                assert!(r.is_ok());
                s.set(s.get() + 1);
            }),
        );
        sim.run();
        assert_eq!(seen.get(), 1, "join answers exactly once");
        assert_eq!(a.served.get() + b.served.get() + c.served.get(), 3);
        assert_eq!(d.counters().accepted, 1, "one front-door request");
        assert_eq!(d.counters().completed, 1);
    }

    #[test]
    fn drain_waits_for_outstanding_then_fires_hook() {
        let mut sim = Sim::new(6);
        let d = Dispatcher::new(DispatcherConfig {
            policy: Policy::RoundRobin,
            max_in_flight: 8,
            ..DispatcherConfig::default()
        });
        let (a, b) = (Echo::new("a", 500), Echo::new("b", 500));
        d.add_backend(a.clone());
        d.add_backend(b);
        d.submit(&mut sim, invoke(), Box::new(|_, _| {})); // on a
        let drained: Rc<RefCell<Vec<String>>> = Rc::new(RefCell::new(Vec::new()));
        let dr = drained.clone();
        d.set_drain_hook(move |_, name| dr.borrow_mut().push(name.to_owned()));
        assert!(d.remove_backend(&mut sim, "a"));
        assert!(!d.remove_backend(&mut sim, "a"), "already draining");
        assert_eq!(d.live_backends(), 1);
        assert!(drained.borrow().is_empty(), "still has work in flight");
        // new traffic avoids the draining replica
        d.submit(&mut sim, invoke(), Box::new(|_, _| {}));
        sim.run();
        assert_eq!(*drained.borrow(), vec!["a".to_owned()]);
        assert_eq!(a.served.get(), 1);
        assert_eq!(d.counters().completed, 2);
    }

    #[test]
    fn idle_backend_retires_immediately() {
        let mut sim = Sim::new(7);
        let d = Dispatcher::new(DispatcherConfig::default());
        d.add_backend(Echo::new("a", 10));
        d.add_backend(Echo::new("b", 10));
        let drained = Rc::new(Cell::new(0u32));
        let dr = drained.clone();
        d.set_drain_hook(move |_, _| dr.set(dr.get() + 1));
        assert!(d.remove_backend(&mut sim, "b"));
        assert_eq!(drained.get(), 1);
        assert_eq!(d.live_backends(), 1);
    }

    #[test]
    fn conservation_under_faults() {
        let mut sim = Sim::new(8);
        let d = Dispatcher::new(DispatcherConfig {
            policy: Policy::LeastOutstanding,
            max_in_flight: 4,
            ..DispatcherConfig::default()
        });
        let bad = Echo {
            name: "bad".into(),
            delay: Duration::from_millis(50),
            fault: true,
            served: Cell::new(0),
        };
        d.add_backend(Rc::new(bad));
        d.add_backend(Echo::new("good", 50));
        let answered = Rc::new(Cell::new(0u32));
        for i in 0..10 {
            let d2 = Rc::clone(&d);
            let a = answered.clone();
            sim.schedule(Duration::from_millis(i * 20), move |sim| {
                let a = a.clone();
                d2.submit(sim, invoke(), Box::new(move |_, _| a.set(a.get() + 1)));
            });
        }
        sim.run();
        let c = d.counters();
        assert_eq!(answered.get(), 10, "every request answered exactly once");
        assert_eq!(c.accepted + c.shed, 10);
        assert_eq!(c.accepted, c.completed + c.faulted);
        assert_eq!(d.in_flight(), 0);
    }

    /// Accepts requests and never answers them — a hung/dead backend.
    struct BlackHole {
        name: String,
        served: Cell<u64>,
        swallowed: RefCell<Vec<Responder>>,
    }

    impl BlackHole {
        fn new(name: &str) -> Rc<BlackHole> {
            Rc::new(BlackHole {
                name: name.into(),
                served: Cell::new(0),
                swallowed: RefCell::new(Vec::new()),
            })
        }
    }

    impl Backend for BlackHole {
        fn name(&self) -> &str {
            &self.name
        }
        fn serve(&self, _sim: &mut Sim, _req: Request, done: Responder) {
            self.served.set(self.served.get() + 1);
            self.swallowed.borrow_mut().push(done);
        }
    }

    fn retrying(policy: Policy, max_retries: u32) -> DispatcherConfig {
        DispatcherConfig {
            policy,
            max_in_flight: 16,
            retry: Some(RetryConfig {
                max_retries,
                ..RetryConfig::default()
            }),
            request_timeout: None,
            affinity: None,
        }
    }

    #[test]
    fn eject_retries_in_flight_work_on_the_survivor() {
        let mut sim = Sim::new(31);
        let d = Dispatcher::new(retrying(Policy::RoundRobin, 3));
        let hole = BlackHole::new("dead");
        let good = Echo::new("good", 10);
        d.add_backend(hole.clone()); // rr: first request lands here
        d.add_backend(good.clone());
        let got = Rc::new(Cell::new(0u32));
        let g = got.clone();
        d.submit(
            &mut sim,
            invoke(),
            Box::new(move |_, r| {
                assert!(r.is_ok(), "retried onto the survivor: {r:?}");
                g.set(g.get() + 1);
            }),
        );
        // the crash arrives while the request is swallowed
        let d2 = Rc::clone(&d);
        sim.schedule(Duration::from_millis(50), move |sim| {
            assert!(d2.eject_backend(sim, "dead"));
        });
        sim.run();
        assert_eq!(got.get(), 1, "answered exactly once");
        assert_eq!(hole.served.get(), 1);
        assert_eq!(good.served.get(), 1);
        let c = d.counters();
        assert_eq!((c.accepted, c.completed, c.faulted), (1, 1, 0));
        assert_eq!(c.retried, 1);
        assert_eq!(c.ejected, 1);
        assert_eq!(d.live_backends(), 1);
        assert_eq!(d.in_flight(), 0);
    }

    #[test]
    fn zombie_answer_after_eject_is_dropped() {
        let mut sim = Sim::new(32);
        let d = Dispatcher::new(retrying(Policy::RoundRobin, 3));
        let hole = BlackHole::new("dead");
        let good = Echo::new("good", 10);
        d.add_backend(hole.clone());
        d.add_backend(good.clone());
        let got = Rc::new(Cell::new(0u32));
        let g = got.clone();
        d.submit(&mut sim, invoke(), Box::new(move |_, _| g.set(g.get() + 1)));
        let d2 = Rc::clone(&d);
        let hole2 = Rc::clone(&hole);
        sim.schedule(Duration::from_millis(20), move |sim| {
            d2.eject_backend(sim, "dead");
            // the dead replica answers *after* the eject resolved the op
            for done in hole2.swallowed.borrow_mut().drain(..) {
                done(sim, Ok(SoapValue::Bool(true)));
            }
        });
        sim.run();
        assert_eq!(got.get(), 1, "the zombie answer did not double-settle");
        let c = d.counters();
        assert_eq!(c.accepted, c.completed + c.faulted);
        assert_eq!(d.in_flight(), 0);
    }

    #[test]
    fn retries_exhaust_into_a_soap_fault() {
        let mut sim = Sim::new(33);
        // both backends are black holes killed in sequence; cap of 1 retry
        let d = Dispatcher::new(retrying(Policy::RoundRobin, 1));
        let (h1, h2) = (BlackHole::new("h1"), BlackHole::new("h2"));
        d.add_backend(h1.clone());
        d.add_backend(h2.clone());
        let fault = Rc::new(Cell::new(false));
        let f = fault.clone();
        d.submit(
            &mut sim,
            invoke(),
            Box::new(move |_, r| f.set(r.is_err())),
        );
        let d2 = Rc::clone(&d);
        sim.schedule(Duration::from_millis(10), move |sim| {
            d2.eject_backend(sim, "h1");
        });
        let d3 = Rc::clone(&d);
        // after the backoff, the retry lands on h2; kill it too
        sim.schedule(Duration::from_secs(5), move |sim| {
            d3.eject_backend(sim, "h2");
        });
        sim.run();
        assert!(fault.get(), "cap hit → SOAP fault to the client");
        let c = d.counters();
        assert_eq!((c.accepted, c.completed, c.faulted), (1, 0, 1));
        assert_eq!(c.retried, 1, "exactly the capped retry was attempted");
    }

    #[test]
    fn retry_disabled_fail_fasts_the_loss() {
        let mut sim = Sim::new(34);
        let d = Dispatcher::new(DispatcherConfig {
            policy: Policy::RoundRobin,
            max_in_flight: 16,
            retry: None,
            request_timeout: None,
            affinity: None,
        });
        d.add_backend(BlackHole::new("dead"));
        d.add_backend(Echo::new("good", 10));
        let fault = Rc::new(Cell::new(false));
        let f = fault.clone();
        d.submit(
            &mut sim,
            invoke(),
            Box::new(move |_, r| f.set(r.is_err())),
        );
        let d2 = Rc::clone(&d);
        sim.schedule(Duration::from_millis(10), move |sim| {
            d2.eject_backend(sim, "dead");
        });
        sim.run();
        assert!(fault.get());
        let c = d.counters();
        assert_eq!((c.faulted, c.retried), (1, 0));
    }

    #[test]
    fn request_timeout_ejects_the_silent_backend_and_retries() {
        let mut sim = Sim::new(35);
        let d = Dispatcher::new(DispatcherConfig {
            policy: Policy::RoundRobin,
            max_in_flight: 16,
            retry: Some(RetryConfig::default()),
            request_timeout: Some(Duration::from_secs(10)),
            affinity: None,
        });
        let hole = BlackHole::new("silent");
        let good = Echo::new("good", 10);
        d.add_backend(hole.clone());
        d.add_backend(good.clone());
        let got = Rc::new(Cell::new(0u32));
        let g = got.clone();
        d.submit(
            &mut sim,
            invoke(),
            Box::new(move |_, r| {
                assert!(r.is_ok());
                g.set(g.get() + 1);
            }),
        );
        sim.run();
        assert_eq!(got.get(), 1, "watchdog fired, retry landed on survivor");
        assert_eq!(d.live_backends(), 1, "silent backend was ejected");
        let c = d.counters();
        assert_eq!((c.completed, c.retried, c.ejected), (1, 1, 1));
    }

    #[test]
    fn timeout_does_not_fire_for_answered_requests() {
        let mut sim = Sim::new(36);
        let d = Dispatcher::new(DispatcherConfig {
            policy: Policy::RoundRobin,
            max_in_flight: 16,
            retry: Some(RetryConfig::default()),
            request_timeout: Some(Duration::from_secs(10)),
            affinity: None,
        });
        d.add_backend(Echo::new("a", 100)); // answers well inside the window
        for _ in 0..5 {
            d.submit(&mut sim, invoke(), Box::new(|_, r| assert!(r.is_ok())));
        }
        sim.run();
        let c = d.counters();
        assert_eq!((c.completed, c.ejected, c.retried), (5, 0, 0));
        assert_eq!(d.live_backends(), 1);
    }

    #[test]
    fn eject_mid_broadcast_faults_the_upload_join() {
        let mut sim = Sim::new(37);
        let d = Dispatcher::new(retrying(Policy::RoundRobin, 3));
        let hole = BlackHole::new("dead");
        let good = Echo::new("good", 10);
        d.add_backend(hole.clone());
        d.add_backend(good.clone());
        let got = Rc::new(Cell::new(0u32));
        let g = got.clone();
        d.submit(
            &mut sim,
            Request::Upload {
                file_name: "f.exe".into(),
                len: 64,
                profile: ExecutionProfile::quick(),
            },
            Box::new(move |_, r| {
                // uploads are at-most-once: the lost branch faults the join
                assert!(r.is_err());
                g.set(g.get() + 1);
            }),
        );
        let d2 = Rc::clone(&d);
        sim.schedule(Duration::from_millis(20), move |sim| {
            d2.eject_backend(sim, "dead");
        });
        sim.run();
        assert_eq!(got.get(), 1, "join answered exactly once despite the loss");
        let c = d.counters();
        assert_eq!(c.accepted, c.completed + c.faulted);
        assert_eq!((c.faulted, c.retried), (1, 0));
        assert_eq!(d.in_flight(), 0);
    }

    #[test]
    fn ejecting_every_backend_sheds_new_arrivals() {
        let mut sim = Sim::new(38);
        let d = Dispatcher::new(retrying(Policy::RoundRobin, 3));
        d.add_backend(Echo::new("only", 10));
        let d2 = Rc::clone(&d);
        sim.schedule(Duration::from_millis(5), move |sim| {
            d2.eject_backend(sim, "only");
        });
        let d3 = Rc::clone(&d);
        let shed = Rc::new(Cell::new(false));
        let s = shed.clone();
        sim.schedule(Duration::from_millis(10), move |sim| {
            d3.submit(
                sim,
                invoke(),
                Box::new(move |_, r| s.set(r.is_err())),
            );
        });
        sim.run();
        assert!(shed.get(), "no backends at all → immediate SOAP fault");
        assert_eq!(d.counters().shed, 1);
    }

    fn sticky(policy: Policy) -> DispatcherConfig {
        DispatcherConfig {
            policy,
            max_in_flight: 64,
            affinity: Some(AffinityConfig::default()),
            ..DispatcherConfig::default()
        }
    }

    #[test]
    fn affinity_pins_a_principal_to_one_replica() {
        let mut sim = Sim::new(40);
        let d = Dispatcher::new(sticky(Policy::RoundRobin));
        let backends: Vec<Rc<Echo>> = (0..3).map(|i| Echo::new(&format!("r{i}"), 10)).collect();
        for b in &backends {
            d.add_backend(b.clone());
        }
        for _ in 0..9 {
            d.submit(&mut sim, invoke_as("alice"), Box::new(|_, r| assert!(r.is_ok())));
            sim.run();
        }
        // round-robin would spread 3/3/3; affinity keeps all 9 together
        let served: Vec<u64> = backends.iter().map(|b| b.served.get()).collect();
        assert_eq!(served.iter().sum::<u64>(), 9);
        assert_eq!(served.iter().filter(|&&n| n > 0).count(), 1, "{served:?}");
        let c = d.counters();
        assert_eq!((c.affinity_misses, c.affinity_hits, c.affinity_repins), (1, 8, 0));
    }

    #[test]
    fn affinity_first_sight_spreads_by_base_policy() {
        let mut sim = Sim::new(41);
        let d = Dispatcher::new(sticky(Policy::RoundRobin));
        let backends: Vec<Rc<Echo>> = (0..3).map(|i| Echo::new(&format!("r{i}"), 10)).collect();
        for b in &backends {
            d.add_backend(b.clone());
        }
        // three fresh principals, two requests each: round-robin assigns
        // each principal its own replica, then stickiness holds
        for user in ["a", "b", "c"] {
            d.submit(&mut sim, invoke_as(user), Box::new(|_, r| assert!(r.is_ok())));
        }
        sim.run();
        for user in ["a", "b", "c"] {
            d.submit(&mut sim, invoke_as(user), Box::new(|_, r| assert!(r.is_ok())));
        }
        sim.run();
        let served: Vec<u64> = backends.iter().map(|b| b.served.get()).collect();
        assert_eq!(served, vec![2, 2, 2], "one principal per replica, sticky");
        let c = d.counters();
        assert_eq!((c.affinity_misses, c.affinity_hits), (3, 3));
    }

    #[test]
    fn affinity_requests_without_principal_use_base_policy() {
        let mut sim = Sim::new(42);
        let d = Dispatcher::new(sticky(Policy::RoundRobin));
        let backends: Vec<Rc<Echo>> = (0..2).map(|i| Echo::new(&format!("r{i}"), 10)).collect();
        for b in &backends {
            d.add_backend(b.clone());
        }
        for _ in 0..6 {
            d.submit(&mut sim, invoke(), Box::new(|_, r| assert!(r.is_ok())));
        }
        sim.run();
        let served: Vec<u64> = backends.iter().map(|b| b.served.get()).collect();
        assert_eq!(served, vec![3, 3], "no principal → plain round-robin");
        let c = d.counters();
        assert_eq!((c.affinity_misses, c.affinity_hits, c.affinity_repins), (0, 0, 0));
    }

    #[test]
    fn affinity_repins_by_rendezvous_after_eject() {
        let mut sim = Sim::new(43);
        let d = Dispatcher::new(sticky(Policy::RoundRobin));
        let backends: Vec<Rc<Echo>> = (0..3).map(|i| Echo::new(&format!("r{i}"), 10)).collect();
        for b in &backends {
            d.add_backend(b.clone());
        }
        d.submit(&mut sim, invoke_as("alice"), Box::new(|_, r| assert!(r.is_ok())));
        sim.run();
        let pinned = backends
            .iter()
            .position(|b| b.served.get() == 1)
            .expect("first request pinned somewhere");
        assert!(d.eject_backend(&mut sim, &format!("r{pinned}")));
        d.submit(&mut sim, invoke_as("alice"), Box::new(|_, r| assert!(r.is_ok())));
        sim.run();
        // the reassignment must equal the rendezvous argmax over survivors
        let expect = (0..3)
            .filter(|&i| i != pinned)
            .max_by_key(|&i| rendezvous_score("alice", &format!("r{i}")))
            .unwrap();
        assert_eq!(backends[expect].served.get(), 1, "repinned off-rendezvous");
        let c = d.counters();
        assert_eq!((c.affinity_misses, c.affinity_hits, c.affinity_repins), (1, 0, 1));
        // and the new pin sticks
        d.submit(&mut sim, invoke_as("alice"), Box::new(|_, r| assert!(r.is_ok())));
        sim.run();
        assert_eq!(backends[expect].served.get(), 2);
        assert_eq!(d.counters().affinity_hits, 1);
    }

    #[test]
    fn affinity_never_routes_to_a_draining_replica() {
        let mut sim = Sim::new(44);
        let d = Dispatcher::new(sticky(Policy::RoundRobin));
        let backends: Vec<Rc<Echo>> = (0..2).map(|i| Echo::new(&format!("r{i}"), 10)).collect();
        for b in &backends {
            d.add_backend(b.clone());
        }
        d.submit(&mut sim, invoke_as("alice"), Box::new(|_, r| assert!(r.is_ok())));
        sim.run();
        let pinned = backends.iter().position(|b| b.served.get() == 1).unwrap();
        // drain the pinned replica: the pin must be invalidated immediately
        assert!(d.remove_backend(&mut sim, &format!("r{pinned}")));
        for _ in 0..4 {
            d.submit(&mut sim, invoke_as("alice"), Box::new(|_, r| assert!(r.is_ok())));
            sim.run();
        }
        assert_eq!(backends[pinned].served.get(), 1, "drained replica took new work");
        assert_eq!(backends[1 - pinned].served.get(), 4);
        assert_eq!(d.counters().affinity_repins, 1, "one rendezvous reassignment");
    }

    #[test]
    fn affinity_table_capacity_evicts_the_oldest_key() {
        let mut sim = Sim::new(45);
        let d = Dispatcher::new(DispatcherConfig {
            policy: Policy::RoundRobin,
            max_in_flight: 64,
            affinity: Some(AffinityConfig { capacity: 2 }),
            ..DispatcherConfig::default()
        });
        d.add_backend(Echo::new("r0", 10));
        d.add_backend(Echo::new("r1", 10));
        for user in ["a", "b"] {
            d.submit(&mut sim, invoke_as(user), Box::new(|_, _| {}));
            sim.run();
        }
        assert_eq!(d.counters().affinity_misses, 2);
        // "c" evicts "a" (oldest); "a" then re-enters as a fresh miss
        d.submit(&mut sim, invoke_as("c"), Box::new(|_, _| {}));
        sim.run();
        d.submit(&mut sim, invoke_as("a"), Box::new(|_, _| {}));
        sim.run();
        let c = d.counters();
        assert_eq!(c.affinity_misses, 4, "evicted key must not hit");
        // "a" re-entering displaced "b"; "c" is the one still pinned
        d.submit(&mut sim, invoke_as("c"), Box::new(|_, _| {}));
        sim.run();
        assert_eq!(d.counters().affinity_hits, 1);
    }

    #[test]
    fn utilization_weighted_reads_the_same_rollup_as_the_kernel_profile() {
        // the slot-cached busy key must select exactly the replica the
        // full profile rebuild would have picked — seed busy time into the
        // recorder and compare the routed choice against the profile argmin
        let mut sim = Sim::new(46);
        let d = Dispatcher::new(DispatcherConfig {
            policy: Policy::UtilizationWeighted,
            max_in_flight: 64,
            ..DispatcherConfig::default()
        });
        let backends: Vec<Rc<Echo>> = (0..3).map(|i| Echo::new(&format!("r{i}"), 1)).collect();
        for b in &backends {
            d.add_backend(b.clone());
        }
        let t = sim.now();
        sim.recorder().add_point("r0.cpu.busy", t, 5.0);
        sim.recorder().add_point("r1.cpu.busy", t, 2.0);
        sim.recorder().add_point("r2.cpu.busy", t, 9.0);
        let profile_argmin = sim
            .profile()
            .server_busy
            .iter()
            .filter(|s| s.key.ends_with(".cpu.busy"))
            .min_by(|a, b| a.busy_secs.partial_cmp(&b.busy_secs).unwrap())
            .map(|s| s.key.clone())
            .expect("busy series seeded");
        assert_eq!(profile_argmin, "r1.cpu.busy");
        d.submit(&mut sim, invoke(), Box::new(|_, r| assert!(r.is_ok())));
        sim.run();
        let served: Vec<u64> = backends.iter().map(|b| b.served.get()).collect();
        assert_eq!(served, vec![0, 1, 0], "pick disagrees with profile rollup");
    }

    // -- geo routing ------------------------------------------------------

    use crate::geo::SiteMap;

    fn two_site_geo() -> Rc<GeoPlane> {
        let mut map = SiteMap::new();
        map.add_site("east");
        map.add_site("west");
        map.link("east", "west", Duration::from_millis(50), 1e9);
        GeoPlane::new(map)
    }

    #[test]
    fn geo_routing_prefers_the_nearest_site_and_spills_when_saturated() {
        let mut sim = Sim::new(50);
        let d = Dispatcher::new(DispatcherConfig {
            policy: Policy::RoundRobin,
            ..DispatcherConfig::default()
        });
        let geo = two_site_geo();
        geo.set_spill_threshold(1);
        geo.assign("e1", "east");
        geo.assign("w1", "west");
        d.set_geo(Rc::clone(&geo));
        let near = Echo::new("e1", 100);
        let far = Echo::new("w1", 100);
        d.add_backend(near.clone());
        d.add_backend(far.clone());
        geo.set_origin("east");
        for _ in 0..2 {
            d.submit(&mut sim, invoke(), Box::new(|_, r| assert!(r.is_ok())));
        }
        // first request fills east to the spill threshold; the second
        // spills to west instead of queueing cross-threshold at home
        assert_eq!((near.served.get(), far.served.get()), (1, 1));
        sim.run();
        d.submit(&mut sim, invoke(), Box::new(|_, r| assert!(r.is_ok())));
        sim.run();
        assert_eq!(
            (near.served.get(), far.served.get()),
            (2, 1),
            "an idle fleet routes home again"
        );
    }

    #[test]
    fn severed_sites_leave_rotation_and_an_all_dark_fleet_faults() {
        let mut sim = Sim::new(51);
        let d = Dispatcher::new(DispatcherConfig {
            policy: Policy::RoundRobin,
            ..DispatcherConfig::default()
        });
        let geo = two_site_geo();
        geo.assign("e1", "east");
        geo.assign("w1", "west");
        d.set_geo(Rc::clone(&geo));
        let east = Echo::new("e1", 5);
        let west = Echo::new("w1", 5);
        d.add_backend(east.clone());
        d.add_backend(west.clone());
        geo.set_origin("east");
        geo.add_outage("east", sim.now(), SimTime::from_secs(100));
        for _ in 0..3 {
            d.submit(&mut sim, invoke(), Box::new(|_, _| {}));
        }
        sim.run();
        assert_eq!(east.served.get(), 0, "no request enters the partition");
        assert_eq!(west.served.get(), 3);
        geo.add_outage("west", sim.now(), SimTime::from_secs(100));
        d.submit(&mut sim, invoke(), Box::new(|_, r| assert!(r.is_err())));
        sim.run();
        let c = d.counters();
        assert_eq!(c.faulted, 1, "all sites dark: the request fails fast");
        assert_eq!(c.completed, 3);
    }

    #[test]
    fn federation_forwards_pinned_work_and_the_pin_comes_home() {
        let mut sim = Sim::new(52);
        let d = Dispatcher::new(DispatcherConfig {
            policy: Policy::RoundRobin,
            affinity: Some(AffinityConfig::default()),
            ..DispatcherConfig::default()
        });
        let geo = two_site_geo();
        geo.set_federation(true);
        geo.assign("e1", "east");
        geo.assign("w1", "west");
        d.set_geo(Rc::clone(&geo));
        let east = Echo::new("e1", 5);
        let west = Echo::new("w1", 5);
        d.add_backend(east.clone());
        d.add_backend(west.clone());
        geo.set_origin("east");
        // first sight pins alice to her nearest site
        d.submit(&mut sim, invoke_as("alice"), Box::new(|_, r| assert!(r.is_ok())));
        sim.run();
        assert_eq!(east.served.get(), 1);
        // sever east mid-session: alice's work forwards to west, pin kept
        let outage_end = sim.now() + Duration::from_secs(60);
        geo.add_outage("east", sim.now(), outage_end);
        for _ in 0..2 {
            d.submit(&mut sim, invoke_as("alice"), Box::new(|_, r| assert!(r.is_ok())));
            sim.run();
        }
        assert_eq!(east.served.get(), 1);
        assert_eq!(west.served.get(), 2);
        let c = d.counters();
        assert_eq!(c.forwarded, 2, "both outage-window requests forwarded");
        assert_eq!(c.affinity_repins, 0, "forwarding never re-pins");
        assert_eq!(geo.counters().forwards, 2);
        // reconnect: the session comes home without a repin
        let d2 = Rc::clone(&d);
        sim.schedule((outage_end - sim.now()) + Duration::from_secs(1), move |sim| {
            d2.submit(sim, invoke_as("alice"), Box::new(|_, r| assert!(r.is_ok())));
        });
        sim.run();
        assert_eq!(east.served.get(), 2, "pin survived the outage");
        assert_eq!(d.counters().affinity_hits, 1, "the homecoming is a plain hit");
        assert_eq!(d.counters().affinity_misses, 1, "only the first sight misses");
    }

    #[test]
    fn cross_site_rendezvous_failover_prefers_home_peers_deterministically() {
        let run = || {
            let mut sim = Sim::new(53);
            let d = Dispatcher::new(DispatcherConfig {
                policy: Policy::RoundRobin,
                affinity: Some(AffinityConfig::default()),
                ..DispatcherConfig::default()
            });
            let geo = two_site_geo();
            for name in ["e1", "e2", "e3"] {
                geo.assign(name, "east");
            }
            geo.assign("w1", "west");
            d.set_geo(Rc::clone(&geo));
            let backends: Vec<Rc<Echo>> = ["e1", "e2", "e3", "w1"]
                .iter()
                .map(|n| Echo::new(n, 5))
                .collect();
            for b in &backends {
                d.add_backend(b.clone());
            }
            geo.set_origin("east");
            d.submit(&mut sim, invoke_as("bob"), Box::new(|_, r| assert!(r.is_ok())));
            sim.run();
            assert_eq!(backends[0].served.get(), 1, "rr pins bob to e1");
            // lose the pinned replica: the orphaned pin must reassign to a
            // *home-site* peer (e2/e3), never the cross-site w1
            assert!(d.eject_backend(&mut sim, "e1"));
            d.submit(&mut sim, invoke_as("bob"), Box::new(|_, r| assert!(r.is_ok())));
            sim.run();
            assert_eq!(backends[3].served.get(), 0, "west peer not chosen");
            assert_eq!(d.counters().affinity_repins, 1);
            backends
                .iter()
                .map(|b| b.served.get())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run(), "failover choice replays byte-identically");
    }

    #[test]
    fn park_site_defers_the_watchdog_past_reconnect() {
        let mut sim = Sim::new(54);
        let d = Dispatcher::new(DispatcherConfig {
            policy: Policy::RoundRobin,
            retry: Some(RetryConfig::default()),
            request_timeout: Some(Duration::from_secs(1)),
            ..DispatcherConfig::default()
        });
        let geo = two_site_geo();
        geo.set_federation(true);
        geo.assign("dead", "east");
        geo.assign("w1", "west");
        d.set_geo(Rc::clone(&geo));
        let hole = BlackHole::new("dead");
        let west = Echo::new("w1", 5);
        d.add_backend(hole.clone());
        d.add_backend(west.clone());
        geo.set_origin("east");
        let finished = Rc::new(Cell::new(simkit::SimTime::ZERO));
        let f = finished.clone();
        d.submit(
            &mut sim,
            invoke(),
            Box::new(move |sim, r| {
                assert!(r.is_ok(), "retried on the survivor after the park");
                f.set(sim.now());
            }),
        );
        // the site is severed with the request in flight; park re-arms the
        // 1 s watchdog to reconnect + 1 s instead of firing at +1 s
        let reconnect = sim.now() + Duration::from_secs(30);
        geo.add_outage("east", sim.now(), reconnect);
        assert_eq!(d.park_site(&mut sim, "east", reconnect), 1);
        sim.run();
        assert!(
            finished.get() >= reconnect,
            "watchdog waited out the outage: finished {:?}",
            finished.get()
        );
        assert_eq!(d.counters().ejected, 1, "silent backend still ejected");
        assert_eq!(west.served.get(), 1);
    }

    // -- per-tenant QoS -----------------------------------------------------

    fn qos_tiers(pairs: &[(&str, QosTier)]) -> BTreeMap<String, QosTier> {
        pairs.iter().map(|(t, w)| ((*t).to_owned(), *w)).collect()
    }

    /// Satellite-1 regression: the global admission gate sits ahead of
    /// the invoke/upload split, so a saturated door sheds uploads too.
    /// (Audit note: the gate at the top of `submit` covers both arms;
    /// `broadcast` has no other caller, so an upload can never reach the
    /// in_flight/accepted bookkeeping without passing the check.)
    #[test]
    fn upload_sheds_at_admission_limit() {
        let mut sim = Sim::new(60);
        let d = Dispatcher::new(DispatcherConfig {
            policy: Policy::RoundRobin,
            max_in_flight: 2,
            ..DispatcherConfig::default()
        });
        d.add_backend(Echo::new("a", 1000));
        // fill the window with slow invokes
        for _ in 0..2 {
            d.submit(&mut sim, invoke(), Box::new(|_, _| {}));
        }
        let upload_shed = Rc::new(Cell::new(false));
        let s = upload_shed.clone();
        d.submit(
            &mut sim,
            Request::Upload {
                file_name: "f.exe".into(),
                len: 64,
                profile: ExecutionProfile::quick(),
            },
            Box::new(move |_, r| s.set(r.is_err())),
        );
        sim.run();
        assert!(upload_shed.get(), "saturated door must shed the upload");
        let c = d.counters();
        assert_eq!(c.accepted, 2);
        assert_eq!(c.shed, 1);
        assert_eq!(c.completed, 2);
    }

    /// DRR grants backlogged tenants capacity in 4:2:1 tier-weight
    /// proportion, FIFO within each tenant.
    #[test]
    fn qos_drr_grants_by_tier_weight() {
        let mut sim = Sim::new(61);
        let d = Dispatcher::new(DispatcherConfig {
            policy: Policy::RoundRobin,
            max_in_flight: 1,
            ..DispatcherConfig::default()
        });
        d.set_qos(QosConfig {
            tiers: qos_tiers(&[
                ("gold", QosTier::Gold),
                ("std", QosTier::Standard),
                ("batch", QosTier::Batch),
            ]),
            ..QosConfig::default()
        });
        d.add_backend(Echo::new("a", 10));
        let order: Rc<RefCell<Vec<&'static str>>> = Rc::new(RefCell::new(Vec::new()));
        let mut feed = |tenant: &'static str, n: usize| {
            for _ in 0..n {
                let o = order.clone();
                d.submit(
                    &mut sim,
                    invoke_as(tenant),
                    Box::new(move |_, r| {
                        assert!(r.is_ok());
                        o.borrow_mut().push(tenant);
                    }),
                );
            }
        };
        // first gold request is admitted straight away; the rest queue
        // in ring order gold, std, batch
        feed("gold", 5);
        feed("std", 4);
        feed("batch", 3);
        sim.run();
        let got = order.borrow().clone();
        assert_eq!(
            got,
            vec![
                "gold", // admitted at the door
                "gold", "gold", "gold", "gold", // one full deficit round: weight 4
                "std", "std", // weight 2
                "batch", // weight 1
                "std", "std", // gold dry -> leftover backlog drains by weight
                "batch", "batch",
            ],
            "deficit round-robin must follow 4:2:1 tier weights"
        );
        let snap = d.qos_tenants();
        for (t, issued) in [("gold", 5), ("std", 4), ("batch", 3)] {
            let s = &snap[t];
            assert_eq!(s.issued, issued);
            assert_eq!(s.accepted, issued, "{t} all served");
            assert_eq!(s.shed, 0);
            assert_eq!(s.queued, 0);
            assert_eq!(s.in_flight, 0);
        }
    }

    /// A tenant's door queue is bounded: overflow sheds with per-tenant
    /// accounting and `issued == accepted + shed + queued` holds.
    #[test]
    fn qos_queue_bound_sheds_per_tenant() {
        let mut sim = Sim::new(62);
        let d = Dispatcher::new(DispatcherConfig {
            policy: Policy::RoundRobin,
            max_in_flight: 1,
            ..DispatcherConfig::default()
        });
        d.set_qos(QosConfig {
            queue_depth: 2,
            ..QosConfig::default()
        });
        d.add_backend(Echo::new("a", 50));
        let shed_seen = Rc::new(Cell::new(0u32));
        for _ in 0..5 {
            let s = shed_seen.clone();
            d.submit(
                &mut sim,
                invoke_as("alice"),
                Box::new(move |_, r| {
                    if r.is_err() {
                        s.set(s.get() + 1);
                    }
                }),
            );
        }
        // 1 admitted, 2 queued, 2 shed at the bound — check mid-flight
        {
            let snap = &d.qos_tenants()["alice"];
            assert_eq!(snap.issued, 5);
            assert_eq!(snap.accepted, 1);
            assert_eq!(snap.queued, 2);
            assert_eq!(snap.shed, 2);
            assert_eq!(snap.issued, snap.accepted + snap.shed + snap.queued as u64);
        }
        sim.run();
        let snap = &d.qos_tenants()["alice"];
        assert_eq!(snap.accepted, 3, "queued requests were granted");
        assert_eq!(snap.shed, 2);
        assert_eq!(snap.queued, 0);
        assert_eq!(shed_seen.get(), 2);
    }

    /// Borrow gating on the raw admission state: an idle fleet lets a
    /// tenant run `borrow` slots past quota, but never while an
    /// under-quota tenant is waiting.
    #[test]
    fn qos_borrow_only_while_no_underquota_tenant_waits() {
        let cfg = QosConfig {
            tiers: qos_tiers(&[("a", QosTier::Gold), ("b", QosTier::Gold)]),
            borrow: 1,
            ..QosConfig::default()
        };
        let mut q = QosState::new(cfg, 8);
        // two gold tenants: quota = 8 * 4 / 8 = 4 each
        assert_eq!(q.quota(QosTier::Gold), 4);
        q.tenants.get_mut("a").unwrap().in_flight = 4;
        assert!(
            q.may_admit("a"),
            "at quota with nobody waiting: borrow slot available"
        );
        q.tenants.get_mut("a").unwrap().in_flight = 5;
        assert!(!q.may_admit("a"), "borrow is bounded to +1");
        // an under-quota tenant starts waiting: borrowing shuts off
        q.tenants.get_mut("a").unwrap().in_flight = 4;
        q.enqueue(
            "b",
            QueuedReq {
                req: Request::Invoke {
                    service: "svc".into(),
                    args: Vec::new(),
                    principal: Some("b".into()),
                },
                done: Box::new(|_, _| {}),
                span: SpanId::NONE,
                submitted_at: SimTime::ZERO,
            },
        );
        assert!(
            !q.may_admit("a"),
            "no borrowing while an under-quota tenant queues"
        );
        // ...but a waiting tenant already at its own quota does not
        // block the borrow
        q.tenants.get_mut("b").unwrap().in_flight = 4;
        assert!(q.may_admit("a"), "b is at quota, its backlog is its own");
        // a tenant with its own backlog must join the queue, not jump it
        q.tenants.get_mut("a").unwrap().in_flight = 0;
        q.enqueue(
            "a",
            QueuedReq {
                req: Request::Invoke {
                    service: "svc".into(),
                    args: Vec::new(),
                    principal: Some("a".into()),
                },
                done: Box::new(|_, _| {}),
                span: SpanId::NONE,
                submitted_at: SimTime::ZERO,
            },
        );
        assert!(!q.may_admit("a"), "FIFO: no admission past a non-empty own queue");
    }

    /// Losing the last replica flushes door queues as shed — each queued
    /// request counts exactly once, as shed, and the responder fires.
    #[test]
    fn qos_queued_then_shed_counts_once() {
        let mut sim = Sim::new(63);
        let d = Dispatcher::new(DispatcherConfig {
            policy: Policy::RoundRobin,
            max_in_flight: 1,
            ..DispatcherConfig::default()
        });
        d.set_qos(QosConfig::default());
        d.add_backend(Echo::new("a", 100));
        let (oks, errs) = (Rc::new(Cell::new(0u32)), Rc::new(Cell::new(0u32)));
        for _ in 0..3 {
            let (o, e) = (oks.clone(), errs.clone());
            d.submit(
                &mut sim,
                invoke_as("alice"),
                Box::new(move |_, r| match r {
                    Ok(_) => o.set(o.get() + 1),
                    Err(_) => e.set(e.get() + 1),
                }),
            );
        }
        // 1 in flight, 2 queued; drain the only replica out of rotation
        assert!(d.remove_backend(&mut sim, "a"));
        sim.run();
        assert_eq!(oks.get(), 1, "the in-flight request still completes");
        assert_eq!(errs.get(), 2, "both queued requests shed exactly once");
        let snap = &d.qos_tenants()["alice"];
        assert_eq!(snap.issued, 3);
        assert_eq!(snap.accepted, 1);
        assert_eq!(snap.shed, 2);
        assert_eq!(snap.queued, 0);
        assert_eq!(snap.in_flight, 0);
        assert_eq!(snap.issued, snap.accepted + snap.shed + snap.queued as u64);
    }

    /// With QoS on, anonymous invokes and uploads skip the tenant stage
    /// and use the plain global gate.
    #[test]
    fn qos_ignores_anonymous_and_upload_traffic() {
        let mut sim = Sim::new(64);
        let d = Dispatcher::new(DispatcherConfig::default());
        d.set_qos(QosConfig::default());
        d.add_backend(Echo::new("a", 10));
        d.submit(&mut sim, invoke(), Box::new(|_, r| assert!(r.is_ok())));
        d.submit(
            &mut sim,
            Request::Upload {
                file_name: "f.exe".into(),
                len: 64,
                profile: ExecutionProfile::quick(),
            },
            Box::new(|_, r| assert!(r.is_ok())),
        );
        sim.run();
        assert!(d.qos_tenants().is_empty(), "no tenant state for anonymous work");
        assert_eq!(d.counters().completed, 2);
    }
}
