//! The fleet front end: one published endpoint fanning out to N replicas.
//!
//! The dispatcher owns the request path the paper never built: it holds the
//! published UDDI binding, admits requests under a bounded in-flight limit
//! (shedding overload as a SOAP `Server` fault, the way a SOAP intermediary
//! would), and routes each admitted invocation to one replica under a
//! pluggable [`Policy`]. Uploads are *broadcast* — every replica must hold
//! the executable before the generated service can be served from any of
//! them.
//!
//! Backends are abstract ([`Backend`]) so the routing and conservation
//! logic is testable without booting appliances; the production backend
//! wrapping a replica's [`onserve::Deployment`] lives in [`crate::fleet`].

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use onserve::profile::ExecutionProfile;
use simkit::{Sim, SpanId};
use wsstack::{SoapFault, SoapValue};

/// One front-door request.
#[derive(Clone, Debug)]
pub enum Request {
    /// Provision a new executable on every replica (portal upload).
    Upload {
        /// Executable file name (must be fleet-unique; replica databases
        /// reject duplicates).
        file_name: String,
        /// Synthetic payload size in bytes.
        len: usize,
        /// What the executable does when invoked.
        profile: ExecutionProfile,
    },
    /// Call a published service on one replica.
    Invoke {
        /// Service name (the executable's base name).
        service: String,
        /// SOAP arguments.
        args: Vec<(String, SoapValue)>,
    },
}

/// Completion callback: called exactly once per submitted request.
pub type Responder = Box<dyn FnOnce(&mut Sim, Result<SoapValue, SoapFault>)>;

/// Something that can serve front-door requests — a replica, or a test
/// double.
pub trait Backend {
    /// Stable replica name (the metric prefix of its appliance host).
    fn name(&self) -> &str;
    /// Serve one request, calling `done` exactly once (now or later).
    fn serve(&self, sim: &mut Sim, req: Request, done: Responder);
}

/// Replica-selection policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Policy {
    /// Cycle through live replicas in order.
    RoundRobin,
    /// Pick the replica with the fewest outstanding requests (first wins
    /// ties).
    LeastOutstanding,
    /// Pick the replica whose appliance CPU has accumulated the least busy
    /// time, read from [`Sim::profile`]'s server-busy rollup (first wins
    /// ties). Spreads load by *measured* work, not request counts.
    UtilizationWeighted,
}

impl Policy {
    /// All policies, for sweeps and property tests.
    pub const ALL: [Policy; 3] = [
        Policy::RoundRobin,
        Policy::LeastOutstanding,
        Policy::UtilizationWeighted,
    ];

    /// Short label for tables and span attributes.
    pub fn label(self) -> &'static str {
        match self {
            Policy::RoundRobin => "round-robin",
            Policy::LeastOutstanding => "least-outstanding",
            Policy::UtilizationWeighted => "utilization-weighted",
        }
    }
}

/// Dispatcher parameters.
#[derive(Clone, Copy, Debug)]
pub struct DispatcherConfig {
    /// Replica-selection policy.
    pub policy: Policy,
    /// Admission limit: requests in flight across the whole fleet before
    /// new arrivals are shed.
    pub max_in_flight: usize,
}

impl Default for DispatcherConfig {
    fn default() -> Self {
        DispatcherConfig {
            policy: Policy::LeastOutstanding,
            max_in_flight: 64,
        }
    }
}

/// Conservation ledger: `accepted == completed + faulted` once the
/// simulation drains, and `accepted + shed` equals every request ever
/// submitted.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DispatchCounters {
    /// Requests admitted past the in-flight limit.
    pub accepted: u64,
    /// Admitted requests that completed successfully.
    pub completed: u64,
    /// Admitted requests that came back as a SOAP fault.
    pub faulted: u64,
    /// Requests refused at the door (admission limit or no replicas).
    pub shed: u64,
    /// Admitted requests that had to wait behind another request already
    /// outstanding on their chosen replica.
    pub queued: u64,
}

struct Slot {
    backend: Rc<dyn Backend>,
    outstanding: usize,
    draining: bool,
}

type DrainHook = Box<dyn Fn(&mut Sim, &str)>;
type UploadHook = Box<dyn Fn(&mut Sim, &Request)>;

/// The front-end request router.
pub struct Dispatcher {
    cfg: DispatcherConfig,
    slots: RefCell<Vec<Slot>>,
    rr_cursor: Cell<usize>,
    in_flight: Cell<usize>,
    counters: RefCell<DispatchCounters>,
    drain_hook: RefCell<Option<DrainHook>>,
    upload_hook: RefCell<Option<UploadHook>>,
}

impl Dispatcher {
    /// New dispatcher with no backends yet.
    pub fn new(cfg: DispatcherConfig) -> Rc<Dispatcher> {
        Rc::new(Dispatcher {
            cfg,
            slots: RefCell::new(Vec::new()),
            rr_cursor: Cell::new(0),
            in_flight: Cell::new(0),
            counters: RefCell::new(DispatchCounters::default()),
            drain_hook: RefCell::new(None),
            upload_hook: RefCell::new(None),
        })
    }

    /// The configured policy.
    pub fn policy(&self) -> Policy {
        self.cfg.policy
    }

    /// Put a backend into rotation.
    pub fn add_backend(&self, backend: Rc<dyn Backend>) {
        self.slots.borrow_mut().push(Slot {
            backend,
            outstanding: 0,
            draining: false,
        });
    }

    /// Take `name` out of rotation. New requests stop routing to it
    /// immediately; once its outstanding requests finish, the slot is
    /// dropped and the drain hook fires. Returns `false` if no live
    /// backend has that name.
    pub fn remove_backend(&self, sim: &mut Sim, name: &str) -> bool {
        let idle = {
            let mut slots = self.slots.borrow_mut();
            let Some(slot) = slots
                .iter_mut()
                .find(|s| !s.draining && s.backend.name() == name)
            else {
                return false;
            };
            slot.draining = true;
            slot.outstanding == 0
        };
        if idle {
            self.retire(sim, name);
        }
        true
    }

    /// Called once per drained (removed + idle) backend, with its name.
    pub fn set_drain_hook(&self, f: impl Fn(&mut Sim, &str) + 'static) {
        *self.drain_hook.borrow_mut() = Some(Box::new(f));
    }

    /// Called once per *accepted* upload broadcast, before any backend
    /// sees it — the fleet uses this to catalog the executable for
    /// replicas that boot later.
    pub fn set_upload_hook(&self, f: impl Fn(&mut Sim, &Request) + 'static) {
        *self.upload_hook.borrow_mut() = Some(Box::new(f));
    }

    /// Backends still in rotation.
    pub fn live_backends(&self) -> usize {
        self.slots.borrow().iter().filter(|s| !s.draining).count()
    }

    /// Requests currently admitted and not yet answered.
    pub fn in_flight(&self) -> usize {
        self.in_flight.get()
    }

    /// The conservation ledger.
    pub fn counters(&self) -> DispatchCounters {
        *self.counters.borrow()
    }

    /// Admit and route one request; `done` is called exactly once whether
    /// the request is served, faulted, or shed at the door.
    pub fn submit(self: &Rc<Self>, sim: &mut Sim, req: Request, done: Responder) {
        let span = sim.span_begin("dispatcher.dispatch");
        sim.span_attr(span, "policy", self.cfg.policy.label());
        if self.in_flight.get() >= self.cfg.max_in_flight {
            self.shed(sim, span, "admission limit reached", done);
            return;
        }
        match req {
            Request::Invoke { .. } => self.dispatch_one(sim, span, req, done),
            Request::Upload { .. } => self.broadcast(sim, span, req, done),
        }
    }

    fn shed(&self, sim: &mut Sim, span: SpanId, why: &str, done: Responder) {
        self.counters.borrow_mut().shed += 1;
        sim.counter_add("dispatcher.shed", 1);
        sim.span_attr(span, "outcome", "shed");
        sim.span_fail(span, why);
        done(sim, Err(SoapFault::server(&format!("dispatcher: {why}"))));
    }

    /// Route an invocation to one replica by policy.
    fn dispatch_one(self: &Rc<Self>, sim: &mut Sim, span: SpanId, req: Request, done: Responder) {
        let Some(pick) = self.pick(sim) else {
            self.shed(sim, span, "no replicas in rotation", done);
            return;
        };
        let (backend, queued) = {
            let mut slots = self.slots.borrow_mut();
            let slot = &mut slots[pick];
            slot.outstanding += 1;
            let queued = slot.outstanding > 1;
            let mut c = self.counters.borrow_mut();
            c.accepted += 1;
            if queued {
                c.queued += 1;
            }
            (Rc::clone(&slot.backend), queued)
        };
        self.in_flight.set(self.in_flight.get() + 1);
        sim.counter_add("dispatcher.accepted", 1);
        if queued {
            sim.counter_add("dispatcher.queued", 1);
        }
        sim.span_attr(span, "replica", backend.name().to_owned());
        sim.span_attr(span, "in_flight", self.in_flight.get() as u64);
        let this = Rc::clone(self);
        let name = backend.name().to_owned();
        // parent replica-internal spans under the dispatch span
        let prev = sim.set_span_parent(span);
        backend.serve(
            sim,
            req,
            Box::new(move |sim, res| {
                this.settle(sim, &name, span, res.is_ok());
                done(sim, res);
            }),
        );
        sim.set_span_parent(prev);
    }

    /// Fan an upload out to every live replica; the front-door request
    /// completes when the slowest replica has it, and faults if any
    /// replica faulted.
    fn broadcast(self: &Rc<Self>, sim: &mut Sim, span: SpanId, req: Request, done: Responder) {
        let targets: Vec<(usize, Rc<dyn Backend>)> = {
            let mut slots = self.slots.borrow_mut();
            slots
                .iter_mut()
                .enumerate()
                .filter(|(_, s)| !s.draining)
                .map(|(i, s)| {
                    s.outstanding += 1;
                    (i, Rc::clone(&s.backend))
                })
                .collect()
        };
        if targets.is_empty() {
            // nothing incremented: filter matched no slot
            self.shed(sim, span, "no replicas in rotation", done);
            return;
        }
        self.counters.borrow_mut().accepted += 1;
        self.in_flight.set(self.in_flight.get() + 1);
        sim.counter_add("dispatcher.accepted", 1);
        sim.span_attr(span, "fanout", targets.len() as u64);
        let hook = self.upload_hook.borrow_mut().take();
        if let Some(hook) = hook {
            hook(sim, &req);
            // re-arm unless the hook replaced itself
            let mut h = self.upload_hook.borrow_mut();
            if h.is_none() {
                *h = Some(hook);
            }
        }
        let remaining = Rc::new(Cell::new(targets.len()));
        let first_fault: Rc<RefCell<Option<SoapFault>>> = Rc::new(RefCell::new(None));
        let done = Rc::new(RefCell::new(Some(done)));
        for (_, backend) in targets {
            let this = Rc::clone(self);
            let name = backend.name().to_owned();
            let remaining = Rc::clone(&remaining);
            let first_fault = Rc::clone(&first_fault);
            let done = Rc::clone(&done);
            let prev = sim.set_span_parent(span);
            backend.serve(
                sim,
                req.clone(),
                Box::new(move |sim, res| {
                    if let Err(f) = res {
                        first_fault.borrow_mut().get_or_insert(f);
                    }
                    this.backend_done(sim, &name);
                    remaining.set(remaining.get() - 1);
                    if remaining.get() == 0 {
                        let ok = first_fault.borrow().is_none();
                        this.close_front_door(sim, span, ok);
                        let done = done.borrow_mut().take().expect("single join");
                        match first_fault.borrow_mut().take() {
                            None => done(sim, Ok(SoapValue::Bool(true))),
                            Some(f) => done(sim, Err(f)),
                        }
                    }
                }),
            );
            sim.set_span_parent(prev);
        }
    }

    /// Deterministic replica choice; `None` when nothing is in rotation.
    fn pick(&self, sim: &Sim) -> Option<usize> {
        let slots = self.slots.borrow();
        let live: Vec<usize> = slots
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.draining)
            .map(|(i, _)| i)
            .collect();
        if live.is_empty() {
            return None;
        }
        Some(match self.cfg.policy {
            Policy::RoundRobin => {
                let k = self.rr_cursor.get();
                self.rr_cursor.set(k.wrapping_add(1));
                live[k % live.len()]
            }
            Policy::LeastOutstanding => {
                let mut best = live[0];
                for &i in &live[1..] {
                    if slots[i].outstanding < slots[best].outstanding {
                        best = i;
                    }
                }
                best
            }
            Policy::UtilizationWeighted => {
                let profile = sim.profile();
                let busy = |i: usize| -> f64 {
                    let key = format!("{}.cpu.busy", slots[i].backend.name());
                    profile
                        .server_busy
                        .iter()
                        .find(|s| s.key == key)
                        .map_or(0.0, |s| s.busy_secs)
                };
                let mut best = live[0];
                let mut best_busy = busy(best);
                for &i in &live[1..] {
                    let b = busy(i);
                    if b < best_busy {
                        best = i;
                        best_busy = b;
                    }
                }
                best
            }
        })
    }

    /// One admitted invocation finished on `name`.
    fn settle(&self, sim: &mut Sim, name: &str, span: SpanId, ok: bool) {
        self.backend_done(sim, name);
        self.close_front_door(sim, span, ok);
    }

    /// Per-backend bookkeeping for one finished request; retires the slot
    /// if it was draining and just went idle.
    fn backend_done(&self, sim: &mut Sim, name: &str) {
        let retire = {
            let mut slots = self.slots.borrow_mut();
            match slots.iter_mut().find(|s| s.backend.name() == name) {
                None => false, // already retired (duplicate name impossible per fleet)
                Some(slot) => {
                    slot.outstanding -= 1;
                    slot.draining && slot.outstanding == 0
                }
            }
        };
        if retire {
            self.retire(sim, name);
        }
    }

    /// Front-door bookkeeping for one finished request.
    fn close_front_door(&self, sim: &mut Sim, span: SpanId, ok: bool) {
        self.in_flight.set(self.in_flight.get() - 1);
        let mut c = self.counters.borrow_mut();
        if ok {
            c.completed += 1;
            drop(c);
            sim.counter_add("dispatcher.completed", 1);
            sim.span_end(span);
        } else {
            c.faulted += 1;
            drop(c);
            sim.counter_add("dispatcher.faulted", 1);
            sim.span_fail(span, "replica returned a fault");
        }
    }

    /// Drop a drained slot and notify the owner.
    fn retire(&self, sim: &mut Sim, name: &str) {
        self.slots
            .borrow_mut()
            .retain(|s| !(s.draining && s.outstanding == 0 && s.backend.name() == name));
        let hook = self.drain_hook.borrow_mut().take();
        if let Some(hook) = hook {
            hook(sim, name);
            let mut h = self.drain_hook.borrow_mut();
            if h.is_none() {
                *h = Some(hook);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::Duration;

    /// Serves every request after a fixed delay; can be told to fault.
    struct Echo {
        name: String,
        delay: Duration,
        fault: bool,
        served: Cell<u64>,
    }

    impl Echo {
        fn new(name: &str, delay_ms: u64) -> Rc<Echo> {
            Rc::new(Echo {
                name: name.into(),
                delay: Duration::from_millis(delay_ms),
                fault: false,
                served: Cell::new(0),
            })
        }
    }

    impl Backend for Echo {
        fn name(&self) -> &str {
            &self.name
        }
        fn serve(&self, sim: &mut Sim, _req: Request, done: Responder) {
            self.served.set(self.served.get() + 1);
            let fault = self.fault;
            sim.schedule(self.delay, move |sim| {
                if fault {
                    done(sim, Err(SoapFault::server("echo fault")));
                } else {
                    done(sim, Ok(SoapValue::Bool(true)));
                }
            });
        }
    }

    fn invoke() -> Request {
        Request::Invoke {
            service: "svc".into(),
            args: Vec::new(),
        }
    }

    #[test]
    fn round_robin_cycles() {
        let mut sim = Sim::new(1);
        let d = Dispatcher::new(DispatcherConfig {
            policy: Policy::RoundRobin,
            max_in_flight: 16,
        });
        let (a, b) = (Echo::new("a", 10), Echo::new("b", 10));
        d.add_backend(a.clone());
        d.add_backend(b.clone());
        for _ in 0..6 {
            d.submit(&mut sim, invoke(), Box::new(|_, r| assert!(r.is_ok())));
        }
        sim.run();
        assert_eq!(a.served.get(), 3);
        assert_eq!(b.served.get(), 3);
        assert_eq!(d.counters().completed, 6);
        assert_eq!(d.in_flight(), 0);
    }

    #[test]
    fn least_outstanding_prefers_idle() {
        let mut sim = Sim::new(2);
        let d = Dispatcher::new(DispatcherConfig {
            policy: Policy::LeastOutstanding,
            max_in_flight: 16,
        });
        // a is slow, so it stays loaded; b should absorb the burst
        let (a, b) = (Echo::new("a", 10_000), Echo::new("b", 10));
        d.add_backend(a.clone());
        d.add_backend(b.clone());
        d.submit(&mut sim, invoke(), Box::new(|_, _| {})); // lands on a
        // staggered arrivals: b finishes each before the next arrives, so
        // least-outstanding keeps preferring it over the loaded a
        for k in 0..4u64 {
            let d2 = Rc::clone(&d);
            sim.schedule(Duration::from_millis(100 + 50 * k), move |sim| {
                d2.submit(sim, invoke(), Box::new(|_, _| {}));
            });
        }
        sim.run();
        assert_eq!(a.served.get(), 1);
        assert_eq!(b.served.get(), 4);
    }

    #[test]
    fn admission_limit_sheds_with_fault() {
        let mut sim = Sim::new(3);
        let d = Dispatcher::new(DispatcherConfig {
            policy: Policy::RoundRobin,
            max_in_flight: 2,
        });
        d.add_backend(Echo::new("a", 1000));
        let shed_seen = Rc::new(Cell::new(0u32));
        for _ in 0..5 {
            let s = shed_seen.clone();
            d.submit(
                &mut sim,
                invoke(),
                Box::new(move |_, r| {
                    if r.is_err() {
                        s.set(s.get() + 1);
                    }
                }),
            );
        }
        sim.run();
        let c = d.counters();
        assert_eq!(c.accepted, 2);
        assert_eq!(c.shed, 3);
        assert_eq!(shed_seen.get(), 3);
        assert_eq!(c.completed, 2);
    }

    #[test]
    fn no_backends_faults_every_request() {
        let mut sim = Sim::new(4);
        let d = Dispatcher::new(DispatcherConfig::default());
        let got = Rc::new(Cell::new(0u32));
        let g = got.clone();
        d.submit(
            &mut sim,
            invoke(),
            Box::new(move |_, r| {
                assert!(r.is_err());
                g.set(g.get() + 1);
            }),
        );
        sim.run();
        assert_eq!(got.get(), 1);
        assert_eq!(d.counters().shed, 1);
    }

    #[test]
    fn upload_broadcasts_to_all_live_backends() {
        let mut sim = Sim::new(5);
        let d = Dispatcher::new(DispatcherConfig::default());
        let (a, b, c) = (Echo::new("a", 10), Echo::new("b", 20), Echo::new("c", 30));
        d.add_backend(a.clone());
        d.add_backend(b.clone());
        d.add_backend(c.clone());
        let seen = Rc::new(Cell::new(0u32));
        let s = seen.clone();
        d.submit(
            &mut sim,
            Request::Upload {
                file_name: "f.exe".into(),
                len: 64,
                profile: ExecutionProfile::quick(),
            },
            Box::new(move |_, r| {
                assert!(r.is_ok());
                s.set(s.get() + 1);
            }),
        );
        sim.run();
        assert_eq!(seen.get(), 1, "join answers exactly once");
        assert_eq!(a.served.get() + b.served.get() + c.served.get(), 3);
        assert_eq!(d.counters().accepted, 1, "one front-door request");
        assert_eq!(d.counters().completed, 1);
    }

    #[test]
    fn drain_waits_for_outstanding_then_fires_hook() {
        let mut sim = Sim::new(6);
        let d = Dispatcher::new(DispatcherConfig {
            policy: Policy::RoundRobin,
            max_in_flight: 8,
        });
        let (a, b) = (Echo::new("a", 500), Echo::new("b", 500));
        d.add_backend(a.clone());
        d.add_backend(b);
        d.submit(&mut sim, invoke(), Box::new(|_, _| {})); // on a
        let drained: Rc<RefCell<Vec<String>>> = Rc::new(RefCell::new(Vec::new()));
        let dr = drained.clone();
        d.set_drain_hook(move |_, name| dr.borrow_mut().push(name.to_owned()));
        assert!(d.remove_backend(&mut sim, "a"));
        assert!(!d.remove_backend(&mut sim, "a"), "already draining");
        assert_eq!(d.live_backends(), 1);
        assert!(drained.borrow().is_empty(), "still has work in flight");
        // new traffic avoids the draining replica
        d.submit(&mut sim, invoke(), Box::new(|_, _| {}));
        sim.run();
        assert_eq!(*drained.borrow(), vec!["a".to_owned()]);
        assert_eq!(a.served.get(), 1);
        assert_eq!(d.counters().completed, 2);
    }

    #[test]
    fn idle_backend_retires_immediately() {
        let mut sim = Sim::new(7);
        let d = Dispatcher::new(DispatcherConfig::default());
        d.add_backend(Echo::new("a", 10));
        d.add_backend(Echo::new("b", 10));
        let drained = Rc::new(Cell::new(0u32));
        let dr = drained.clone();
        d.set_drain_hook(move |_, _| dr.set(dr.get() + 1));
        assert!(d.remove_backend(&mut sim, "b"));
        assert_eq!(drained.get(), 1);
        assert_eq!(d.live_backends(), 1);
    }

    #[test]
    fn conservation_under_faults() {
        let mut sim = Sim::new(8);
        let d = Dispatcher::new(DispatcherConfig {
            policy: Policy::LeastOutstanding,
            max_in_flight: 4,
        });
        let bad = Echo {
            name: "bad".into(),
            delay: Duration::from_millis(50),
            fault: true,
            served: Cell::new(0),
        };
        d.add_backend(Rc::new(bad));
        d.add_backend(Echo::new("good", 50));
        let answered = Rc::new(Cell::new(0u32));
        for i in 0..10 {
            let d2 = Rc::clone(&d);
            let a = answered.clone();
            sim.schedule(Duration::from_millis(i * 20), move |sim| {
                let a = a.clone();
                d2.submit(sim, invoke(), Box::new(move |_, _| a.set(a.get() + 1)));
            });
        }
        sim.run();
        let c = d.counters();
        assert_eq!(answered.get(), 10, "every request answered exactly once");
        assert_eq!(c.accepted + c.shed, 10);
        assert_eq!(c.accepted, c.completed + c.faulted);
        assert_eq!(d.in_flight(), 0);
    }
}
