//! Zero-downtime version rollouts over a [`Fleet`].
//!
//! The paper's pipeline stops at "boot it once"; a production fleet
//! upgrades **under load**. [`RolloutController::start`] drives a fleet
//! from its current artifact version to [`RolloutConfig::to_version`]
//! by *replacement* — replicas are never mutated in place — under one
//! of three strategies:
//!
//! * [`RolloutStrategy::Rolling`] — boot one vN+1 replica, wait for it
//!   to join the rotation, drain-and-retire one vN replica, repeat.
//!   The fleet never drops below [`RolloutConfig::min_healthy`] active
//!   replicas and no accepted request is dropped (retirement drains).
//! * [`RolloutStrategy::Canary`] — boot a single vN+1 replica, shift a
//!   configurable fraction of affinity pins onto it (ranked by the
//!   same rendezvous hash that reassigns pins after a loss, so each
//!   shifted principal re-authenticates exactly once) plus a share of
//!   first-sight traffic, judge its windowed p99 against the peer
//!   fleet over a judgment window, then **promote** (continue as
//!   Rolling) or **auto-rollback** — drain the canary and restore the
//!   shifted pins deterministically. A canary that dies mid-judgment
//!   (chaos) rolls back immediately.
//! * [`RolloutStrategy::Restart`] — the naive stop-the-world baseline:
//!   crash every replica, boot replacements. Drops in-flight work and
//!   sheds arrivals for the whole boot window; exists so the benches
//!   can price what the other two strategies buy.
//!
//! The controller is a poll loop on the virtual clock (no RNG — every
//! decision is a pure function of fleet state), so same-seed runs
//! replay byte-identically.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use simkit::{Duration, Sim};

use crate::fleet::Fleet;
use crate::health::HealthPlane;

/// Canary judgment knobs.
#[derive(Clone, Debug)]
pub struct CanaryConfig {
    /// Fraction of live affinity pins shifted onto the canary.
    pub pin_fraction: f64,
    /// Percent of first-sight routes diverted to the canary.
    pub first_sight_pct: u32,
    /// Judgment window: the canary must serve this long before the
    /// promote/rollback decision.
    pub judgment: Duration,
    /// Rollback when the canary's windowed p99 exceeds this factor times
    /// the peer fleet's (lower-)median windowed p99.
    pub p99_factor: f64,
    /// Judge only once the canary has at least this many latency
    /// samples; the window extends (up to 3× `judgment`) until it does.
    pub min_samples: u64,
}

impl Default for CanaryConfig {
    fn default() -> Self {
        CanaryConfig {
            pin_fraction: 0.2,
            first_sight_pct: 20,
            judgment: Duration::from_secs(120),
            p99_factor: 3.0,
            min_samples: 5,
        }
    }
}

/// How the fleet gets from vN to vN+1.
#[derive(Clone, Debug)]
pub enum RolloutStrategy {
    /// Boot-then-retire, one replica at a time. Zero dropped requests.
    Rolling,
    /// One canary first, judged on windowed p99; promote to a rolling
    /// replacement or auto-rollback.
    Canary(CanaryConfig),
    /// Stop-the-world: crash everything, boot replacements. The
    /// baseline that drops requests.
    Restart,
}

/// One rollout order.
#[derive(Clone, Debug)]
pub struct RolloutConfig {
    /// Version the fleet should end up serving.
    pub to_version: u32,
    /// Strategy to get there.
    pub strategy: RolloutStrategy,
    /// Never let a retirement take the active count to (or below) this
    /// floor; the controller boots more capacity first.
    pub min_healthy: usize,
    /// Poll interval of the controller's lifecycle loop.
    pub poll: Duration,
}

impl RolloutConfig {
    /// Rolling upgrade to `to_version` with a floor of one active
    /// replica and a 5-second poll.
    pub fn rolling(to_version: u32) -> RolloutConfig {
        RolloutConfig {
            to_version,
            strategy: RolloutStrategy::Rolling,
            min_healthy: 1,
            poll: Duration::from_secs(5),
        }
    }

    /// Canary upgrade to `to_version` with default judgment knobs.
    pub fn canary(to_version: u32) -> RolloutConfig {
        RolloutConfig {
            strategy: RolloutStrategy::Canary(CanaryConfig::default()),
            ..RolloutConfig::rolling(to_version)
        }
    }

    /// The naive restart baseline.
    pub fn restart(to_version: u32) -> RolloutConfig {
        RolloutConfig {
            strategy: RolloutStrategy::Restart,
            ..RolloutConfig::rolling(to_version)
        }
    }
}

/// How a finished rollout ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RolloutOutcome {
    /// Rolling/Restart ran to completion (every active replica serves
    /// the target version).
    Completed,
    /// The canary passed judgment and the roll completed behind it.
    Promoted,
    /// The canary failed judgment (or died); the fleet is back on the
    /// old version and the shifted pins were restored.
    RolledBack,
}

/// One retirement the controller performed, for invariant checks:
/// the active count *before* the drain began always exceeds
/// `min_healthy`.
#[derive(Clone, Debug)]
pub struct RetireEvent {
    /// Replica taken out of rotation.
    pub replica: String,
    /// Active replicas at the moment retirement was ordered.
    pub active_before: usize,
}

enum Phase {
    /// Waiting for `String` (a replacement) to join the rotation.
    Booting(String),
    /// Rolling loop: decide the next boot/retire step.
    Step,
    /// Canary `String` is serving its judgment window since `start`.
    Judging {
        canary: String,
        started: simkit::SimTime,
    },
    /// Restart baseline: waiting for every replacement to activate.
    Restarting(Vec<String>),
    Done,
}

/// Drives one [`RolloutConfig`] against a fleet; create with
/// [`RolloutController::start`].
pub struct RolloutController {
    fleet: Rc<Fleet>,
    health: Option<Rc<HealthPlane>>,
    cfg: RolloutConfig,
    from_version: u32,
    phase: RefCell<Phase>,
    /// Undo log of the canary pin shift.
    shifted: RefCell<Vec<(String, String)>>,
    canary_name: RefCell<Option<String>>,
    retire_log: RefCell<Vec<RetireEvent>>,
    replaced: Cell<u64>,
    rollbacks: Cell<u64>,
    outcome: RefCell<Option<RolloutOutcome>>,
}

impl RolloutController {
    /// Start a rollout. The fleet's health plane (if attached to its
    /// dispatcher) supplies the canary judgment signal; a canary roll
    /// without one promotes by default once the window passes.
    pub fn start(sim: &mut Sim, fleet: &Rc<Fleet>, cfg: RolloutConfig) -> Rc<RolloutController> {
        assert!(cfg.min_healthy >= 1, "min_healthy floor must be at least 1");
        assert!(!cfg.poll.is_zero(), "poll interval must be positive");
        let from_version = fleet.target_version();
        let ctl = Rc::new(RolloutController {
            fleet: Rc::clone(fleet),
            health: fleet.dispatcher().health_plane(),
            from_version,
            phase: RefCell::new(Phase::Step),
            shifted: RefCell::new(Vec::new()),
            canary_name: RefCell::new(None),
            retire_log: RefCell::new(Vec::new()),
            replaced: Cell::new(0),
            rollbacks: Cell::new(0),
            outcome: RefCell::new(None),
            cfg,
        });
        let span = sim.span_begin("rollout.start");
        sim.span_attr(span, "to_version", u64::from(ctl.cfg.to_version));
        sim.span_attr(span, "strategy", ctl.strategy_label());
        sim.span_end(span);
        ctl.fleet.set_target_version(ctl.cfg.to_version);
        match &ctl.cfg.strategy {
            RolloutStrategy::Rolling => ctl.clone().step(sim),
            RolloutStrategy::Canary(_) => ctl.clone().launch_canary(sim),
            RolloutStrategy::Restart => ctl.clone().restart_all(sim),
        }
        ctl
    }

    /// Short strategy name for spans and CSV rows.
    pub fn strategy_label(&self) -> &'static str {
        match self.cfg.strategy {
            RolloutStrategy::Rolling => "rolling",
            RolloutStrategy::Canary(_) => "canary",
            RolloutStrategy::Restart => "restart",
        }
    }

    /// `Some` once the rollout finished (promote, completion, or
    /// rollback).
    pub fn outcome(&self) -> Option<RolloutOutcome> {
        *self.outcome.borrow()
    }

    /// Old-version replicas replaced so far.
    pub fn replaced(&self) -> u64 {
        self.replaced.get()
    }

    /// Auto-rollbacks performed (0 or 1 per controller).
    pub fn rollbacks(&self) -> u64 {
        self.rollbacks.get()
    }

    /// The canary replica's name, once one was booted.
    pub fn canary_name(&self) -> Option<String> {
        self.canary_name.borrow().clone()
    }

    /// Pins shifted onto the canary (the undo log's size).
    pub fn shifted_pins(&self) -> usize {
        self.shifted.borrow().len()
    }

    /// Every retirement this controller ordered, in order.
    pub fn retire_log(&self) -> Vec<RetireEvent> {
        self.retire_log.borrow().clone()
    }

    // -- rolling ------------------------------------------------------------

    /// One rolling step: done when no old-version replica remains;
    /// otherwise boot a replacement (retirement happens when the boot
    /// lands, so capacity never dips).
    fn step(self: Rc<Self>, sim: &mut Sim) {
        let old_actives = self.old_version_actives();
        if old_actives.is_empty() {
            // stragglers may still be draining; the rotation is clean
            let outcome = match self.cfg.strategy {
                RolloutStrategy::Canary(_) => RolloutOutcome::Promoted,
                _ => RolloutOutcome::Completed,
            };
            self.finish(sim, outcome);
            return;
        }
        let name = self.fleet.scale_up(sim);
        sim.counter_add("rollout.boot", 1);
        *self.phase.borrow_mut() = Phase::Booting(name);
        self.poll_later(sim);
    }

    /// The boot we are waiting on landed (or died): retire one
    /// old-version replica if the floor allows, then take the next step.
    fn on_boot_poll(self: Rc<Self>, sim: &mut Sim, name: String) {
        if self.fleet.replica_booting(&name) {
            *self.phase.borrow_mut() = Phase::Booting(name);
            self.poll_later(sim);
            return;
        }
        if self.fleet.replica_version(&name).is_some() {
            // in rotation: retire the oldest old-version replica, but
            // never through the floor (a crash may have shrunk the
            // fleet under us — then this boot only restored capacity)
            let active = self.fleet.active_replicas();
            if active > self.cfg.min_healthy {
                if let Some(victim) = self.old_version_actives().first().cloned() {
                    if self.fleet.retire_replica(sim, &victim) {
                        sim.counter_add("rollout.retire", 1);
                        self.replaced.set(self.replaced.get() + 1);
                        self.retire_log.borrow_mut().push(RetireEvent {
                            replica: victim,
                            active_before: active,
                        });
                    }
                }
            }
        }
        // a boot that died (crashed before activating) just loops:
        // the next step orders another replacement
        self.step(sim);
    }

    // -- canary -------------------------------------------------------------

    fn canary_cfg(&self) -> &CanaryConfig {
        match &self.cfg.strategy {
            RolloutStrategy::Canary(c) => c,
            _ => unreachable!("canary phase outside canary strategy"),
        }
    }

    fn launch_canary(self: Rc<Self>, sim: &mut Sim) {
        let name = self.fleet.scale_up(sim);
        sim.counter_add("rollout.boot", 1);
        *self.canary_name.borrow_mut() = Some(name.clone());
        *self.phase.borrow_mut() = Phase::Booting(name);
        self.poll_later(sim);
    }

    /// The canary joined the rotation: divert its traffic share and
    /// open the judgment window.
    fn on_canary_active(self: Rc<Self>, sim: &mut Sim, canary: String) {
        let c = self.canary_cfg();
        let shifted = self
            .fleet
            .dispatcher()
            .shift_pins(&canary, c.pin_fraction);
        self.fleet
            .dispatcher()
            .set_canary(&canary, c.first_sight_pct);
        let span = sim.span_begin("rollout.canary_open");
        sim.span_attr(span, "canary", canary.clone());
        sim.span_attr(span, "shifted_pins", shifted.len() as u64);
        sim.span_end(span);
        *self.shifted.borrow_mut() = shifted;
        *self.phase.borrow_mut() = Phase::Judging {
            canary,
            started: sim.now(),
        };
        self.poll_later(sim);
    }

    /// One judgment poll: a dead canary rolls back immediately; at the
    /// window end the p99 comparison decides.
    fn on_judgment_poll(self: Rc<Self>, sim: &mut Sim, canary: String, started: simkit::SimTime) {
        if self.fleet.replica_version(&canary).is_none() {
            // chaos got it mid-judgment: its pins are already orphaned
            // (crash path), restore_pins skips those, and there is
            // nothing left to drain
            self.rollback(sim, &canary, "canary died");
            return;
        }
        let c = self.canary_cfg();
        let elapsed = sim.now() - started;
        if elapsed < c.judgment {
            *self.phase.borrow_mut() = Phase::Judging { canary, started };
            self.poll_later(sim);
            return;
        }
        let verdict = self.judge(sim, &canary);
        match verdict {
            Verdict::Extend if elapsed < c.judgment.saturating_mul(3) => {
                *self.phase.borrow_mut() = Phase::Judging { canary, started };
                self.poll_later(sim);
            }
            Verdict::Fail => self.rollback(sim, &canary, "p99 regression"),
            // Pass — or starved of samples through 3 windows (nothing
            // routed its way: treat like a pass, rolling will judge it
            // again simply by serving)
            _ => self.promote(sim, &canary),
        }
    }

    /// Compare the canary's windowed p99 against the lower-median of
    /// its peers'. No health plane, or peers too quiet to score — no
    /// verdict, extend the window.
    fn judge(&self, sim: &Sim, canary: &str) -> Verdict {
        let Some(health) = &self.health else {
            return Verdict::Pass;
        };
        let c = self.canary_cfg();
        let now = sim.now();
        let Some(mine) = health.replica_health(now, canary) else {
            return Verdict::Extend;
        };
        if mine.samples < c.min_samples {
            return Verdict::Extend;
        }
        let mut peers: Vec<f64> = self
            .fleet
            .active_replica_names()
            .into_iter()
            .filter(|n| n != canary)
            .filter_map(|n| health.replica_health(now, &n))
            .filter(|h| h.samples >= c.min_samples)
            .map(|h| h.p99_s)
            .collect();
        if peers.is_empty() {
            return Verdict::Extend;
        }
        peers.sort_by(|a, b| a.partial_cmp(b).expect("p99 is never NaN"));
        let median = peers[(peers.len() - 1) / 2];
        if mine.p99_s > c.p99_factor * median.max(f64::EPSILON) {
            Verdict::Fail
        } else {
            Verdict::Pass
        }
    }

    /// Canary passed: stop the traffic diversion (it serves as a
    /// normal replica now; the shifted pins stay) and continue as a
    /// rolling replacement for the rest of the old fleet.
    fn promote(self: Rc<Self>, sim: &mut Sim, canary: &str) {
        self.fleet.dispatcher().clear_canary();
        let span = sim.span_begin("rollout.promote");
        sim.span_attr(span, "canary", canary.to_owned());
        sim.span_end(span);
        sim.counter_add("rollout.promoted", 1);
        // the canary already replaced one old replica's worth of
        // capacity: retire the first victim right away if possible
        let active = self.fleet.active_replicas();
        if active > self.cfg.min_healthy {
            if let Some(victim) = self.old_version_actives().first().cloned() {
                if self.fleet.retire_replica(sim, &victim) {
                    sim.counter_add("rollout.retire", 1);
                    self.replaced.set(self.replaced.get() + 1);
                    self.retire_log.borrow_mut().push(RetireEvent {
                        replica: victim,
                        active_before: active,
                    });
                }
            }
        }
        self.step(sim);
    }

    /// Canary failed (or died): restore the shifted pins, put the
    /// target version back, drain the canary out of rotation.
    fn rollback(self: Rc<Self>, sim: &mut Sim, canary: &str, why: &str) {
        self.fleet.dispatcher().clear_canary();
        let restored = self
            .fleet
            .dispatcher()
            .restore_pins(canary, &self.shifted.borrow());
        self.fleet.set_target_version(self.from_version);
        let drained = self.fleet.retire_replica(sim, canary);
        let span = sim.span_begin("rollout.rollback");
        sim.span_attr(span, "canary", canary.to_owned());
        sim.span_attr(span, "why", why.to_owned());
        sim.span_attr(span, "restored_pins", restored as u64);
        sim.span_attr(span, "drained", drained);
        sim.span_end(span);
        sim.counter_add("rollout.rollback", 1);
        self.rollbacks.set(self.rollbacks.get() + 1);
        self.finish(sim, RolloutOutcome::RolledBack);
    }

    // -- restart baseline ---------------------------------------------------

    /// Stop the world: crash every active replica, then boot the same
    /// count of replacements at the target version.
    fn restart_all(self: Rc<Self>, sim: &mut Sim) {
        let names = self.fleet.active_replica_names();
        let count = names.len().max(self.cfg.min_healthy);
        for name in &names {
            self.fleet.crash_replica(sim, name);
        }
        sim.counter_add("rollout.restart_kills", names.len() as u64);
        let mut booted = Vec::with_capacity(count);
        for _ in 0..count {
            booted.push(self.fleet.scale_up(sim));
            sim.counter_add("rollout.boot", 1);
        }
        self.replaced.set(names.len() as u64);
        *self.phase.borrow_mut() = Phase::Restarting(booted);
        self.poll_later(sim);
    }

    fn on_restart_poll(self: Rc<Self>, sim: &mut Sim, names: Vec<String>) {
        let pending: Vec<String> = names
            .into_iter()
            .filter(|n| self.fleet.replica_booting(n))
            .collect();
        if pending.is_empty() {
            self.finish(sim, RolloutOutcome::Completed);
        } else {
            *self.phase.borrow_mut() = Phase::Restarting(pending);
            self.poll_later(sim);
        }
    }

    // -- shared machinery ---------------------------------------------------

    fn old_version_actives(&self) -> Vec<String> {
        self.fleet
            .active_replica_names()
            .into_iter()
            .filter(|n| {
                self.fleet
                    .replica_version(n)
                    .is_some_and(|v| v != self.cfg.to_version)
            })
            .collect()
    }

    fn poll_later(self: Rc<Self>, sim: &mut Sim) {
        let poll = self.cfg.poll;
        sim.schedule(poll, move |sim| self.tick(sim));
    }

    fn tick(self: Rc<Self>, sim: &mut Sim) {
        let phase = std::mem::replace(&mut *self.phase.borrow_mut(), Phase::Done);
        match phase {
            Phase::Booting(name) => match &self.cfg.strategy {
                RolloutStrategy::Canary(_) if self.canary_pending(&name) => {
                    if self.fleet.replica_booting(&name) {
                        *self.phase.borrow_mut() = Phase::Booting(name);
                        self.poll_later(sim);
                    } else if self.fleet.replica_version(&name).is_some() {
                        self.on_canary_active(sim, name);
                    } else {
                        // the canary died before ever serving
                        self.rollback(sim, &name, "canary died booting");
                    }
                }
                _ => self.on_boot_poll(sim, name),
            },
            Phase::Step => self.step(sim),
            Phase::Judging { canary, started } => self.on_judgment_poll(sim, canary, started),
            Phase::Restarting(names) => self.on_restart_poll(sim, names),
            Phase::Done => {}
        }
    }

    /// Is `name` the canary we are still waiting to open (as opposed
    /// to a post-promotion rolling boot)? Replica names are unique, so
    /// name identity is the whole test.
    fn canary_pending(&self, name: &str) -> bool {
        self.canary_name.borrow().as_deref() == Some(name)
    }

    fn finish(&self, sim: &mut Sim, outcome: RolloutOutcome) {
        *self.phase.borrow_mut() = Phase::Done;
        if self.outcome.borrow().is_some() {
            return;
        }
        *self.outcome.borrow_mut() = Some(outcome);
        let span = sim.span_begin("rollout.done");
        sim.span_attr(span, "outcome", format!("{outcome:?}"));
        sim.span_attr(span, "replaced", self.replaced.get());
        sim.span_end(span);
        sim.counter_add("rollout.done", 1);
    }
}

enum Verdict {
    Pass,
    Fail,
    /// Not enough signal yet; extend the judgment window.
    Extend,
}
