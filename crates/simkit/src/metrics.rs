//! Bucketed time-series metric recording.
//!
//! The paper's evaluation plots CPU utilization, network I/O and disk I/O
//! sampled at 3-second intervals (Figures 6–8). The [`Recorder`] reproduces
//! that measurement model: every metric is a named series of fixed-width
//! buckets into which point amounts (bytes written at an instant) or span
//! amounts (busy-seconds accumulated over an interval) are accumulated.
//! Rendering the rows of a series *is* regenerating one curve of a figure.

use std::collections::BTreeMap;

use crate::time::{Duration, SimTime};

/// One named, bucketed series.
#[derive(Clone, Debug)]
pub struct Series {
    interval: Duration,
    buckets: Vec<f64>,
}

impl Series {
    fn new(interval: Duration) -> Self {
        Series {
            interval,
            buckets: Vec::new(),
        }
    }

    fn bucket_index(&self, t: SimTime) -> usize {
        (t.ticks() / self.interval.ticks().max(1)) as usize
    }

    fn grow_to(&mut self, idx: usize) {
        if self.buckets.len() <= idx {
            self.buckets.resize(idx + 1, 0.0);
        }
    }

    fn add_point(&mut self, t: SimTime, amount: f64) {
        let idx = self.bucket_index(t);
        self.grow_to(idx);
        self.buckets[idx] += amount;
    }

    fn add_span(&mut self, t0: SimTime, t1: SimTime, amount: f64) {
        if t1 <= t0 || amount == 0.0 {
            if amount != 0.0 {
                self.add_point(t0, amount);
            }
            return;
        }
        let span = (t1 - t0).as_secs_f64();
        let first = self.bucket_index(t0);
        let last = self.bucket_index(SimTime::from_ticks(t1.ticks().saturating_sub(1)));
        self.grow_to(last);
        let iv = self.interval.as_secs_f64();
        for idx in first..=last {
            let b_start = idx as f64 * iv;
            let b_end = b_start + iv;
            let overlap =
                (t1.as_secs_f64().min(b_end) - t0.as_secs_f64().max(b_start)).max(0.0);
            self.buckets[idx] += amount * overlap / span;
        }
    }

    /// Bucket width.
    pub fn interval(&self) -> Duration {
        self.interval
    }

    /// Raw accumulated bucket values.
    pub fn buckets(&self) -> &[f64] {
        &self.buckets
    }

    /// `(bucket_start_seconds, value)` rows — the series as a figure plots it.
    pub fn rows(&self) -> Vec<(f64, f64)> {
        let iv = self.interval.as_secs_f64();
        self.buckets
            .iter()
            .enumerate()
            .map(|(i, &v)| (i as f64 * iv, v))
            .collect()
    }

    /// `(bucket_start_seconds, value / bucket_width)` rows: converts an
    /// accumulated quantity into a rate (bytes → bytes/s, busy-seconds →
    /// utilization fraction).
    pub fn rate_rows(&self) -> Vec<(f64, f64)> {
        let iv = self.interval.as_secs_f64();
        self.buckets
            .iter()
            .enumerate()
            .map(|(i, &v)| (i as f64 * iv, v / iv))
            .collect()
    }

    /// Sum over all buckets.
    pub fn total(&self) -> f64 {
        self.buckets.iter().sum()
    }

    /// Largest bucket value (0 for an empty series).
    pub fn max(&self) -> f64 {
        self.buckets.iter().copied().fold(0.0, f64::max)
    }

    /// Index of the largest bucket (`None` for an empty series).
    pub fn argmax(&self) -> Option<usize> {
        if self.buckets.is_empty() {
            return None;
        }
        let mut best = 0;
        for (i, &v) in self.buckets.iter().enumerate() {
            if v > self.buckets[best] {
                best = i;
            }
        }
        Some(best)
    }

    /// Indices of local maxima strictly above `threshold` — used by tests to
    /// check figure shapes ("two disk-write peaks", "periodic polling
    /// writes").
    pub fn peaks(&self, threshold: f64) -> Vec<usize> {
        let b = &self.buckets;
        let mut out = Vec::new();
        for i in 0..b.len() {
            if b[i] <= threshold {
                continue;
            }
            let left = if i == 0 { 0.0 } else { b[i - 1] };
            let right = if i + 1 == b.len() { 0.0 } else { b[i + 1] };
            if b[i] >= left && b[i] > right || b[i] > left && b[i] >= right {
                out.push(i);
            }
        }
        out
    }
}

/// Interned handle to one series, returned by [`Recorder::intern`].
///
/// Hot paths (the fluid servers' `advance`) resolve their dotted key
/// strings once and record through the id afterwards, turning every
/// sample into a vector index instead of a string-keyed map lookup.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct MetricId(u32);

/// Accumulates all metric series for a simulation run.
///
/// Keys are dotted paths, e.g. `"appliance.net.out"` or `"grid-node.cpu"`.
/// Each key is interned to a dense [`MetricId`] indexing a `Vec<Series>`;
/// the `BTreeMap` name index keeps report output deterministically
/// ordered.
#[derive(Clone, Debug)]
pub struct Recorder {
    interval: Duration,
    names: BTreeMap<String, MetricId>,
    series: Vec<Series>,
}

impl Recorder {
    /// New recorder with the given bucket width.
    pub fn new(interval: Duration) -> Self {
        assert!(!interval.is_zero(), "sampling interval must be nonzero");
        Recorder {
            interval,
            names: BTreeMap::new(),
            series: Vec::new(),
        }
    }

    /// Bucket width used by every series.
    pub fn interval(&self) -> Duration {
        self.interval
    }

    /// Resolve `key` to its id, creating an empty series on first use.
    pub fn intern(&mut self, key: &str) -> MetricId {
        if let Some(&id) = self.names.get(key) {
            return id;
        }
        let id = MetricId(u32::try_from(self.series.len()).expect("metric id space exhausted"));
        self.names.insert(key.to_owned(), id);
        self.series.push(Series::new(self.interval));
        id
    }

    /// Accumulate `amount` into the bucket containing instant `t`.
    pub fn add_point(&mut self, key: &str, t: SimTime, amount: f64) {
        let id = self.intern(key);
        self.add_point_id(id, t, amount);
    }

    /// Distribute `amount` over `[t0, t1)` proportionally to bucket overlap.
    /// A degenerate span collapses to a point at `t0`.
    pub fn add_span(&mut self, key: &str, t0: SimTime, t1: SimTime, amount: f64) {
        let id = self.intern(key);
        self.add_span_id(id, t0, t1, amount);
    }

    /// [`add_point`](Self::add_point) through an interned id.
    pub fn add_point_id(&mut self, id: MetricId, t: SimTime, amount: f64) {
        self.series[id.0 as usize].add_point(t, amount);
    }

    /// [`add_span`](Self::add_span) through an interned id.
    pub fn add_span_id(&mut self, id: MetricId, t0: SimTime, t1: SimTime, amount: f64) {
        self.series[id.0 as usize].add_span(t0, t1, amount);
    }

    /// Look up a series by key.
    pub fn series(&self, key: &str) -> Option<&Series> {
        self.names.get(key).map(|&id| &self.series[id.0 as usize])
    }

    /// Look up a series by interned id.
    pub fn series_by_id(&self, id: MetricId) -> &Series {
        &self.series[id.0 as usize]
    }

    /// Series total, or 0.0 when absent.
    pub fn total(&self, key: &str) -> f64 {
        self.series(key).map_or(0.0, Series::total)
    }

    /// All keys, sorted.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.names.keys().map(String::as_str)
    }

    /// Keys sharing a prefix (e.g. every metric of one host).
    pub fn keys_with_prefix<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = &'a str> {
        self.keys().filter(move |k| k.starts_with(prefix))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec() -> Recorder {
        Recorder::new(Duration::from_secs(3))
    }

    #[test]
    fn point_lands_in_right_bucket() {
        let mut r = rec();
        r.add_point("x", SimTime::from_secs(7), 5.0);
        let s = r.series("x").unwrap();
        assert_eq!(s.buckets(), &[0.0, 0.0, 5.0]);
    }

    #[test]
    fn points_accumulate() {
        let mut r = rec();
        r.add_point("x", SimTime::from_secs(1), 2.0);
        r.add_point("x", SimTime::from_secs(2), 3.0);
        assert_eq!(r.series("x").unwrap().buckets(), &[5.0]);
        assert_eq!(r.total("x"), 5.0);
    }

    #[test]
    fn span_splits_proportionally() {
        let mut r = rec();
        // [2s, 8s) over 3s buckets: 1s in bucket0, 3s in bucket1, 2s in bucket2
        r.add_span("x", SimTime::from_secs(2), SimTime::from_secs(8), 6.0);
        let b = r.series("x").unwrap().buckets();
        assert!((b[0] - 1.0).abs() < 1e-9, "{b:?}");
        assert!((b[1] - 3.0).abs() < 1e-9, "{b:?}");
        assert!((b[2] - 2.0).abs() < 1e-9, "{b:?}");
    }

    #[test]
    fn span_conserves_total() {
        let mut r = rec();
        r.add_span("x", SimTime::from_secs_f64(1.7), SimTime::from_secs_f64(13.2), 42.0);
        assert!((r.total("x") - 42.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_span_is_a_point() {
        let mut r = rec();
        r.add_span("x", SimTime::from_secs(4), SimTime::from_secs(4), 9.0);
        assert_eq!(r.series("x").unwrap().buckets(), &[0.0, 9.0]);
    }

    #[test]
    fn span_within_one_bucket() {
        let mut r = rec();
        r.add_span("x", SimTime::from_secs_f64(0.5), SimTime::from_secs_f64(1.5), 4.0);
        assert_eq!(r.series("x").unwrap().buckets(), &[4.0]);
    }

    #[test]
    fn rate_rows_divide_by_interval() {
        let mut r = rec();
        r.add_point("x", SimTime::from_secs(0), 6.0);
        let rows = r.series("x").unwrap().rate_rows();
        assert_eq!(rows, vec![(0.0, 2.0)]);
    }

    #[test]
    fn rows_give_bucket_starts() {
        let mut r = rec();
        r.add_point("x", SimTime::from_secs(7), 1.0);
        let rows = r.series("x").unwrap().rows();
        assert_eq!(rows, vec![(0.0, 0.0), (3.0, 0.0), (6.0, 1.0)]);
    }

    #[test]
    fn peaks_finds_local_maxima() {
        let mut s = Series::new(Duration::from_secs(1));
        for (i, v) in [0.0, 5.0, 1.0, 0.0, 7.0, 2.0, 0.0, 3.0].iter().enumerate() {
            s.add_point(SimTime::from_secs(i as u64), *v);
        }
        assert_eq!(s.peaks(0.5), vec![1, 4, 7]);
        assert_eq!(s.peaks(4.0), vec![1, 4]);
        assert_eq!(s.argmax(), Some(4));
    }

    #[test]
    fn missing_series_total_is_zero() {
        let r = rec();
        assert_eq!(r.total("nope"), 0.0);
        assert!(r.series("nope").is_none());
    }

    #[test]
    fn prefix_filtering() {
        let mut r = rec();
        r.add_point("host.cpu", SimTime::ZERO, 1.0);
        r.add_point("host.disk", SimTime::ZERO, 1.0);
        r.add_point("other.cpu", SimTime::ZERO, 1.0);
        let keys: Vec<_> = r.keys_with_prefix("host.").collect();
        assert_eq!(keys, vec!["host.cpu", "host.disk"]);
    }

    #[test]
    #[should_panic(expected = "sampling interval")]
    fn zero_interval_rejected() {
        let _ = Recorder::new(Duration::ZERO);
    }

    #[test]
    fn intern_is_stable_and_id_path_aliases_key_path() {
        let mut r = rec();
        let a = r.intern("x");
        let b = r.intern("y");
        assert_ne!(a, b);
        assert_eq!(r.intern("x"), a);
        r.add_point_id(a, SimTime::from_secs(7), 5.0);
        r.add_span_id(a, SimTime::from_secs(2), SimTime::from_secs(8), 6.0);
        r.add_point("x", SimTime::from_secs(7), 1.0);
        let via_key = r.series("x").unwrap().total();
        let via_id = r.series_by_id(a).total();
        assert_eq!(via_key, via_id);
        assert!((via_key - 12.0).abs() < 1e-9);
        assert_eq!(r.series_by_id(b).total(), 0.0);
    }

    #[test]
    fn keys_stay_sorted_regardless_of_intern_order() {
        let mut r = rec();
        r.intern("z.last");
        r.intern("a.first");
        r.intern("m.middle");
        let keys: Vec<_> = r.keys().collect();
        assert_eq!(keys, vec!["a.first", "m.middle", "z.last"]);
    }
}
