//! Bucketed time-series metric recording.
//!
//! The paper's evaluation plots CPU utilization, network I/O and disk I/O
//! sampled at 3-second intervals (Figures 6–8). The [`Recorder`] reproduces
//! that measurement model: every metric is a named series of fixed-width
//! buckets into which point amounts (bytes written at an instant) or span
//! amounts (busy-seconds accumulated over an interval) are accumulated.
//! Rendering the rows of a series *is* regenerating one curve of a figure.

use std::collections::BTreeMap;

use crate::time::{Duration, SimTime};

/// One named, bucketed series.
#[derive(Clone, Debug)]
pub struct Series {
    interval: Duration,
    buckets: Vec<f64>,
}

impl Series {
    fn new(interval: Duration) -> Self {
        Series {
            interval,
            buckets: Vec::new(),
        }
    }

    fn bucket_index(&self, t: SimTime) -> usize {
        (t.ticks() / self.interval.ticks().max(1)) as usize
    }

    fn grow_to(&mut self, idx: usize) {
        if self.buckets.len() <= idx {
            self.buckets.resize(idx + 1, 0.0);
        }
    }

    fn add_point(&mut self, t: SimTime, amount: f64) {
        let idx = self.bucket_index(t);
        self.grow_to(idx);
        self.buckets[idx] += amount;
    }

    fn add_span(&mut self, t0: SimTime, t1: SimTime, amount: f64) {
        if t1 <= t0 || amount == 0.0 {
            if amount != 0.0 {
                self.add_point(t0, amount);
            }
            return;
        }
        let span = (t1 - t0).as_secs_f64();
        let first = self.bucket_index(t0);
        let last = self.bucket_index(SimTime::from_ticks(t1.ticks().saturating_sub(1)));
        self.grow_to(last);
        let iv = self.interval.as_secs_f64();
        for idx in first..=last {
            let b_start = idx as f64 * iv;
            let b_end = b_start + iv;
            let overlap =
                (t1.as_secs_f64().min(b_end) - t0.as_secs_f64().max(b_start)).max(0.0);
            self.buckets[idx] += amount * overlap / span;
        }
    }

    /// Bucket width.
    pub fn interval(&self) -> Duration {
        self.interval
    }

    /// Raw accumulated bucket values.
    pub fn buckets(&self) -> &[f64] {
        &self.buckets
    }

    /// `(bucket_start_seconds, value)` rows — the series as a figure plots it.
    pub fn rows(&self) -> Vec<(f64, f64)> {
        let iv = self.interval.as_secs_f64();
        self.buckets
            .iter()
            .enumerate()
            .map(|(i, &v)| (i as f64 * iv, v))
            .collect()
    }

    /// `(bucket_start_seconds, value / bucket_width)` rows: converts an
    /// accumulated quantity into a rate (bytes → bytes/s, busy-seconds →
    /// utilization fraction).
    pub fn rate_rows(&self) -> Vec<(f64, f64)> {
        let iv = self.interval.as_secs_f64();
        self.buckets
            .iter()
            .enumerate()
            .map(|(i, &v)| (i as f64 * iv, v / iv))
            .collect()
    }

    /// Sum over all buckets.
    pub fn total(&self) -> f64 {
        self.buckets.iter().sum()
    }

    /// Largest bucket value (0 for an empty series).
    pub fn max(&self) -> f64 {
        self.buckets.iter().copied().fold(0.0, f64::max)
    }

    /// Index of the largest bucket (`None` for an empty series).
    pub fn argmax(&self) -> Option<usize> {
        if self.buckets.is_empty() {
            return None;
        }
        let mut best = 0;
        for (i, &v) in self.buckets.iter().enumerate() {
            if v > self.buckets[best] {
                best = i;
            }
        }
        Some(best)
    }

    /// Indices of local maxima strictly above `threshold` — used by tests to
    /// check figure shapes ("two disk-write peaks", "periodic polling
    /// writes").
    pub fn peaks(&self, threshold: f64) -> Vec<usize> {
        let b = &self.buckets;
        let mut out = Vec::new();
        for i in 0..b.len() {
            if b[i] <= threshold {
                continue;
            }
            let left = if i == 0 { 0.0 } else { b[i - 1] };
            let right = if i + 1 == b.len() { 0.0 } else { b[i + 1] };
            if b[i] >= left && b[i] > right || b[i] > left && b[i] >= right {
                out.push(i);
            }
        }
        out
    }
}

/// Interned handle to one series, returned by [`Recorder::intern`].
///
/// Hot paths (the fluid servers' `advance`) resolve their dotted key
/// strings once and record through the id afterwards, turning every
/// sample into a vector index instead of a string-keyed map lookup.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct MetricId(u32);

/// Accumulates all metric series for a simulation run.
///
/// Keys are dotted paths, e.g. `"appliance.net.out"` or `"grid-node.cpu"`.
/// Each key is interned to a dense [`MetricId`] indexing a `Vec<Series>`;
/// the `BTreeMap` name index keeps report output deterministically
/// ordered.
#[derive(Clone, Debug)]
pub struct Recorder {
    interval: Duration,
    names: BTreeMap<String, MetricId>,
    series: Vec<Series>,
}

impl Recorder {
    /// New recorder with the given bucket width.
    pub fn new(interval: Duration) -> Self {
        assert!(!interval.is_zero(), "sampling interval must be nonzero");
        Recorder {
            interval,
            names: BTreeMap::new(),
            series: Vec::new(),
        }
    }

    /// Bucket width used by every series.
    pub fn interval(&self) -> Duration {
        self.interval
    }

    /// Resolve `key` to its id, creating an empty series on first use.
    pub fn intern(&mut self, key: &str) -> MetricId {
        if let Some(&id) = self.names.get(key) {
            return id;
        }
        let id = MetricId(u32::try_from(self.series.len()).expect("metric id space exhausted"));
        self.names.insert(key.to_owned(), id);
        self.series.push(Series::new(self.interval));
        id
    }

    /// Accumulate `amount` into the bucket containing instant `t`.
    pub fn add_point(&mut self, key: &str, t: SimTime, amount: f64) {
        let id = self.intern(key);
        self.add_point_id(id, t, amount);
    }

    /// Distribute `amount` over `[t0, t1)` proportionally to bucket overlap.
    /// A degenerate span collapses to a point at `t0`.
    pub fn add_span(&mut self, key: &str, t0: SimTime, t1: SimTime, amount: f64) {
        let id = self.intern(key);
        self.add_span_id(id, t0, t1, amount);
    }

    /// [`add_point`](Self::add_point) through an interned id.
    pub fn add_point_id(&mut self, id: MetricId, t: SimTime, amount: f64) {
        self.series[id.0 as usize].add_point(t, amount);
    }

    /// [`add_span`](Self::add_span) through an interned id.
    pub fn add_span_id(&mut self, id: MetricId, t0: SimTime, t1: SimTime, amount: f64) {
        self.series[id.0 as usize].add_span(t0, t1, amount);
    }

    /// Look up a series by key.
    pub fn series(&self, key: &str) -> Option<&Series> {
        self.names.get(key).map(|&id| &self.series[id.0 as usize])
    }

    /// Look up a series by interned id.
    pub fn series_by_id(&self, id: MetricId) -> &Series {
        &self.series[id.0 as usize]
    }

    /// Series total, or 0.0 when absent.
    pub fn total(&self, key: &str) -> f64 {
        self.series(key).map_or(0.0, Series::total)
    }

    /// All keys, sorted.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.names.keys().map(String::as_str)
    }

    /// Keys sharing a prefix (e.g. every metric of one host).
    pub fn keys_with_prefix<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = &'a str> {
        self.keys().filter(move |k| k.starts_with(prefix))
    }
}

// ---------------------------------------------------------------------------
// Windowed time-series registry (the fleet health plane's substrate)
// ---------------------------------------------------------------------------

/// Number of log₂ buckets in a windowed histogram (and in
/// [`crate::telemetry::DurationHisto`]). Bucket 0 covers values 0–1, bucket
/// `i` covers `(2^(i-1), 2^i]`, bucket 63 absorbs everything larger.
pub const LOG2_BUCKETS: usize = 64;

/// Log₂ bucket index for a raw value.
#[inline]
pub(crate) fn log2_bucket(v: u64) -> usize {
    ((64 - v.leading_zeros()) as usize).min(LOG2_BUCKETS - 1)
}

/// Inclusive upper bound of log₂ bucket `i`.
#[inline]
fn log2_bucket_upper(i: usize) -> u64 {
    if i == 0 {
        1
    } else {
        1u64 << i.min(63)
    }
}

/// Exclusive-ish lower bound of log₂ bucket `i` (0 for bucket 0).
#[inline]
fn log2_bucket_lower(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        log2_bucket_upper(i - 1)
    }
}

/// Quantile estimate from a log₂ bucket array by linear interpolation
/// inside the bucket holding the target rank, clamped to the observed
/// maximum. Returns 0.0 for an empty distribution. `q` is clamped to
/// `[0, 1]`. Shared by [`WindowAgg`] and `DurationHisto::quantile`.
pub(crate) fn quantile_from_log2(counts: &[u64], total: u64, max: u64, q: f64) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let q = q.clamp(0.0, 1.0);
    // rank of the sample we want, 1-based: q=0 -> first, q=1 -> last
    let target = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut cum = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        if c == 0 {
            continue;
        }
        cum += c;
        if cum >= target {
            let lower = log2_bucket_lower(i) as f64;
            let upper = (log2_bucket_upper(i).min(max.max(1))) as f64;
            let into = (target - (cum - c)) as f64 / c as f64;
            return (lower + into * (upper - lower).max(0.0)).min(max as f64);
        }
    }
    max as f64
}

/// One window's aggregate: count / sum / max, plus an optional log₂
/// histogram for quantile queries. All fields are plain integer adds, so
/// [`WindowAgg::merge`] is commutative and associative — any subrange of
/// windows can be combined in any order with the same result.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WindowAgg {
    count: u64,
    sum: u64,
    max: u64,
    /// Empty for counter-only series; `LOG2_BUCKETS` entries otherwise.
    buckets: Vec<u64>,
}

impl WindowAgg {
    /// Counter-only aggregate (no histogram allocation).
    pub fn counter() -> Self {
        WindowAgg::default()
    }

    /// Histogram aggregate (allocates the log₂ bucket array once).
    pub fn histogram() -> Self {
        WindowAgg {
            buckets: vec![0; LOG2_BUCKETS],
            ..WindowAgg::default()
        }
    }

    fn reset(&mut self) {
        self.count = 0;
        self.sum = 0;
        self.max = 0;
        for b in &mut self.buckets {
            *b = 0;
        }
    }

    /// Record one observation.
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
        if !self.buckets.is_empty() {
            self.buckets[log2_bucket(v)] += 1;
        }
    }

    /// Fold `other` into `self` (pure element-wise addition / max). A
    /// counter-only aggregate merging a histogram one promotes itself, so
    /// the operation stays commutative across kinds.
    pub fn merge(&mut self, other: &WindowAgg) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
        if !other.buckets.is_empty() {
            if self.buckets.is_empty() {
                self.buckets = vec![0; LOG2_BUCKETS];
            }
            for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
                *a += b;
            }
        }
    }

    /// Observations in this aggregate.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observed values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest observed value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observed value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Quantile estimate in raw value units (log₂-bucket interpolation,
    /// clamped to the observed max). 0.0 when the aggregate is empty or
    /// counter-only.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.buckets.is_empty() {
            return 0.0;
        }
        quantile_from_log2(&self.buckets, self.count, self.max, q)
    }
}

/// Sentinel epoch for a ring slot that has never been written.
const EMPTY_EPOCH: u64 = u64::MAX;

/// A ring of fixed-width windows over the virtual clock.
///
/// `record(t, v)` lands in the window `t / width`; a slot whose epoch has
/// lapped is reset in place, so the series holds the last `ring` windows
/// with zero steady-state allocation. Range queries merge every live
/// window overlapping the lookback, which is exact (not an approximation)
/// for count/sum/max and log₂-bucket-exact for quantiles.
#[derive(Clone, Debug)]
pub struct WindowedSeries {
    width: Duration,
    slots: Vec<(u64, WindowAgg)>,
    histo: bool,
    life_count: u64,
    life_sum: u64,
}

impl WindowedSeries {
    fn new(width: Duration, ring: usize, histo: bool) -> Self {
        assert!(!width.is_zero(), "window width must be nonzero");
        assert!(ring > 0, "window ring must hold at least one window");
        let proto = if histo {
            WindowAgg::histogram()
        } else {
            WindowAgg::counter()
        };
        WindowedSeries {
            width,
            slots: vec![(EMPTY_EPOCH, proto); ring],
            histo,
            life_count: 0,
            life_sum: 0,
        }
    }

    /// Window width.
    pub fn width(&self) -> Duration {
        self.width
    }

    /// Whether this series keeps per-window histograms.
    pub fn is_histogram(&self) -> bool {
        self.histo
    }

    /// Observations recorded over the series' whole lifetime (not just the
    /// windows still in the ring) — the Prometheus cumulative `_count`.
    pub fn lifetime_count(&self) -> u64 {
        self.life_count
    }

    /// Lifetime sum of observed values — the Prometheus cumulative `_sum`.
    pub fn lifetime_sum(&self) -> u64 {
        self.life_sum
    }

    /// Record `v` at instant `t`.
    pub fn record(&mut self, t: SimTime, v: u64) {
        let epoch = t.ticks() / self.width.ticks();
        let idx = (epoch % self.slots.len() as u64) as usize;
        let slot = &mut self.slots[idx];
        if slot.0 != epoch {
            slot.0 = epoch;
            slot.1.reset();
        }
        slot.1.record(v);
        self.life_count += 1;
        self.life_sum = self.life_sum.saturating_add(v);
    }

    /// Merge every live window whose span overlaps `[now - lookback, now]`.
    pub fn range(&self, now: SimTime, lookback: Duration) -> WindowAgg {
        let width = self.width.ticks();
        let now_epoch = now.ticks() / width;
        let start_epoch = now.ticks().saturating_sub(lookback.ticks()) / width;
        let mut out = if self.histo {
            WindowAgg::histogram()
        } else {
            WindowAgg::counter()
        };
        for (epoch, agg) in &self.slots {
            if *epoch != EMPTY_EPOCH && *epoch >= start_epoch && *epoch <= now_epoch {
                out.merge(agg);
            }
        }
        out
    }

    /// Live `(window_start, agg)` pairs in time order (for CSV export).
    pub fn windows(&self) -> Vec<(SimTime, &WindowAgg)> {
        let mut out: Vec<(SimTime, &WindowAgg)> = self
            .slots
            .iter()
            .filter(|(e, _)| *e != EMPTY_EPOCH)
            .map(|(e, agg)| (SimTime::from_ticks(e * self.width.ticks()), agg))
            .collect();
        out.sort_by_key(|(t, _)| *t);
        out
    }
}

/// Interned handle to one windowed series.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct WindowedId(u32);

/// Registry of named windowed series sharing one window width and ring
/// depth. Names are interned to dense ids exactly like [`Recorder`]; the
/// `BTreeMap` keeps both exports deterministically name-ordered.
#[derive(Clone, Debug)]
pub struct WindowedRegistry {
    width: Duration,
    ring: usize,
    names: BTreeMap<String, WindowedId>,
    series: Vec<(String, WindowedSeries)>,
}

impl WindowedRegistry {
    /// New registry: each series is a ring of `ring` windows of `width`.
    pub fn new(width: Duration, ring: usize) -> Self {
        assert!(!width.is_zero(), "window width must be nonzero");
        assert!(ring > 0, "window ring must hold at least one window");
        WindowedRegistry {
            width,
            ring,
            names: BTreeMap::new(),
            series: Vec::new(),
        }
    }

    /// Window width shared by every series.
    pub fn width(&self) -> Duration {
        self.width
    }

    /// Number of registered series.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// True when no series has been registered.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    fn intern(&mut self, name: &str, histo: bool) -> WindowedId {
        if let Some(&id) = self.names.get(name) {
            let existing = &self.series[id.0 as usize].1;
            assert_eq!(
                existing.is_histogram(),
                histo,
                "windowed series {name:?} re-registered as a different kind"
            );
            return id;
        }
        let id = WindowedId(
            u32::try_from(self.series.len()).expect("windowed id space exhausted"),
        );
        self.names.insert(name.to_owned(), id);
        self.series
            .push((name.to_owned(), WindowedSeries::new(self.width, self.ring, histo)));
        id
    }

    /// Register (or look up) a counter-only series: count/sum/max per
    /// window, no histogram allocation. Use for request/error tallies.
    pub fn counter(&mut self, name: &str) -> WindowedId {
        self.intern(name, false)
    }

    /// Register (or look up) a histogram series: quantile queries over any
    /// window range. Use for latencies and queue depths.
    pub fn histogram(&mut self, name: &str) -> WindowedId {
        self.intern(name, true)
    }

    /// Record `v` at instant `t` into the series behind `id`.
    pub fn record(&mut self, id: WindowedId, t: SimTime, v: u64) {
        self.series[id.0 as usize].1.record(t, v);
    }

    /// Look up a series by name.
    pub fn series(&self, name: &str) -> Option<&WindowedSeries> {
        self.names.get(name).map(|&id| &self.series[id.0 as usize].1)
    }

    /// Look up a series by interned id.
    pub fn series_by_id(&self, id: WindowedId) -> &WindowedSeries {
        &self.series[id.0 as usize].1
    }

    /// Merge the lookback range of the series behind `id` as of `now`.
    pub fn range(&self, id: WindowedId, now: SimTime, lookback: Duration) -> WindowAgg {
        self.series_by_id(id).range(now, lookback)
    }

    /// All series names, sorted.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.names.keys().map(String::as_str)
    }

    /// Prometheus text-exposition snapshot as of `now`.
    ///
    /// Histogram series render as a `summary` family — `p50/p95/p99` over
    /// the whole ring plus cumulative `_sum`/`_count` — and counter-only
    /// series as a `counter` with the lifetime sum. Values are in the raw
    /// recorded units. The output passes [`validate_prometheus_text`].
    pub fn prometheus_text(&self, now: SimTime) -> String {
        self.prometheus_text_labeled(now, |_| None)
    }

    /// [`WindowedRegistry::prometheus_text`] with per-series extra labels:
    /// `label_for` maps each *raw* (unsanitized) series name onto an
    /// optional `(key, value)` label attached to every sample of that
    /// family — how the fleet's health plane tags per-replica series with
    /// their geo `site`. A callback that always returns `None` produces
    /// byte-identical output to the unlabeled snapshot.
    pub fn prometheus_text_labeled(
        &self,
        now: SimTime,
        label_for: impl Fn(&str) -> Option<(String, String)>,
    ) -> String {
        self.prometheus_text_multi_labeled(now, |name| label_for(name).into_iter().collect())
    }

    /// [`WindowedRegistry::prometheus_text_labeled`] generalized to any
    /// number of extra labels per series — how the fleet's health plane
    /// tags per-replica series with both a geo `site` and the artifact
    /// `version` the replica serves. Labels render in the order returned.
    /// A callback that always returns an empty `Vec` produces
    /// byte-identical output to the unlabeled snapshot.
    pub fn prometheus_text_multi_labeled(
        &self,
        now: SimTime,
        label_for: impl Fn(&str) -> Vec<(String, String)>,
    ) -> String {
        let lookback = Duration::from_micros(
            self.width.ticks().saturating_mul(self.ring as u64),
        );
        let mut out = String::new();
        for (name, &id) in &self.names {
            let s = self.series_by_id(id);
            let fam = sanitize_metric_name(name);
            let extra = label_for(name);
            // rendered both alone (`{site="east",version="v2"}`) and
            // appended to the quantile label (`,site="east",version="v2"`)
            let (solo, tail) = if extra.is_empty() {
                (String::new(), String::new())
            } else {
                let joined = extra
                    .iter()
                    .map(|(k, v)| format!("{k}=\"{v}\""))
                    .collect::<Vec<_>>()
                    .join(",");
                (format!("{{{joined}}}"), format!(",{joined}"))
            };
            if s.is_histogram() {
                let agg = s.range(now, lookback);
                out.push_str(&format!("# TYPE {fam} summary\n"));
                for (label, q) in [("0.5", 0.5), ("0.95", 0.95), ("0.99", 0.99)] {
                    out.push_str(&format!(
                        "{fam}{{quantile=\"{label}\"{tail}}} {}\n",
                        fmt_prom_value(agg.quantile(q))
                    ));
                }
                out.push_str(&format!("{fam}_sum{solo} {}\n", s.lifetime_sum()));
                out.push_str(&format!("{fam}_count{solo} {}\n", s.lifetime_count()));
            } else {
                out.push_str(&format!("# TYPE {fam} counter\n"));
                out.push_str(&format!("{fam}{solo} {}\n", s.lifetime_sum()));
            }
        }
        out
    }

    /// Time-series CSV: one row per live window per series, name-ordered
    /// then time-ordered. Columns: `series,t_s,count,sum,max,p50,p95,p99`
    /// (quantile columns are 0 for counter-only series).
    pub fn timeseries_csv(&self) -> String {
        let mut out = String::from("series,t_s,count,sum,max,p50,p95,p99\n");
        for (name, &id) in &self.names {
            let s = self.series_by_id(id);
            for (t, agg) in s.windows() {
                out.push_str(&format!(
                    "{name},{},{},{},{},{},{},{}\n",
                    fmt_prom_value(t.as_secs_f64()),
                    agg.count(),
                    agg.sum(),
                    agg.max(),
                    fmt_prom_value(agg.quantile(0.5)),
                    fmt_prom_value(agg.quantile(0.95)),
                    fmt_prom_value(agg.quantile(0.99)),
                ));
            }
        }
        out
    }
}

/// Render a float for exposition/CSV output: integral values print without
/// a trailing `.0` so counters look like counters, everything else uses
/// Rust's shortest round-trip `Display` (deterministic across platforms).
fn fmt_prom_value(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Map an internal dotted series name onto the Prometheus metric-name
/// charset `[a-zA-Z_:][a-zA-Z0-9_:]*`.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic()
            || c == '_'
            || c == ':'
            || (i > 0 && c.is_ascii_digit());
        if ok {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Strict validator for the Prometheus text exposition format.
///
/// Enforces: metric names match `[a-zA-Z_:][a-zA-Z0-9_:]*`; label syntax is
/// `key="value"` with `\\`, `\"`, `\n` escapes only; sample values parse as
/// floats (`+Inf`/`-Inf`/`NaN` allowed); every sample's family has a
/// `# TYPE` line *before* its first sample; no duplicate `# TYPE` for a
/// family; no duplicate sample (same name + label set); the text ends with
/// a newline. Returns `(families, samples)` on success.
pub fn validate_prometheus_text(text: &str) -> Result<(usize, usize), String> {
    use std::collections::BTreeSet;
    if !text.is_empty() && !text.ends_with('\n') {
        return Err("exposition must end with a newline".into());
    }
    let mut typed: BTreeMap<String, String> = BTreeMap::new();
    let mut seen_samples: BTreeSet<String> = BTreeSet::new();
    let mut samples = 0usize;
    for (ln, line) in text.lines().enumerate() {
        let ln = ln + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.splitn(2, ' ');
            let name = parts.next().unwrap_or("");
            let kind = parts.next().unwrap_or("");
            if !is_valid_metric_name(name) {
                return Err(format!("line {ln}: bad metric name in TYPE: {name:?}"));
            }
            if !matches!(kind, "counter" | "gauge" | "summary" | "histogram" | "untyped") {
                return Err(format!("line {ln}: unknown TYPE kind {kind:?}"));
            }
            if typed.insert(name.to_owned(), kind.to_owned()).is_some() {
                return Err(format!("line {ln}: duplicate TYPE for family {name:?}"));
            }
            continue;
        }
        if line.starts_with("# HELP ") || line.starts_with('#') {
            continue; // free-form comments / HELP text
        }
        // sample line: name[{labels}] value
        let (name_labels, value) = match line.rsplit_once(' ') {
            Some(pair) => pair,
            None => return Err(format!("line {ln}: sample missing value: {line:?}")),
        };
        let (name, labels) = match name_labels.find('{') {
            Some(b) => {
                if !name_labels.ends_with('}') {
                    return Err(format!("line {ln}: unterminated label set: {line:?}"));
                }
                let name = &name_labels[..b];
                let labels = &name_labels[b + 1..name_labels.len() - 1];
                validate_label_set(labels).map_err(|e| format!("line {ln}: {e}"))?;
                (name, labels)
            }
            None => (name_labels, ""),
        };
        if !is_valid_metric_name(name) {
            return Err(format!("line {ln}: bad metric name {name:?}"));
        }
        if !matches!(value, "+Inf" | "-Inf" | "NaN") && value.parse::<f64>().is_err() {
            return Err(format!("line {ln}: bad sample value {value:?}"));
        }
        // resolve the family: summaries/histograms own their _sum/_count
        let known_family = typed.contains_key(name)
            || name
                .strip_suffix("_sum")
                .or_else(|| name.strip_suffix("_count"))
                .or_else(|| name.strip_suffix("_bucket"))
                .is_some_and(|f| {
                    matches!(
                        typed.get(f).map(String::as_str),
                        Some("summary") | Some("histogram")
                    )
                });
        if !known_family {
            return Err(format!(
                "line {ln}: sample {name:?} has no preceding # TYPE"
            ));
        }
        if !seen_samples.insert(format!("{name}{{{labels}}}")) {
            return Err(format!("line {ln}: duplicate sample {name_labels:?}"));
        }
        samples += 1;
    }
    Ok((typed.len(), samples))
}

fn is_valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn validate_label_set(labels: &str) -> Result<(), String> {
    if labels.is_empty() {
        return Err("empty label set braces".into());
    }
    let mut rest = labels;
    loop {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("label pair missing '=': {rest:?}"))?;
        let key = &rest[..eq];
        let mut kchars = key.chars();
        let head_ok = matches!(kchars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_');
        if !head_ok || !kchars.all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return Err(format!("bad label name {key:?}"));
        }
        rest = &rest[eq + 1..];
        if !rest.starts_with('"') {
            return Err(format!("label value must be quoted: {rest:?}"));
        }
        // scan the quoted value honouring escapes
        let bytes = rest.as_bytes();
        let mut i = 1;
        loop {
            match bytes.get(i) {
                None => return Err("unterminated label value".into()),
                Some(b'\\') => match bytes.get(i + 1) {
                    Some(b'\\') | Some(b'"') | Some(b'n') => i += 2,
                    _ => return Err("bad escape in label value".into()),
                },
                Some(b'"') => break,
                Some(_) => i += 1,
            }
        }
        rest = &rest[i + 1..];
        if rest.is_empty() {
            return Ok(());
        }
        rest = rest
            .strip_prefix(',')
            .ok_or_else(|| format!("label pairs must be comma-separated: {rest:?}"))?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec() -> Recorder {
        Recorder::new(Duration::from_secs(3))
    }

    #[test]
    fn point_lands_in_right_bucket() {
        let mut r = rec();
        r.add_point("x", SimTime::from_secs(7), 5.0);
        let s = r.series("x").unwrap();
        assert_eq!(s.buckets(), &[0.0, 0.0, 5.0]);
    }

    #[test]
    fn points_accumulate() {
        let mut r = rec();
        r.add_point("x", SimTime::from_secs(1), 2.0);
        r.add_point("x", SimTime::from_secs(2), 3.0);
        assert_eq!(r.series("x").unwrap().buckets(), &[5.0]);
        assert_eq!(r.total("x"), 5.0);
    }

    #[test]
    fn span_splits_proportionally() {
        let mut r = rec();
        // [2s, 8s) over 3s buckets: 1s in bucket0, 3s in bucket1, 2s in bucket2
        r.add_span("x", SimTime::from_secs(2), SimTime::from_secs(8), 6.0);
        let b = r.series("x").unwrap().buckets();
        assert!((b[0] - 1.0).abs() < 1e-9, "{b:?}");
        assert!((b[1] - 3.0).abs() < 1e-9, "{b:?}");
        assert!((b[2] - 2.0).abs() < 1e-9, "{b:?}");
    }

    #[test]
    fn span_conserves_total() {
        let mut r = rec();
        r.add_span("x", SimTime::from_secs_f64(1.7), SimTime::from_secs_f64(13.2), 42.0);
        assert!((r.total("x") - 42.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_span_is_a_point() {
        let mut r = rec();
        r.add_span("x", SimTime::from_secs(4), SimTime::from_secs(4), 9.0);
        assert_eq!(r.series("x").unwrap().buckets(), &[0.0, 9.0]);
    }

    #[test]
    fn span_within_one_bucket() {
        let mut r = rec();
        r.add_span("x", SimTime::from_secs_f64(0.5), SimTime::from_secs_f64(1.5), 4.0);
        assert_eq!(r.series("x").unwrap().buckets(), &[4.0]);
    }

    #[test]
    fn rate_rows_divide_by_interval() {
        let mut r = rec();
        r.add_point("x", SimTime::from_secs(0), 6.0);
        let rows = r.series("x").unwrap().rate_rows();
        assert_eq!(rows, vec![(0.0, 2.0)]);
    }

    #[test]
    fn rows_give_bucket_starts() {
        let mut r = rec();
        r.add_point("x", SimTime::from_secs(7), 1.0);
        let rows = r.series("x").unwrap().rows();
        assert_eq!(rows, vec![(0.0, 0.0), (3.0, 0.0), (6.0, 1.0)]);
    }

    #[test]
    fn peaks_finds_local_maxima() {
        let mut s = Series::new(Duration::from_secs(1));
        for (i, v) in [0.0, 5.0, 1.0, 0.0, 7.0, 2.0, 0.0, 3.0].iter().enumerate() {
            s.add_point(SimTime::from_secs(i as u64), *v);
        }
        assert_eq!(s.peaks(0.5), vec![1, 4, 7]);
        assert_eq!(s.peaks(4.0), vec![1, 4]);
        assert_eq!(s.argmax(), Some(4));
    }

    #[test]
    fn missing_series_total_is_zero() {
        let r = rec();
        assert_eq!(r.total("nope"), 0.0);
        assert!(r.series("nope").is_none());
    }

    #[test]
    fn prefix_filtering() {
        let mut r = rec();
        r.add_point("host.cpu", SimTime::ZERO, 1.0);
        r.add_point("host.disk", SimTime::ZERO, 1.0);
        r.add_point("other.cpu", SimTime::ZERO, 1.0);
        let keys: Vec<_> = r.keys_with_prefix("host.").collect();
        assert_eq!(keys, vec!["host.cpu", "host.disk"]);
    }

    #[test]
    #[should_panic(expected = "sampling interval")]
    fn zero_interval_rejected() {
        let _ = Recorder::new(Duration::ZERO);
    }

    #[test]
    fn intern_is_stable_and_id_path_aliases_key_path() {
        let mut r = rec();
        let a = r.intern("x");
        let b = r.intern("y");
        assert_ne!(a, b);
        assert_eq!(r.intern("x"), a);
        r.add_point_id(a, SimTime::from_secs(7), 5.0);
        r.add_span_id(a, SimTime::from_secs(2), SimTime::from_secs(8), 6.0);
        r.add_point("x", SimTime::from_secs(7), 1.0);
        let via_key = r.series("x").unwrap().total();
        let via_id = r.series_by_id(a).total();
        assert_eq!(via_key, via_id);
        assert!((via_key - 12.0).abs() < 1e-9);
        assert_eq!(r.series_by_id(b).total(), 0.0);
    }

    #[test]
    fn keys_stay_sorted_regardless_of_intern_order() {
        let mut r = rec();
        r.intern("z.last");
        r.intern("a.first");
        r.intern("m.middle");
        let keys: Vec<_> = r.keys().collect();
        assert_eq!(keys, vec!["a.first", "m.middle", "z.last"]);
    }
}

#[cfg(test)]
mod windowed_tests {
    use super::*;

    fn reg() -> WindowedRegistry {
        WindowedRegistry::new(Duration::from_secs(10), 6)
    }

    #[test]
    fn agg_tracks_count_sum_max_and_quantiles() {
        let mut a = WindowAgg::histogram();
        for v in [1u64, 2, 3, 100] {
            a.record(v);
        }
        assert_eq!(a.count(), 4);
        assert_eq!(a.sum(), 106);
        assert_eq!(a.max(), 100);
        assert!((a.mean() - 26.5).abs() < 1e-9);
        // p50 lands in the low buckets, p99 clamps to the max
        assert!(a.quantile(0.5) <= 3.0, "p50 = {}", a.quantile(0.5));
        assert_eq!(a.quantile(1.0), 100.0);
        assert_eq!(a.quantile(0.99), 100.0);
    }

    #[test]
    fn quantile_interpolates_within_a_bucket() {
        // 8 values all in bucket (4, 8]: interpolation spreads them across
        // the bucket, monotone in q, never above the observed max
        let mut a = WindowAgg::histogram();
        for v in [5u64, 5, 6, 6, 7, 7, 8, 8] {
            a.record(v);
        }
        let q25 = a.quantile(0.25);
        let q75 = a.quantile(0.75);
        assert!(q25 < q75, "{q25} vs {q75}");
        assert!(q25 >= 4.0 && q75 <= 8.0, "{q25}..{q75}");
    }

    #[test]
    fn empty_and_counter_aggs_quantile_zero() {
        assert_eq!(WindowAgg::histogram().quantile(0.99), 0.0);
        let mut c = WindowAgg::counter();
        c.record(7);
        assert_eq!(c.quantile(0.5), 0.0);
        assert_eq!(c.count(), 1);
        assert_eq!(c.sum(), 7);
    }

    #[test]
    fn merge_promotes_counter_to_histogram() {
        let mut c = WindowAgg::counter();
        c.record(4);
        let mut h = WindowAgg::histogram();
        h.record(16);
        let mut ab = c.clone();
        ab.merge(&h);
        let mut ba = h.clone();
        ba.merge(&c);
        assert_eq!(ab.count(), ba.count());
        assert_eq!(ab.sum(), ba.sum());
        assert_eq!(ab.max(), ba.max());
        assert_eq!(ab.quantile(0.99), ba.quantile(0.99));
    }

    #[test]
    fn windows_reset_when_epoch_laps() {
        let mut s = WindowedSeries::new(Duration::from_secs(10), 3, true);
        s.record(SimTime::from_secs(5), 100); // epoch 0
        s.record(SimTime::from_secs(35), 7); // epoch 3 -> same slot as 0
        let live = s.windows();
        assert_eq!(live.len(), 1);
        assert_eq!(live[0].0, SimTime::from_secs(30));
        assert_eq!(live[0].1.count(), 1);
        assert_eq!(live[0].1.max(), 7);
        // lifetime totals survive the lap
        assert_eq!(s.lifetime_count(), 2);
        assert_eq!(s.lifetime_sum(), 107);
    }

    #[test]
    fn range_merges_only_overlapping_windows() {
        let mut s = WindowedSeries::new(Duration::from_secs(10), 6, true);
        s.record(SimTime::from_secs(5), 1); // epoch 0
        s.record(SimTime::from_secs(15), 2); // epoch 1
        s.record(SimTime::from_secs(25), 4); // epoch 2
        let now = SimTime::from_secs(29);
        // 10s lookback from t=29 covers epochs 1 and 2
        let a = s.range(now, Duration::from_secs(10));
        assert_eq!(a.count(), 2);
        assert_eq!(a.sum(), 6);
        assert_eq!(a.max(), 4);
        // whole-ring lookback sees everything
        let all = s.range(now, Duration::from_secs(60));
        assert_eq!(all.count(), 3);
        assert_eq!(all.sum(), 7);
    }

    #[test]
    fn registry_interns_and_rejects_kind_mismatch() {
        let mut r = reg();
        let a = r.histogram("lat");
        assert_eq!(r.histogram("lat"), a);
        let b = r.counter("errs");
        assert_ne!(a, b);
        let names: Vec<_> = r.names().collect();
        assert_eq!(names, vec!["errs", "lat"]);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            r.counter("lat");
        }));
        assert!(caught.is_err(), "kind mismatch must panic");
    }

    #[test]
    fn prometheus_snapshot_validates_and_has_expected_families() {
        let mut r = reg();
        let lat = r.histogram("replica.r0.latency_us");
        let errs = r.counter("replica.r0.errors");
        for i in 0..100u64 {
            r.record(lat, SimTime::from_secs(i / 10), 1000 + i);
        }
        r.record(errs, SimTime::from_secs(3), 1);
        let text = r.prometheus_text(SimTime::from_secs(10));
        let (families, samples) = validate_prometheus_text(&text).expect("strict parse");
        assert_eq!(families, 2);
        assert_eq!(samples, 6); // 3 quantiles + sum + count + 1 counter
        assert!(text.contains("# TYPE replica_r0_latency_us summary\n"));
        assert!(text.contains("replica_r0_latency_us{quantile=\"0.99\"}"));
        assert!(text.contains("replica_r0_latency_us_count 100\n"));
        assert!(text.contains("# TYPE replica_r0_errors counter\n"));
        assert!(text.contains("replica_r0_errors 1\n"));
    }

    #[test]
    fn labeled_exposition_tags_series_and_none_path_is_byte_identical() {
        let mut r = reg();
        let lat = r.histogram("replica.r0.latency_us");
        let errs = r.counter("replica.r0.errors");
        let other = r.counter("fleetwide.requests");
        r.record(lat, SimTime::from_secs(1), 1000);
        r.record(errs, SimTime::from_secs(1), 1);
        r.record(other, SimTime::from_secs(1), 9);
        let now = SimTime::from_secs(10);

        let plain = r.prometheus_text(now);
        let none = r.prometheus_text_labeled(now, |_| None);
        assert_eq!(plain, none, "a None labeler changes nothing");

        let labeled = r.prometheus_text_labeled(now, |name| {
            name.starts_with("replica.r0.")
                .then(|| ("site".to_owned(), "east".to_owned()))
        });
        validate_prometheus_text(&labeled).expect("labeled output parses strictly");
        assert!(labeled.contains(r#"replica_r0_latency_us{quantile="0.5",site="east"}"#));
        assert!(labeled.contains(r#"replica_r0_latency_us_sum{site="east"}"#));
        assert!(labeled.contains(r#"replica_r0_latency_us_count{site="east"}"#));
        assert!(labeled.contains(r#"replica_r0_errors{site="east"} 1"#));
        assert!(labeled.contains("fleetwide_requests 9\n"), "unlabeled series untouched");
    }

    #[test]
    fn timeseries_csv_is_name_then_time_ordered() {
        let mut r = reg();
        let b = r.histogram("b.lat");
        let a = r.counter("a.req");
        r.record(b, SimTime::from_secs(25), 64);
        r.record(b, SimTime::from_secs(5), 32);
        r.record(a, SimTime::from_secs(15), 1);
        let csv = r.timeseries_csv();
        let lines: Vec<_> = csv.lines().collect();
        assert_eq!(lines[0], "series,t_s,count,sum,max,p50,p95,p99");
        assert!(lines[1].starts_with("a.req,10,1,1,1,"));
        assert!(lines[2].starts_with("b.lat,0,1,32,32,"));
        assert!(lines[3].starts_with("b.lat,20,1,64,64,"));
        assert_eq!(lines.len(), 4);
    }

    #[test]
    fn metric_name_sanitization() {
        assert_eq!(sanitize_metric_name("a.b-c/d"), "a_b_c_d");
        assert_eq!(sanitize_metric_name("0abc"), "_abc");
        assert_eq!(sanitize_metric_name("ok_name:x9"), "ok_name:x9");
    }

    #[test]
    fn validator_rejects_malformed_expositions() {
        // sample before TYPE
        assert!(validate_prometheus_text("x 1\n").is_err());
        // bad metric name
        assert!(validate_prometheus_text("# TYPE 9x counter\n").is_err());
        // unknown kind
        assert!(validate_prometheus_text("# TYPE x widget\n").is_err());
        // duplicate TYPE
        assert!(
            validate_prometheus_text("# TYPE x counter\n# TYPE x counter\n").is_err()
        );
        // bad value
        assert!(validate_prometheus_text("# TYPE x counter\nx one\n").is_err());
        // duplicate sample
        assert!(validate_prometheus_text("# TYPE x counter\nx 1\nx 2\n").is_err());
        // bad label syntax
        assert!(
            validate_prometheus_text("# TYPE x counter\nx{q=0.5} 1\n").is_err()
        );
        assert!(
            validate_prometheus_text("# TYPE x counter\nx{9q=\"a\"} 1\n").is_err()
        );
        // unterminated label set
        assert!(
            validate_prometheus_text("# TYPE x counter\nx{q=\"a\" 1\n").is_err()
        );
        // missing trailing newline
        assert!(validate_prometheus_text("# TYPE x counter\nx 1").is_err());
        // the good case, for contrast
        let good = "# TYPE x summary\nx{quantile=\"0.5\"} 1.5\nx_sum 3\nx_count 2\n";
        assert_eq!(validate_prometheus_text(good), Ok((1, 3)));
    }

    #[test]
    fn validator_accepts_escapes_and_special_values() {
        let text = "# TYPE x counter\nx{path=\"a\\\\b\\\"c\\n\"} +Inf\n";
        assert_eq!(validate_prometheus_text(text), Ok((1, 1)));
    }
}
