#![warn(missing_docs)]

//! # simkit — discrete-event simulation kernel
//!
//! Foundation crate for the Cyberaide onServe reproduction. Every substrate
//! (the production-grid simulator, the web-service stack, the blob store,
//! the appliance layer) executes on top of this kernel so that the whole
//! system runs in *virtual time*: a 60-second file upload at 85 KB/s costs
//! microseconds of host CPU and is bit-for-bit deterministic given a seed.
//!
//! The kernel provides:
//!
//! * [`Sim`] — the event loop: a virtual clock plus a stable-ordered event
//!   queue of boxed closures ([`engine`]), backed by an O(1)-amortized
//!   hierarchical timer wheel ([`wheel`]) with same-tick batch draining.
//! * [`PsServer`] / [`FifoServer`] — queuing resources ([`server`]). A
//!   processor-sharing server models fair-shared capacity (TCP-like flows on
//!   a network link, timeslicing on a CPU); a FIFO server models serial
//!   devices (a disk arm). Both integrate busy time and throughput into the
//!   metric recorder.
//! * [`Host`] — a bundle of CPU, disk (read/write) and NIC (in/out)
//!   resources with a shared metric prefix ([`host`]), the unit of
//!   measurement for the paper's Figures 6–8.
//! * [`Recorder`] / [`Series`] — bucketed time-series accumulation
//!   ([`metrics`]); the paper samples at 3-second intervals and so do we.
//! * [`Rng`] — a seedable xoshiro256++ generator with the handful of
//!   distributions the workloads need ([`rng`]).
//! * [`fault`] — seeded, replayable chaos: crash schedules plus
//!   probabilistic link-drop/jitter and storage-write-failure injection
//!   ([`FaultPlan`], [`FaultInjector`]).
//! * [`telemetry`] — structured, zero-overhead-when-disabled tracing:
//!   causal spans on the virtual clock, counters, duration histograms,
//!   kernel self-profiling, and Chrome-trace / span-tree exporters.
//! * [`stats`] and [`report`] — summary statistics and plain-text
//!   chart/table rendering used by the benchmark harness.
//!
//! ## Example
//!
//! ```
//! use simkit::{Sim, Duration};
//!
//! let mut sim = Sim::new(42);
//! sim.schedule(Duration::from_secs(3), |sim| {
//!     assert_eq!(sim.now().as_secs_f64(), 3.0);
//! });
//! sim.run();
//! assert_eq!(sim.now(), simkit::SimTime::from_secs(3));
//! ```

pub mod engine;
pub mod fault;
pub mod host;
pub mod metrics;
pub mod report;
pub mod rng;
pub mod server;
pub mod stats;
pub mod telemetry;
pub mod time;
pub mod wheel;

pub use engine::Sim;
pub use fault::{CrashSchedule, FaultConfig, FaultCounts, FaultInjector, FaultPlan};
pub use host::{Duplex, Host, HostSpec, Link, GBIT_PER_S, KB, MB};
pub use metrics::{
    sanitize_metric_name, validate_prometheus_text, MetricId, Recorder, Series, WindowAgg,
    WindowedId, WindowedRegistry, WindowedSeries, LOG2_BUCKETS,
};
pub use rng::Rng;
pub use server::{FifoServer, FlowId, PsServer, ServerConfig, Share};
pub use telemetry::{
    AttrValue, DurationHisto, KernelProfile, ServerBusy, SpanId, SpanRecord, Telemetry,
};
pub use time::{Duration, SimTime};
