//! Hosts and network links: the measured machines of the evaluation.
//!
//! A [`Host`] bundles a CPU (processor-sharing) and a disk (separate FIFO
//! read/write channels) under one metric prefix — the quantities the paper's
//! Figures 6–8 plot for the appliance machine. Networking is modelled by
//! directed [`Link`]s: a link is a processor-sharing server whose capacity
//! is the *path bottleneck* bandwidth; its traffic is mirrored into both
//! endpoints' NIC series.
//!
//! Simplification (documented in DESIGN.md): per-host NIC capacity is not
//! shared across multiple links — the experiments' bottleneck is always a
//! single path (the 1 Gbit/s LAN or the ~85 KB/s WAN uplink), matching the
//! paper's setup.

use std::cell::RefCell;
use std::rc::Rc;

use crate::engine::Sim;
use crate::fault::FaultInjector;
use crate::server::{FifoServer, FlowId, PsServer, ServerConfig, Share};
use crate::time::Duration;

/// Bytes in a kibibyte (the paper's "KB").
pub const KB: f64 = 1024.0;
/// Bytes in a mebibyte (the paper's "MB").
pub const MB: f64 = 1024.0 * 1024.0;
/// Bytes/s of a 1000 Mbit/s NIC (the portal test's LAN).
pub const GBIT_PER_S: f64 = 1000.0 * 1000.0 * 1000.0 / 8.0;

/// Physical description of a host.
#[derive(Clone, Debug)]
pub struct HostSpec {
    /// Metric prefix, e.g. `"appliance"`.
    pub name: String,
    /// CPU capacity in core-seconds per second (1.0 = one core).
    pub cpu_cores: f64,
    /// Sequential disk read bandwidth, bytes/s.
    pub disk_read_bps: f64,
    /// Sequential disk write bandwidth, bytes/s.
    pub disk_write_bps: f64,
}

impl HostSpec {
    /// A 2010-era commodity server: a quad-core box (each task capped at
    /// one core) with "a 'normal' hard disk" (§VIII-D) — ~45 MB/s
    /// sequential reads, ~35 MB/s writes once filesystem overhead is in.
    pub fn commodity(name: &str) -> Self {
        HostSpec {
            name: name.to_owned(),
            cpu_cores: 4.0,
            disk_read_bps: 45.0 * MB,
            disk_write_bps: 35.0 * MB,
        }
    }

    /// A compute node of a supercomputing centre: faster parallel
    /// filesystem, more cores.
    pub fn grid_node(name: &str) -> Self {
        HostSpec {
            name: name.to_owned(),
            cpu_cores: 8.0,
            disk_read_bps: 300.0 * MB,
            disk_write_bps: 250.0 * MB,
        }
    }
}

/// A simulated machine: CPU + disk under one metric prefix.
pub struct Host {
    name: String,
    cpu: Rc<RefCell<PsServer>>,
    disk_read: Rc<RefCell<FifoServer>>,
    disk_write: Rc<RefCell<FifoServer>>,
}

impl Host {
    /// Build a host from its spec. Metric keys:
    /// `<name>.cpu.busy`, `<name>.disk.read.bytes`, `<name>.disk.write.bytes`
    /// (+ `.busy` variants for the disk channels).
    pub fn new(spec: &HostSpec) -> Rc<Host> {
        let n = &spec.name;
        Rc::new(Host {
            name: n.clone(),
            cpu: PsServer::new(ServerConfig::with_keys(
                spec.cpu_cores,
                vec![format!("{n}.cpu.busy")],
                Vec::new(),
            )),
            disk_read: FifoServer::new(ServerConfig::with_keys(
                spec.disk_read_bps,
                vec![format!("{n}.disk.read.busy")],
                vec![format!("{n}.disk.read.bytes")],
            )),
            disk_write: FifoServer::new(ServerConfig::with_keys(
                spec.disk_write_bps,
                vec![format!("{n}.disk.write.busy")],
                vec![format!("{n}.disk.write.bytes")],
            )),
        })
    }

    /// The metric prefix.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Burn `cpu_seconds` of compute, then call `done`. A single task is a
    /// single thread: it is capped at one core, so concurrency — not one
    /// hot request — is what drives multi-core utilization.
    pub fn compute<F>(&self, sim: &mut Sim, cpu_seconds: f64, done: F) -> FlowId
    where
        F: FnOnce(&mut Sim) + 'static,
    {
        PsServer::submit_with(&self.cpu, sim, cpu_seconds, Share::capped(1.0), done)
    }

    /// Read `bytes` from the local disk, then call `done`.
    pub fn read_disk<F>(&self, sim: &mut Sim, bytes: f64, done: F) -> FlowId
    where
        F: FnOnce(&mut Sim) + 'static,
    {
        FifoServer::submit(&self.disk_read, sim, bytes, done)
    }

    /// Write `bytes` to the local disk, then call `done`.
    pub fn write_disk<F>(&self, sim: &mut Sim, bytes: f64, done: F) -> FlowId
    where
        F: FnOnce(&mut Sim) + 'static,
    {
        FifoServer::submit(&self.disk_write, sim, bytes, done)
    }

    /// Direct access to the CPU server (for weighted/capped submissions).
    pub fn cpu(&self) -> &Rc<RefCell<PsServer>> {
        &self.cpu
    }

    /// Direct access to the disk read channel.
    pub fn disk_read(&self) -> &Rc<RefCell<FifoServer>> {
        &self.disk_read
    }

    /// Direct access to the disk write channel.
    pub fn disk_write(&self) -> &Rc<RefCell<FifoServer>> {
        &self.disk_write
    }
}

/// A directed network path between two hosts.
///
/// Capacity is the path's bottleneck bandwidth; all concurrent transfers on
/// the link share it TCP-like (processor sharing). `latency` is the one-way
/// propagation delay added to every delivery — it dominates the many small
/// control messages (SOAP calls, credential checks) while bandwidth
/// dominates file staging.
pub struct Link {
    name: String,
    server: Rc<RefCell<PsServer>>,
    latency: Duration,
    faults: RefCell<Option<Rc<FaultInjector>>>,
}

impl Link {
    /// Create a directed link `src → dst`. Bytes are mirrored into
    /// `<link>.bytes`, `<src>.net.out.bytes` and `<dst>.net.in.bytes`.
    pub fn new(
        name: &str,
        src: &str,
        dst: &str,
        bandwidth_bps: f64,
        latency: Duration,
    ) -> Rc<Link> {
        Rc::new(Link {
            name: name.to_owned(),
            server: PsServer::new(ServerConfig::with_keys(
                bandwidth_bps,
                vec![format!("{name}.busy")],
                vec![
                    format!("{name}.bytes"),
                    format!("{src}.net.out.bytes"),
                    format!("{dst}.net.in.bytes"),
                ],
            )),
            latency,
            faults: RefCell::new(None),
        })
    }

    /// Subject this link to a [`FaultInjector`]: each transfer pass may be
    /// dropped (and retransmitted after the injector's RTO, re-transiting
    /// the payload) or delivered with extra exponential jitter. Pass `None`
    /// to heal the link. Faultless links take the exact pre-chaos fast
    /// path, so a link with no injector behaves bit-identically to before.
    pub fn inject_faults(&self, injector: Option<Rc<FaultInjector>>) {
        *self.faults.borrow_mut() = injector;
    }

    /// The link name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// One-way propagation delay.
    pub fn latency(&self) -> Duration {
        self.latency
    }

    /// Bottleneck bandwidth in bytes/s.
    pub fn bandwidth(&self) -> f64 {
        self.server.borrow().capacity()
    }

    /// Transfer `bytes` over the link; `done` fires at delivery (after the
    /// fair-shared transmission plus propagation latency).
    pub fn transfer<F>(&self, sim: &mut Sim, bytes: f64, done: F) -> FlowId
    where
        F: FnOnce(&mut Sim) + 'static,
    {
        self.transfer_with(sim, bytes, Share::default(), done)
    }

    /// Transfer with an explicit per-flow rate cap / weight.
    pub fn transfer_with<F>(&self, sim: &mut Sim, bytes: f64, share: Share, done: F) -> FlowId
    where
        F: FnOnce(&mut Sim) + 'static,
    {
        let latency = self.latency;
        match self.faults.borrow().clone() {
            None => PsServer::submit_with(&self.server, sim, bytes, share, move |sim| {
                sim.schedule(latency, done);
            }),
            Some(inj) => Link::faulty_pass(
                Rc::clone(&self.server),
                sim,
                bytes,
                share,
                latency,
                inj,
                Box::new(done),
            ),
        }
    }

    /// One transit attempt under fault injection. Drop/jitter draws happen
    /// at submit time (deterministic event order → deterministic draws); a
    /// dropped pass re-transits the full payload after the injector's RTO,
    /// TCP-style, so the delivery callback still fires exactly once.
    /// Cancelling the returned [`FlowId`] only covers the first pass.
    fn faulty_pass(
        server: Rc<RefCell<PsServer>>,
        sim: &mut Sim,
        bytes: f64,
        share: Share,
        latency: Duration,
        inj: Rc<FaultInjector>,
        done: Box<dyn FnOnce(&mut Sim)>,
    ) -> FlowId {
        let dropped = inj.drop_transfer();
        let delay = latency + inj.extra_delay();
        let server2 = Rc::clone(&server);
        PsServer::submit_with(&server, sim, bytes, share, move |sim| {
            if dropped {
                let rto = inj.config().link_retransmit;
                sim.schedule(rto, move |sim| {
                    Link::faulty_pass(server2, sim, bytes, share, latency, inj, done);
                });
            } else {
                sim.schedule(delay, done);
            }
        })
    }

    /// Cancel an in-flight transfer (delivery callback is dropped).
    pub fn cancel(&self, sim: &mut Sim, id: FlowId) -> bool {
        PsServer::cancel(&self.server, sim, id)
    }

    /// Degrade or upgrade the link at runtime.
    pub fn set_bandwidth(&self, sim: &mut Sim, bandwidth_bps: f64) {
        PsServer::set_capacity(&self.server, sim, bandwidth_bps);
    }

    /// Number of concurrent transfers currently on the link.
    pub fn active(&self) -> usize {
        self.server.borrow().active()
    }
}

/// A bidirectional connection: a pair of directed links.
pub struct Duplex {
    /// `a → b` direction.
    pub forward: Rc<Link>,
    /// `b → a` direction.
    pub backward: Rc<Link>,
}

impl Duplex {
    /// Symmetric duplex path between two named hosts.
    pub fn new(name: &str, a: &str, b: &str, bandwidth_bps: f64, latency: Duration) -> Duplex {
        Duplex {
            forward: Link::new(&format!("{name}.fwd"), a, b, bandwidth_bps, latency),
            backward: Link::new(&format!("{name}.rev"), b, a, bandwidth_bps, latency),
        }
    }

    /// Request/response round trip: send `req_bytes` forward, let the remote
    /// side spend `remote_cpu` seconds on `remote_host`, send `resp_bytes`
    /// back, then call `done`. This is the shape of every SOAP/security
    /// exchange in the reproduction.
    pub fn round_trip<F>(
        &self,
        sim: &mut Sim,
        remote_host: Rc<Host>,
        req_bytes: f64,
        remote_cpu: f64,
        resp_bytes: f64,
        done: F,
    ) where
        F: FnOnce(&mut Sim) + 'static,
    {
        let back = self.backward.clone();
        self.forward.transfer(sim, req_bytes, move |sim| {
            remote_host.compute(sim, remote_cpu, move |sim| {
                back.transfer(sim, resp_bytes, done);
            });
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;
    use std::cell::Cell;

    #[test]
    fn host_metric_keys_use_prefix() {
        let mut sim = Sim::new(0);
        let host = Host::new(&HostSpec::commodity("portal"));
        host.compute(&mut sim, 2.0, |_| {});
        host.write_disk(&mut sim, 10.0 * MB, |_| {});
        sim.run();
        // 2 cpu-seconds on a 4-core box = 0.5 utilization-seconds
        assert!(sim.recorder_ref().total("portal.cpu.busy") > 0.45);
        assert!((sim.recorder_ref().total("portal.disk.write.bytes") - 10.0 * MB).abs() < 1.0);
    }

    #[test]
    fn link_transfer_time_is_bytes_over_bandwidth_plus_latency() {
        let mut sim = Sim::new(0);
        let link = Link::new("wan", "app", "grid", 85.0 * KB, Duration::from_millis(50));
        let done_at = Rc::new(Cell::new(0.0));
        let d = done_at.clone();
        link.transfer(&mut sim, 5.0 * MB, move |sim| d.set(sim.now().as_secs_f64()));
        sim.run();
        let expect = 5.0 * MB / (85.0 * KB) + 0.05;
        assert!(
            (done_at.get() - expect).abs() < 0.01,
            "got {} want {expect}",
            done_at.get()
        );
        // ~60 seconds, the paper's Figure 7 observation
        assert!(done_at.get() > 55.0 && done_at.get() < 65.0);
    }

    #[test]
    fn link_mirrors_bytes_to_both_endpoints() {
        let mut sim = Sim::new(0);
        let link = Link::new("lan", "client", "portal", GBIT_PER_S, Duration::from_millis(1));
        link.transfer(&mut sim, 1.0 * MB, |_| {});
        sim.run();
        let r = sim.recorder_ref();
        assert!((r.total("lan.bytes") - MB).abs() < 1.0);
        assert!((r.total("client.net.out.bytes") - MB).abs() < 1.0);
        assert!((r.total("portal.net.in.bytes") - MB).abs() < 1.0);
    }

    #[test]
    fn concurrent_transfers_share_the_link() {
        let mut sim = Sim::new(0);
        let link = Link::new("wan", "a", "b", 100.0 * KB, Duration::ZERO);
        let times: Rc<RefCell<Vec<f64>>> = Rc::new(RefCell::new(Vec::new()));
        for _ in 0..2 {
            let t = times.clone();
            link.transfer(&mut sim, 100.0 * KB, move |sim| {
                t.borrow_mut().push(sim.now().as_secs_f64());
            });
        }
        sim.run();
        // two equal flows: both take 2 s instead of 1 s
        for &t in times.borrow().iter() {
            assert!((t - 2.0).abs() < 1e-3, "t={t}");
        }
    }

    #[test]
    fn duplex_round_trip_accumulates_all_legs() {
        let mut sim = Sim::new(0);
        let remote = Host::new(&HostSpec::commodity("remote"));
        let dx = Duplex::new("path", "local", "remote", 100.0 * KB, Duration::from_millis(100));
        let done_at = Rc::new(Cell::new(0.0));
        let d = done_at.clone();
        dx.round_trip(
            &mut sim,
            remote,
            50.0 * KB,
            0.5,
            10.0 * KB,
            move |sim| d.set(sim.now().as_secs_f64()),
        );
        sim.run();
        // 0.5s send + 0.1 lat + 0.5 cpu + 0.1s send + 0.1 lat = 1.3
        assert!((done_at.get() - 1.3).abs() < 0.01, "got {}", done_at.get());
    }

    #[test]
    fn disk_channels_are_independent() {
        let mut sim = Sim::new(0);
        let host = Host::new(&HostSpec::commodity("h"));
        let r_done = Rc::new(Cell::new(0.0));
        let w_done = Rc::new(Cell::new(0.0));
        let (r2, w2) = (r_done.clone(), w_done.clone());
        host.read_disk(&mut sim, 45.0 * MB, move |sim| r2.set(sim.now().as_secs_f64()));
        host.write_disk(&mut sim, 35.0 * MB, move |sim| w2.set(sim.now().as_secs_f64()));
        sim.run();
        assert!((r_done.get() - 1.0).abs() < 1e-3);
        assert!((w_done.get() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn set_bandwidth_degrades_in_flight_transfer() {
        let mut sim = Sim::new(0);
        let link = Link::new("l", "a", "b", 100.0, Duration::ZERO);
        let done_at = Rc::new(Cell::new(0.0));
        let d = done_at.clone();
        link.transfer(&mut sim, 1000.0, move |sim| d.set(sim.now().as_secs_f64()));
        let l2 = Rc::new(link);
        let l3 = l2.clone();
        sim.schedule_at(SimTime::from_secs(5), move |sim| {
            l3.set_bandwidth(sim, 25.0);
        });
        sim.run();
        // 500 bytes in 5 s, then 500 at 25 B/s → 25 s total
        assert!((done_at.get() - 25.0).abs() < 1e-2, "got {}", done_at.get());
    }

    #[test]
    fn faulty_link_retransmits_but_delivers_exactly_once() {
        use crate::fault::FaultPlan;
        let run = |drop_p: f64| {
            let mut sim = Sim::new(0);
            let link = Link::new("l", "a", "b", 1000.0, Duration::from_millis(10));
            let plan = FaultPlan::new(42).link_drop(drop_p);
            link.inject_faults(Some(plan.injector()));
            let delivered = Rc::new(Cell::new(0u32));
            for _ in 0..40 {
                let d = delivered.clone();
                link.transfer(&mut sim, 100.0, move |_| d.set(d.get() + 1));
            }
            sim.run();
            (delivered.get(), sim.now().as_secs_f64())
        };
        let (ok_clean, t_clean) = run(0.0);
        let (ok_chaos, t_chaos) = run(0.5);
        assert_eq!(ok_clean, 40);
        assert_eq!(ok_chaos, 40, "drops retransmit; nothing is lost");
        assert!(t_chaos > t_clean, "retransmits cost time: {t_chaos} vs {t_clean}");
    }

    #[test]
    fn healed_link_matches_faultless_timing() {
        let run = |inject: bool| {
            let mut sim = Sim::new(0);
            let link = Link::new("l", "a", "b", 1000.0, Duration::from_millis(10));
            if inject {
                let plan = crate::fault::FaultPlan::new(1).link_drop(0.9);
                link.inject_faults(Some(plan.injector()));
                link.inject_faults(None); // heal before any traffic
            }
            let done_at = Rc::new(Cell::new(0.0));
            let d = done_at.clone();
            link.transfer(&mut sim, 500.0, move |sim| d.set(sim.now().as_secs_f64()));
            sim.run();
            done_at.get()
        };
        assert_eq!(run(false), run(true));
    }
}
