//! Hierarchical timer wheel: the kernel's O(1)-amortized event queue.
//!
//! The binary heap this replaces paid `O(log n)` per push *and* per pop —
//! 83 ns/op at the queue depths the fleet benches reach, and the dominant
//! cost once a run executes ~10⁸ events. The wheel is the classic
//! calendar-queue design (Varghese & Lauck's hashed hierarchical timing
//! wheels): [`LEVELS`] rings of [`SLOTS`] slots each, where a level-`k`
//! slot spans `64^k` microsecond ticks. An entry at absolute tick `t` is
//! parked at the *lowest* level whose current rotation contains `t` —
//! computed in a handful of bit operations from `t ^ cursor` — and
//! cascades down one level at a time as the cursor reaches its slot, so
//! every entry is touched at most [`LEVELS`] times end to end.
//!
//! ## Ordering contract
//!
//! Pops are strictly ordered by `(tick, seq)`. A level-0 slot spans
//! exactly one tick, so by the time an entry has cascaded to level 0 its
//! slot holds *only* entries for that tick, in insertion order — and
//! insertion order is `seq` order, because direct pushes allocate
//! monotonically increasing seqs and cascades preserve the relative order
//! of everything they move. Draining a level-0 slot therefore yields a
//! whole tick's entries FIFO in one pass, which is what the kernel's
//! same-tick batch execution rides on.
//!
//! ## Cursor invariants
//!
//! `cursor` is the wheel's private read head, distinct from the
//! simulator's clock:
//!
//! * `cursor <= at` for every parked entry — enforced by only advancing
//!   the cursor to a slot that still holds at least one *live* entry
//!   (slots holding only cancelled entries are discarded in place, without
//!   moving the cursor).
//! * `cursor <= limit` for the `limit` passed to the pop that moved it —
//!   so a bounded drain (`run_until`) can never strand the cursor past
//!   the deadline the caller is about to advance the clock to.
//!
//! Together these guarantee every future push (which the simulator clamps
//! to `now >= cursor`) lands ahead of the read head, which is what makes
//! the `t ^ cursor` level computation sound.
//!
//! Entries further than `64^8` ticks (~8.9 simulated years) ahead of the
//! cursor — in practice only `Duration::MAX`-style sentinel timeouts —
//! park in a far-future overflow map keyed by exact tick, and migrate
//! into the wheel when the cursor crosses into their epoch.

use std::collections::{BTreeMap, VecDeque};

/// Bits of slot index per level (64 slots).
pub const LEVEL_BITS: u32 = 6;

/// Slots per level.
pub const SLOTS: usize = 1 << LEVEL_BITS;

/// Wheel depth. Level `k` slots span `64^k` ticks; eight levels cover
/// `2^48` microsecond ticks before the overflow map takes over.
pub const LEVELS: usize = 8;

/// Total tick span of the wheel proper, as a shift count.
const SPAN_BITS: u32 = LEVEL_BITS * LEVELS as u32;

/// Low-bit mask selecting a position within the wheel's span.
const SPAN_MASK: u64 = (1 << SPAN_BITS) - 1;

/// One parked entry: an absolute tick, the scheduling sequence number
/// that tie-breaks simultaneous entries, and the payload.
pub struct Entry<T> {
    /// Absolute due tick.
    pub at: u64,
    /// Scheduling sequence number (unique, monotonically increasing).
    pub seq: u64,
    /// The payload (the kernel parks boxed event closures here).
    pub item: T,
}

/// The hierarchical timer wheel. See the module docs for the design.
pub struct TimerWheel<T> {
    /// Read head: every parked entry is at `cursor` or later.
    cursor: u64,
    /// Entries physically parked (wheel + overflow + staged), including
    /// cancelled entries not yet swept — the equivalent of the old heap's
    /// `len()`, which the kernel's queue high-water profiling tracks.
    len: usize,
    /// One bit per slot per level; bit set ⇔ slot non-empty. A level is
    /// a single word, so "earliest occupied slot at or after the cursor"
    /// is a mask and a trailing-zeros count.
    occupied: [u64; LEVELS],
    /// `LEVELS * SLOTS` buckets; drained buckets keep their capacity, so
    /// the steady state allocates nothing.
    slots: Vec<Vec<Entry<T>>>,
    /// Far-future entries, keyed by exact tick (seq order within a key).
    overflow: BTreeMap<u64, Vec<Entry<T>>>,
    /// The level-0 slot currently being drained, all at [`Self::staged_tick`].
    /// `pop_next` hands these out one at a time; `pop_tick_batch` empties
    /// the remainder in one call.
    staged: VecDeque<Entry<T>>,
    /// Tick shared by every staged entry.
    staged_tick: u64,
}

impl<T> Default for TimerWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TimerWheel<T> {
    /// Empty wheel with the cursor at tick 0.
    pub fn new() -> Self {
        TimerWheel {
            cursor: 0,
            len: 0,
            occupied: [0; LEVELS],
            slots: std::iter::repeat_with(Vec::new).take(LEVELS * SLOTS).collect(),
            overflow: BTreeMap::new(),
            staged: VecDeque::new(),
            staged_tick: 0,
        }
    }

    /// Entries physically parked, cancelled-but-unswept ones included.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is parked.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The read head (test/debug visibility).
    pub fn cursor(&self) -> u64 {
        self.cursor
    }

    /// The `(level, absolute slot index)` an entry at `at` belongs to,
    /// relative to the current cursor.
    #[inline]
    fn level_slot(&self, at: u64) -> (usize, usize) {
        let x = at ^ self.cursor;
        // x == 0 (entry due exactly at the cursor) is level 0 by
        // convention; 63 ^ leading_zeros is the highest differing bit.
        let level = if x == 0 { 0 } else { ((63 - x.leading_zeros()) / LEVEL_BITS) as usize };
        let slot = ((at >> (LEVEL_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
        (level, slot)
    }

    /// Park an entry. `at` must be at or after the cursor — the kernel
    /// guarantees this by clamping schedule instants to `now`.
    #[inline]
    pub fn push(&mut self, at: u64, seq: u64, item: T) {
        debug_assert!(at >= self.cursor, "push behind the wheel cursor");
        self.len += 1;
        if (at ^ self.cursor) > SPAN_MASK {
            self.overflow.entry(at).or_default().push(Entry { at, seq, item });
            return;
        }
        let (level, slot) = self.level_slot(at);
        self.occupied[level] |= 1 << slot;
        self.slots[level * SLOTS + slot].push(Entry { at, seq, item });
    }

    /// Re-park an entry during a cascade (no length accounting — it never
    /// left the wheel). Cascades always target a strictly lower level, so
    /// this cannot recurse into the overflow map.
    #[inline]
    fn repark(&mut self, e: Entry<T>) {
        debug_assert!(e.at >= self.cursor && (e.at ^ self.cursor) <= SPAN_MASK);
        let (level, slot) = self.level_slot(e.at);
        self.occupied[level] |= 1 << slot;
        self.slots[level * SLOTS + slot].push(e);
    }

    /// Earliest occupied `(level, slot, window start tick)` at or after
    /// the cursor, or `None` when the wheel rings are all empty. Levels
    /// are disjoint in time — everything at level `k` is due before
    /// everything at level `k+1` — so the first occupied level wins.
    fn find_earliest(&self) -> Option<(usize, usize, u64)> {
        for level in 0..LEVELS {
            let occ = self.occupied[level];
            if occ == 0 {
                continue;
            }
            let shift = LEVEL_BITS * level as u32;
            let cur_slot = ((self.cursor >> shift) & (SLOTS as u64 - 1)) as u32;
            debug_assert_eq!(
                occ & !(!0u64 << cur_slot),
                0,
                "occupied slot behind the cursor at level {level}"
            );
            let slot = occ.trailing_zeros() as usize;
            let window = shift + LEVEL_BITS;
            let base = (self.cursor >> window) << window;
            return Some((level, slot, base | ((slot as u64) << shift)));
        }
        None
    }

    /// Pop the earliest live entry due at or before `limit`; cancelled
    /// entries met along the way are dropped. Live entries behind the
    /// returned one stay parked. Returns `None` when nothing live is due
    /// by `limit` — the wheel (and its cursor) then sits at or before
    /// `limit`, ready for the clock to advance there.
    pub fn pop_next(&mut self, limit: u64, is_live: impl Fn(u64) -> bool) -> Option<Entry<T>> {
        loop {
            if let Some(e) = self.staged.pop_front() {
                if e.at > limit {
                    self.staged.push_front(e);
                    return None;
                }
                self.len -= 1;
                if is_live(e.seq) {
                    return Some(e);
                }
                continue;
            }
            if !self.stage_next_tick(limit, &is_live) {
                return None;
            }
        }
    }

    /// Drain *every* entry sharing the earliest live tick at or before
    /// `limit` into `out` (in `(tick, seq)` order), returning that tick.
    /// Entries are **not** liveness-filtered on the way out — the caller
    /// settles each against its live-id set before executing, because an
    /// entry earlier in the batch may cancel a later one. At least one
    /// entry in the batch is guaranteed live at drain time.
    pub fn pop_tick_batch(
        &mut self,
        limit: u64,
        is_live: impl Fn(u64) -> bool,
        out: &mut Vec<Entry<T>>,
    ) -> Option<u64> {
        if self.staged.is_empty() && !self.stage_next_tick(limit, &is_live) {
            return None;
        }
        if self.staged_tick > limit {
            // leftover stage from an earlier, laxer pop — keep it parked
            return None;
        }
        self.len -= self.staged.len();
        out.extend(self.staged.drain(..));
        Some(self.staged_tick)
    }

    /// Advance to the next tick holding a live entry (due at or before
    /// `limit`) and stage that tick's slot. Cascades higher-level slots
    /// and sweeps all-cancelled slots in place as it goes. Returns `false`
    /// without staging when nothing live is due by `limit`.
    fn stage_next_tick(&mut self, limit: u64, is_live: &impl Fn(u64) -> bool) -> bool {
        debug_assert!(self.staged.is_empty());
        loop {
            let Some((level, slot, start)) = self.find_earliest() else {
                if !self.cascade_overflow(limit, is_live) {
                    return false;
                }
                continue;
            };
            if start > limit {
                return false;
            }
            let idx = level * SLOTS + slot;
            if !self.slots[idx].iter().any(|e| is_live(e.seq)) {
                // Only cancelled entries: discard without moving the
                // cursor, so an all-cancelled far slot can never strand
                // the cursor ahead of a future (earlier) push.
                self.len -= self.slots[idx].len();
                self.slots[idx].clear();
                self.occupied[level] &= !(1 << slot);
                continue;
            }
            self.cursor = start;
            self.occupied[level] &= !(1 << slot);
            if level == 0 {
                // One tick's entries, FIFO — stage them.
                self.staged_tick = start;
                self.staged.extend(self.slots[idx].drain(..));
                return true;
            }
            // Cascade one level down (dead entries drop here; the bucket
            // keeps its allocation).
            let mut bucket = std::mem::take(&mut self.slots[idx]);
            for e in bucket.drain(..) {
                if is_live(e.seq) {
                    self.repark(e);
                } else {
                    self.len -= 1;
                }
            }
            self.slots[idx] = bucket;
        }
    }

    /// Move the earliest overflow epoch into the wheel, if it is due by
    /// `limit` and holds anything live. Returns `true` if the wheel rings
    /// gained entries.
    fn cascade_overflow(&mut self, limit: u64, is_live: &impl Fn(u64) -> bool) -> bool {
        loop {
            let Some((&first, bucket)) = self.overflow.iter().next() else {
                return false;
            };
            if first > limit {
                return false;
            }
            if !bucket.iter().any(|e| is_live(e.seq)) {
                let dead = self.overflow.remove(&first).expect("first key present");
                self.len -= dead.len();
                continue;
            }
            // Advance the cursor to the start of `first`'s wheel epoch,
            // then migrate every key that now fits the wheel span — later
            // epochs stay put. All wheel rings are empty here, so the
            // whole span belongs to the new epoch.
            let epoch = first & !SPAN_MASK;
            debug_assert!(epoch >= self.cursor);
            self.cursor = epoch;
            let fits = match epoch.checked_add(SPAN_MASK + 1) {
                Some(bound) => {
                    let rest = self.overflow.split_off(&bound);
                    std::mem::replace(&mut self.overflow, rest)
                }
                None => std::mem::take(&mut self.overflow),
            };
            for (_, bucket) in fits {
                for e in bucket {
                    if is_live(e.seq) {
                        self.repark(e);
                    } else {
                        self.len -= 1;
                    }
                }
            }
            return true;
        }
    }
}

/// The event queue the wheel replaced — a `(tick, seq)` min-heap with
/// lazy cancellation — kept as an executable reference model so the
/// equivalence property tests below can check the wheel against the old
/// kernel's exact pop behavior.
#[cfg(test)]
pub mod heap_model {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    /// What `BinaryHeap<Scheduled>` used to be in `engine.rs`, stripped
    /// of payloads: ordered by `(at, seq)`, dead entries discarded as
    /// they surface.
    #[derive(Default)]
    pub struct HeapQueue {
        heap: BinaryHeap<Reverse<(u64, u64)>>,
    }

    impl HeapQueue {
        /// Park an entry.
        pub fn push(&mut self, at: u64, seq: u64) {
            self.heap.push(Reverse((at, seq)));
        }

        /// Earliest live entry due at or before `limit` — the old
        /// kernel's pop loop, cancelled entries dropped lazily.
        pub fn pop_next(
            &mut self,
            limit: u64,
            is_live: impl Fn(u64) -> bool,
        ) -> Option<(u64, u64)> {
            while let Some(&Reverse((at, seq))) = self.heap.peek() {
                if at > limit {
                    return None;
                }
                self.heap.pop();
                if is_live(seq) {
                    return Some((at, seq));
                }
            }
            None
        }
    }
}

#[cfg(test)]
mod equivalence {
    use super::heap_model::HeapQueue;
    use super::TimerWheel;
    use proptest::prelude::*;
    use std::collections::HashSet;

    /// One step of an interleaved schedule / cancel / pop program,
    /// mirroring what `Sim` can do to its queue.
    #[derive(Debug, Clone)]
    enum Op {
        /// Schedule at `now + delta` (`delta == 0` builds same-tick bursts;
        /// huge deltas land in the wheel's far-future overflow map).
        Push(u64),
        /// Cancel the `nth % outstanding` live entry.
        Cancel(usize),
        /// Pop the next due entry, unbounded (`run` / `step`).
        Pop,
        /// Drain everything due within `horizon` of now, then advance the
        /// clock to the horizon (`run_until`).
        PopUntil(u64),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            Just(Op::Push(0)), // same-tick burst pressure
            (0u64..64).prop_map(Op::Push),
            (0u64..1_000_000).prop_map(Op::Push), // spans several levels
            ((1u64 << 48)..(1u64 << 52)).prop_map(Op::Push), // overflow map
            (0usize..1 << 20).prop_map(Op::Cancel),
            Just(Op::Pop),
            Just(Op::Pop),
            (0u64..200_000).prop_map(Op::PopUntil),
        ]
    }

    proptest! {
        /// The wheel and the retired heap queue produce identical pop
        /// sequences for arbitrary interleaved schedule/cancel/pop
        /// programs — same-tick bursts, bounded drains, and far-future
        /// overflow included. The wheel changes the queue's cost, not
        /// one bit of its observable behavior.
        #[test]
        fn wheel_matches_heap_reference(
            ops in proptest::collection::vec(op_strategy(), 1..250),
        ) {
            let mut wheel: TimerWheel<()> = TimerWheel::new();
            let mut heap = HeapQueue::default();
            let mut live: HashSet<u64> = HashSet::new();
            let mut outstanding: Vec<u64> = Vec::new();
            let mut now = 0u64;
            let mut next_seq = 0u64;
            let settle = |popped: Option<(u64, u64)>,
                              now: &mut u64,
                              live: &mut HashSet<u64>,
                              outstanding: &mut Vec<u64>| {
                if let Some((at, seq)) = popped {
                    *now = at;
                    live.remove(&seq);
                    outstanding.retain(|&s| s != seq);
                }
            };
            for op in &ops {
                match *op {
                    Op::Push(delta) => {
                        let at = now.saturating_add(delta);
                        let seq = next_seq;
                        next_seq += 1;
                        live.insert(seq);
                        outstanding.push(seq);
                        wheel.push(at, seq, ());
                        heap.push(at, seq);
                    }
                    Op::Cancel(nth) => {
                        if !outstanding.is_empty() {
                            let seq = outstanding.remove(nth % outstanding.len());
                            live.remove(&seq);
                        }
                    }
                    Op::Pop => {
                        let w = wheel
                            .pop_next(u64::MAX, |s| live.contains(&s))
                            .map(|e| (e.at, e.seq));
                        let h = heap.pop_next(u64::MAX, |s| live.contains(&s));
                        prop_assert_eq!(w, h);
                        settle(w, &mut now, &mut live, &mut outstanding);
                    }
                    Op::PopUntil(horizon) => {
                        let limit = now.saturating_add(horizon);
                        loop {
                            let w = wheel
                                .pop_next(limit, |s| live.contains(&s))
                                .map(|e| (e.at, e.seq));
                            let h = heap.pop_next(limit, |s| live.contains(&s));
                            prop_assert_eq!(w, h);
                            if w.is_none() {
                                break;
                            }
                            settle(w, &mut now, &mut live, &mut outstanding);
                        }
                        now = limit; // run_until advances the clock
                    }
                }
            }
            // final drain: agreement to the last entry, then both empty
            loop {
                let w = wheel
                    .pop_next(u64::MAX, |s| live.contains(&s))
                    .map(|e| (e.at, e.seq));
                let h = heap.pop_next(u64::MAX, |s| live.contains(&s));
                prop_assert_eq!(w, h);
                if w.is_none() {
                    break;
                }
                settle(w, &mut now, &mut live, &mut outstanding);
            }
            prop_assert!(wheel.is_empty());
        }

        /// `pop_tick_batch` with caller-side liveness settling (how the
        /// kernel's batched drain uses it) yields exactly the entries
        /// one-at-a-time `pop_next` would, in the same order.
        #[test]
        fn tick_batch_equals_singles(
            entries in proptest::collection::vec((0u64..5_000, 0u8..4), 1..150),
        ) {
            let mut singles_wheel: TimerWheel<()> = TimerWheel::new();
            let mut batch_wheel: TimerWheel<()> = TimerWheel::new();
            let mut live: HashSet<u64> = HashSet::new();
            for (seq, &(at, cancelled)) in entries.iter().enumerate() {
                let seq = seq as u64;
                singles_wheel.push(at, seq, ());
                batch_wheel.push(at, seq, ());
                if cancelled != 0 {
                    live.insert(seq); // 3-in-4 live, 1-in-4 cancelled
                }
            }
            let mut singles = Vec::new();
            while let Some(e) = singles_wheel.pop_next(u64::MAX, |s| live.contains(&s)) {
                singles.push((e.at, e.seq));
            }
            let mut batched = Vec::new();
            let mut batch = Vec::new();
            while let Some(tick) =
                batch_wheel.pop_tick_batch(u64::MAX, |s| live.contains(&s), &mut batch)
            {
                for e in batch.drain(..) {
                    prop_assert_eq!(e.at, tick);
                    if live.contains(&e.seq) {
                        batched.push((e.at, e.seq));
                    }
                }
            }
            prop_assert_eq!(singles, batched);
            prop_assert!(batch_wheel.is_empty());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_all(w: &mut TimerWheel<u32>) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        while let Some(e) = w.pop_next(u64::MAX, |_| true) {
            out.push((e.at, e.seq));
        }
        out
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut w = TimerWheel::new();
        let ats = [5u64, 1, 70, 70, 5, 4096, 1 << 20, 3, 0];
        for (seq, &at) in ats.iter().enumerate() {
            w.push(at, seq as u64, 0u32);
        }
        let mut expect: Vec<(u64, u64)> =
            ats.iter().enumerate().map(|(s, &a)| (a, s as u64)).collect();
        expect.sort();
        assert_eq!(drain_all(&mut w), expect);
        assert!(w.is_empty());
    }

    #[test]
    fn far_future_overflow_cascades_down() {
        let mut w = TimerWheel::new();
        w.push(1 << 55, 0, 0u32); // beyond the 2^48 wheel span
        w.push((1 << 55) + 3, 1, 0);
        w.push(7, 2, 0);
        w.push(u64::MAX, 3, 0);
        assert_eq!(
            drain_all(&mut w),
            vec![(7, 2), (1 << 55, 0), ((1 << 55) + 3, 1), (u64::MAX, 3)]
        );
    }

    #[test]
    fn cancelled_only_slots_do_not_advance_the_cursor() {
        let mut w = TimerWheel::new();
        w.push(100_000, 0, 0u32); // level ≥ 2
        assert!(w.pop_next(u64::MAX, |_| false).is_none());
        assert!(w.is_empty());
        // the cursor must not have run ahead: an earlier push still works
        w.push(5, 1, 0);
        let e = w.pop_next(u64::MAX, |_| true).expect("live entry");
        assert_eq!((e.at, e.seq), (5, 1));
    }

    #[test]
    fn limit_bounds_the_pop_and_the_cursor() {
        let mut w = TimerWheel::new();
        w.push(70, 0, 0u32);
        w.push(200, 1, 0);
        assert!(w.pop_next(63, |_| true).is_none());
        assert!(w.cursor() <= 63);
        let e = w.pop_next(70, |_| true).expect("due at 70");
        assert_eq!(e.at, 70);
        assert!(w.pop_next(199, |_| true).is_none());
        assert!(w.cursor() <= 199);
        assert_eq!(w.pop_next(200, |_| true).expect("due at 200").seq, 1);
    }

    #[test]
    fn tick_batch_drains_one_tick_fifo() {
        let mut w = TimerWheel::new();
        for seq in 0..5u64 {
            w.push(1000, seq, 0u32);
        }
        w.push(1001, 5, 0);
        let mut out = Vec::new();
        assert_eq!(w.pop_tick_batch(u64::MAX, |_| true, &mut out), Some(1000));
        assert_eq!(out.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
        assert_eq!(w.len(), 1);
        out.clear();
        assert_eq!(w.pop_tick_batch(u64::MAX, |_| true, &mut out), Some(1001));
        assert_eq!(out.len(), 1);
        assert!(w.is_empty());
    }

    #[test]
    fn push_during_staged_tick_lands_behind_the_staged_entries() {
        let mut w = TimerWheel::new();
        w.push(50, 0, 0u32);
        w.push(50, 1, 0);
        let first = w.pop_next(u64::MAX, |_| true).expect("first");
        assert_eq!(first.seq, 0);
        // the kernel schedules a same-tick follow-up mid-batch
        w.push(50, 2, 0);
        assert_eq!(w.pop_next(u64::MAX, |_| true).expect("staged").seq, 1);
        assert_eq!(w.pop_next(u64::MAX, |_| true).expect("follow-up").seq, 2);
    }

    #[test]
    fn len_counts_cancelled_until_swept() {
        let mut w = TimerWheel::new();
        w.push(10, 0, 0u32);
        w.push(20, 1, 0);
        assert_eq!(w.len(), 2);
        // "cancel" seq 0: the entry stays parked until its tick comes up
        let e = w.pop_next(u64::MAX, |seq| seq != 0).expect("live entry");
        assert_eq!(e.seq, 1);
        assert!(w.is_empty(), "the dead entry was swept on the way");
    }
}
