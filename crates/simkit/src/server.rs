//! Queuing resources: processor-sharing and FIFO servers.
//!
//! Everything physical in the reproduction — CPU time, disk bandwidth,
//! network links — is one of these two fluid-flow servers:
//!
//! * [`PsServer`] divides its capacity fairly among all active flows
//!   (optionally weighted and per-flow rate-capped, computed by progressive
//!   filling / water-filling). This models TCP flows sharing a link and
//!   timeslicing on a CPU. Fair sharing is what makes the "multiple
//!   simultaneous uploads" scalability experiment meaningful.
//! * [`FifoServer`] serves one job at a time at full capacity — a disk arm.
//!
//! Both integrate *busy-seconds* and *processed units* into the metric
//! [`Recorder`](crate::metrics::Recorder) so that every figure of the paper
//! falls out of the bucketed series.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use crate::engine::Sim;
use crate::metrics::{MetricId, Recorder};
use crate::time::{Duration, SimTime, TICKS_PER_SEC};

/// Identifier of a flow/job inside one server.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FlowId(u64);

/// Per-flow sharing parameters for a [`PsServer`].
#[derive(Clone, Copy, Debug)]
pub struct Share {
    /// Relative weight in the fair share (default 1.0).
    pub weight: f64,
    /// Upper bound on this flow's service rate in units/s (default ∞) —
    /// e.g. a WAN flow capped by the remote end's 85 KB/s uplink.
    pub rate_cap: f64,
}

impl Default for Share {
    fn default() -> Self {
        Share {
            weight: 1.0,
            rate_cap: f64::INFINITY,
        }
    }
}

impl Share {
    /// Equal-weight share capped at `rate_cap` units/s.
    pub fn capped(rate_cap: f64) -> Self {
        Share {
            weight: 1.0,
            rate_cap,
        }
    }
}

/// Construction parameters shared by both server kinds.
///
/// A server may record into several metric keys at once: a network link
/// accumulates the same bytes into its own series *and* into each endpoint
/// host's NIC series, which is how the paper's per-host I/O graphs are
/// measured.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Capacity in units per second (bytes/s for links and disks,
    /// cpu-seconds/s for processors).
    pub capacity: f64,
    /// Metric keys receiving busy-seconds (utilization integral).
    pub busy_metrics: Vec<String>,
    /// Metric keys receiving processed units.
    pub throughput_metrics: Vec<String>,
}

impl ServerConfig {
    /// Config with both metrics derived from a prefix: `<prefix>.busy` and
    /// `<prefix>.bytes`.
    pub fn named(prefix: &str, capacity: f64) -> Self {
        ServerConfig {
            capacity,
            busy_metrics: vec![format!("{prefix}.busy")],
            throughput_metrics: vec![format!("{prefix}.bytes")],
        }
    }

    /// Config that records nothing (internal plumbing resources).
    pub fn silent(capacity: f64) -> Self {
        ServerConfig {
            capacity,
            busy_metrics: Vec::new(),
            throughput_metrics: Vec::new(),
        }
    }

    /// Config with explicit metric key lists.
    pub fn with_keys(capacity: f64, busy: Vec<String>, throughput: Vec<String>) -> Self {
        ServerConfig {
            capacity,
            busy_metrics: busy,
            throughput_metrics: throughput,
        }
    }
}

type DoneFn = Box<dyn FnOnce(&mut Sim)>;

/// Interned copies of a config's metric key lists, resolved against the
/// recorder the first time the server records (servers are built before
/// the `Sim` they run in, so this cannot happen at construction).
struct MetricIdCache {
    busy: Vec<MetricId>,
    throughput: Vec<MetricId>,
}

fn intern_cfg(cfg: &ServerConfig, rec: &mut Recorder) -> MetricIdCache {
    MetricIdCache {
        busy: cfg.busy_metrics.iter().map(|k| rec.intern(k)).collect(),
        throughput: cfg.throughput_metrics.iter().map(|k| rec.intern(k)).collect(),
    }
}

fn share_is_default(s: &Share) -> bool {
    s.weight == 1.0 && s.rate_cap == f64::INFINITY
}

struct PsFlow {
    remaining: f64,
    initial: f64,
    share: Share,
    rate: f64,
    done: Option<DoneFn>,
}

/// Processor-sharing (fair-share) fluid server.
pub struct PsServer {
    cfg: ServerConfig,
    flows: BTreeMap<FlowId, PsFlow>,
    next_id: u64,
    last_update: SimTime,
    epoch: u64,
    metric_ids: Option<MetricIdCache>,
    /// Active flows whose share differs from `Share::default()`. While this
    /// is zero `recompute_rates` takes the closed-form equal-split path.
    nondefault_shares: usize,
    scratch_fixed: Vec<bool>,
    scratch_rates: Vec<f64>,
    scratch_shares: Vec<Share>,
}

fn finish_eps(initial: f64) -> f64 {
    1e-9 * initial.max(1.0)
}

/// Round a fractional-second delay *up* to the next tick so completion
/// events never fire before the fluid model says the work is done.
fn ceil_ticks(secs: f64) -> Duration {
    if !secs.is_finite() {
        return Duration::MAX;
    }
    Duration::from_micros((secs.max(0.0) * TICKS_PER_SEC as f64).ceil() as u64)
}

impl PsServer {
    /// Create a server; returns the shared handle used by all operations.
    pub fn new(cfg: ServerConfig) -> Rc<RefCell<PsServer>> {
        assert!(cfg.capacity > 0.0, "server capacity must be positive");
        Rc::new(RefCell::new(PsServer {
            cfg,
            flows: BTreeMap::new(),
            next_id: 0,
            last_update: SimTime::ZERO,
            epoch: 0,
            metric_ids: None,
            nondefault_shares: 0,
            scratch_fixed: Vec::new(),
            scratch_rates: Vec::new(),
            scratch_shares: Vec::new(),
        }))
    }

    /// Capacity in units/s.
    pub fn capacity(&self) -> f64 {
        self.cfg.capacity
    }

    /// Number of active flows.
    pub fn active(&self) -> usize {
        self.flows.len()
    }

    /// Submit `work` units with default sharing; `done` fires on completion.
    pub fn submit<F>(this: &Rc<RefCell<Self>>, sim: &mut Sim, work: f64, done: F) -> FlowId
    where
        F: FnOnce(&mut Sim) + 'static,
    {
        Self::submit_with(this, sim, work, Share::default(), done)
    }

    /// Submit `work` units with explicit weight/cap.
    pub fn submit_with<F>(
        this: &Rc<RefCell<Self>>,
        sim: &mut Sim,
        work: f64,
        share: Share,
        done: F,
    ) -> FlowId
    where
        F: FnOnce(&mut Sim) + 'static,
    {
        assert!(work >= 0.0, "negative work");
        assert!(share.weight > 0.0, "non-positive weight");
        let id;
        {
            let mut s = this.borrow_mut();
            s.advance(sim);
            id = FlowId(s.next_id);
            s.next_id += 1;
            if !share_is_default(&share) {
                s.nondefault_shares += 1;
            }
            s.flows.insert(
                id,
                PsFlow {
                    remaining: work,
                    initial: work,
                    share,
                    rate: 0.0,
                    done: Some(Box::new(done)),
                },
            );
            s.recompute_rates();
        }
        Self::reschedule(this, sim);
        // Zero-work flows complete via the normal event path (dt ceil = 0 is
        // clamped to "now"), preserving FIFO callback ordering.
        id
    }

    /// Cancel a flow. Returns `true` if it was still active; its callback is
    /// dropped unfired.
    pub fn cancel(this: &Rc<RefCell<Self>>, sim: &mut Sim, id: FlowId) -> bool {
        let removed;
        {
            let mut s = this.borrow_mut();
            s.advance(sim);
            removed = match s.flows.remove(&id) {
                Some(f) => {
                    if !share_is_default(&f.share) {
                        s.nondefault_shares -= 1;
                    }
                    true
                }
                None => false,
            };
            s.recompute_rates();
        }
        if removed {
            Self::reschedule(this, sim);
        }
        removed
    }

    /// Change capacity at runtime (e.g. a degraded link); in-flight flows
    /// keep their remaining work and re-share the new capacity.
    pub fn set_capacity(this: &Rc<RefCell<Self>>, sim: &mut Sim, capacity: f64) {
        assert!(capacity > 0.0, "server capacity must be positive");
        {
            let mut s = this.borrow_mut();
            s.advance(sim);
            s.cfg.capacity = capacity;
            s.recompute_rates();
        }
        Self::reschedule(this, sim);
    }

    /// Integrate elapsed progress into flows and metrics up to `sim.now()`.
    fn advance(&mut self, sim: &mut Sim) {
        let now = sim.now();
        if now <= self.last_update {
            self.last_update = now;
            return;
        }
        let dt = (now - self.last_update).as_secs_f64();
        // Record *served* work, not rate×dt: completion events are rounded
        // up to the next tick, so rate×dt can overshoot the work that
        // actually existed.
        let mut served_total = 0.0;
        for f in self.flows.values_mut() {
            let served = (f.rate * dt).min(f.remaining);
            f.remaining -= served;
            served_total += served;
        }
        if served_total > 0.0 {
            let t0 = self.last_update;
            let busy = (served_total / self.cfg.capacity).min(dt);
            let ids = self
                .metric_ids
                .get_or_insert_with(|| intern_cfg(&self.cfg, sim.recorder()));
            for &id in &ids.busy {
                sim.recorder().add_span_id(id, t0, now, busy);
            }
            for &id in &ids.throughput {
                sim.recorder().add_span_id(id, t0, now, served_total);
            }
        }
        self.last_update = now;
    }

    /// Water-filling: flows whose cap is below their weighted fair share are
    /// pinned at the cap; the freed capacity is redistributed among the rest.
    ///
    /// With only default shares active the filled point has a closed form —
    /// `capacity / n`, exactly the value one loop round computes when every
    /// weight is 1.0 and no cap binds (the weight sum over n ones is exactly
    /// `n as f64`) — so the common case assigns rates directly, touching no
    /// scratch storage. The general case reuses buffers kept on the server.
    fn recompute_rates(&mut self) {
        let n = self.flows.len();
        if n == 0 {
            return;
        }
        if self.nondefault_shares == 0 {
            let rate = self.cfg.capacity / n as f64;
            for f in self.flows.values_mut() {
                f.rate = rate;
            }
            return;
        }
        let fixed = &mut self.scratch_fixed;
        let rates = &mut self.scratch_rates;
        let shares = &mut self.scratch_shares;
        fixed.clear();
        fixed.resize(n, false);
        rates.clear();
        rates.resize(n, 0.0);
        shares.clear();
        shares.extend(self.flows.values().map(|f| f.share));
        let mut cap_left = self.cfg.capacity;
        loop {
            let free_weight: f64 = shares
                .iter()
                .zip(fixed.iter())
                .filter(|(_, fx)| !**fx)
                .map(|(s, _)| s.weight)
                .sum();
            if free_weight <= 0.0 {
                break;
            }
            let per_weight = cap_left / free_weight;
            let mut changed = false;
            for i in 0..n {
                if fixed[i] {
                    continue;
                }
                let fair = shares[i].weight * per_weight;
                if shares[i].rate_cap < fair {
                    rates[i] = shares[i].rate_cap;
                    cap_left -= rates[i];
                    fixed[i] = true;
                    changed = true;
                }
            }
            if !changed {
                for i in 0..n {
                    if !fixed[i] {
                        rates[i] = shares[i].weight * per_weight;
                    }
                }
                break;
            }
        }
        for (f, &r) in self.flows.values_mut().zip(rates.iter()) {
            f.rate = r;
        }
    }

    /// Earliest completion among active flows, in seconds from now.
    fn next_completion_secs(&self) -> Option<f64> {
        self.flows
            .values()
            .filter(|f| f.rate > 0.0 || f.remaining <= finish_eps(f.initial))
            .map(|f| {
                if f.remaining <= finish_eps(f.initial) {
                    0.0
                } else {
                    f.remaining / f.rate
                }
            })
            .fold(None, |acc: Option<f64>, x| {
                Some(acc.map_or(x, |a| a.min(x)))
            })
    }

    fn reschedule(this: &Rc<RefCell<Self>>, sim: &mut Sim) {
        let (epoch, delay) = {
            let mut s = this.borrow_mut();
            s.epoch += 1;
            match s.next_completion_secs() {
                Some(secs) => (s.epoch, ceil_ticks(secs)),
                None => return,
            }
        };
        let this = Rc::clone(this);
        sim.schedule(delay, move |sim| {
            Self::on_tick(&this, sim, epoch);
        });
    }

    fn on_tick(this: &Rc<RefCell<Self>>, sim: &mut Sim, epoch: u64) {
        let mut completed: Vec<DoneFn> = Vec::new();
        {
            let mut s = this.borrow_mut();
            if s.epoch != epoch {
                return; // superseded by a later submit/cancel
            }
            s.advance(sim);
            // drain every flow that finished this tick in one pass (ascending
            // FlowId order, matching callback FIFO expectations)
            let mut removed_nondefault = 0usize;
            s.flows.retain(|_, f| {
                if f.remaining <= finish_eps(f.initial) {
                    if !share_is_default(&f.share) {
                        removed_nondefault += 1;
                    }
                    if let Some(cb) = f.done.take() {
                        completed.push(cb);
                    }
                    false
                } else {
                    true
                }
            });
            s.nondefault_shares -= removed_nondefault;
            s.recompute_rates();
        }
        Self::reschedule(this, sim);
        for cb in completed {
            cb(sim);
        }
    }
}

struct FifoJob {
    id: FlowId,
    work: f64,
    done: Option<DoneFn>,
}

/// Serve-one-at-a-time server (disk arm model).
pub struct FifoServer {
    cfg: ServerConfig,
    queue: std::collections::VecDeque<FifoJob>,
    next_id: u64,
    /// Remaining work of the job currently in service.
    active_remaining: f64,
    active_initial: f64,
    last_update: SimTime,
    epoch: u64,
    metric_ids: Option<MetricIdCache>,
}

impl FifoServer {
    /// Create a server; returns the shared handle used by all operations.
    pub fn new(cfg: ServerConfig) -> Rc<RefCell<FifoServer>> {
        assert!(cfg.capacity > 0.0, "server capacity must be positive");
        Rc::new(RefCell::new(FifoServer {
            cfg,
            queue: std::collections::VecDeque::new(),
            next_id: 0,
            active_remaining: 0.0,
            active_initial: 0.0,
            last_update: SimTime::ZERO,
            epoch: 0,
            metric_ids: None,
        }))
    }

    /// Capacity in units/s.
    pub fn capacity(&self) -> f64 {
        self.cfg.capacity
    }

    /// Jobs in system (queued + in service).
    pub fn backlog(&self) -> usize {
        self.queue.len()
    }

    /// Change capacity at runtime (e.g. a throttled disk); the in-service
    /// job keeps its remaining work and continues at the new rate.
    pub fn set_capacity(this: &Rc<RefCell<Self>>, sim: &mut Sim, capacity: f64) {
        assert!(capacity > 0.0, "server capacity must be positive");
        {
            let mut s = this.borrow_mut();
            s.advance(sim);
            s.cfg.capacity = capacity;
        }
        Self::reschedule(this, sim);
    }

    /// Submit `work` units; `done` fires when the job finishes service.
    pub fn submit<F>(this: &Rc<RefCell<Self>>, sim: &mut Sim, work: f64, done: F) -> FlowId
    where
        F: FnOnce(&mut Sim) + 'static,
    {
        assert!(work >= 0.0, "negative work");
        let id;
        let was_idle;
        {
            let mut s = this.borrow_mut();
            s.advance(sim);
            id = FlowId(s.next_id);
            s.next_id += 1;
            was_idle = s.queue.is_empty();
            s.queue.push_back(FifoJob {
                id,
                work,
                done: Some(Box::new(done)),
            });
            if was_idle {
                s.start_head();
            }
        }
        if was_idle {
            Self::reschedule(this, sim);
        }
        id
    }

    /// Cancel a job. In-service jobs abandon their remaining work. Returns
    /// `true` if the job was still in the system.
    pub fn cancel(this: &Rc<RefCell<Self>>, sim: &mut Sim, id: FlowId) -> bool {
        let removed;
        {
            let mut s = this.borrow_mut();
            s.advance(sim);
            let head_is_target = s.queue.front().map(|j| j.id) == Some(id);
            let before = s.queue.len();
            s.queue.retain(|j| j.id != id);
            removed = s.queue.len() < before;
            if head_is_target {
                s.start_head();
            }
        }
        if removed {
            Self::reschedule(this, sim);
        }
        removed
    }

    fn start_head(&mut self) {
        if let Some(head) = self.queue.front() {
            self.active_remaining = head.work;
            self.active_initial = head.work;
        } else {
            self.active_remaining = 0.0;
            self.active_initial = 0.0;
        }
    }

    fn advance(&mut self, sim: &mut Sim) {
        let now = sim.now();
        if now <= self.last_update {
            self.last_update = now;
            return;
        }
        let dt = (now - self.last_update).as_secs_f64();
        if !self.queue.is_empty() {
            let served = (self.cfg.capacity * dt).min(self.active_remaining);
            self.active_remaining -= served;
            let t0 = self.last_update;
            if served > 0.0 {
                let busy_dt = served / self.cfg.capacity;
                // Attribute the busy span to the beginning of the interval:
                // the server worked first, then idled.
                let t_busy_end = t0 + Duration::from_secs_f64(busy_dt);
                let ids = self
                    .metric_ids
                    .get_or_insert_with(|| intern_cfg(&self.cfg, sim.recorder()));
                for &id in &ids.busy {
                    sim.recorder().add_span_id(id, t0, t_busy_end, busy_dt);
                }
                for &id in &ids.throughput {
                    sim.recorder().add_span_id(id, t0, t_busy_end, served);
                }
            }
        }
        self.last_update = now;
    }

    fn reschedule(this: &Rc<RefCell<Self>>, sim: &mut Sim) {
        let (epoch, delay) = {
            let mut s = this.borrow_mut();
            s.epoch += 1;
            if s.queue.is_empty() {
                return;
            }
            let secs = s.active_remaining / s.cfg.capacity;
            (s.epoch, ceil_ticks(secs))
        };
        let this = Rc::clone(this);
        sim.schedule(delay, move |sim| {
            Self::on_tick(&this, sim, epoch);
        });
    }

    fn on_tick(this: &Rc<RefCell<Self>>, sim: &mut Sim, epoch: u64) {
        let mut done_cb: Option<DoneFn> = None;
        {
            let mut s = this.borrow_mut();
            if s.epoch != epoch {
                return;
            }
            s.advance(sim);
            if s.active_remaining <= finish_eps(s.active_initial) {
                if let Some(mut job) = s.queue.pop_front() {
                    done_cb = job.done.take();
                }
                s.start_head();
            }
        }
        Self::reschedule(this, sim);
        if let Some(cb) = done_cb {
            cb(sim);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    fn flag() -> Rc<Cell<f64>> {
        Rc::new(Cell::new(-1.0))
    }

    #[test]
    fn single_flow_full_capacity() {
        let mut sim = Sim::new(0);
        let link = PsServer::new(ServerConfig::silent(100.0));
        let at = flag();
        let at2 = at.clone();
        PsServer::submit(&link, &mut sim, 500.0, move |sim| {
            at2.set(sim.now().as_secs_f64());
        });
        sim.run();
        assert!((at.get() - 5.0).abs() < 1e-3, "finished at {}", at.get());
    }

    #[test]
    fn two_flows_share_capacity() {
        let mut sim = Sim::new(0);
        let link = PsServer::new(ServerConfig::silent(100.0));
        let a = flag();
        let b = flag();
        let (a2, b2) = (a.clone(), b.clone());
        PsServer::submit(&link, &mut sim, 500.0, move |sim| {
            a2.set(sim.now().as_secs_f64())
        });
        PsServer::submit(&link, &mut sim, 500.0, move |sim| {
            b2.set(sim.now().as_secs_f64())
        });
        sim.run();
        // both progress at 50 u/s → 10 s each
        assert!((a.get() - 10.0).abs() < 1e-3, "a at {}", a.get());
        assert!((b.get() - 10.0).abs() < 1e-3, "b at {}", b.get());
    }

    #[test]
    fn short_flow_departure_speeds_up_long_flow() {
        let mut sim = Sim::new(0);
        let link = PsServer::new(ServerConfig::silent(100.0));
        let long = flag();
        let l2 = long.clone();
        PsServer::submit(&link, &mut sim, 1000.0, move |sim| {
            l2.set(sim.now().as_secs_f64())
        });
        PsServer::submit(&link, &mut sim, 100.0, |_| {});
        sim.run();
        // short: shares 50/s, done at t=2 (100 units). long: 100 done by t=2,
        // then 900 at full 100/s → t = 2 + 9 = 11.
        assert!((long.get() - 11.0).abs() < 1e-3, "long at {}", long.get());
    }

    #[test]
    fn rate_cap_limits_flow() {
        let mut sim = Sim::new(0);
        let link = PsServer::new(ServerConfig::silent(1000.0));
        let at = flag();
        let at2 = at.clone();
        PsServer::submit_with(&link, &mut sim, 500.0, Share::capped(50.0), move |sim| {
            at2.set(sim.now().as_secs_f64())
        });
        sim.run();
        assert!((at.get() - 10.0).abs() < 1e-3, "capped at {}", at.get());
    }

    #[test]
    fn water_filling_redistributes_capped_surplus() {
        let mut sim = Sim::new(0);
        let link = PsServer::new(ServerConfig::silent(100.0));
        let fast = flag();
        let f2 = fast.clone();
        // capped flow takes 10 u/s; the other should get 90 u/s, not 50.
        PsServer::submit_with(&link, &mut sim, 10_000.0, Share::capped(10.0), |_| {});
        PsServer::submit(&link, &mut sim, 900.0, move |sim| {
            f2.set(sim.now().as_secs_f64())
        });
        sim.run_until(SimTime::from_secs(50));
        assert!((fast.get() - 10.0).abs() < 1e-2, "fast at {}", fast.get());
    }

    #[test]
    fn weights_bias_shares() {
        let mut sim = Sim::new(0);
        let link = PsServer::new(ServerConfig::silent(100.0));
        let heavy = flag();
        let h2 = heavy.clone();
        let w3 = Share {
            weight: 3.0,
            rate_cap: f64::INFINITY,
        };
        PsServer::submit_with(&link, &mut sim, 750.0, w3, move |sim| {
            h2.set(sim.now().as_secs_f64())
        });
        PsServer::submit(&link, &mut sim, 10_000.0, |_| {});
        sim.run_until(SimTime::from_secs(100));
        // heavy gets 75 u/s while sharing → 10 s
        assert!((heavy.get() - 10.0).abs() < 1e-2, "heavy at {}", heavy.get());
    }

    #[test]
    fn cancel_stops_flow_and_drops_callback() {
        let mut sim = Sim::new(0);
        let link = PsServer::new(ServerConfig::silent(100.0));
        let at = flag();
        let at2 = at.clone();
        let id = PsServer::submit(&link, &mut sim, 500.0, move |sim| {
            at2.set(sim.now().as_secs_f64())
        });
        let link2 = link.clone();
        sim.schedule(Duration::from_secs(1), move |sim| {
            assert!(PsServer::cancel(&link2, sim, id));
        });
        sim.run();
        assert_eq!(at.get(), -1.0, "cancelled flow must not complete");
        assert_eq!(link.borrow().active(), 0);
    }

    #[test]
    fn zero_work_completes_immediately() {
        let mut sim = Sim::new(0);
        let link = PsServer::new(ServerConfig::silent(10.0));
        let at = flag();
        let at2 = at.clone();
        PsServer::submit(&link, &mut sim, 0.0, move |sim| {
            at2.set(sim.now().as_secs_f64())
        });
        sim.run();
        assert_eq!(at.get(), 0.0);
    }

    #[test]
    fn busy_metric_integrates_utilization() {
        let mut sim = Sim::new(0);
        let link = PsServer::new(ServerConfig::named("l", 100.0));
        PsServer::submit(&link, &mut sim, 600.0, |_| {});
        sim.run();
        // 6 s at full utilization over 3 s buckets → busy-seconds [3,3]
        let s = sim.recorder_ref().series("l.busy").unwrap();
        assert!((s.total() - 6.0).abs() < 1e-6, "{:?}", s.buckets());
        assert!((sim.recorder_ref().total("l.bytes") - 600.0).abs() < 1e-6);
    }

    #[test]
    fn fifo_serializes_jobs() {
        let mut sim = Sim::new(0);
        let disk = FifoServer::new(ServerConfig::silent(100.0));
        let a = flag();
        let b = flag();
        let (a2, b2) = (a.clone(), b.clone());
        FifoServer::submit(&disk, &mut sim, 200.0, move |sim| {
            a2.set(sim.now().as_secs_f64())
        });
        FifoServer::submit(&disk, &mut sim, 300.0, move |sim| {
            b2.set(sim.now().as_secs_f64())
        });
        sim.run();
        assert!((a.get() - 2.0).abs() < 1e-3);
        assert!((b.get() - 5.0).abs() < 1e-3, "b at {}", b.get());
    }

    #[test]
    fn fifo_cancel_waiting_job() {
        let mut sim = Sim::new(0);
        let disk = FifoServer::new(ServerConfig::silent(100.0));
        let b = flag();
        let b2 = b.clone();
        FifoServer::submit(&disk, &mut sim, 200.0, |_| {});
        let id = FifoServer::submit(&disk, &mut sim, 300.0, move |sim| {
            b2.set(sim.now().as_secs_f64())
        });
        let d2 = disk.clone();
        sim.schedule(Duration::from_secs(1), move |sim| {
            assert!(FifoServer::cancel(&d2, sim, id));
        });
        sim.run();
        assert_eq!(b.get(), -1.0);
    }

    #[test]
    fn fifo_throughput_metric_totals_work() {
        let mut sim = Sim::new(0);
        let disk = FifoServer::new(ServerConfig::named("d", 50.0));
        FifoServer::submit(&disk, &mut sim, 100.0, |_| {});
        FifoServer::submit(&disk, &mut sim, 150.0, |_| {});
        sim.run();
        assert!((sim.recorder_ref().total("d.bytes") - 250.0).abs() < 1e-6);
        assert!((sim.recorder_ref().total("d.busy") - 5.0).abs() < 1e-6);
    }

    #[test]
    fn set_capacity_rescales_in_flight() {
        let mut sim = Sim::new(0);
        let link = PsServer::new(ServerConfig::silent(100.0));
        let at = flag();
        let at2 = at.clone();
        PsServer::submit(&link, &mut sim, 1000.0, move |sim| {
            at2.set(sim.now().as_secs_f64())
        });
        let l2 = link.clone();
        sim.schedule(Duration::from_secs(5), move |sim| {
            PsServer::set_capacity(&l2, sim, 50.0);
        });
        sim.run();
        // 500 units in the first 5 s, remaining 500 at 50/s → t=15
        assert!((at.get() - 15.0).abs() < 1e-3, "at {}", at.get());
    }

    #[test]
    fn many_equal_flows_finish_together() {
        let mut sim = Sim::new(0);
        let link = PsServer::new(ServerConfig::silent(100.0));
        let done = Rc::new(Cell::new(0u32));
        for _ in 0..10 {
            let d = done.clone();
            PsServer::submit(&link, &mut sim, 100.0, move |sim| {
                assert!((sim.now().as_secs_f64() - 10.0).abs() < 1e-3);
                d.set(d.get() + 1);
            });
        }
        sim.run();
        assert_eq!(done.get(), 10);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn ps_server_rejects_zero_capacity() {
        let _ = PsServer::new(ServerConfig::silent(0.0));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn fifo_server_rejects_negative_capacity() {
        let _ = FifoServer::new(ServerConfig::silent(-5.0));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn ps_set_capacity_rejects_zero() {
        let mut sim = Sim::new(0);
        let link = PsServer::new(ServerConfig::silent(100.0));
        PsServer::set_capacity(&link, &mut sim, 0.0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn fifo_set_capacity_rejects_negative() {
        let mut sim = Sim::new(0);
        let disk = FifoServer::new(ServerConfig::silent(100.0));
        FifoServer::set_capacity(&disk, &mut sim, -1.0);
    }

    #[test]
    fn fifo_set_capacity_rescales_current_job() {
        let mut sim = Sim::new(0);
        let disk = FifoServer::new(ServerConfig::silent(100.0));
        let at = flag();
        let at2 = at.clone();
        FifoServer::submit(&disk, &mut sim, 1000.0, move |sim| {
            at2.set(sim.now().as_secs_f64())
        });
        let d2 = disk.clone();
        sim.schedule(Duration::from_secs(5), move |sim| {
            FifoServer::set_capacity(&d2, sim, 50.0);
        });
        sim.run();
        // 500 units in the first 5 s, remaining 500 at 50/s → t=15
        assert!((at.get() - 15.0).abs() < 1e-3, "at {}", at.get());
    }
}
