//! Deterministic fault injection on the virtual clock.
//!
//! A [`FaultPlan`] is a *seed plus knobs*: a crash schedule (explicit
//! offsets or a Poisson process materialized from the seed) and
//! probabilistic failure rates for the substrate layers (link drops and
//! jitter, storage write failures). Every draw comes from a generator
//! derived from the plan seed, so a chaos run is replayable bit-for-bit —
//! the same seed produces the same crashes at the same virtual instants,
//! the same dropped transfers, the same failed writes.
//!
//! The plan itself is layer-agnostic; higher tiers map it onto their own
//! victims. `simkit::Link` consumes the network knobs directly
//! ([`crate::Link::inject_faults`]), the blob store consumes
//! [`FaultInjector::fail_write`], and the fleet crate turns
//! [`FaultPlan::crash_times`] into replica kills.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use crate::rng::Rng;
use crate::time::Duration;

/// When crash events fire, as offsets from the start of the chaos window.
#[derive(Clone, Debug, Default)]
pub enum CrashSchedule {
    /// No crashes.
    #[default]
    None,
    /// Explicit offsets (kept sorted by [`FaultPlan::crash_times`]).
    At(Vec<Duration>),
    /// Memoryless crashes: exponential gaps with the given mean, drawn
    /// from the plan seed, until `horizon` is exceeded.
    Poisson {
        /// Mean gap between consecutive crashes.
        mean_gap: Duration,
        /// Stop generating crashes past this offset.
        horizon: Duration,
    },
}

/// Probabilistic substrate-fault rates. All default to "off".
#[derive(Clone, Copy, Debug)]
pub struct FaultConfig {
    /// Probability that one link transfer pass is dropped and must be
    /// retransmitted after [`FaultConfig::link_retransmit`].
    pub link_drop_p: f64,
    /// Retransmit timeout charged per dropped pass.
    pub link_retransmit: Duration,
    /// Mean of an exponentially-distributed extra delivery delay added to
    /// every link transfer ([`Duration::ZERO`] disables jitter).
    pub link_extra_delay_mean: Duration,
    /// Probability that one blob-store write fails after its disk work.
    pub write_fail_p: f64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            link_drop_p: 0.0,
            link_retransmit: Duration::from_millis(1000),
            link_extra_delay_mean: Duration::ZERO,
            write_fail_p: 0.0,
        }
    }
}

/// A seeded, replayable chaos scenario.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Root seed every draw derives from.
    pub seed: u64,
    /// Crash events (mapped onto victims by the owning tier).
    pub crashes: CrashSchedule,
    /// Gray-failure events: `(offset, latency factor)` — at `offset` the
    /// owning tier degrades one victim to `factor ×` its normal service
    /// latency. The victim still answers; nothing crashes. The fleet tier
    /// maps these onto replicas ([`FaultPlan::slow_times`]).
    pub slows: Vec<(Duration, f64)>,
    /// Site-outage windows: `(offset, duration)` — at `offset` the owning
    /// tier severs one whole *site* (every replica there unreachable, WAN
    /// links cut, queued work frozen) and restores it at
    /// `offset + duration`. Victim-site selection is the owning tier's
    /// business ([`FaultPlan::site_down_times`]); nothing crashes — work
    /// in flight at the severed site survives the window.
    pub site_downs: Vec<(Duration, Duration)>,
    /// Substrate-fault rates.
    pub config: FaultConfig,
}

impl FaultPlan {
    /// A benign plan (no crashes, no substrate faults) with the given seed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Add one scheduled crash at `offset` from the chaos start.
    pub fn crash_at(mut self, offset: Duration) -> Self {
        match &mut self.crashes {
            CrashSchedule::At(v) => v.push(offset),
            other => *other = CrashSchedule::At(vec![offset]),
        }
        self
    }

    /// Replace the crash schedule with a Poisson process.
    pub fn poisson_crashes(mut self, mean_gap: Duration, horizon: Duration) -> Self {
        self.crashes = CrashSchedule::Poisson { mean_gap, horizon };
        self
    }

    /// Add one gray-failure event: at `offset` from the chaos start, slow
    /// one victim to `factor ×` its normal service latency (`factor` must
    /// be ≥ 1.0; 1.0 is a no-op restore).
    pub fn slow_at(mut self, offset: Duration, factor: f64) -> Self {
        assert!(factor >= 1.0, "slow factor must be >= 1.0, got {factor}");
        self.slows.push((offset, factor));
        self
    }

    /// Add one site-outage window: at `offset` from the chaos start,
    /// sever one whole site for `duration` (`duration` must be non-zero).
    pub fn site_down(mut self, offset: Duration, duration: Duration) -> Self {
        assert!(!duration.is_zero(), "site outage needs a non-zero duration");
        self.site_downs.push((offset, duration));
        self
    }

    /// Drop each link transfer pass with probability `p`.
    pub fn link_drop(mut self, p: f64) -> Self {
        self.config.link_drop_p = p;
        self
    }

    /// Add exponential delivery jitter with the given mean to every link
    /// transfer.
    pub fn link_extra_delay(mut self, mean: Duration) -> Self {
        self.config.link_extra_delay_mean = mean;
        self
    }

    /// Fail each blob-store write with probability `p`.
    pub fn write_fail(mut self, p: f64) -> Self {
        self.config.write_fail_p = p;
        self
    }

    /// Materialize the crash schedule: sorted offsets from the chaos
    /// start. Poisson schedules draw from a generator derived *only* from
    /// the plan seed, so repeated calls (and repeated runs) agree exactly.
    pub fn crash_times(&self) -> Vec<Duration> {
        match &self.crashes {
            CrashSchedule::None => Vec::new(),
            CrashSchedule::At(offsets) => {
                let mut v = offsets.clone();
                v.sort();
                v
            }
            CrashSchedule::Poisson { mean_gap, horizon } => {
                let mut rng = self.derived_rng(0x0063_7261_7368_u64); // "crash"
                let mut t = Duration::ZERO;
                let mut v = Vec::new();
                loop {
                    t += Duration::from_secs_f64(rng.exp(mean_gap.as_secs_f64()));
                    if t > *horizon {
                        return v;
                    }
                    v.push(t);
                }
            }
        }
    }

    /// Materialize the gray-failure schedule: `(offset, factor)` pairs
    /// sorted by offset. Victim selection is the owning tier's business
    /// (use [`FaultPlan::derived_rng`] with a tier salt).
    pub fn slow_times(&self) -> Vec<(Duration, f64)> {
        let mut v = self.slows.clone();
        v.sort_by_key(|s| s.0);
        v
    }

    /// Materialize the site-outage schedule: `(offset, duration)` windows
    /// sorted by offset. Which site each window severs is the owning
    /// tier's business (use [`FaultPlan::derived_rng`] with a tier salt).
    pub fn site_down_times(&self) -> Vec<(Duration, Duration)> {
        let mut v = self.site_downs.clone();
        v.sort_by_key(|s| s.0);
        v
    }

    /// The probabilistic-fault draw source for this plan, ready to hand to
    /// [`crate::Link::inject_faults`] or a storage layer.
    pub fn injector(&self) -> Rc<FaultInjector> {
        FaultInjector::new(self.seed ^ 0x696e_6a65_6374u64, self.config) // "inject"
    }

    /// A generator derived from the plan seed and a caller salt, for
    /// plan-driven decisions outside the injector (victim picks, etc.).
    /// Distinct salts give independent, replayable streams.
    pub fn derived_rng(&self, salt: u64) -> Rng {
        Rng::new(self.seed ^ salt.rotate_left(17))
    }
}

/// Running totals of injected substrate faults.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Link transfer passes dropped (each costs one retransmit).
    pub link_drops: u64,
    /// Blob-store writes failed.
    pub write_fails: u64,
}

/// Seeded draw source for the probabilistic knobs in a [`FaultConfig`].
///
/// One injector serializes all its draws through a single generator, so
/// the *order* of substrate operations matters to the draw sequence — which
/// is exactly the determinism contract the kernel already makes (the event
/// loop itself is deterministic).
pub struct FaultInjector {
    cfg: FaultConfig,
    rng: RefCell<Rng>,
    link_drops: Cell<u64>,
    write_fails: Cell<u64>,
}

impl FaultInjector {
    /// New injector drawing from `seed` under `cfg`.
    pub fn new(seed: u64, cfg: FaultConfig) -> Rc<FaultInjector> {
        Rc::new(FaultInjector {
            cfg,
            rng: RefCell::new(Rng::new(seed)),
            link_drops: Cell::new(0),
            write_fails: Cell::new(0),
        })
    }

    /// The active knobs.
    pub fn config(&self) -> FaultConfig {
        self.cfg
    }

    /// Draw: is this link transfer pass dropped?
    pub fn drop_transfer(&self) -> bool {
        if self.cfg.link_drop_p <= 0.0 {
            return false;
        }
        let hit = self.rng.borrow_mut().chance(self.cfg.link_drop_p);
        if hit {
            self.link_drops.set(self.link_drops.get() + 1);
        }
        hit
    }

    /// Draw: extra delivery delay for this link transfer.
    pub fn extra_delay(&self) -> Duration {
        if self.cfg.link_extra_delay_mean.is_zero() {
            return Duration::ZERO;
        }
        let mean = self.cfg.link_extra_delay_mean.as_secs_f64();
        Duration::from_secs_f64(self.rng.borrow_mut().exp(mean))
    }

    /// Draw: does this blob-store write fail?
    pub fn fail_write(&self) -> bool {
        if self.cfg.write_fail_p <= 0.0 {
            return false;
        }
        let hit = self.rng.borrow_mut().chance(self.cfg.write_fail_p);
        if hit {
            self.write_fails.set(self.write_fails.get() + 1);
        }
        hit
    }

    /// Totals so far.
    pub fn counts(&self) -> FaultCounts {
        FaultCounts {
            link_drops: self.link_drops.get(),
            write_fails: self.write_fails.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_schedule_is_sorted() {
        let plan = FaultPlan::new(1)
            .crash_at(Duration::from_secs(50))
            .crash_at(Duration::from_secs(10));
        assert_eq!(
            plan.crash_times(),
            vec![Duration::from_secs(10), Duration::from_secs(50)]
        );
    }

    #[test]
    fn poisson_schedule_is_replayable_and_seed_sensitive() {
        let plan = |seed| {
            FaultPlan::new(seed)
                .poisson_crashes(Duration::from_secs(60), Duration::from_secs(3600))
        };
        let a = plan(7).crash_times();
        let b = plan(7).crash_times();
        let c = plan(8).crash_times();
        assert_eq!(a, b, "same seed, same schedule");
        assert_ne!(a, c, "different seed, different schedule");
        assert!(!a.is_empty());
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "sorted");
        assert!(*a.last().unwrap() <= Duration::from_secs(3600));
        // mean gap ≈ 60s over an hour → on the order of 60 crashes
        assert!(a.len() > 20 && a.len() < 180, "got {}", a.len());
    }

    #[test]
    fn injector_draws_are_replayable() {
        let plan = FaultPlan::new(3).link_drop(0.3).write_fail(0.1);
        let draw = || {
            let inj = plan.injector();
            let v: Vec<bool> = (0..100).map(|_| inj.drop_transfer()).collect();
            let w: Vec<bool> = (0..100).map(|_| inj.fail_write()).collect();
            (v, w, inj.counts())
        };
        let (v1, w1, c1) = draw();
        let (v2, w2, c2) = draw();
        assert_eq!(v1, v2);
        assert_eq!(w1, w2);
        assert_eq!(c1, c2);
        assert!(c1.link_drops > 10 && c1.link_drops < 60, "{c1:?}");
        assert!(c1.write_fails > 0);
    }

    #[test]
    fn slow_schedule_sorts_and_validates() {
        let plan = FaultPlan::new(5)
            .slow_at(Duration::from_secs(200), 10.0)
            .slow_at(Duration::from_secs(50), 4.0);
        assert_eq!(
            plan.slow_times(),
            vec![
                (Duration::from_secs(50), 4.0),
                (Duration::from_secs(200), 10.0)
            ]
        );
        // slows leave the crash schedule alone
        assert!(plan.crash_times().is_empty());
        let caught = std::panic::catch_unwind(|| {
            FaultPlan::new(5).slow_at(Duration::from_secs(1), 0.5)
        });
        assert!(caught.is_err(), "sub-1.0 factor must be rejected");
    }

    #[test]
    fn site_down_schedule_sorts_and_validates() {
        let plan = FaultPlan::new(6)
            .site_down(Duration::from_secs(300), Duration::from_secs(60))
            .site_down(Duration::from_secs(100), Duration::from_secs(30));
        assert_eq!(
            plan.site_down_times(),
            vec![
                (Duration::from_secs(100), Duration::from_secs(30)),
                (Duration::from_secs(300), Duration::from_secs(60))
            ]
        );
        // outage windows leave the other schedules alone
        assert!(plan.crash_times().is_empty());
        assert!(plan.slow_times().is_empty());
        let caught = std::panic::catch_unwind(|| {
            FaultPlan::new(6).site_down(Duration::from_secs(1), Duration::ZERO)
        });
        assert!(caught.is_err(), "zero-length outage must be rejected");
    }

    #[test]
    fn benign_plan_never_draws() {
        let inj = FaultPlan::new(9).injector();
        for _ in 0..50 {
            assert!(!inj.drop_transfer());
            assert!(!inj.fail_write());
            assert!(inj.extra_delay().is_zero());
        }
        assert_eq!(inj.counts(), FaultCounts::default());
    }
}
