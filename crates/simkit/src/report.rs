//! Plain-text rendering of series and tables.
//!
//! The benchmark binaries regenerate the paper's figures as terminal
//! output: an ASCII area chart per curve (the analogue of the resource
//! monitor screenshots in Figures 6–8) plus the raw rows so EXPERIMENTS.md
//! can quote exact numbers.

use crate::metrics::Series;

/// Render one series as a fixed-height ASCII area chart. `title` is printed
/// above; `unit` labels the y-axis maximum.
pub fn ascii_chart(title: &str, unit: &str, series: &Series, height: usize) -> String {
    ascii_chart_rows(title, unit, &series.rows(), height)
}

/// Chart from raw `(t, value)` rows (already bucketed).
pub fn ascii_chart_rows(title: &str, unit: &str, rows: &[(f64, f64)], height: usize) -> String {
    let height = height.max(2);
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    if rows.is_empty() {
        out.push_str("  (no data)\n");
        return out;
    }
    let max = rows.iter().map(|&(_, v)| v).fold(0.0_f64, f64::max);
    if max <= 0.0 {
        out.push_str("  (all zero)\n");
        return out;
    }
    // one column per bucket
    for level in (1..=height).rev() {
        let threshold = max * (level as f64 - 0.5) / height as f64;
        if level == height {
            out.push_str(&format!("{:>12.1} |", max));
        } else {
            out.push_str(&format!("{:>12} |", ""));
        }
        for &(_, v) in rows {
            out.push(if v >= threshold { '#' } else { ' ' });
        }
        if level == height {
            out.push(' ');
            out.push_str(unit);
        }
        out.push('\n');
    }
    out.push_str(&format!("{:>12} +", "0"));
    for _ in rows {
        out.push('-');
    }
    out.push('\n');
    let t_end = rows.last().map(|&(t, _)| t).unwrap_or(0.0);
    out.push_str(&format!("{:>12}  0s .. {:.0}s\n", "", t_end));
    out
}

/// Render rows as an aligned two-column table (`t`, `value`).
pub fn series_table(header: &str, rows: &[(f64, f64)]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{:>8}  {:>14}\n", "t(s)", header));
    for &(t, v) in rows {
        out.push_str(&format!("{t:>8.1}  {v:>14.2}\n"));
    }
    out
}

/// A simple aligned text table builder for experiment reports.
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; must match the header arity.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for i in 0..cols {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(&format!("{:>w$}", cells[i], w = widths[i]));
            }
            out.push('\n');
        };
        render_row(&self.headers, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            render_row(row, &widths, &mut out);
        }
        out
    }
}

/// Render aligned `(t, value)` curves as CSV with a shared time column.
/// Curves must share bucketing (same `t` grid); shorter curves pad with
/// empty cells.
pub fn curves_to_csv(headers: &[&str], curves: &[&[(f64, f64)]]) -> String {
    assert_eq!(headers.len(), curves.len(), "one header per curve");
    let mut out = String::from("t_seconds");
    for h in headers {
        out.push(',');
        // minimal CSV quoting: wrap fields containing commas/quotes
        if h.contains(',') || h.contains('"') {
            out.push('"');
            out.push_str(&h.replace('"', "\"\""));
            out.push('"');
        } else {
            out.push_str(h);
        }
    }
    out.push('\n');
    let rows = curves.iter().map(|c| c.len()).max().unwrap_or(0);
    for i in 0..rows {
        let t = curves
            .iter()
            .find_map(|c| c.get(i).map(|&(t, _)| t))
            .unwrap_or(0.0);
        out.push_str(&format!("{t}"));
        for c in curves {
            out.push(',');
            if let Some(&(_, v)) = c.get(i) {
                out.push_str(&format!("{v}"));
            }
        }
        out.push('\n');
    }
    out
}

/// Human-readable byte count (KB/MB with the paper's 1024 base).
pub fn fmt_bytes(bytes: f64) -> String {
    const KB: f64 = 1024.0;
    const MB: f64 = 1024.0 * 1024.0;
    const GB: f64 = 1024.0 * 1024.0 * 1024.0;
    if bytes >= GB {
        format!("{:.2} GB", bytes / GB)
    } else if bytes >= MB {
        format!("{:.2} MB", bytes / MB)
    } else if bytes >= KB {
        format!("{:.1} KB", bytes / KB)
    } else {
        format!("{bytes:.0} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Recorder;
    use crate::time::{Duration, SimTime};

    #[test]
    fn chart_renders_peaks() {
        let mut r = Recorder::new(Duration::from_secs(1));
        for (i, v) in [0.0, 1.0, 4.0, 1.0, 0.0].iter().enumerate() {
            r.add_point("x", SimTime::from_secs(i as u64), *v);
        }
        let chart = ascii_chart("net in", "KB/s", r.series("x").unwrap(), 4);
        assert!(chart.contains("net in"));
        assert!(chart.contains('#'));
        // the peak column has full height: count '#' per line
        let full_rows = chart.lines().filter(|l| l.contains('#')).count();
        assert_eq!(full_rows, 4);
    }

    #[test]
    fn chart_handles_empty_and_zero() {
        assert!(ascii_chart_rows("t", "u", &[], 4).contains("no data"));
        assert!(ascii_chart_rows("t", "u", &[(0.0, 0.0)], 4).contains("all zero"));
    }

    #[test]
    fn table_aligns_and_counts() {
        let mut t = TextTable::new(vec!["name", "value"]);
        t.row(vec!["a", "1"]).row(vec!["longer", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[3].contains("longer"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn table_rejects_bad_row() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn bytes_formatting() {
        assert_eq!(fmt_bytes(512.0), "512 B");
        assert_eq!(fmt_bytes(2048.0), "2.0 KB");
        assert_eq!(fmt_bytes(5.0 * 1024.0 * 1024.0), "5.00 MB");
    }

    #[test]
    fn csv_aligns_curves() {
        let a = [(0.0, 1.0), (3.0, 2.0)];
        let b = [(0.0, 5.0)];
        let csv = curves_to_csv(&["net", "disk,write"], &[&a, &b]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "t_seconds,net,\"disk,write\"");
        assert_eq!(lines[1], "0,1,5");
        assert_eq!(lines[2], "3,2,");
        assert_eq!(lines.len(), 3);
    }

    #[test]
    #[should_panic(expected = "one header per curve")]
    fn csv_rejects_mismatched_headers() {
        let a = [(0.0, 1.0)];
        let _ = curves_to_csv(&["x", "y"], &[&a]);
    }

    #[test]
    fn series_table_lists_rows() {
        let s = series_table("bytes", &[(0.0, 10.0), (3.0, 20.0)]);
        assert!(s.contains("0.0"));
        assert!(s.contains("20.00"));
    }
}
