//! Summary statistics over experiment samples.
//!
//! The benchmark harness reports latency/throughput distributions; this
//! module provides the few estimators it needs without pulling in a stats
//! dependency.

/// Summary of a sample set.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean (0.0 when empty).
    pub mean: f64,
    /// Population standard deviation (0.0 when empty).
    pub std_dev: f64,
    /// Minimum (0.0 when empty).
    pub min: f64,
    /// Maximum (0.0 when empty).
    pub max: f64,
    /// Median (interpolated).
    pub p50: f64,
    /// 95th percentile (interpolated).
    pub p95: f64,
    /// 99th percentile (interpolated).
    pub p99: f64,
}

/// Compute a [`Summary`] of `samples` (order irrelevant).
pub fn summarize(samples: &[f64]) -> Summary {
    if samples.is_empty() {
        return Summary {
            count: 0,
            mean: 0.0,
            std_dev: 0.0,
            min: 0.0,
            max: 0.0,
            p50: 0.0,
            p95: 0.0,
            p99: 0.0,
        };
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
    let n = sorted.len();
    let mean = sorted.iter().sum::<f64>() / n as f64;
    let var = sorted.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
    Summary {
        count: n,
        mean,
        std_dev: var.sqrt(),
        min: sorted[0],
        max: sorted[n - 1],
        p50: percentile_sorted(&sorted, 0.50),
        p95: percentile_sorted(&sorted, 0.95),
        p99: percentile_sorted(&sorted, 0.99),
    }
}

/// Interpolated percentile of an ascending-sorted slice; `q` in `[0, 1]`.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile out of range");
    match sorted.len() {
        0 => 0.0,
        1 => sorted[0],
        n => {
            let pos = q * (n - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = pos.ceil() as usize;
            let frac = pos - lo as f64;
            sorted[lo] + (sorted[hi] - sorted[lo]) * frac
        }
    }
}

/// Relative change `(b - a) / a` expressed as a factor; reports how much
/// faster/slower a measured value is versus a baseline.
pub fn speedup(baseline: f64, measured: f64) -> f64 {
    assert!(measured > 0.0, "non-positive measurement");
    baseline / measured
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_zeroed() {
        let s = summarize(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.max, 0.0);
    }

    #[test]
    fn single_sample() {
        let s = summarize(&[7.0]);
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.min, 7.0);
        assert_eq!(s.max, 7.0);
        assert_eq!(s.p50, 7.0);
        assert_eq!(s.p99, 7.0);
        assert_eq!(s.std_dev, 0.0);
    }

    #[test]
    fn known_distribution() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = summarize(&xs);
        assert_eq!(s.count, 100);
        assert!((s.mean - 50.5).abs() < 1e-9);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!((s.p50 - 50.5).abs() < 1e-9);
        assert!((s.p95 - 95.05).abs() < 1e-9);
    }

    #[test]
    fn unsorted_input_ok() {
        let s = summarize(&[3.0, 1.0, 2.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.p50, 2.0);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [0.0, 10.0];
        assert_eq!(percentile_sorted(&v, 0.5), 5.0);
        assert_eq!(percentile_sorted(&v, 0.0), 0.0);
        assert_eq!(percentile_sorted(&v, 1.0), 10.0);
    }

    #[test]
    fn speedup_factor() {
        assert_eq!(speedup(10.0, 2.0), 5.0);
        assert_eq!(speedup(2.0, 4.0), 0.5);
    }
}
